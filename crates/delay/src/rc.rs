//! Distributed RC trees extracted from routed wire trees.

use clk_liberty::WireRc;
use clk_route::WireTree;

/// A distributed RC tree. Node 0 is the driver output; every other node has
/// a parent and a series resistance on the edge toward the parent. Node
/// capacitance is lumped at the node.
#[derive(Debug, Clone, PartialEq)]
pub struct RcTree {
    parent: Vec<Option<usize>>,
    /// Series resistance from node to parent, kΩ.
    res_kohm: Vec<f64>,
    /// Lumped capacitance at the node, fF.
    cap_ff: Vec<f64>,
    /// RC node index of each wire-tree node.
    wire_to_rc: Vec<usize>,
}

impl RcTree {
    /// Extracts a π-segmented RC tree from a routed wire tree.
    ///
    /// * `rc` — per-unit parasitics of the corner's BEOL;
    /// * `loads` — receiver pin loads as `(wire-tree node, cap fF)`;
    /// * `seg_max_um` — maximum electrical segment length. Each wire edge
    ///   is split into `ceil(len/seg_max)` π-segments (half the segment cap
    ///   at each segment end). Pass a large value (e.g. `1e9`) to lump each
    ///   edge into a single segment — the *fast estimate* mode; pass ~5 µm
    ///   for signoff-like accuracy — the *golden* mode.
    ///
    /// # Panics
    ///
    /// Panics if `seg_max_um <= 0` or a load references a node out of
    /// range.
    pub fn extract(wt: &WireTree, rc: WireRc, loads: &[(usize, f64)], seg_max_um: f64) -> Self {
        assert!(seg_max_um > 0.0, "segment pitch must be positive");
        let n = wt.node_count();
        let mut tree = RcTree {
            parent: vec![None],
            res_kohm: vec![0.0],
            cap_ff: vec![0.0],
            wire_to_rc: vec![usize::MAX; n],
        };
        tree.wire_to_rc[WireTree::ROOT] = 0;
        // Wire-tree children always have larger indices than parents, so a
        // forward scan visits parents first.
        for i in wt.topo_order().skip(1) {
            let wp = wt.parent(i).expect("non-root");
            let parent_rc = tree.wire_to_rc[wp];
            debug_assert_ne!(parent_rc, usize::MAX);
            let len = wt.edge_len_um(i);
            let segs = ((len / seg_max_um).ceil() as usize).max(1);
            let seg_len = len / segs as f64;
            let seg_r = rc.r_per_um * seg_len;
            let seg_c = rc.c_per_um * seg_len;
            let mut prev = parent_rc;
            for _ in 0..segs {
                // π-segment: half cap at each end
                tree.cap_ff[prev] += seg_c / 2.0;
                tree.parent.push(Some(prev));
                tree.res_kohm.push(seg_r);
                tree.cap_ff.push(seg_c / 2.0);
                prev = tree.parent.len() - 1;
            }
            tree.wire_to_rc[i] = prev;
        }
        for &(wnode, cap) in loads {
            let rc_node = tree.wire_to_rc[wnode];
            assert_ne!(rc_node, usize::MAX, "load on unknown wire node");
            tree.cap_ff[rc_node] += cap;
        }
        tree
    }

    /// Builds an RC tree directly from parent/R/C vectors (tests, synthetic
    /// networks).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ, node 0 is not the root, or a parent
    /// index is not smaller than its child (must be topologically ordered).
    pub fn from_raw(parent: Vec<Option<usize>>, res_kohm: Vec<f64>, cap_ff: Vec<f64>) -> Self {
        assert_eq!(parent.len(), res_kohm.len());
        assert_eq!(parent.len(), cap_ff.len());
        assert!(parent[0].is_none(), "node 0 must be the root");
        for (i, p) in parent.iter().enumerate().skip(1) {
            let p = p.expect("only node 0 may be parentless");
            assert!(p < i, "nodes must be topologically ordered");
        }
        let n = parent.len();
        RcTree {
            parent,
            res_kohm,
            cap_ff,
            wire_to_rc: (0..n).collect(),
        }
    }

    /// Number of RC nodes.
    pub fn node_count(&self) -> usize {
        self.parent.len()
    }

    /// Parent of an RC node.
    pub fn parent(&self, i: usize) -> Option<usize> {
        self.parent[i]
    }

    /// Series resistance from node `i` to its parent, kΩ.
    pub fn res_kohm(&self, i: usize) -> f64 {
        self.res_kohm[i]
    }

    /// Lumped capacitance at node `i`, fF.
    pub fn cap_ff(&self, i: usize) -> f64 {
        self.cap_ff[i]
    }

    /// Total capacitance of the net (wire + pins), fF — the load the
    /// driving gate sees in the NLDM lookup.
    pub fn total_cap_ff(&self) -> f64 {
        self.cap_ff.iter().sum()
    }

    /// The RC node corresponding to a wire-tree node (receiver pins sit on
    /// wire-tree nodes).
    ///
    /// # Panics
    ///
    /// Panics if the wire node was out of range at extraction time.
    pub fn rc_node_of_wire_node(&self, wire_node: usize) -> usize {
        let n = self.wire_to_rc[wire_node];
        assert_ne!(n, usize::MAX, "wire node not mapped");
        n
    }
}

#[cfg(test)]
// tests pin exact expected values on purpose
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use clk_geom::Point;

    fn rc() -> WireRc {
        WireRc {
            r_per_um: 2.0e-3,
            c_per_um: 0.2,
        }
    }

    #[test]
    fn lumped_extraction_has_one_segment_per_edge() {
        let mut wt = WireTree::new(Point::new(0, 0));
        let a = wt.add_child(WireTree::ROOT, Point::new(50_000, 0));
        let _b = wt.add_child(a, Point::new(50_000, 30_000));
        let t = RcTree::extract(&wt, rc(), &[], 1e9);
        assert_eq!(t.node_count(), 3);
        assert!((t.total_cap_ff() - 80.0 * 0.2).abs() < 1e-9);
    }

    #[test]
    fn segmentation_preserves_totals() {
        let mut wt = WireTree::new(Point::new(0, 0));
        let a = wt.add_child(WireTree::ROOT, Point::new(100_000, 0));
        let coarse = RcTree::extract(&wt, rc(), &[(a, 3.0)], 1e9);
        let fine = RcTree::extract(&wt, rc(), &[(a, 3.0)], 5.0);
        assert!((coarse.total_cap_ff() - fine.total_cap_ff()).abs() < 1e-9);
        let total_r: f64 = (0..fine.node_count()).map(|i| fine.res_kohm(i)).sum();
        assert!((total_r - 0.2).abs() < 1e-12);
        assert_eq!(fine.node_count(), 1 + 20);
    }

    #[test]
    fn loads_land_on_the_right_node() {
        let mut wt = WireTree::new(Point::new(0, 0));
        let a = wt.add_child(WireTree::ROOT, Point::new(10_000, 0));
        let t = RcTree::extract(&wt, rc(), &[(a, 7.5)], 1e9);
        let n = t.rc_node_of_wire_node(a);
        // far node has half the wire cap + the pin load
        assert!((t.cap_ff(n) - (1.0 + 7.5)).abs() < 1e-9);
    }

    #[test]
    fn from_raw_roundtrip() {
        let t = RcTree::from_raw(
            vec![None, Some(0), Some(1)],
            vec![0.0, 1.0, 2.0],
            vec![0.0, 10.0, 5.0],
        );
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.total_cap_ff(), 15.0);
    }

    #[test]
    #[should_panic(expected = "topologically ordered")]
    fn from_raw_rejects_disorder() {
        let _ = RcTree::from_raw(
            vec![None, Some(2), Some(0)],
            vec![0.0, 1.0, 1.0],
            vec![0.0, 1.0, 1.0],
        );
    }

    #[test]
    fn zero_length_edge_is_tolerated() {
        let mut wt = WireTree::new(Point::new(0, 0));
        let a = wt.add_child(WireTree::ROOT, Point::new(0, 0));
        let t = RcTree::extract(&wt, rc(), &[(a, 2.0)], 1e9);
        assert_eq!(t.total_cap_ff(), 2.0);
    }
}
