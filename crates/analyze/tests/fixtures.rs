//! Seeded-defect fixtures in the clk-cert poison-battery style: every
//! snippet plants exactly one hazard and the analyzer must catch it
//! with exactly the expected code; the clean twin of each snippet must
//! come back empty.

use clk_analyze::{analyze_str, AnalyzeConfig, Code};

const LIB: &str = "crates/fixture/src/lib.rs";
const HOT: &str = "crates/core/src/local.rs";

struct Defect {
    name: &'static str,
    path: &'static str,
    src: &'static str,
    expect: Code,
}

/// One planted defect per pass, plus the suppression-hygiene cases.
fn battery() -> Vec<Defect> {
    vec![
        Defect {
            name: "a001-for-over-map",
            path: LIB,
            src: "use std::collections::HashMap;\n\
                  fn rows(m: HashMap<usize, f64>, out: &mut Vec<(usize, f64)>) {\n\
                      for (k, v) in m {\n\
                          out.push((k, v));\n\
                      }\n\
                  }\n",
            expect: Code::A001,
        },
        Defect {
            name: "a001-keys-chain",
            path: LIB,
            src: "use std::collections::HashSet;\n\
                  fn first(s: &HashSet<u32>) -> Vec<u32> {\n\
                      let set: &HashSet<u32> = s;\n\
                      set.iter().take(3).copied().collect()\n\
                  }\n",
            expect: Code::A001,
        },
        Defect {
            name: "a002-float-sum-in-map-order",
            path: LIB,
            src: "use std::collections::HashMap;\n\
                  fn total(m: &HashMap<u32, f64>) -> f64 {\n\
                      let mut acc = 0.0;\n\
                      // clk-analyze: allow(A001) fixture isolates the A002 signal\n\
                      for v in m.values() {\n\
                          acc += *v;\n\
                      }\n\
                      acc\n\
                  }\n",
            expect: Code::A002,
        },
        Defect {
            name: "a003-raw-instant",
            path: "crates/core/src/global.rs",
            src: "fn stamp() -> std::time::Instant {\n\
                      std::time::Instant::now()\n\
                  }\n",
            expect: Code::A003,
        },
        Defect {
            name: "a004-thread-local-cache",
            path: HOT,
            src: "thread_local! {\n\
                      static SCRATCH: Vec<f64> = Vec::new();\n\
                  }\n",
            expect: Code::A004,
        },
        Defect {
            name: "a004-refcell-in-hot-path",
            path: HOT,
            src: "struct Cache {\n\
                      inner: std::cell::RefCell<Vec<f64>>,\n\
                  }\n",
            expect: Code::A004,
        },
        Defect {
            name: "a005-unwrap-in-library",
            path: LIB,
            src: "fn pick(v: &[f64]) -> f64 {\n\
                      *v.first().unwrap()\n\
                  }\n",
            expect: Code::A005,
        },
        Defect {
            name: "a006-stale-suppression",
            path: LIB,
            src: "// clk-analyze: allow(A001) there used to be a map walk here\n\
                  fn nothing() {}\n",
            expect: Code::A006,
        },
    ]
}

#[test]
fn every_seeded_defect_is_caught() {
    let cfg = AnalyzeConfig::default();
    for d in battery() {
        let report = analyze_str(d.path, d.src, &cfg);
        assert_eq!(
            report.findings.len(),
            1,
            "{}: expected exactly one finding, got {:?}",
            d.name,
            report.findings
        );
        assert_eq!(
            report.findings[0].code, d.expect,
            "{}: wrong code: {:?}",
            d.name, report.findings
        );
        assert!(
            !report.findings[0].snippet.is_empty(),
            "{}: snippet must anchor the finding",
            d.name
        );
    }
}

#[test]
fn clean_twins_produce_no_findings() {
    let cfg = AnalyzeConfig::default();
    let clean: &[(&str, &str)] = &[
        // the A001 twin: BTreeMap iterates in key order
        (
            LIB,
            "use std::collections::BTreeMap;\n\
             fn rows(m: BTreeMap<usize, f64>, out: &mut Vec<(usize, f64)>) {\n\
                 for (k, v) in m {\n\
                 out.push((k, v));\n\
             }\n\
             }\n",
        ),
        // the sorted-drain idiom: into_iter + sort outside a for-expr
        (
            LIB,
            "use std::collections::HashMap;\n\
             fn rows(m: HashMap<usize, f64>) -> Vec<(usize, f64)> {\n\
                 let mut v: Vec<(usize, f64)> = m.into_iter().collect();\n\
                 v.sort_by(|a, b| a.0.cmp(&b.0));\n\
                 v\n\
             }\n",
        ),
        // the A003 twin: the obs crate may read the clock
        (
            "crates/obs/src/span.rs",
            "fn t() { let _ = std::time::Instant::now(); }\n",
        ),
        // the A004 twin: RefCell outside a hot path is fine
        (
            "crates/qor/src/lib.rs",
            "struct C { x: std::cell::RefCell<u32> }\n",
        ),
        // the A005 twin: unwrap in a bin target is allowed
        (
            "crates/bench/src/bin/fig1.rs",
            "fn f(v: &[u32]) -> u32 { *v.first().unwrap() }\n",
        ),
        // a justified suppression is honored and not stale
        (
            "crates/core/src/flow.rs",
            "// clk-analyze: allow(A003) telemetry: feeds the span histogram only\n\
             fn stamp() -> std::time::Instant { std::time::Instant::now() }\n",
        ),
    ];
    for (path, src) in clean {
        let report = analyze_str(path, src, &cfg);
        assert!(
            report.findings.is_empty(),
            "{path}: expected clean, got {:?}",
            report.findings
        );
    }
}

#[test]
fn suppression_scope_is_one_line() {
    // the allow on line 2 must not leak to the second hazard on line 4
    let src = "fn f() {\n\
               // clk-analyze: allow(A003) telemetry\n\
               let a = std::time::Instant::now();\n\
               let b = std::time::Instant::now();\n\
               }\n";
    let report = analyze_str("crates/core/src/flow.rs", src, &AnalyzeConfig::default());
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].code, Code::A003);
    assert_eq!(report.findings[0].line, 4);
    assert_eq!(report.suppressed.len(), 1);
}
