//! Testcase generators: the CLS1/CLS2 design classes of Table 4 and the
//! artificial nets used to train the delta-latency models.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use clk_geom::{Point, Rect};
use clk_liberty::{CellId, CornerId, Library, StdCorners};
use clk_netlist::{ClockTree, Floorplan, NodeId, NodeKind, SinkPair};
use clk_sta::{alpha_factors, pair_skews, variation_report, Timer};

use crate::balance::{balance_by_detours, BalanceMode};
use crate::builder::CtsEngine;

/// Which benchmark design to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TestcaseKind {
    /// Application-processor block, variant 1 (four 650×650 µm ILMs in a
    /// ~3.3 mm² rectangle, corners {c0, c1, c3}).
    Cls1v1,
    /// Application-processor block, variant 2 (~3.4 mm², different ILM
    /// spread, corners {c0, c1, c3}).
    Cls1v2,
    /// L-shaped memory controller (~4.5 mm², controller + two interface
    /// arms ~1 mm away, corners {c0, c1, c2}).
    Cls2v1,
}

impl TestcaseKind {
    /// Table-4 display name.
    pub fn name(self) -> &'static str {
        match self {
            TestcaseKind::Cls1v1 => "CLS1v1",
            TestcaseKind::Cls1v2 => "CLS1v2",
            TestcaseKind::Cls2v1 => "CLS2v1",
        }
    }

    /// The corner set this class signs off at (Table 4).
    pub fn corners(self) -> Vec<clk_liberty::Corner> {
        match self {
            TestcaseKind::Cls1v1 | TestcaseKind::Cls1v2 => StdCorners::c0_c1_c3(),
            TestcaseKind::Cls2v1 => StdCorners::c0_c1_c2(),
        }
    }

    /// Standard-cell utilization reported in Table 4.
    pub fn utilization(self) -> f64 {
        match self {
            TestcaseKind::Cls1v1 => 0.62,
            TestcaseKind::Cls1v2 => 0.60,
            TestcaseKind::Cls2v1 => 0.58,
        }
    }
}

/// A generated benchmark: library, floorplan, CTS'd tree and metadata.
#[derive(Debug, Clone)]
pub struct Testcase {
    /// Which class/variant this is.
    pub kind: TestcaseKind,
    /// The multi-corner library the design signs off with.
    pub lib: Library,
    /// Floorplan (die + blockages + legalization rules).
    pub floorplan: Floorplan,
    /// The CTS baseline tree (sink pairs installed).
    pub tree: ClockTree,
    /// Equivalent full-design cell count (FFs plus combinational logic),
    /// for the Table-4 "#Cells" column.
    pub equiv_cells: usize,
}

impl Testcase {
    /// Generates the testcase with `n_sinks` flip-flops (the paper's 36K /
    /// 35K / 270K scaled down; see DESIGN.md §4) and a deterministic
    /// `seed`.
    ///
    /// Following the paper's §5.1 methodology, the tree is balanced with a
    /// 0 ps skew target under both the MCSM and MCMM scenarios and the
    /// solution with the smaller sum of skew variations is kept.
    ///
    /// # Panics
    ///
    /// Panics if `n_sinks == 0`.
    pub fn generate(kind: TestcaseKind, n_sinks: usize, seed: u64) -> Self {
        assert!(n_sinks > 0, "testcase needs sinks");
        let lib = Library::synthetic_28nm(kind.corners());
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC15);
        let (floorplan, regions, source) = geometry(kind);
        let sinks = sample_sinks(&mut rng, &regions, n_sinks);

        let engine = CtsEngine::default();
        let mut mcsm = engine.synthesize(&lib, &floorplan, source, &sinks);
        let pairs = generate_pairs(kind, &mcsm, &regions, &mut rng);
        mcsm.set_sink_pairs(pairs);
        let mut mcmm = mcsm.clone();

        balance_by_detours(
            &mut mcsm,
            &lib,
            BalanceMode::SingleCorner(CornerId(0)),
            4,
            120.0,
        );
        balance_by_detours(&mut mcmm, &lib, BalanceMode::MultiCorner, 4, 120.0);

        let tree = if variation_sum(&mcsm, &lib) <= variation_sum(&mcmm, &lib) {
            mcsm
        } else {
            mcmm
        };
        Testcase {
            kind,
            lib,
            floorplan,
            tree,
            // the paper's blocks carry ~11 cells per flip-flop
            equiv_cells: n_sinks * 11,
        }
    }

    /// Block area in mm² (Table 4).
    pub fn area_mm2(&self) -> f64 {
        let die = self.floorplan.die.area_um2();
        let blocked: f64 = self
            .floorplan
            .blockages
            .iter()
            .map(clk_geom::Rect::area_um2)
            .sum();
        (die - blocked) / 1.0e6
    }
}

/// Sum of normalized skew variations of a tree (golden timing, paper
/// Eq. (2)/(3) objective) — used here to pick the better CTS scenario.
pub fn variation_sum(tree: &ClockTree, lib: &Library) -> f64 {
    let timer = Timer::golden();
    let per_corner: Vec<Vec<f64>> = lib
        .corner_ids()
        .map(|c| pair_skews(&timer.analyze(tree, lib, c), tree.sink_pairs()))
        .collect();
    let alphas = alpha_factors(&per_corner);
    variation_report(&per_corner, &alphas, None).sum
}

/// Sink-bearing regions with sampling weights.
struct Region {
    rect: Rect,
    weight: f64,
    /// Region family, used when pairing sinks (0 = local cluster id space,
    /// 1 = controller, 2 = interface).
    family: u8,
}

fn geometry(kind: TestcaseKind) -> (Floorplan, Vec<Region>, Point) {
    match kind {
        TestcaseKind::Cls1v1 => {
            let die = Rect::from_um(0.0, 0.0, 1820.0, 1820.0);
            let ilm = |x: f64, y: f64| Region {
                rect: Rect::from_um(x, y, x + 650.0, y + 650.0),
                weight: 0.225,
                family: 0,
            };
            let glue = Region {
                rect: Rect::from_um(760.0, 80.0, 1060.0, 1740.0),
                weight: 0.10,
                family: 0,
            };
            (
                Floorplan::utilized(die, vec![]),
                vec![
                    ilm(60.0, 60.0),
                    ilm(1110.0, 60.0),
                    ilm(60.0, 1110.0),
                    ilm(1110.0, 1110.0),
                    glue,
                ],
                Point::from_um(910.0, 4.8),
            )
        }
        TestcaseKind::Cls1v2 => {
            let die = Rect::from_um(0.0, 0.0, 1850.0, 1840.0);
            let ilm = |x: f64, y: f64| Region {
                rect: Rect::from_um(x, y, x + 650.0, y + 650.0),
                weight: 0.2125,
                family: 0,
            };
            let glue = Region {
                rect: Rect::from_um(100.0, 800.0, 1750.0, 1040.0),
                weight: 0.15,
                family: 0,
            };
            (
                Floorplan::utilized(die, vec![]),
                vec![
                    ilm(140.0, 100.0),
                    ilm(1060.0, 100.0),
                    ilm(140.0, 1090.0),
                    ilm(1060.0, 1090.0),
                    glue,
                ],
                Point::from_um(925.0, 4.8),
            )
        }
        TestcaseKind::Cls2v1 => {
            // L shape: vertical bar 1000×2500 + horizontal bar 1600×1250
            let die = Rect::from_um(0.0, 0.0, 2600.0, 2500.0);
            let blockage = Rect::from_um(1000.0, 1250.0, 2600.0, 2500.0);
            let controller = Region {
                rect: Rect::from_um(120.0, 120.0, 900.0, 1100.0),
                weight: 0.5,
                family: 1,
            };
            let if_top = Region {
                rect: Rect::from_um(120.0, 1700.0, 900.0, 2400.0),
                weight: 0.25,
                family: 2,
            };
            let if_right = Region {
                rect: Rect::from_um(1800.0, 120.0, 2480.0, 1130.0),
                weight: 0.25,
                family: 2,
            };
            (
                Floorplan::utilized(die, vec![blockage]),
                vec![controller, if_top, if_right],
                Point::from_um(500.0, 4.8),
            )
        }
    }
}

fn sample_sinks(rng: &mut StdRng, regions: &[Region], n: usize) -> Vec<Point> {
    let total_w: f64 = regions.iter().map(|r| r.weight).sum();
    let mut sinks = Vec::with_capacity(n);
    for i in 0..n {
        // deterministic stratified region choice
        let mut pick = (i as f64 + rng.gen::<f64>()) / n as f64 * total_w;
        let mut region = &regions[0];
        for r in regions {
            if pick <= r.weight {
                region = r;
                break;
            }
            pick -= r.weight;
        }
        let b = region.rect;
        let x = rng.gen_range(b.lo.x..=b.hi.x);
        let y = rng.gen_range(b.lo.y..=b.hi.y);
        sinks.push(Point::new(x, y));
    }
    sinks
}

/// Builds launch/capture pairs: nearest-neighbour local datapaths plus the
/// class-specific long paths (cross-ILM for CLS1, controller↔interface for
/// CLS2 — the paper calls out the ~1 mm control signals explicitly).
fn generate_pairs(
    kind: TestcaseKind,
    tree: &ClockTree,
    regions: &[Region],
    rng: &mut StdRng,
) -> Vec<SinkPair> {
    let sinks: Vec<NodeId> = tree.sinks().collect();
    let locs: Vec<Point> = sinks.iter().map(|&s| tree.loc(s)).collect();
    let family = |p: Point| -> u8 {
        regions
            .iter()
            .find(|r| r.rect.contains(p))
            .map_or(0, |r| r.family)
    };
    let mut pairs = Vec::new();
    for (i, &s) in sinks.iter().enumerate() {
        // k nearest neighbours = local datapaths
        let k = 1 + rng.gen_range(0..3usize);
        let mut dists: Vec<(i64, usize)> = locs
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(j, &p)| (locs[i].manhattan(p), j))
            .collect();
        dists.sort_unstable();
        for &(_, j) in dists.iter().take(k) {
            pairs.push(SinkPair::new(s, sinks[j]));
        }
    }
    // long-distance pairs
    let n_long = (sinks.len() / 8).max(1);
    match kind {
        TestcaseKind::Cls1v1 | TestcaseKind::Cls1v2 => {
            for _ in 0..n_long {
                let a = rng.gen_range(0..sinks.len());
                let b = rng.gen_range(0..sinks.len());
                if a != b {
                    pairs.push(SinkPair::new(sinks[a], sinks[b]));
                }
            }
        }
        TestcaseKind::Cls2v1 => {
            let ctrl: Vec<usize> = (0..sinks.len()).filter(|&i| family(locs[i]) == 1).collect();
            let intf: Vec<usize> = (0..sinks.len()).filter(|&i| family(locs[i]) == 2).collect();
            if !ctrl.is_empty() && !intf.is_empty() {
                for _ in 0..(2 * n_long) {
                    let a = ctrl[rng.gen_range(0..ctrl.len())];
                    let b = intf[rng.gen_range(0..intf.len())];
                    pairs.push(SinkPair::new(sinks[a], sinks[b]));
                }
            }
        }
    }
    pairs
}

/// An artificial training net: one driver buffer inside a realistic local
/// subtree, used to learn delta-latency models (paper §4.2).
#[derive(Debug, Clone)]
pub struct ArtificialCase {
    /// The net's clock tree (source → feeder → driver → fanouts, plus a
    /// same-level alternate driver on most cases so that tree-surgery
    /// moves occur in the training data).
    pub tree: ClockTree,
    /// The buffer whose perturbations are the training moves.
    pub driver: NodeId,
}

/// Generates an artificial testcase: fanout 1–5 (or 20–40 when
/// `last_stage`), bounding-box area 1000–8000 µm², aspect ratio 0.5–1.0,
/// fanout cells placed uniformly inside the box. Two of three cases also
/// carry a parallel feeder/driver pair nearby, so type-III (driver
/// reassignment) moves are enumerable and the predictor learns them.
pub fn artificial(lib: &Library, seed: u64, last_stage: bool) -> ArtificialCase {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA27F);
    let area = rng.gen_range(1000.0..8000.0f64);
    let ar = rng.gen_range(0.5..1.0f64);
    let w = (area / ar).sqrt();
    let h = area / w;
    let ox = rng.gen_range(100.0..400.0);
    let oy = rng.gen_range(100.0..400.0);
    let bbox = Rect::from_um(ox, oy, ox + w, oy + h);

    let n_fanout = if last_stage {
        rng.gen_range(20..=40usize)
    } else {
        rng.gen_range(1..=5usize)
    };
    let driver_cell = CellId(rng.gen_range(1..lib.cells().len()));
    let feeder_cell = CellId(lib.cells().len() - 1);

    let mut tree = ClockTree::new(Point::from_um(ox - 60.0, oy - 60.0), feeder_cell);
    let feeder = tree.add_node(
        NodeKind::Buffer(feeder_cell),
        Point::from_um(ox - 25.0, oy - 20.0),
        tree.root(),
    );
    let driver = tree.add_node(NodeKind::Buffer(driver_cell), bbox.center(), feeder);
    let place_fanout = |tree: &mut ClockTree, under: NodeId, rng: &mut StdRng| {
        let p = Point::new(
            rng.gen_range(bbox.lo.x..=bbox.hi.x),
            rng.gen_range(bbox.lo.y..=bbox.hi.y),
        );
        if last_stage {
            tree.add_node(NodeKind::Sink, p, under);
        } else {
            let cell = CellId(rng.gen_range(0..lib.cells().len().saturating_sub(1)));
            let fan = tree.add_node(NodeKind::Buffer(cell), p, under);
            // terminate with a sink so latency is observable downstream
            let off = Point::new(
                p.x + rng.gen_range(5_000..20_000),
                p.y + rng.gen_range(-10_000..10_000),
            );
            tree.add_node(NodeKind::Sink, off, fan);
        }
    };
    for _ in 0..n_fanout {
        place_fanout(&mut tree, driver, &mut rng);
    }
    // a parallel same-level subtree close enough for tree surgery
    if seed % 3 != 1 {
        let feeder2 = tree.add_node(
            NodeKind::Buffer(feeder_cell),
            Point::from_um(ox - 25.0, oy + 15.0),
            tree.root(),
        );
        let d2_loc = bbox.center().offset(
            rng.gen_range(-40_000..40_000),
            rng.gen_range(15_000..40_000),
        );
        let driver2 = tree.add_node(
            NodeKind::Buffer(CellId(rng.gen_range(1..lib.cells().len()))),
            d2_loc,
            feeder2,
        );
        for _ in 0..rng.gen_range(1..=3usize) {
            place_fanout(&mut tree, driver2, &mut rng);
        }
    }
    ArtificialCase { tree, driver }
}

#[cfg(test)]
// tests pin exact expected values on purpose
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn cls1v1_generates_valid_design() {
        let tc = Testcase::generate(TestcaseKind::Cls1v1, 80, 3);
        tc.tree.validate().unwrap();
        assert_eq!(tc.tree.sinks().count(), 80);
        assert!(!tc.tree.sink_pairs().is_empty());
        assert_eq!(tc.lib.corner_count(), 3);
        assert!((tc.area_mm2() - 3.31).abs() < 0.1, "area {}", tc.area_mm2());
        assert_eq!(tc.equiv_cells, 880);
    }

    #[test]
    fn cls2_sinks_stay_inside_the_l() {
        let tc = Testcase::generate(TestcaseKind::Cls2v1, 60, 9);
        let blk = &tc.floorplan.blockages[0];
        for s in tc.tree.sinks().collect::<Vec<_>>() {
            assert!(
                !blk.contains(tc.tree.loc(s)),
                "sink {s} inside the blocked notch"
            );
        }
        assert!((tc.area_mm2() - 4.5).abs() < 0.1, "area {}", tc.area_mm2());
    }

    #[test]
    fn cls2_has_long_pairs() {
        let tc = Testcase::generate(TestcaseKind::Cls2v1, 60, 10);
        let longest = tc
            .tree
            .sink_pairs()
            .iter()
            .map(|p| tc.tree.loc(p.a).manhattan_um(tc.tree.loc(p.b)))
            .fold(0.0, f64::max);
        assert!(longest > 800.0, "longest pair span {longest} um");
    }

    #[test]
    fn deterministic_generation() {
        let a = Testcase::generate(TestcaseKind::Cls1v2, 40, 7);
        let b = Testcase::generate(TestcaseKind::Cls1v2, 40, 7);
        assert_eq!(
            variation_sum(&a.tree, &a.lib),
            variation_sum(&b.tree, &b.lib)
        );
    }

    #[test]
    fn artificial_cases_match_paper_parameters() {
        let lib = Library::synthetic_28nm(StdCorners::c0_c1_c3());
        for seed in 0..12 {
            let last = seed % 3 == 0;
            let case = artificial(&lib, seed, last);
            case.tree.validate().unwrap();
            let fanout = case.tree.children(case.driver).len();
            if last {
                assert!((20..=40).contains(&fanout), "fanout {fanout}");
            } else {
                assert!((1..=5).contains(&fanout), "fanout {fanout}");
            }
            let pts: Vec<Point> = case
                .tree
                .children(case.driver)
                .iter()
                .map(|&c| case.tree.loc(c))
                .collect();
            if pts.len() >= 2 {
                let bbox = Rect::bounding(&pts).unwrap();
                assert!(bbox.area_um2() <= 8200.0, "bbox {}", bbox.area_um2());
            }
        }
    }
}
