//! Lexical metrics-dictionary gate: every metric name emitted anywhere
//! in the workspace must be declared in `clk_obs::dict::DICTIONARY`,
//! and every dictionary entry must still have an emission site (no
//! stale declarations). Names built with `format!` count with their
//! `{..}` holes normalized to the dictionary's `*` wildcard.

use std::path::{Path, PathBuf};

use clk_obs::dict;

/// Extracts the metric-name literal at `text[at..]` (just past an
/// emission-call needle), if the first argument is a string literal,
/// optionally via `&format!("..")`. Names passed through variables are
/// out of lexical reach and intentionally skipped; the stale check
/// falls back to a quoted-literal search for those.
fn extract_name(text: &str, at: usize) -> Option<String> {
    let mut rest = text[at..].trim_start();
    rest = rest.strip_prefix("&format!(").unwrap_or(rest).trim_start();
    let lit = rest.strip_prefix('"')?;
    let end = lit.find('"')?;
    Some(normalize(&lit[..end]))
}

/// Replaces every `{...}` format hole with the dictionary wildcard.
fn normalize(name: &str) -> String {
    let mut out = String::new();
    let mut depth = 0usize;
    for ch in name.chars() {
        match ch {
            '{' => {
                if depth == 0 {
                    out.push('*');
                }
                depth += 1;
            }
            '}' => depth = depth.saturating_sub(1),
            c if depth == 0 => out.push(c),
            _ => {}
        }
    }
    out
}

/// Production (pre-`#[cfg(test)]`) prefix of one source file:
/// test-only metric names are not part of the emission surface.
fn production_text(path: &Path) -> Option<String> {
    let text = std::fs::read_to_string(path).ok()?;
    let cut = text
        .lines()
        .scan(0usize, |off, line| {
            let at = *off;
            *off += line.len() + 1;
            Some((at, line))
        })
        .find(|(_, line)| line.trim_start() == "#[cfg(test)]")
        .map_or(text.len(), |(at, _)| at);
    Some(text[..cut].to_string())
}

/// Collects `(file, line_no, normalized name)` emission sites from one
/// source file.
fn scan_text(path: &Path, text: &str, out: &mut Vec<(PathBuf, usize, String)>) {
    const NEEDLES: [&str; 6] = [
        ".count(",
        ".observe(",
        ".gauge_set(",
        ".counter(",
        ".histogram(",
        ".gauge(",
    ];
    for needle in NEEDLES {
        let mut from = 0;
        while let Some(hit) = text[from..].find(needle) {
            let at = from + hit + needle.len();
            from = at;
            if let Some(name) = extract_name(text, at) {
                if !name.is_empty() {
                    let line = text[..at].lines().count();
                    out.push((path.to_path_buf(), line, name));
                }
            }
        }
    }
}

fn scan_dir(dir: &Path, sites: &mut Vec<(PathBuf, usize, String)>, corpus: &mut String) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            scan_dir(&p, sites, corpus);
        } else if p.extension().is_some_and(|e| e == "rs") {
            if let Some(text) = production_text(&p) {
                scan_text(&p, &text, sites);
                // the dictionary's own declaration literals must not
                // satisfy the quoted-literal fallback
                if !p.ends_with("obs/src/dict.rs") {
                    corpus.push_str(&text);
                }
            }
        }
    }
}

/// All production emission sites in the workspace — every crate's
/// `src` and `benches`, plus the root crate's `src` — and the scanned
/// text itself (for the quoted-literal fallback). Vendored shims and
/// integration tests are out of scope.
fn scan_workspace() -> (Vec<(PathBuf, usize, String)>, String) {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf();
    let mut sites = Vec::new();
    let mut corpus = String::new();
    scan_dir(&root.join("src"), &mut sites, &mut corpus);
    let crates = root.join("crates");
    let mut members: Vec<PathBuf> = std::fs::read_dir(&crates)
        .expect("crates dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    members.sort();
    for m in members {
        scan_dir(&m.join("src"), &mut sites, &mut corpus);
        scan_dir(&m.join("benches"), &mut sites, &mut corpus);
    }
    (sites, corpus)
}

#[test]
fn every_emitted_metric_is_declared() {
    let (sites, _) = scan_workspace();
    assert!(
        sites.len() >= 30,
        "scanner found only {} emission sites; the lexical patterns broke",
        sites.len()
    );
    let undeclared: Vec<String> = sites
        .iter()
        .filter(|(_, _, name)| {
            let wildcard_declared = dict::DICTIONARY.iter().any(|d| d.name == name.as_str());
            !wildcard_declared && (name.contains('*') || dict::lookup(name).is_none())
        })
        .map(|(f, l, n)| format!("{}:{l}: `{n}`", f.display()))
        .collect();
    assert!(
        undeclared.is_empty(),
        "metric names emitted but not in clk_obs::dict::DICTIONARY:\n  {}",
        undeclared.join("\n  ")
    );
}

#[test]
fn every_dictionary_entry_has_an_emission_site() {
    let (sites, corpus) = scan_workspace();
    let emitted: Vec<String> = sites.into_iter().map(|(_, _, n)| n).collect();
    let stale: Vec<&str> = dict::DICTIONARY
        .iter()
        .map(|d| d.name)
        .filter(|decl| {
            let by_site = emitted
                .iter()
                .any(|n| n == decl || dict::pattern_matches(decl, n));
            // names routed through a variable (e.g. a match over error
            // kinds picking the counter) still appear as quoted
            // literals in production source
            let by_literal = corpus.contains(&format!("\"{decl}\""));
            !by_site && !by_literal
        })
        .collect();
    assert!(
        stale.is_empty(),
        "dictionary entries with no emission site (stale):\n  {}",
        stale.join("\n  ")
    );
}

#[test]
fn dictionary_is_internally_consistent() {
    let problems = dict::check_dictionary();
    assert!(problems.is_empty(), "{}", problems.join("\n"));
}
