//! Seeded structure-aware mutational fuzzer for the two text readers
//! that accept untrusted input: the Liberty subset reader
//! (`clk_liberty::text::parse_liberty_with_limits`) and the `.ctree`
//! reader (`clk_netlist::io::parse_ctree_with_limits`).
//!
//! ```sh
//! cargo run --release -p clk-bench --bin fuzz-parse -- --seed 2015 --iters 10000
//! ```
//!
//! Starts from well-formed corpus entries (the workspace's own writer
//! output), applies 1–4 random structure-aware mutations per iteration
//! (bit flips, truncation, chunk splices, line shuffles, brace and
//! deep-nest injection, long tokens, huge numbers), and asserts for
//! every mutant, under the strict [`ParseLimits`] policy:
//!
//! * **no panic** — every input returns `Ok` or a typed error;
//! * **bounded input** — mutants stay within the byte budget the limits
//!   enforce, so allocation is bounded by the policy, not the attacker;
//! * **deterministic results** — parsing the same mutant twice yields
//!   identical values and identical errors (line, byte offset, message).
//!
//! Exit code 0 when every iteration satisfies all three; a JSON report
//! (`fuzz-parse-report.json`) records the tally for CI artifacts.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use clk_cts::{Testcase, TestcaseKind};
use clk_liberty::text::{parse_liberty_with_limits, write_liberty};
use clk_liberty::{Library, ParseLimits};
use clk_netlist::io::{parse_ctree_with_limits, write_ctree};

/// Which reader a corpus entry exercises.
#[derive(Clone, Copy, PartialEq)]
enum Kind {
    Liberty,
    Ctree,
}

/// One structure-aware mutation. Operates on raw bytes so bit-level
/// damage (invalid UTF-8 included) is part of the input space; the
/// parsers take `&str`, so mutants are materialized lossily.
fn mutate(rng: &mut StdRng, data: &mut Vec<u8>) {
    if data.is_empty() {
        data.extend_from_slice(b"{");
        return;
    }
    match rng.gen_range(0..10u32) {
        // bit flip
        0 => {
            let i = rng.gen_range(0..data.len());
            data[i] ^= 1 << rng.gen_range(0..8u32);
        }
        // truncate
        1 => {
            let i = rng.gen_range(0..data.len());
            data.truncate(i);
        }
        // duplicate a chunk in place
        2 => {
            let a = rng.gen_range(0..data.len());
            let b = (a + rng.gen_range(1..256usize)).min(data.len());
            let chunk: Vec<u8> = data[a..b].to_vec();
            let at = rng.gen_range(0..=data.len());
            data.splice(at..at, chunk);
        }
        // delete a chunk
        3 => {
            let a = rng.gen_range(0..data.len());
            let b = (a + rng.gen_range(1..256usize)).min(data.len());
            data.drain(a..b);
        }
        // swap two whole lines
        4 => {
            let mut lines: Vec<Vec<u8>> = data.split(|&b| b == b'\n').map(<[u8]>::to_vec).collect();
            if lines.len() >= 2 {
                let i = rng.gen_range(0..lines.len());
                let j = rng.gen_range(0..lines.len());
                lines.swap(i, j);
                *data = lines.join(&b'\n');
            }
        }
        // stray brace
        5 => {
            let at = rng.gen_range(0..=data.len());
            let brace = if rng.gen_bool(0.5) { b"{\n" } else { b"}\n" };
            data.splice(at..at, brace.iter().copied());
        }
        // deep-nest injection (pressure on the depth limit)
        6 => {
            let depth = rng.gen_range(8..96usize);
            let mut nest = Vec::new();
            for _ in 0..depth {
                nest.extend_from_slice(b"g (x) {\n");
            }
            let at = rng.gen_range(0..=data.len());
            data.splice(at..at, nest);
        }
        // long-token injection (pressure on the token-length limit)
        7 => {
            let len = rng.gen_range(1024..200_000usize);
            let at = rng.gen_range(0..=data.len());
            data.splice(at..at, std::iter::repeat_n(b'x', len));
        }
        // huge / malformed number in place of a digit
        8 => {
            if let Some(i) = data.iter().position(u8::is_ascii_digit) {
                let bad: &[u8] = match rng.gen_range(0..4u32) {
                    0 => b"99999999999999999999999",
                    1 => b"NaN",
                    2 => b"-",
                    _ => b"1e999",
                };
                data.splice(i..i + 1, bad.iter().copied());
            }
        }
        // record spam (pressure on the record-count limit)
        _ => {
            let n = rng.gen_range(16..512usize);
            let mut spam = Vec::new();
            for k in 0..n {
                spam.extend_from_slice(format!("pair n{k} n{k} weight 1\n").as_bytes());
            }
            let at = rng.gen_range(0..=data.len());
            data.splice(at..at, spam);
        }
    }
}

/// Parses one mutant and returns a canonical summary of the outcome:
/// `Ok(digest)` or `Err(rendered typed error)`. Panics escape to the
/// caller's `catch_unwind`.
fn run_one(kind: Kind, text: &str, lib: &Library, limits: &ParseLimits) -> Result<String, String> {
    match kind {
        Kind::Liberty => parse_liberty_with_limits(text, limits)
            .map(|p| format!("lib {} cells {}", p.name, p.cells.len()))
            .map_err(|e| e.to_string()),
        Kind::Ctree => parse_ctree_with_limits(text, lib, limits)
            .map(|t| write_ctree(&t, lib))
            .map_err(|e| e.to_string()),
    }
}

fn main() -> ExitCode {
    let mut seed = 2015u64;
    let mut iters = 10_000usize;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                    seed = v;
                    i += 1;
                }
            }
            "--iters" => {
                if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                    iters = v;
                    i += 1;
                }
            }
            "--quick" => iters = 2_000,
            _ => {}
        }
        i += 1;
    }

    // corpus: the workspace's own writer output, one library + two trees
    let tc_small = Testcase::generate(TestcaseKind::Cls1v1, 12, seed);
    let tc_big = Testcase::generate(TestcaseKind::Cls1v1, 28, seed.wrapping_add(1));
    let lib = tc_small.lib.clone();
    let mut corpus: Vec<(Kind, Vec<u8>)> = lib
        .corner_ids()
        .map(|c| (Kind::Liberty, write_liberty(&lib, c).into_bytes()))
        .collect();
    corpus.push((Kind::Ctree, write_ctree(&tc_small.tree, &lib).into_bytes()));
    corpus.push((
        Kind::Ctree,
        write_ctree(&tc_big.tree, &tc_big.lib).into_bytes(),
    ));

    let limits = ParseLimits::strict();
    let mut rng = StdRng::seed_from_u64(seed);
    let (mut n_ok, mut n_err, mut n_panic, mut n_nondet) = (0u64, 0u64, 0u64, 0u64);
    let mut max_len = 0usize;
    println!(
        "fuzz-parse: seed {seed}, {iters} iterations, {} corpus entries",
        corpus.len()
    );

    for it in 0..iters {
        let (kind, base) = &corpus[rng.gen_range(0..corpus.len())];
        let parse_lib = if *kind == Kind::Ctree && it % 2 == 1 {
            &tc_big.lib
        } else {
            &lib
        };
        let mut data = base.clone();
        for _ in 0..rng.gen_range(1..=4u32) {
            mutate(&mut rng, &mut data);
        }
        max_len = max_len.max(data.len());
        let text = String::from_utf8_lossy(&data).into_owned();

        let first = catch_unwind(AssertUnwindSafe(|| {
            run_one(*kind, &text, parse_lib, &limits)
        }));
        let second = catch_unwind(AssertUnwindSafe(|| {
            run_one(*kind, &text, parse_lib, &limits)
        }));
        match (first, second) {
            (Ok(a), Ok(b)) => {
                if a != b {
                    n_nondet += 1;
                    eprintln!("NONDETERMINISTIC at iteration {it}: {a:?} vs {b:?}");
                }
                match a {
                    Ok(_) => n_ok += 1,
                    Err(_) => n_err += 1,
                }
            }
            _ => {
                n_panic += 1;
                eprintln!(
                    "PANIC at iteration {it} (seed {seed}), input {} bytes",
                    data.len()
                );
            }
        }
    }

    let report = format!(
        "{{\n  \"schema_version\": 1,\n  \"seed\": {seed},\n  \"iterations\": {iters},\n  \"parsed_ok\": {n_ok},\n  \"typed_errors\": {n_err},\n  \"panics\": {n_panic},\n  \"nondeterministic\": {n_nondet},\n  \"max_input_bytes\": {max_len}\n}}\n"
    );
    let _ = std::fs::write("fuzz-parse-report.json", &report);
    println!(
        "fuzz-parse: {n_ok} ok, {n_err} typed errors, {n_panic} panics, {n_nondet} nondeterministic (max input {max_len} B)"
    );
    println!("report written to fuzz-parse-report.json");
    if n_panic == 0 && n_nondet == 0 {
        println!("fuzz-parse: gate clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("FAIL: fuzz-parse found panics or nondeterminism");
        ExitCode::FAILURE
    }
}
