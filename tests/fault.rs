//! Integration tests of the fault-tolerant flow runtime: rollback
//! byte-identity under injected faults and raw corruption, and
//! panic-freedom of the checked flow entry points on corrupted
//! testcases (the gate-or-typed-error contract).

use std::sync::OnceLock;

use proptest::prelude::*;

use clk_delay::WireModel;
use clk_geom::Point;
use clk_lint::LintLevel;
use clk_netlist::io::write_ctree;
use clk_netlist::{ClockTree, NodeId, SinkPair};
use clk_skewopt::predictor::Topo;
use clk_skewopt::{
    local_optimize_checked, try_optimize_with, Deadline, FaultCtx, FaultPlan, FaultSite, Flow,
    FlowConfig, GlobalConfig, LocalConfig, PhaseBudget, Ranker, StageLuts, TreeTxn,
};

use clk_cts::{Testcase, TestcaseKind};

fn quick_cfg() -> FlowConfig {
    FlowConfig {
        global: GlobalConfig {
            max_pairs: 30,
            lambdas: vec![0.05, 0.3],
            rounds: 1,
            ..GlobalConfig::default()
        },
        local: LocalConfig {
            max_iterations: 1,
            max_batches: 1,
            ..LocalConfig::default()
        },
        ..FlowConfig::default()
    }
}

/// Per-technology LUTs shared across cases (all Cls1v1 testcases use the
/// same synthetic library).
fn luts() -> &'static StageLuts {
    static LUTS: OnceLock<StageLuts> = OnceLock::new();
    LUTS.get_or_init(|| {
        let tc = Testcase::generate(TestcaseKind::Cls1v1, 8, 1);
        StageLuts::characterize(&tc.lib)
    })
}

/// Picks a buffer that has both a parent and a grandparent.
fn deep_buffer(tree: &ClockTree) -> NodeId {
    tree.buffers()
        .find(|&b| tree.parent(b).and_then(|p| tree.parent(p)).is_some())
        .expect("CTS trees have multi-level buffers")
}

/// A local phase whose every candidate worker panics must absorb every
/// panic and leave the tree byte-identical to the pre-phase snapshot.
#[test]
fn all_panicking_workers_leave_tree_byte_identical() {
    let tc = Testcase::generate(TestcaseKind::Cls1v1, 18, 5);
    let plan = FaultPlan::inert(5);
    plan.arm(FaultSite::WorkerPanic, 0, u32::MAX);
    let mut tree = tc.tree.clone();
    let before = write_ctree(&tree, &tc.lib);
    let mut ctx = FaultCtx::new(Some(&plan), Deadline::none());
    let rep = local_optimize_checked(
        &mut tree,
        &tc.lib,
        &tc.floorplan,
        Ranker::Analytic(Topo::Flute, WireModel::D2m),
        &quick_cfg().local,
        None,
        &mut ctx,
        &PhaseBudget::unlimited(),
    )
    .expect("the phase absorbs worker panics");
    assert!(rep.rejects.panicked > 0, "no worker ever panicked");
    assert_eq!(rep.rejects.panicked, plan.injected().len());
    assert_eq!(
        ctx.log.of_kind(clk_skewopt::FaultKind::WorkerPanic).count(),
        rep.rejects.panicked
    );
    assert_eq!(
        write_ctree(&tree, &tc.lib),
        before,
        "tree drifted from the pre-phase snapshot"
    );
}

/// A rolled-back transaction restores the exact pre-transaction bytes
/// even after raw (invariant-breaking) corruption of the working tree.
#[test]
fn txn_rollback_is_byte_identical_after_raw_corruption() {
    let tc = Testcase::generate(TestcaseKind::Cls1v1, 18, 6);
    let mut tree = tc.tree.clone();
    let before = write_ctree(&tree, &tc.lib);
    let txn = TreeTxn::begin(&tree);

    let b = deep_buffer(&tree);
    let p = tree.parent(b).expect("deep buffer has parent");
    tree.debug_unlink_child(p, b);
    let s = tree.sinks().next().expect("has sinks");
    let l = tree.loc(s);
    tree.debug_set_loc_raw(s, Point::new(l.x - 70_000, l.y - 70_000));
    let pair = tree.sink_pairs()[0];
    tree.set_sink_pairs(vec![SinkPair::with_weight(pair.a, pair.b, f64::NAN)]);
    assert!(tree.validate().is_err(), "corruption was not corrupting");

    txn.rollback(&mut tree);
    assert_eq!(
        write_ctree(&tree, &tc.lib),
        before,
        "rollback is not byte-identical"
    );
    tree.validate().expect("rolled-back tree is valid again");
}

/// A NaN pair weight sailing past disabled gates still flows through
/// typed error paths (frozen LP variables, skipped λ points) — never a
/// panic.
#[test]
fn nan_pair_weight_with_gates_off_does_not_panic() {
    let mut tc = Testcase::generate(TestcaseKind::Cls1v1, 18, 7);
    let pair = tc.tree.sink_pairs()[0];
    tc.tree
        .set_sink_pairs(vec![SinkPair::with_weight(pair.a, pair.b, f64::NAN)]);
    let mut cfg = quick_cfg();
    cfg.lint_level = LintLevel::Off;
    // any Result is the contract; panicking is not
    match try_optimize_with(&tc, Flow::Global, &cfg, Some(luts()), None) {
        Ok(rep) => rep.tree.validate().expect("surviving tree is valid"),
        Err(e) => {
            let _ = e.to_string();
        }
    }
}

/// A planted corruption: raw edit applied to a fresh testcase tree.
fn corrupt(tree: &mut ClockTree, defect: usize) {
    match defect {
        // detached child link
        0 => {
            let b = deep_buffer(tree);
            let p = tree.parent(b).expect("deep buffer has parent");
            tree.debug_unlink_child(p, b);
        }
        // orphaned subtree
        1 => {
            let b = deep_buffer(tree);
            let p = tree.parent(b).expect("deep buffer has parent");
            tree.debug_unlink_child(p, b);
            tree.debug_set_parent_raw(b, None);
        }
        // a sink with fanout
        2 => {
            let sinks: Vec<NodeId> = tree.sinks().collect();
            tree.debug_add_child_raw(sinks[0], sinks[1]);
        }
        // node teleported outside the die
        3 => {
            let b = deep_buffer(tree);
            tree.debug_set_loc_raw(b, Point::new(-50_000, -50_000));
        }
        // NaN pair weight
        _ => {
            let pair = tree.sink_pairs()[0];
            tree.set_sink_pairs(vec![SinkPair::with_weight(pair.a, pair.b, f64::NAN)]);
        }
    }
}

/// Regression pin for the seed-136/defect-3 failure of the proptest
/// below. Defect class: **geometry-domain corruption** — a buffer
/// placed outside the floorplan (here at (-50000, -50000)), which the
/// routing and legalization layers assume can never happen. Before the
/// input lint gate existed this panicked deep in route-length
/// arithmetic; the contract now is that `check_lint_gate` rejects the
/// tree with a typed [`FlowError::LintGate`] before any phase runs, so
/// the flow must come back as a typed error or a valid report, never a
/// panic.
#[test]
fn teleported_buffer_yields_typed_result() {
    let mut tc = Testcase::generate(TestcaseKind::Cls1v1, 16, 136);
    corrupt(&mut tc.tree, 3);
    match try_optimize_with(&tc, Flow::Global, &quick_cfg(), Some(luts()), None) {
        Ok(rep) => assert!(rep.tree.validate().is_ok()),
        Err(e) => assert!(!e.to_string().is_empty()),
    }
}

proptest! {
    // each case runs full CTS generation; keep the count small
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The checked flow driver never panics on corrupted testcases: the
    /// input gate (on in debug test builds) rejects them with a typed
    /// `FlowError`, and anything that survives comes back as a valid
    /// report.
    #[test]
    fn corrupted_testcases_yield_typed_results(seed in 0u64..200, defect in 0usize..5) {
        let mut tc = Testcase::generate(TestcaseKind::Cls1v1, 16, seed);
        corrupt(&mut tc.tree, defect);
        match try_optimize_with(&tc, Flow::Global, &quick_cfg(), Some(luts()), None) {
            Ok(rep) => prop_assert!(rep.tree.validate().is_ok()),
            Err(e) => {
                // typed failure is the contract; panicking is not
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }
}
