// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic)]
#![warn(missing_docs)]

//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§5). Each `src/bin/<id>.rs` binary prints the rows/series
//! of one table or figure; `benches/` holds the Criterion performance
//! counterparts. See DESIGN.md §5 for the experiment index and
//! EXPERIMENTS.md for recorded paper-vs-measured results.

pub mod suite;

pub use suite::{suite_cases, PreparedCase, SuiteCase};

use std::time::Instant;

/// Simple elapsed-time scope guard used by the experiment binaries.
pub struct Stopwatch {
    label: String,
    start: Instant,
}

impl Stopwatch {
    /// Starts timing `label`.
    pub fn start(label: impl Into<String>) -> Self {
        Stopwatch {
            label: label.into(),
            start: clk_obs::wall_now(),
        }
    }

    /// Prints and returns the elapsed seconds.
    pub fn report(&self) -> f64 {
        let s = self.start.elapsed().as_secs_f64();
        eprintln!("[{}] {:.1}s", self.label, s);
        s
    }
}

/// Parses `--sinks N` / `--seed N` / `--quick` style experiment flags.
#[derive(Debug, Clone)]
pub struct ExpArgs {
    /// Sink count per testcase (scaled-down default per experiment).
    pub sinks: Option<usize>,
    /// Generator seed.
    pub seed: u64,
    /// Quick mode: smallest sizes, for smoke runs.
    pub quick: bool,
}

impl ExpArgs {
    /// Parses the process arguments (unknown flags are ignored).
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().collect())
    }

    /// Parses an explicit argument vector (`args[0]` is the program name).
    pub fn parse_from(args: Vec<String>) -> Self {
        let mut out = ExpArgs {
            sinks: None,
            seed: 1,
            quick: false,
        };
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--sinks" => {
                    if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                        out.sinks = Some(v);
                        i += 1;
                    }
                }
                "--seed" => {
                    if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                        out.seed = v;
                        i += 1;
                    }
                }
                "--quick" => out.quick = true,
                _ => {}
            }
            i += 1;
        }
        out
    }
}

/// Renders a crude ASCII histogram (one row per bin) for figure-style
/// outputs.
pub fn ascii_histogram(values: &[f64], n_bins: usize, width: usize) -> String {
    if values.is_empty() {
        return String::from("(no data)\n");
    }
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    let mut bins = vec![0usize; n_bins];
    for &v in values {
        let b = (((v - lo) / span) * n_bins as f64) as usize;
        bins[b.min(n_bins - 1)] += 1;
    }
    let peak = bins.iter().copied().max().unwrap_or(1).max(1) as f64;
    let mut out = String::new();
    for (i, &count) in bins.iter().enumerate() {
        let a = lo + span * i as f64 / n_bins as f64;
        let b = lo + span * (i + 1) as f64 / n_bins as f64;
        let bar = "#".repeat(((count as f64 / peak) * width as f64).round() as usize);
        out.push_str(&format!("[{a:8.2} .. {b:8.2})  {count:5}  {bar}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        std::iter::once("prog")
            .chain(parts.iter().copied())
            .map(String::from)
            .collect()
    }

    #[test]
    fn exp_args_parse_all_flags() {
        let a = ExpArgs::parse_from(argv(&["--sinks", "96", "--seed", "7", "--quick"]));
        assert_eq!(a.sinks, Some(96));
        assert_eq!(a.seed, 7);
        assert!(a.quick);
    }

    #[test]
    fn exp_args_defaults_and_garbage() {
        let a = ExpArgs::parse_from(argv(&["--bogus", "--sinks", "not-a-number"]));
        assert_eq!(a.sinks, None);
        assert_eq!(a.seed, 1);
        assert!(!a.quick);
    }

    #[test]
    fn stopwatch_reports_nonnegative() {
        let sw = Stopwatch::start("t");
        assert!(sw.report() >= 0.0);
    }

    #[test]
    fn histogram_covers_all_values() {
        // bins are half-open: [0, 0.5) gets only 0.0; [0.5, 1.0] the rest
        let h = ascii_histogram(&[0.0, 0.5, 1.0, 1.0, 1.0], 2, 10);
        assert!(h.contains("    1  "), "{h}");
        assert!(h.contains("    4  "), "{h}");
        assert_eq!(ascii_histogram(&[], 3, 10), "(no data)\n");
    }
}
