//! Findings: what an analysis pass reports.
//!
//! Codes are stable identifiers in the `A0xx` space (distinct from the
//! design-database lints of `clk-lint`, which audit *data*; these audit
//! *source*). Tests, the baseline file, and suppression comments all
//! match on them.

/// Stable diagnostic code of one analysis pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// Iteration over `HashMap`/`HashSet`: order is nondeterministic.
    A001,
    /// Float accumulation inside an A001-flagged loop: the result
    /// depends on iteration order.
    A002,
    /// Wall-clock read (`Instant::now`/`SystemTime`) outside `clk-obs`
    /// and the explicitly allowed timing modules.
    A003,
    /// Parallel-safety hazard (`static mut`, `thread_local!`, or
    /// `Cell`/`RefCell` in a flow/global/local hot path).
    A004,
    /// `unwrap`/`expect`/`panic!` in library-crate non-test code.
    A005,
    /// Suppression hygiene: a `clk-analyze: allow(...)` comment that
    /// suppresses nothing (stale) or carries no reason.
    A006,
    /// Semantic: shared mutable state (`static mut`, thread-locals,
    /// interior-mutable statics, `&mut` captures) reachable from a
    /// thread-spawn closure.
    A101,
    /// Semantic: impurity (wall-clock or entropy reads) reachable from
    /// candidate evaluation.
    A102,
    /// Semantic: order-sensitive float reduction reachable from a
    /// parallel region.
    A103,
    /// Semantic: `Ordering::Relaxed` on something feeding QoR.
    A104,
}

impl Code {
    /// All pass codes that a suppression may name (A006 findings are
    /// about suppressions themselves and cannot be suppressed).
    pub const SUPPRESSIBLE: [Code; 9] = [
        Code::A001,
        Code::A002,
        Code::A003,
        Code::A004,
        Code::A005,
        Code::A101,
        Code::A102,
        Code::A103,
        Code::A104,
    ];

    /// Every code, for report tallies.
    pub const ALL: [Code; 10] = [
        Code::A001,
        Code::A002,
        Code::A003,
        Code::A004,
        Code::A005,
        Code::A006,
        Code::A101,
        Code::A102,
        Code::A103,
        Code::A104,
    ];

    /// Parses `"A001"` etc.
    pub fn parse(s: &str) -> Option<Code> {
        match s.trim() {
            "A001" => Some(Code::A001),
            "A002" => Some(Code::A002),
            "A003" => Some(Code::A003),
            "A004" => Some(Code::A004),
            "A005" => Some(Code::A005),
            "A006" => Some(Code::A006),
            "A101" => Some(Code::A101),
            "A102" => Some(Code::A102),
            "A103" => Some(Code::A103),
            "A104" => Some(Code::A104),
            _ => None,
        }
    }

    /// The stable string form (`"A001"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Code::A001 => "A001",
            Code::A002 => "A002",
            Code::A003 => "A003",
            Code::A004 => "A004",
            Code::A005 => "A005",
            Code::A006 => "A006",
            Code::A101 => "A101",
            Code::A102 => "A102",
            Code::A103 => "A103",
            Code::A104 => "A104",
        }
    }

    /// One-line description used in reports.
    pub fn title(self) -> &'static str {
        match self {
            Code::A001 => "nondeterministic HashMap/HashSet iteration order",
            Code::A002 => "float accumulation over a nondeterministically-ordered loop",
            Code::A003 => "wall-clock read outside the sanctioned clk-obs timing API",
            Code::A004 => "parallel-safety hazard ahead of the scoped-thread local phase",
            Code::A005 => "panic path (unwrap/expect/panic!) in library code",
            Code::A006 => "stale or reasonless clk-analyze suppression",
            Code::A101 => "shared mutable state reachable from a thread-spawn closure",
            Code::A102 => "impurity (clock/entropy) reachable from candidate evaluation",
            Code::A103 => "order-sensitive float reduction reachable from a parallel region",
            Code::A104 => "Ordering::Relaxed feeding QoR-bearing code",
        }
    }
}

impl std::fmt::Display for Code {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Hygiene or order-dependence that today's code happens to
    /// tolerate (A002 heuristics, stale suppressions).
    Warning,
    /// Breaks the determinism/parallel-safety invariant the gate
    /// protects; must be fixed or explicitly suppressed with a reason.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// One analysis finding, anchored to a file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable code.
    pub code: Code,
    /// Severity class.
    pub severity: Severity,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-indexed line.
    pub line: u32,
    /// The trimmed source line the finding anchors to.
    pub snippet: String,
    /// Human-readable explanation; no stability guarantee.
    pub message: String,
}

impl Finding {
    /// Baseline identity of a finding: code, file, and snippet — but
    /// *not* the line number, so unrelated edits that shift code up or
    /// down don't churn the committed baseline. Two identical snippets
    /// in one file compare as a multiset in the differ.
    pub fn key(&self) -> String {
        format!("{}|{}|{}", self.code, self.file, self.snippet)
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{}] {}:{}: {}\n    | {}",
            self.severity, self.code, self.file, self.line, self.message, self.snippet
        )
    }
}

/// Multiset diff of current findings against a baseline of
/// [`Finding::key`] strings: the findings whose key occurs more often
/// now than in the baseline (each extra occurrence reported once), and
/// the baseline keys no longer produced (stale entries).
pub fn diff_against_baseline<'a>(
    findings: &'a [Finding],
    baseline: &[String],
) -> (Vec<&'a Finding>, Vec<String>) {
    let mut budget: std::collections::BTreeMap<&str, i64> = std::collections::BTreeMap::new();
    for k in baseline {
        *budget.entry(k.as_str()).or_insert(0) += 1;
    }
    let mut new = Vec::new();
    let mut keys = Vec::with_capacity(findings.len());
    for f in findings {
        keys.push(f.key());
    }
    for (f, k) in findings.iter().zip(&keys) {
        let slot = budget.entry(k.as_str()).or_insert(0);
        if *slot > 0 {
            *slot -= 1;
        } else {
            new.push(f);
        }
    }
    let stale: Vec<String> = budget
        .into_iter()
        .filter(|&(_, n)| n > 0)
        .flat_map(|(k, n)| {
            std::iter::repeat_with(move || k.to_string()).take(usize::try_from(n).unwrap_or(0))
        })
        .collect();
    (new, stale)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(code: Code, file: &str, snippet: &str) -> Finding {
        Finding {
            code,
            severity: Severity::Error,
            file: file.to_string(),
            line: 1,
            snippet: snippet.to_string(),
            message: String::new(),
        }
    }

    #[test]
    fn codes_round_trip() {
        for c in Code::SUPPRESSIBLE.into_iter().chain([Code::A006]) {
            assert_eq!(Code::parse(c.as_str()), Some(c));
        }
        assert_eq!(Code::parse("A999"), None);
    }

    #[test]
    fn baseline_diff_is_a_multiset() {
        let f1 = finding(Code::A001, "a.rs", "for x in m {");
        let f2 = finding(Code::A001, "a.rs", "for x in m {"); // same key
        let f3 = finding(Code::A003, "b.rs", "Instant::now()");
        let baseline = vec![f1.key(), f3.key(), "A005|gone.rs|x.unwrap()".to_string()];
        let findings = vec![f1.clone(), f2.clone(), f3];
        let (new, stale) = diff_against_baseline(&findings, &baseline);
        // one of the two duplicate keys is new, the A003 is covered
        assert_eq!(new.len(), 1);
        assert_eq!(new[0].key(), f2.key());
        assert_eq!(stale, vec!["A005|gone.rs|x.unwrap()".to_string()]);
    }

    #[test]
    fn display_carries_location_and_snippet() {
        let f = finding(Code::A004, "c.rs", "static mut X: u32 = 0;");
        let s = f.to_string();
        assert!(s.contains("[A004] c.rs:1"));
        assert!(s.contains("static mut X"));
    }
}
