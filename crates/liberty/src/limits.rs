//! Resource limits for parsing untrusted text inputs.
//!
//! Both text readers of the workspace — the Liberty subset reader in
//! [`crate::text`] and the `.ctree` reader in `clk-netlist` — accept
//! input that may come from outside the process (checkpoint files,
//! exchanged characterization data). [`ParseLimits`] is the shared
//! policy bounding what a parse is allowed to consume *before* it
//! consumes it: input size, record counts, nesting depth, table
//! dimensions and token lengths. Exceeding a limit is a typed parse
//! error at a byte offset, never a panic and never unbounded memory.
//!
//! The module lives here (not in an IO crate) because `clk-liberty` is
//! dependency-free and sits below every parser in the crate graph.

/// Bounds enforced while parsing untrusted input.
///
/// The defaults are far above anything the workspace writes itself, so
/// round-tripping own output never trips them, while adversarial input
/// (a 10 GiB file, a million-deep group nest, a `values()` table with
/// 10^9 entries) is rejected early with a typed error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLimits {
    /// Maximum input size in bytes.
    pub max_bytes: usize,
    /// Maximum number of records (nodes / pairs in `.ctree`, groups in
    /// Liberty) before the parse is aborted.
    pub max_records: usize,
    /// Maximum group-nesting depth (Liberty `{ ... }` blocks).
    pub max_depth: usize,
    /// Maximum entries along one LUT axis (`index_1` / `index_2`), and
    /// an upper bound on `values()` cells via the axis product.
    pub max_lut_dim: usize,
    /// Maximum points in one `.ctree` route polyline.
    pub max_route_points: usize,
    /// Maximum length of one token / attribute value, bytes.
    pub max_token_len: usize,
}

impl Default for ParseLimits {
    fn default() -> Self {
        ParseLimits {
            max_bytes: 256 << 20,
            max_records: 4_000_000,
            max_depth: 64,
            max_lut_dim: 1024,
            max_route_points: 65_536,
            max_token_len: 1 << 20,
        }
    }
}

impl ParseLimits {
    /// Tight limits for fuzzing and for callers that know their inputs
    /// are small (unit-test fixtures, sub-megabyte checkpoints).
    pub fn strict() -> Self {
        ParseLimits {
            max_bytes: 8 << 20,
            max_records: 100_000,
            max_depth: 16,
            max_lut_dim: 64,
            max_route_points: 4_096,
            max_token_len: 64 << 10,
        }
    }

    /// Checks the total input size; the first limit every parse applies.
    pub fn check_bytes(&self, len: usize) -> Result<(), LimitExceeded> {
        if len > self.max_bytes {
            Err(LimitExceeded {
                what: "input bytes",
                actual: len,
                limit: self.max_bytes,
            })
        } else {
            Ok(())
        }
    }
}

/// A limit violation: which bound, what the input wanted, what was
/// allowed. Parsers wrap this into their own error type with position
/// information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LimitExceeded {
    /// Which bound was exceeded (e.g. `"input bytes"`, `"nesting depth"`).
    pub what: &'static str,
    /// The offending size.
    pub actual: usize,
    /// The configured maximum.
    pub limit: usize,
}

impl std::fmt::Display for LimitExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {} exceeds the limit of {}",
            self.what, self.actual, self.limit
        )
    }
}

impl std::error::Error for LimitExceeded {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_generous_and_strict_is_not() {
        let d = ParseLimits::default();
        let s = ParseLimits::strict();
        assert!(d.max_bytes > s.max_bytes);
        assert!(d.max_depth > s.max_depth);
        assert!(d.check_bytes(1 << 20).is_ok());
        assert!(s.check_bytes((8 << 20) + 1).is_err());
    }

    #[test]
    fn limit_errors_render_both_numbers() {
        let e = ParseLimits::strict().check_bytes(usize::MAX).unwrap_err();
        let s = e.to_string();
        assert!(s.contains("input bytes"), "{s}");
        assert!(s.contains("exceeds the limit"), "{s}");
    }
}
