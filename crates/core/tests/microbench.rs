//! Measured evidence for the cone-limited incremental timer: on the
//! QoR-suite testcase size, re-timing a Table-2 candidate from the
//! committed tree's analyses is ~5x faster than a full golden
//! re-analysis (and bit-identical — `parallel_local.rs` pins that).
//!
//! Ignored by default (it is a measurement, not an assertion); run with
//!
//! ```sh
//! cargo test --release -p clk-skewopt --test microbench -- --ignored --nocapture
//! ```

use clk_cts::{Testcase, TestcaseKind};
use clk_skewopt::{apply_move, enumerate_moves, touched_drivers, MoveConfig};
use clk_sta::Timer;

#[test]
#[ignore = "timing measurement, not a pass/fail assertion"]
fn microbench_incremental_vs_full() {
    let tc = Testcase::generate(TestcaseKind::Cls1v1, 48, 2015);
    let timer = Timer::golden();
    let prev = timer.try_analyze_all(&tc.tree, &tc.lib).unwrap();
    let moves = enumerate_moves(&tc.tree, &tc.lib, &MoveConfig::default(), None);
    let sample: Vec<_> = moves.iter().step_by(moves.len() / 40).take(40).collect();
    let mut trials = Vec::new();
    for mv in &sample {
        let dirty = touched_drivers(&tc.tree, mv);
        let mut trial = tc.tree.clone();
        if apply_move(
            &mut trial,
            &tc.lib,
            &tc.floorplan,
            &MoveConfig::default(),
            mv,
        )
        .is_ok()
        {
            trials.push((trial, dirty));
        }
    }
    eprintln!(
        "{} evaluable candidates, tree of {} nodes",
        trials.len(),
        tc.tree.len()
    );
    // two rounds: the first warms caches, the second is the number
    for round in 0..2 {
        let t0 = clk_obs::wall_now();
        for (trial, _) in &trials {
            std::hint::black_box(timer.try_analyze_all(trial, &tc.lib).unwrap());
        }
        let full_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = clk_obs::wall_now();
        for (trial, dirty) in &trials {
            std::hint::black_box(
                timer
                    .try_analyze_all_incremental(trial, &tc.lib, &prev, dirty)
                    .unwrap(),
            );
        }
        let inc_ms = t1.elapsed().as_secs_f64() * 1e3;
        eprintln!(
            "round {round}: full {full_ms:.1} ms, incremental {inc_ms:.1} ms, speedup {:.2}x",
            full_ms / inc_ms
        );
    }
}
