//! Property tests of the simplex solver: every returned solution must be
//! feasible, and on problems with a known structure the optimum must
//! match a closed form.

// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic)]

use clk_lp::{solve, LpError, Problem, RowKind};
use proptest::prelude::*;

const INF: f64 = f64::INFINITY;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Box-constrained LPs with no rows: the optimum is the bound the
    /// cost sign points at.
    #[test]
    fn pure_box_lp_solved_in_closed_form(
        bounds in prop::collection::vec((-50.0f64..50.0, 0.0f64..50.0), 1..8),
        costs in prop::collection::vec(-2.0f64..2.0, 8),
    ) {
        let mut p = Problem::new();
        let mut expect = 0.0;
        for (i, &(lo, width)) in bounds.iter().enumerate() {
            let hi = lo + width;
            let c = costs[i];
            p.add_var(lo, hi, c).unwrap();
            expect += if c >= 0.0 { c * lo } else { c * hi };
        }
        let s = solve(&p).expect("box LPs are always solvable");
        prop_assert!((s.objective - expect).abs() < 1e-6,
            "got {} want {expect}", s.objective);
    }

    /// Knapsack-relaxation LPs: max Σ vᵢxᵢ s.t. Σ wᵢxᵢ ≤ W, 0 ≤ x ≤ 1 has
    /// the greedy fractional optimum.
    #[test]
    fn fractional_knapsack_matches_greedy(
        items in prop::collection::vec((0.1f64..10.0, 0.1f64..10.0), 1..10),
        cap_frac in 0.05f64..0.95,
    ) {
        let total_w: f64 = items.iter().map(|&(w, _)| w).sum();
        let cap = total_w * cap_frac;
        let mut p = Problem::new();
        for &(w, v) in &items {
            let _ = (w, v);
        }
        let vars: Vec<_> = items.iter().map(|&(_, v)| p.add_var(0.0, 1.0, -v).unwrap()).collect();
        let terms: Vec<_> = vars.iter().zip(&items).map(|(&x, &(w, _))| (x, w)).collect();
        p.add_row(RowKind::Le, cap, &terms).unwrap();
        let s = solve(&p).expect("knapsack relaxation is feasible");
        // greedy fractional optimum
        let mut order: Vec<usize> = (0..items.len()).collect();
        order.sort_by(|&a, &b| {
            (items[b].1 / items[b].0)
                .partial_cmp(&(items[a].1 / items[a].0))
                .expect("finite")
        });
        let mut room = cap;
        let mut best = 0.0;
        for i in order {
            let (w, v) = items[i];
            let take = (room / w).clamp(0.0, 1.0);
            best += take * v;
            room -= take * w;
            if room <= 0.0 {
                break;
            }
        }
        prop_assert!((s.objective + best).abs() < 1e-5,
            "simplex {} vs greedy {}", -s.objective, best);
    }

    /// Transportation-like equality LPs stay feasible and balanced.
    #[test]
    fn transportation_balance(supply in prop::collection::vec(1.0f64..20.0, 2..4),
                              demand_frac in prop::collection::vec(0.1f64..1.0, 2..4)) {
        let total: f64 = supply.iter().sum();
        let dsum: f64 = demand_frac.iter().sum();
        let demand: Vec<f64> = demand_frac.iter().map(|f| total * f / dsum).collect();
        let mut p = Problem::new();
        let mut x = vec![vec![]; supply.len()];
        for (i, row) in x.iter_mut().enumerate() {
            for j in 0..demand.len() {
                // deterministic pseudo-random cost
                let cost = 1.0 + ((i * 7 + j * 13) % 5) as f64;
                row.push(p.add_var(0.0, INF, cost).unwrap());
            }
        }
        for (i, &s) in supply.iter().enumerate() {
            let terms: Vec<_> = x[i].iter().map(|&v| (v, 1.0)).collect();
            p.add_row(RowKind::Eq, s, &terms).unwrap();
        }
        for (j, &d) in demand.iter().enumerate() {
            let terms: Vec<_> = x.iter().map(|row| (row[j], 1.0)).collect();
            p.add_row(RowKind::Eq, d, &terms).unwrap();
        }
        let s = solve(&p).expect("balanced transportation is feasible");
        // shipped amounts are nonnegative and respect supplies
        for (i, row) in x.iter().enumerate() {
            let shipped: f64 = row.iter().map(|&v| s.value(v).unwrap()).sum();
            prop_assert!((shipped - supply[i]).abs() < 1e-6);
        }
    }

    /// Problems made infeasible by construction are reported as such.
    #[test]
    fn constructed_infeasibility_detected(gap in 0.1f64..50.0, at in -20.0f64..20.0) {
        let mut p = Problem::new();
        let x = p.add_var(-INF, INF, 1.0).unwrap();
        p.add_row(RowKind::Le, at, &[(x, 1.0)]).unwrap();
        p.add_row(RowKind::Ge, at + gap, &[(x, 1.0)]).unwrap();
        prop_assert_eq!(solve(&p).unwrap_err(), LpError::Infeasible);
    }

    /// The Result-based builders plus `solve` never panic on arbitrary
    /// finite inputs: every outcome — optimal, infeasible, iteration
    /// limit — comes back as a typed `Result`.
    #[test]
    fn solver_never_panics_on_finite_inputs(
        vars in prop::collection::vec((-1e6f64..1e6, 0.0f64..1e6, -1e3f64..1e3), 1..12),
        rows in prop::collection::vec(
            (0u8..3, -1e6f64..1e6, prop::collection::vec((0usize..12, -1e3f64..1e3), 0..8)),
            0..12),
    ) {
        let mut p = Problem::new();
        let ids: Vec<_> = vars
            .iter()
            .map(|&(lo, w, c)| p.add_var(lo, lo + w, c).unwrap())
            .collect();
        for (kind, rhs, terms) in rows {
            let kind = match kind { 0 => RowKind::Le, 1 => RowKind::Ge, _ => RowKind::Eq };
            let terms: Vec<_> = terms
                .into_iter()
                .filter(|&(i, _)| i < ids.len())
                .map(|(i, a)| (ids[i], a))
                .collect();
            p.add_row(kind, rhs, &terms).unwrap();
        }
        // any Err is fine: typed failure is the contract, panicking is not
        if let Ok(s) = solve(&p) {
            // box-bounded vars: an optimum, if one exists, is finite
            prop_assert!(s.objective.is_finite(), "non-finite optimum {}", s.objective);
        }
    }

    /// The builders reject non-finite inputs with a typed error instead
    /// of panicking or silently accepting a poisoned model.
    #[test]
    fn builders_reject_non_finite_without_panicking(
        idx in prop::collection::vec(0u8..6, 5),
        scale in 0.1f64..1e6,
    ) {
        // palette mixing ordinary values with every non-finite special
        let weird = |i: u8| -> f64 {
            match i % 6 {
                0 => f64::NAN,
                1 => INF,
                2 => -INF,
                3 => 0.0,
                4 => scale,
                _ => -scale,
            }
        };
        let (lo, hi, cost, rhs, coeff) =
            (weird(idx[0]), weird(idx[1]), weird(idx[2]), weird(idx[3]), weird(idx[4]));
        let mut p = Problem::new();
        match p.add_var(lo, hi, cost) {
            Ok(v) => {
                // accepted: the inputs were a well-formed column
                prop_assert!(!lo.is_nan() && !hi.is_nan() && cost.is_finite() && lo <= hi);
                match p.add_row(RowKind::Le, rhs, &[(v, coeff)]) {
                    Ok(()) => prop_assert!(rhs.is_finite() && coeff.is_finite()),
                    Err(LpError::BadProblem(_)) => {
                        prop_assert!(!rhs.is_finite() || !coeff.is_finite());
                    }
                    Err(e) => prop_assert!(false, "unexpected error {e}"),
                }
            }
            Err(LpError::BadProblem(_)) => {
                prop_assert!(lo.is_nan() || hi.is_nan() || !cost.is_finite() || lo > hi);
            }
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }
}
