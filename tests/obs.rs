//! Integration tests of the clk-obs instrumentation: a fully traced
//! global-local run must emit a parseable JSONL stream that covers every
//! flow phase, every global round and every local batch, with per-phase
//! wall-clock totals that tile the flow span, and must mirror every
//! absorbed fault as a fault event plus a flight-recorder dump.

use std::sync::Arc;

use clk_cts::{Testcase, TestcaseKind};
use clk_obs::{json, Level, Obs, ObsConfig, SharedBuf, Value};
use clk_skewopt::{try_optimize, FaultPlan, FaultSite, Flow, FlowConfig, OptReport};
use clockvar_workbench::quick_flow_config;

/// Runs the quick global-local flow with a Debug-verbosity JSONL trace.
fn traced_run(cfg_mut: impl FnOnce(&mut FlowConfig)) -> (OptReport, Obs, Vec<Value>) {
    let obs = Obs::new(ObsConfig {
        verbosity: Level::Debug,
        ..ObsConfig::default()
    });
    let buf = SharedBuf::new();
    obs.add_jsonl_buffer(&buf);
    let mut cfg = quick_flow_config();
    cfg.global.rounds = 1;
    cfg.local.max_iterations = 2;
    cfg.obs = obs.clone();
    cfg_mut(&mut cfg);
    let tc = Testcase::generate(TestcaseKind::Cls1v1, 32, 77);
    let report = try_optimize(&tc, Flow::GlobalLocal, &cfg).expect("instrumented flow completes");
    obs.flush();
    let records: Vec<Value> = buf
        .contents()
        .lines()
        .map(|l| json::parse(l).expect("every trace line is valid JSON"))
        .collect();
    assert!(!records.is_empty(), "trace is non-empty");
    (report, obs, records)
}

fn kind(v: &Value) -> &str {
    v.get("t").and_then(Value::as_str).unwrap_or("")
}

fn span_ends<'a>(records: &'a [Value], name: &str) -> Vec<&'a Value> {
    records
        .iter()
        .filter(|v| kind(v) == "span_end" && v.get("name").and_then(Value::as_str) == Some(name))
        .collect()
}

#[test]
fn trace_covers_phases_rounds_and_batches_and_tiles_the_flow() {
    let (report, _obs, records) = traced_run(|_| {});

    // every phase has exactly one closed span
    for phase in ["phase.init", "phase.global", "phase.local", "phase.scoring"] {
        assert_eq!(span_ends(&records, phase).len(), 1, "{phase} span missing");
    }

    // per-phase totals tile the flow span within ±5%
    let flow_ms = span_ends(&records, "flow")[0]
        .get("elapsed_ms")
        .and_then(Value::as_f64)
        .expect("flow span has elapsed_ms");
    let phase_sum: f64 = ["phase.init", "phase.global", "phase.local", "phase.scoring"]
        .iter()
        .map(|p| {
            span_ends(&records, p)[0]
                .get("elapsed_ms")
                .and_then(Value::as_f64)
                .expect("phase span has elapsed_ms")
        })
        .sum();
    let off = (phase_sum - flow_ms).abs() / flow_ms;
    assert!(
        off <= 0.05,
        "phase totals {phase_sum:.1} ms vs flow {flow_ms:.1} ms ({:.1}% off)",
        100.0 * off
    );

    // every global round ran under a span, and rounds contain lambda spans
    let rounds = span_ends(&records, "global.round");
    let expected_rounds = report
        .global_report
        .as_ref()
        .map_or(0, |g| g.sweep.len() / 2); // quick config sweeps 2 lambdas
    assert!(!rounds.is_empty());
    assert!(
        rounds.len() >= expected_rounds,
        "a global round has no span"
    );
    let lambdas = span_ends(&records, "global.lambda");
    for r in &rounds {
        let id = r.get("span").and_then(Value::as_u64);
        assert!(
            lambdas
                .iter()
                .any(|l| l.get("parent").and_then(Value::as_u64) == id),
            "round span has no lambda children"
        );
    }

    // every accepted local move corresponds to an accepted batch span
    let batches = span_ends(&records, "local.batch");
    let accepted = batches
        .iter()
        .filter(|b| {
            b.get("fields")
                .and_then(|f| f.get("outcome"))
                .and_then(Value::as_str)
                == Some("accepted")
        })
        .count();
    let accepted_reported = report
        .local_report
        .as_ref()
        .map_or(0, |l| l.iterations.len());
    assert_eq!(accepted, accepted_reported);
    assert!(!span_ends(&records, "local.iter").is_empty());
}

#[test]
fn absorbed_faults_mirror_into_events_and_flight_dumps() {
    let plan = Arc::new(FaultPlan::inert(3));
    plan.arm(FaultSite::NanArcDelay, 0, 1);
    plan.arm(FaultSite::WorkerPanic, 0, 1);
    let (report, obs, records) = traced_run(move |cfg| cfg.fault_plan = Some(plan));

    assert!(!report.faults.is_empty(), "injection produced no faults");
    let fault_seqs: Vec<u64> = records
        .iter()
        .filter(|v| kind(v) == "fault")
        .filter_map(|v| {
            v.get("fields")
                .and_then(|f| f.get("fault_seq"))
                .and_then(Value::as_u64)
        })
        .collect();
    for f in report.faults.records() {
        assert!(
            fault_seqs.contains(&f.seq),
            "fault #{} has no JSONL event",
            f.seq
        );
    }
    let dumps = obs.flight_dumps();
    assert_eq!(dumps.len(), report.faults.len());
    assert!(dumps.iter().all(|d| !d.events.is_empty()));
    // the dump is also mirrored into the stream itself
    assert!(records.iter().any(|v| kind(v) == "flight_dump"));
}

#[test]
fn disabled_pipeline_emits_nothing_and_changes_nothing() {
    let obs = Obs::disabled();
    let buf = SharedBuf::new();
    obs.add_jsonl_buffer(&buf); // no-op on a disabled pipeline
    let mut cfg = quick_flow_config();
    cfg.global.rounds = 1;
    cfg.local.max_iterations = 1;
    cfg.obs = obs.clone();
    let tc = Testcase::generate(TestcaseKind::Cls1v1, 32, 77);
    let report = try_optimize(&tc, Flow::GlobalLocal, &cfg).expect("flow completes untraced");
    assert!(buf.contents().is_empty());
    assert!(obs.metrics_snapshot().is_none());
    assert!(report.variation_after <= report.variation_before);
}
