//! Two-pin rectilinear route paths.

use clk_geom::{um_to_dbu, Dbu, Point};

/// A rectilinear polyline from a driver location to a receiver location.
///
/// Invariants (enforced by constructors, checked by [`RoutePath::is_valid`]):
/// consecutive points differ in exactly one coordinate (or are equal), and
/// the polyline has at least two points.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RoutePath {
    pts: Vec<Point>,
}

impl RoutePath {
    /// Builds a path from explicit bend points.
    ///
    /// # Panics
    ///
    /// Panics if `pts` has fewer than 2 points or any segment is not
    /// axis-parallel.
    pub fn from_points(pts: Vec<Point>) -> Self {
        let p = RoutePath { pts };
        assert!(p.is_valid(), "route must be a rectilinear polyline");
        p
    }

    /// The minimum-length one-bend route from `a` to `b`: horizontal first,
    /// then vertical ("lower L"). Degenerates gracefully when the points are
    /// axis-aligned or equal.
    pub fn l_shape(a: Point, b: Point) -> Self {
        let bend = Point::new(b.x, a.y);
        let mut pts = vec![a];
        if bend != a && bend != b {
            pts.push(bend);
        }
        if b != a {
            pts.push(b);
        } else {
            // zero-length route still needs two points
            pts.push(b);
        }
        RoutePath { pts }
    }

    /// The vertical-first one-bend route ("upper L").
    pub fn l_shape_vertical_first(a: Point, b: Point) -> Self {
        let bend = Point::new(a.x, b.y);
        let mut pts = vec![a];
        if bend != a && bend != b {
            pts.push(bend);
        }
        pts.push(b);
        RoutePath { pts }
    }

    /// A route from `a` to `b` with `extra_um` micrometres of detour wire
    /// beyond the Manhattan distance, realized as a "U" shape hanging off
    /// the first segment — the shape the paper uses when the LP requests a
    /// wire-delay increase ("We place inverter pairs in a 'U' shape when
    /// routing detour is required").
    ///
    /// The detour depth is `extra_um / 2` perpendicular to the first leg.
    /// Requests of zero (or negative) extra length return the plain L.
    pub fn with_detour(a: Point, b: Point, extra_um: f64) -> Self {
        let extra = um_to_dbu(extra_um.max(0.0));
        if extra == 0 {
            return Self::l_shape(a, b);
        }
        let depth = extra / 2;
        let rem = extra - depth * 2; // keep exact total length for odd dbu
                                     // Hang the U below/above the horizontal leg; if the horizontal leg
                                     // is degenerate hang it to the side of the vertical leg instead.
        if a.x != b.x {
            // U on the horizontal first leg, dipping in -y then returning.
            let u1 = Point::new(a.x, a.y - depth);
            let u2 = Point::new(b.x + rem * (if b.x >= a.x { 1 } else { -1 }), a.y - depth);
            let u3 = Point::new(u2.x, a.y);
            let bend = Point::new(b.x, a.y);
            let mut pts = vec![a, u1, u2, u3];
            if bend != u3 {
                pts.push(bend);
            }
            if b != *pts.last().expect("non-empty") {
                pts.push(b);
            }
            RoutePath { pts }
        } else {
            // Vertical (or coincident) pair: U to the +x side.
            let u1 = Point::new(a.x + depth, a.y);
            let u2 = Point::new(a.x + depth, b.y + rem * (if b.y >= a.y { 1 } else { -1 }));
            let u3 = Point::new(a.x, u2.y);
            let mut pts = vec![a, u1, u2, u3];
            if b != u3 {
                pts.push(b);
            }
            RoutePath { pts }
        }
    }

    /// The bend points of the path (first = driver end, last = load end).
    pub fn points(&self) -> &[Point] {
        &self.pts
    }

    /// The driver-end point.
    pub fn start(&self) -> Point {
        self.pts[0]
    }

    /// The load-end point.
    pub fn end(&self) -> Point {
        *self.pts.last().expect("paths have >= 2 points")
    }

    /// Total routed length in dbu.
    pub fn length_dbu(&self) -> Dbu {
        self.pts.windows(2).map(|w| w[0].manhattan(w[1])).sum()
    }

    /// Total routed length in µm.
    pub fn length_um(&self) -> f64 {
        clk_geom::dbu_to_um(self.length_dbu())
    }

    /// Whether the polyline is rectilinear and has at least 2 points.
    pub fn is_valid(&self) -> bool {
        self.pts.len() >= 2
            && self
                .pts
                .windows(2)
                .all(|w| w[0].x == w[1].x || w[0].y == w[1].y)
    }

    /// The point at routed distance `dist_dbu` from the driver end, clamped
    /// to the path ends. Used to place inverter pairs uniformly along an
    /// arc.
    pub fn locate(&self, dist_dbu: Dbu) -> Point {
        if dist_dbu <= 0 {
            return self.start();
        }
        let mut remaining = dist_dbu;
        for w in self.pts.windows(2) {
            let seg = w[0].manhattan(w[1]);
            if remaining <= seg {
                let dx = (w[1].x - w[0].x).signum();
                let dy = (w[1].y - w[0].y).signum();
                return Point::new(w[0].x + dx * remaining, w[0].y + dy * remaining);
            }
            remaining -= seg;
        }
        self.end()
    }

    /// Concatenates two paths sharing an endpoint (`self.end() ==
    /// next.start()`), merging the junction point.
    ///
    /// # Panics
    ///
    /// Panics if the endpoints do not meet.
    pub fn join(&self, next: &RoutePath) -> RoutePath {
        assert_eq!(self.end(), next.start(), "paths do not meet");
        let mut pts = self.pts.clone();
        pts.extend_from_slice(&next.pts[1..]);
        // drop zero-length duplicates introduced by degenerate pieces
        pts.dedup();
        if pts.len() == 1 {
            pts.push(pts[0]);
        }
        RoutePath { pts }
    }

    /// The contiguous piece of this path between routed distances `d0` and
    /// `d1` from the driver end (clamped and ordered), as a new path. Used
    /// to give each repeater of a chain the exact route segment between it
    /// and its neighbour, so detour length is preserved.
    pub fn sub_path(&self, d0: Dbu, d1: Dbu) -> RoutePath {
        let total = self.length_dbu();
        let (d0, d1) = if d0 <= d1 { (d0, d1) } else { (d1, d0) };
        let d0 = d0.clamp(0, total);
        let d1 = d1.clamp(0, total);
        let start = self.locate(d0);
        let end = self.locate(d1);
        let mut pts = vec![start];
        let mut walked: Dbu = 0;
        for w in self.pts.windows(2) {
            let seg = w[0].manhattan(w[1]);
            let seg_end = walked + seg;
            // interior bend points strictly inside (d0, d1)
            if seg_end > d0 && seg_end < d1 && w[1] != start {
                pts.push(w[1]);
            }
            walked = seg_end;
        }
        if *pts.last().expect("non-empty") != end || pts.len() == 1 {
            pts.push(end);
        }
        RoutePath { pts }
    }

    /// Splits the total length into `n` equal intervals and returns the `n`
    /// interior + end positions `(i+1) * L / (n+1)`... more precisely, the
    /// positions at `k * L / (n + 1)` for `k = 1..=n` — the uniform
    /// placement rule for `n` repeaters along an arc.
    pub fn uniform_positions(&self, n: usize) -> Vec<Point> {
        let total = self.length_dbu();
        (1..=n)
            .map(|k| self.locate(total * k as Dbu / (n as Dbu + 1)))
            .collect()
    }
}

impl std::fmt::Display for RoutePath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "route[{:.2}um, {} bends]",
            self.length_um(),
            self.pts.len().saturating_sub(2)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l_shape_length_is_manhattan() {
        let a = Point::new(0, 0);
        let b = Point::new(3_000, -4_000);
        let p = RoutePath::l_shape(a, b);
        assert_eq!(p.length_dbu(), a.manhattan(b));
        assert!(p.is_valid());
        assert_eq!(p.start(), a);
        assert_eq!(p.end(), b);
    }

    #[test]
    fn l_shape_degenerate_cases() {
        let a = Point::new(5, 5);
        assert_eq!(RoutePath::l_shape(a, a).length_dbu(), 0);
        let b = Point::new(5, 9);
        let p = RoutePath::l_shape(a, b);
        assert!(p.is_valid());
        assert_eq!(p.length_dbu(), 4);
        let q = RoutePath::l_shape_vertical_first(a, Point::new(9, 9));
        assert_eq!(q.length_dbu(), 8);
        assert!(q.is_valid());
    }

    #[test]
    fn detour_adds_exact_extra_length() {
        let a = Point::new(0, 0);
        for &b in &[
            Point::new(10_000, 4_000),
            Point::new(-10_000, 4_000),
            Point::new(0, 8_000),
            Point::new(0, -8_000),
        ] {
            for extra in [0.0, 5.0, 12.5, 33.333] {
                let p = RoutePath::with_detour(a, b, extra);
                assert!(p.is_valid(), "b={b:?} extra={extra}");
                let want = a.manhattan(b) + um_to_dbu(extra);
                assert!(
                    (p.length_dbu() - want).abs() <= 1,
                    "b={b:?} extra={extra}: got {} want {want}",
                    p.length_dbu()
                );
                assert_eq!(p.start(), a);
                assert_eq!(p.end(), b);
            }
        }
    }

    #[test]
    fn locate_walks_the_path() {
        let p = RoutePath::l_shape(Point::new(0, 0), Point::new(10, 10));
        assert_eq!(p.locate(0), Point::new(0, 0));
        assert_eq!(p.locate(5), Point::new(5, 0));
        assert_eq!(p.locate(10), Point::new(10, 0));
        assert_eq!(p.locate(15), Point::new(10, 5));
        assert_eq!(p.locate(99), Point::new(10, 10));
        assert_eq!(p.locate(-3), Point::new(0, 0));
    }

    #[test]
    fn uniform_positions_are_evenly_spaced() {
        let p = RoutePath::l_shape(Point::new(0, 0), Point::new(30, 0));
        let pos = p.uniform_positions(2);
        assert_eq!(pos, vec![Point::new(10, 0), Point::new(20, 0)]);
        assert!(p.uniform_positions(0).is_empty());
    }

    #[test]
    fn sub_path_partitions_length() {
        let p = RoutePath::with_detour(Point::new(0, 0), Point::new(20_000, 6_000), 14.0);
        let total = p.length_dbu();
        // cut into 4 pieces at arbitrary distances; lengths must sum back
        let cuts = [0, total / 5, total / 2, total * 4 / 5, total];
        let mut sum = 0;
        for w in cuts.windows(2) {
            let piece = p.sub_path(w[0], w[1]);
            assert!(piece.is_valid());
            assert_eq!(piece.start(), p.locate(w[0]));
            assert_eq!(piece.end(), p.locate(w[1]));
            assert_eq!(piece.length_dbu(), w[1] - w[0]);
            sum += piece.length_dbu();
        }
        assert_eq!(sum, total);
    }

    #[test]
    fn join_merges_paths() {
        let a = RoutePath::l_shape(Point::new(0, 0), Point::new(10, 10));
        let b = RoutePath::l_shape(Point::new(10, 10), Point::new(20, 0));
        let j = a.join(&b);
        assert!(j.is_valid());
        assert_eq!(j.length_dbu(), a.length_dbu() + b.length_dbu());
        assert_eq!(j.start(), Point::new(0, 0));
        assert_eq!(j.end(), Point::new(20, 0));
        // joining a zero-length piece is harmless
        let z = RoutePath::l_shape(Point::new(20, 0), Point::new(20, 0));
        assert_eq!(j.join(&z).length_dbu(), j.length_dbu());
    }

    #[test]
    #[should_panic(expected = "do not meet")]
    fn join_checks_endpoints() {
        let a = RoutePath::l_shape(Point::new(0, 0), Point::new(10, 10));
        let b = RoutePath::l_shape(Point::new(11, 10), Point::new(20, 0));
        let _ = a.join(&b);
    }

    #[test]
    fn sub_path_degenerate_and_reversed() {
        let p = RoutePath::l_shape(Point::new(0, 0), Point::new(10, 10));
        let z = p.sub_path(5, 5);
        assert_eq!(z.length_dbu(), 0);
        assert!(z.is_valid());
        let r = p.sub_path(15, 5);
        assert_eq!(r.length_dbu(), 10);
    }

    #[test]
    #[should_panic(expected = "rectilinear")]
    fn from_points_rejects_diagonals() {
        let _ = RoutePath::from_points(vec![Point::new(0, 0), Point::new(3, 4)]);
    }
}
