//! Property tests of the RC/delay substrate.

// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic)]

use clk_delay::{peri_slew, NetTiming, RcTree, WireModel};
use clk_geom::Point;
use clk_liberty::WireRc;
use clk_route::WireTree;
use proptest::prelude::*;

/// Random RC ladders/trees in topological order.
fn arb_rc() -> impl Strategy<Value = RcTree> {
    prop::collection::vec((0.01f64..5.0, 0.01f64..20.0, 0usize..1000), 1..30).prop_map(|spec| {
        let n = spec.len() + 1;
        let mut parent = vec![None];
        let mut res = vec![0.0];
        let mut cap = vec![0.0];
        for (i, &(r, c, p)) in spec.iter().enumerate() {
            parent.push(Some(p % (i + 1)));
            res.push(r);
            cap.push(c);
        }
        let _ = n;
        RcTree::from_raw(parent, res, cap)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Elmore dominates D2M everywhere, both are nonnegative, and the
    /// Elmore delay is monotone along every root-to-node path.
    #[test]
    fn delay_metric_orderings(tree in arb_rc()) {
        let t = NetTiming::analyze(&tree);
        for i in 0..tree.node_count() {
            let elm = t.elmore_ps(i);
            let d2m = t.delay_ps(i, WireModel::D2m);
            prop_assert!(elm >= 0.0 && d2m >= 0.0);
            prop_assert!(d2m <= elm + 1e-9, "node {i}: d2m {d2m} > elmore {elm}");
            if let Some(p) = tree.parent(i) {
                prop_assert!(elm >= t.elmore_ps(p) - 1e-12);
            }
            prop_assert!(t.wire_slew_ps(i).is_finite());
            prop_assert!(t.wire_slew_ps(i) >= 0.0);
        }
    }

    /// Uniformly scaling every capacitance scales every Elmore delay by
    /// the same factor (linearity).
    #[test]
    fn elmore_linear_in_cap(tree in arb_rc(), k in 0.5f64..4.0) {
        let scaled = {
            let n = tree.node_count();
            let parent: Vec<Option<usize>> = (0..n).map(|i| tree.parent(i)).collect();
            let res: Vec<f64> = (0..n).map(|i| tree.res_kohm(i)).collect();
            let cap: Vec<f64> = (0..n).map(|i| tree.cap_ff(i) * k).collect();
            RcTree::from_raw(parent, res, cap)
        };
        let a = NetTiming::analyze(&tree);
        let b = NetTiming::analyze(&scaled);
        for i in 0..tree.node_count() {
            prop_assert!((b.elmore_ps(i) - k * a.elmore_ps(i)).abs() < 1e-6 * (1.0 + a.elmore_ps(i)));
        }
    }

    /// Refining the extraction pitch never changes total cap and always
    /// reduces (or preserves) the far-end Elmore delay of a single wire.
    #[test]
    fn segmentation_refines_monotonically(len_um in 10.0f64..800.0, pitch in 1.0f64..50.0) {
        let mut wt = WireTree::new(Point::new(0, 0));
        let far = wt.add_child(WireTree::ROOT, Point::from_um(len_um, 0.0));
        let rc = WireRc { r_per_um: 2.0e-3, c_per_um: 0.2 };
        let coarse = RcTree::extract(&wt, rc, &[(far, 2.0)], 1e9);
        let fine = RcTree::extract(&wt, rc, &[(far, 2.0)], pitch);
        prop_assert!((coarse.total_cap_ff() - fine.total_cap_ff()).abs() < 1e-9);
        let dc = NetTiming::analyze(&coarse).elmore_ps(coarse.rc_node_of_wire_node(far));
        let df = NetTiming::analyze(&fine).elmore_ps(fine.rc_node_of_wire_node(far));
        // π-lumping of a bare line is exact; with a far-end load the
        // lumped model cannot be more optimistic than the refined one
        prop_assert!(df <= dc + 1e-9, "fine {df} > coarse {dc}");
    }

    /// PERI merging is symmetric, monotone and bounded below by max.
    #[test]
    fn peri_properties(a in 0.0f64..500.0, b in 0.0f64..500.0, c in 0.0f64..500.0) {
        prop_assert!((peri_slew(a, b) - peri_slew(b, a)).abs() < 1e-12);
        prop_assert!(peri_slew(a, b) >= a.max(b) - 1e-12);
        prop_assert!(peri_slew(a, b) <= a + b + 1e-12);
        if c >= b {
            prop_assert!(peri_slew(a, c) >= peri_slew(a, b) - 1e-12);
        }
    }

    /// SPEF output stays parseable in shape: resistor count = n-1 and the
    /// header carries the exact total cap.
    #[test]
    fn spef_shape(tree in arb_rc()) {
        let s = clk_delay::spef::write_spef("n", &tree);
        let res_lines = s
            .lines()
            .skip_while(|l| !l.starts_with("*RES"))
            .skip(1)
            .take_while(|l| !l.starts_with('*'))
            .count();
        prop_assert_eq!(res_lines, tree.node_count() - 1);
    }
}
