//! `S0xx` — tree-structure audit: acyclicity, single parenthood, root
//! reachability, sink leaf-ness.
//!
//! The exhaustive violation scan itself lives in
//! [`clk_netlist::ClockTree::validate_all`] (so the netlist crate stays
//! self-checking); this pass maps each [`TreeError`] to a stable coded
//! diagnostic. Route-endpoint mismatches are deliberately *not* reported
//! here — the route-geometry pass owns them as `G002`.

use clk_netlist::TreeError;

use crate::context::DesignCtx;
use crate::diag::{Diagnostic, Locus};
use crate::runner::LintPass;

/// Maps a structural [`TreeError`] to its stable code, or `None` for
/// errors owned by another pass.
pub fn structure_code(err: &TreeError) -> Option<&'static str> {
    match err {
        TreeError::Inconsistent(_) => Some("S001"),
        TreeError::Unreachable(_) => Some("S002"),
        TreeError::SinkHasChildren(_) => Some("S003"),
        TreeError::DeadNode(_) => Some("S004"),
        TreeError::WouldCycle(_) | TreeError::NotABuffer(_) => Some("S005"),
        TreeError::RouteEndpointMismatch(_) => None,
    }
}

fn error_node(err: &TreeError) -> Locus {
    match err {
        TreeError::DeadNode(n)
        | TreeError::NotABuffer(n)
        | TreeError::WouldCycle(n)
        | TreeError::SinkHasChildren(n)
        | TreeError::RouteEndpointMismatch(n)
        | TreeError::Inconsistent(n)
        | TreeError::Unreachable(n) => Locus::Node(*n),
    }
}

/// The tree-structure audit pass.
pub struct TreeStructurePass;

impl LintPass for TreeStructurePass {
    fn name(&self) -> &'static str {
        "tree-structure"
    }

    fn description(&self) -> &'static str {
        "parent/child symmetry, acyclic reachability from the root, sinks are leaves, no dead references"
    }

    fn run(&self, ctx: &DesignCtx, out: &mut Vec<Diagnostic>) {
        for err in ctx.tree.validate_all() {
            if let Some(code) = structure_code(&err) {
                out.push(Diagnostic::error(code, error_node(&err), err.to_string()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clk_geom::Point;
    use clk_liberty::{Library, StdCorners};
    use clk_netlist::{ClockTree, NodeKind};

    fn fixture() -> (Library, ClockTree) {
        let lib = Library::synthetic_28nm(StdCorners::c0_c1_c3());
        let x8 = lib.cell_by_name("CLKINV_X8").expect("exists");
        let mut tree = ClockTree::new(Point::new(0, 0), x8);
        let b = tree.add_node(NodeKind::Buffer(x8), Point::new(10_000, 0), tree.root());
        tree.add_node(NodeKind::Sink, Point::new(20_000, 0), b);
        tree.add_node(NodeKind::Sink, Point::new(20_000, 1_200), b);
        (lib, tree)
    }

    fn run(lib: &Library, tree: &ClockTree) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        TreeStructurePass.run(&DesignCtx::new(tree, lib), &mut out);
        out
    }

    #[test]
    fn clean_tree_has_no_findings() {
        let (lib, tree) = fixture();
        assert!(run(&lib, &tree).is_empty());
    }

    #[test]
    fn unlinked_child_is_s001() {
        let (lib, tree) = fixture();
        let mut tree = tree;
        let b = tree.children(tree.root())[0];
        let s = tree.children(b)[0];
        tree.debug_unlink_child(b, s);
        let out = run(&lib, &tree);
        assert!(out.iter().any(|d| d.code == "S001"), "{out:?}");
    }

    #[test]
    fn orphan_is_s002() {
        let (lib, tree) = fixture();
        let mut tree = tree;
        let b = tree.children(tree.root())[0];
        let s = tree.children(b)[0];
        tree.debug_unlink_child(b, s);
        tree.debug_set_parent_raw(s, None);
        let out = run(&lib, &tree);
        assert!(out.iter().any(|d| d.code == "S002"), "{out:?}");
    }

    #[test]
    fn sink_with_children_is_s003() {
        let (lib, tree) = fixture();
        let mut tree = tree;
        let b = tree.children(tree.root())[0];
        let sinks: Vec<_> = tree.children(b).to_vec();
        tree.debug_add_child_raw(sinks[0], sinks[1]);
        let out = run(&lib, &tree);
        assert!(out.iter().any(|d| d.code == "S003"), "{out:?}");
    }
}
