//! Criterion performance benchmarks of the kernels behind the paper's
//! runtime claims: move evaluation (§4.2 quotes 160K move evaluations in
//! 17 min on 15 threads), golden timing (40 min per full STA), LP solving
//! and the routing/delay estimators.

// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic)]

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use clk_cts::{Testcase, TestcaseKind};
use clk_delay::{NetTiming, RcTree};
use clk_geom::{Point, Rect};
use clk_liberty::{CornerId, Library, StdCorners, WireRc};
use clk_lp::{Problem, RowKind};
use clk_netlist::Floorplan;
use clk_obs::{Level, Obs, ObsConfig};
use clk_route::{rsmt, single_trunk, WireTree};
use clk_skewopt::predictor::move_features;
use clk_skewopt::{enumerate_moves, MoveConfig};
use clk_sta::Timer;

fn pins(n: usize) -> (Point, Vec<Point>) {
    let mut seed = 42u64;
    let mut next = move || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((seed >> 33) % 80_000) as i64
    };
    let driver = Point::new(next(), next());
    let pts = (0..n).map(|_| Point::new(next(), next())).collect();
    (driver, pts)
}

fn bench_routing(c: &mut Criterion) {
    let mut g = c.benchmark_group("routing");
    g.sample_size(20);
    let (d, p9) = pins(9);
    g.bench_function("rsmt_9pins", |b| b.iter(|| rsmt(d, &p9)));
    let (d, p30) = pins(30);
    g.bench_function("rsmt_30pins_mst_mode", |b| b.iter(|| rsmt(d, &p30)));
    g.bench_function("single_trunk_30pins", |b| b.iter(|| single_trunk(d, &p30)));
    g.finish();
}

fn bench_delay(c: &mut Criterion) {
    let mut g = c.benchmark_group("delay");
    g.sample_size(20);
    let mut wt = WireTree::new(Point::new(0, 0));
    let mut prev = WireTree::ROOT;
    for i in 1..=40 {
        prev = wt.add_child(prev, Point::new(i * 10_000, (i % 7) * 3_000));
    }
    let rc = WireRc {
        r_per_um: 2.0e-3,
        c_per_um: 0.2,
    };
    g.bench_function("extract_golden_5um", |b| {
        b.iter(|| RcTree::extract(&wt, rc, &[(prev, 3.0)], 5.0));
    });
    let fine = RcTree::extract(&wt, rc, &[(prev, 3.0)], 5.0);
    g.bench_function("moments_d2m", |b| b.iter(|| NetTiming::analyze(&fine)));
    g.finish();
}

fn bench_timer(c: &mut Criterion) {
    let mut g = c.benchmark_group("golden_timer");
    g.sample_size(10);
    let tc = Testcase::generate(TestcaseKind::Cls1v1, 64, 1);
    let timer = Timer::golden();
    g.bench_function("analyze_64sinks_1corner", |b| {
        b.iter(|| timer.analyze(&tc.tree, &tc.lib, CornerId(0)));
    });
    g.bench_function("analyze_64sinks_3corners", |b| {
        b.iter(|| timer.analyze_all(&tc.tree, &tc.lib));
    });
    g.finish();
}

/// A dense-ish random LP of ~180 rows x 120 vars.
fn random_lp() -> Problem {
    let mut seed = 7u64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        (seed >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut p = Problem::new();
    let vars: Vec<_> = (0..120)
        .map(|_| p.add_var(0.0, 1.0 + next(), next() - 0.5).unwrap())
        .collect();
    for _ in 0..180 {
        let mut terms = Vec::new();
        for &v in &vars {
            if next() < 0.12 {
                terms.push((v, next() - 0.3));
            }
        }
        let rhs = 1.0 + 2.0 * next();
        p.add_row(RowKind::Le, rhs, &terms).unwrap();
    }
    p
}

fn bench_lp(c: &mut Criterion) {
    let mut g = c.benchmark_group("lp");
    g.sample_size(10);
    let p = random_lp();
    g.bench_function("simplex_180x120", |b| {
        b.iter_batched(|| p.clone(), |p| clk_lp::solve(&p), BatchSize::SmallInput);
    });
    g.finish();
}

/// Instrumentation overhead: the disabled pipeline must be free (a single
/// `Option` branch on the hot paths — the <2% budget of DESIGN.md §8), and
/// an enabled sink-less pipeline must stay cheap enough for Debug-level
/// flow tracing.
fn bench_obs(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs");
    g.sample_size(30);
    let disabled = Obs::disabled();
    g.bench_function("span_disabled", |b| {
        b.iter(|| disabled.span("bench.span"));
    });
    g.bench_function("count_disabled", |b| {
        b.iter(|| disabled.count("bench.ctr", 1));
    });
    // decision-ledger gate: every flow decision site asks `ledgering()`
    // before building a record, so the off path must be the same single
    // `Option` branch as the rest of the disabled pipeline — both on a
    // disabled Obs and on an enabled Obs with the ledger off (default)
    g.bench_function("ledger_gate_disabled", |b| {
        b.iter(|| disabled.ledgering());
    });
    let no_ledger = Obs::new(ObsConfig::default());
    g.bench_function("ledger_gate_off_enabled_obs", |b| {
        b.iter(|| no_ledger.ledgering());
    });
    let quiet = Obs::new(ObsConfig {
        verbosity: Level::Debug,
        ..ObsConfig::default()
    });
    g.bench_function("span_enabled_no_sinks", |b| {
        b.iter(|| quiet.span("bench.span"));
    });
    g.bench_function("histogram_observe", |b| {
        b.iter(|| quiet.observe("bench.hist", 3.25));
    });
    // head-to-head on the LP kernel: the instrumented entry point with a
    // disabled pipeline must track `simplex_180x120` within noise
    let p = random_lp();
    g.bench_function("simplex_180x120_obs_disabled", |b| {
        b.iter_batched(
            || p.clone(),
            |p| clk_lp::solve_with_obs(&p, &disabled),
            BatchSize::SmallInput,
        );
    });
    g.bench_function("simplex_180x120_obs_quiet", |b| {
        b.iter_batched(
            || p.clone(),
            |p| clk_lp::solve_with_obs(&p, &quiet),
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_predictor(c: &mut Criterion) {
    let mut g = c.benchmark_group("predictor");
    g.sample_size(10);
    let tc = Testcase::generate(TestcaseKind::Cls1v1, 48, 2);
    let timing = Timer::golden().analyze(&tc.tree, &tc.lib, CornerId(0));
    let mcfg = MoveConfig::default();
    let moves = enumerate_moves(&tc.tree, &tc.lib, &mcfg, None);
    let mv = moves[moves.len() / 2];
    g.bench_function("move_features_one_corner", |b| {
        b.iter(|| move_features(&tc.tree, &tc.lib, CornerId(0), &timing, &mv, &mcfg));
    });
    g.finish();
}

fn bench_infra(c: &mut Criterion) {
    let mut g = c.benchmark_group("infra");
    g.sample_size(30);
    let lib = Library::synthetic_28nm(StdCorners::all());
    g.bench_function("library_characterize", |b| {
        b.iter(|| Library::synthetic_28nm(StdCorners::all()));
    });
    let x4 = lib.cell_by_name("CLKINV_X4").unwrap();
    g.bench_function("nldm_lookup", |b| {
        b.iter(|| lib.gate_delay(x4, CornerId(1), 23.0, 9.5));
    });
    let fp = Floorplan::utilized(Rect::from_um(0.0, 0.0, 1820.0, 1820.0), vec![]);
    g.bench_function("legalize", |b| {
        b.iter(|| fp.legalize(Point::new(123_456, 777_777)));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_routing,
    bench_delay,
    bench_timer,
    bench_lp,
    bench_predictor,
    bench_infra,
    bench_obs
);
criterion_main!(benches);
