//! Table 4: summary of testcases (#Cells, #Flip-flops, Area, Util,
//! Corners) for the scaled CLS1v1 / CLS1v2 / CLS2v1 generators, plus an
//! optional `--floorplan` ASCII rendering of Fig. 7.

// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic)]

use clk_bench::{suite_cases, ExpArgs};
use clk_cts::{Testcase, TestcaseKind};
use clk_geom::Rect;

fn main() {
    let args = ExpArgs::parse();
    let n = args.sinks.unwrap_or(if args.quick { 48 } else { 120 });
    let show_fp = std::env::args().any(|a| a == "--floorplan");

    println!("Table 4: Summary of testcases (scaled; paper sizes in parentheses)");
    println!(
        "{:<10} {:>8} {:>12} {:>10} {:>6}  Corners",
        "Testcase", "#Cells", "#Flip-flops", "Area", "Util"
    );
    let paper_of = |kind: TestcaseKind| match kind {
        TestcaseKind::Cls1v1 => ("0.4M", "36K", "3.3mm2", "62%"),
        TestcaseKind::Cls1v2 => ("0.4M", "35K", "3.4mm2", "60%"),
        TestcaseKind::Cls2v1 => ("1.79M", "270K", "4.5mm2", "58%"),
    };
    for case in suite_cases(args.seed) {
        let (kind, paper) = (case.kind, paper_of(case.kind));
        let tc = Testcase::generate(kind, n, case.seed);
        let corners: Vec<&str> = tc.lib.corners().iter().map(|c| c.name.as_str()).collect();
        println!(
            "{:<10} {:>8} {:>12} {:>10} {:>6}  {}",
            kind.name(),
            format!("{} ({})", tc.equiv_cells, paper.0),
            format!("{} ({})", tc.tree.sinks().count(), paper.1),
            format!("{:.1}mm2 ({})", tc.area_mm2(), paper.2),
            format!("{:.0}% ({})", 100.0 * kind.utilization(), paper.3),
            corners.join(", "),
        );
        if show_fp {
            println!("{}", render_floorplan(&tc));
        }
    }
}

/// Fig. 7-style ASCII floorplan: die outline, blockages (#), sinks (.),
/// clock cells (+).
fn render_floorplan(tc: &Testcase) -> String {
    let die = tc.floorplan.die;
    let (w, h) = (64usize, 28usize);
    let mut grid = vec![vec![' '; w]; h];
    let cell_of = |r: Rect, x: usize, y: usize| -> Rect {
        let _ = (r, x, y);
        r
    };
    let _ = cell_of;
    let to_cell = |p: clk_geom::Point| -> (usize, usize) {
        let cx = ((p.x - die.lo.x) as f64 / die.width() as f64 * (w - 1) as f64) as usize;
        let cy = ((p.y - die.lo.y) as f64 / die.height() as f64 * (h - 1) as f64) as usize;
        (cx.min(w - 1), (h - 1) - cy.min(h - 1))
    };
    for b in &tc.floorplan.blockages {
        for (gy, row) in grid.iter_mut().enumerate() {
            for (gx, cell) in row.iter_mut().enumerate() {
                let p = clk_geom::Point::new(
                    die.lo.x + (gx as i64 * die.width()) / (w as i64 - 1),
                    die.lo.y + ((h - 1 - gy) as i64 * die.height()) / (h as i64 - 1),
                );
                if b.contains(p) {
                    *cell = '#';
                }
            }
        }
    }
    for s in tc.tree.sinks().collect::<Vec<_>>() {
        let (x, y) = to_cell(tc.tree.loc(s));
        grid[y][x] = '.';
    }
    for b in tc.tree.buffers().collect::<Vec<_>>() {
        let (x, y) = to_cell(tc.tree.loc(b));
        grid[y][x] = '+';
    }
    let mut out = String::new();
    out.push_str(&format!("+{}+\n", "-".repeat(w)));
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push_str("|\n");
    }
    out.push_str(&format!(
        "+{}+  (. sink, + clock cell, # blockage)\n",
        "-".repeat(w)
    ));
    out
}
