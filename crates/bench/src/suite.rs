//! The flow suite: the three scaled testcases behind Tables 4/5 and the
//! QoR gate, with one shared prepare/run path so every consumer
//! (`table4`, `table5`, `qor`) agrees on seeds, sizes and artifact
//! reuse.

use clk_cts::{Testcase, TestcaseKind};
use clk_skewopt::{
    try_optimize_with, DeltaLatencyModel, Flow, FlowConfig, FlowError, OptReport, StageLuts,
};

/// One suite entry: a testcase generator and its derived seed.
#[derive(Debug, Clone, Copy)]
pub struct SuiteCase {
    /// Generator kind (`CLS1v1` / `CLS1v2` / `CLS2v1`).
    pub kind: TestcaseKind,
    /// Seed for this case (offset from the suite's base seed, matching
    /// the historical `table5` seeding).
    pub seed: u64,
}

/// The paper's three testcases, seeded `base_seed`, `base_seed + 1`,
/// `base_seed + 2` — the suite every QoR snapshot covers.
pub fn suite_cases(base_seed: u64) -> Vec<SuiteCase> {
    [
        TestcaseKind::Cls1v1,
        TestcaseKind::Cls1v2,
        TestcaseKind::Cls2v1,
    ]
    .into_iter()
    .enumerate()
    .map(|(i, kind)| SuiteCase {
        kind,
        seed: base_seed + i as u64,
    })
    .collect()
}

/// A generated testcase plus its per-technology artifacts, ready to run
/// one or more flows.
pub struct PreparedCase {
    /// The suite entry this was generated from.
    pub case: SuiteCase,
    /// The generated testcase.
    pub tc: Testcase,
    /// Characterized stage LUTs (when a global phase will run).
    pub luts: Option<StageLuts>,
    /// Trained delta-latency model (when a local phase will run).
    pub model: Option<DeltaLatencyModel>,
}

impl PreparedCase {
    /// Generates the testcase and characterizes/trains whatever
    /// `flows` will need. Artifacts are built once and shared across
    /// every flow run on this case (they are per-technology, as in the
    /// paper).
    pub fn generate(case: SuiteCase, n_sinks: usize, cfg: &FlowConfig, flows: &[Flow]) -> Self {
        let tc = Testcase::generate(case.kind, n_sinks, case.seed);
        let need_luts = flows
            .iter()
            .any(|f| matches!(f, Flow::Global | Flow::GlobalLocal));
        let need_model = flows
            .iter()
            .any(|f| matches!(f, Flow::Local | Flow::GlobalLocal));
        let luts = need_luts.then(|| StageLuts::characterize(&tc.lib));
        let model =
            need_model.then(|| DeltaLatencyModel::train(&tc.lib, cfg.model_kind, &cfg.train));
        PreparedCase {
            case,
            tc,
            luts,
            model,
        }
    }

    /// Runs one flow on the prepared case, returning the report and the
    /// measured wall clock in milliseconds.
    ///
    /// # Errors
    ///
    /// The flow's own hard failures (see
    /// [`clk_skewopt::try_optimize_with`]).
    pub fn run(&self, flow: Flow, cfg: &FlowConfig) -> Result<(OptReport, f64), FlowError> {
        let start = clk_obs::wall_now();
        let report =
            try_optimize_with(&self.tc, flow, cfg, self.luts.as_ref(), self.model.as_ref())?;
        Ok((report, start.elapsed().as_secs_f64() * 1e3))
    }

    /// Corner names of this case's library, in corner-id order.
    pub fn corner_names(&self) -> Vec<String> {
        self.tc
            .lib
            .corners()
            .iter()
            .map(|c| c.name.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_the_historical_table5_seeding() {
        let cases = suite_cases(10);
        assert_eq!(cases.len(), 3);
        assert_eq!(cases[0].kind, TestcaseKind::Cls1v1);
        assert_eq!(cases[0].seed, 10);
        assert_eq!(cases[1].kind, TestcaseKind::Cls1v2);
        assert_eq!(cases[1].seed, 11);
        assert_eq!(cases[2].kind, TestcaseKind::Cls2v1);
        assert_eq!(cases[2].seed, 12);
    }

    #[test]
    fn prepare_builds_only_needed_artifacts() {
        let cfg = FlowConfig::default();
        let case = SuiteCase {
            kind: TestcaseKind::Cls1v1,
            seed: 1,
        };
        let p = PreparedCase::generate(case, 16, &cfg, &[Flow::Global]);
        assert!(p.luts.is_some());
        assert!(p.model.is_none());
        assert_eq!(p.corner_names().len(), 3);
    }
}
