//! Property tests of the CTS baseline and the testcase generators.

// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic)]

use clk_cts::{CtsConfig, CtsEngine, Testcase, TestcaseKind};
use clk_geom::{Point, Rect};
use clk_liberty::{Library, StdCorners};
use clk_netlist::Floorplan;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// CTS over arbitrary sink clouds yields valid, polarity-correct,
    /// repeater-bounded trees that reach every sink.
    #[test]
    fn cts_contract(sinks in prop::collection::vec((20_000i64..780_000, 20_000i64..780_000), 2..40),
                    leaf in 4usize..20) {
        let lib = Library::synthetic_28nm(StdCorners::c0_c1_c3());
        let fp = Floorplan::utilized(Rect::from_um(0.0, 0.0, 800.0, 800.0), vec![]);
        let pts: Vec<Point> = sinks.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let engine = CtsEngine::new(CtsConfig {
            leaf_fanout: leaf,
            ..CtsConfig::default()
        });
        let tree = engine.synthesize(&lib, &fp, Point::new(400_000, 0), &pts);
        tree.validate().expect("CTS output is well-formed");
        prop_assert_eq!(tree.sinks().count(), pts.len());
        for s in tree.sinks().collect::<Vec<_>>() {
            prop_assert_eq!(tree.inversions_to(s) % 2, 0, "inverted clock at {}", s);
        }
        // every driver respects the leaf fanout bound (+1 slack for the
        // paired-inverter structure)
        for b in tree.buffers().collect::<Vec<_>>() {
            let sink_children = tree
                .children(b)
                .iter()
                .filter(|&&c| tree.node(c).kind == clk_netlist::NodeKind::Sink)
                .count();
            prop_assert!(sink_children <= leaf, "driver {b} has {sink_children} sinks");
        }
        // no edge exceeds the repeater limit materially
        let limit = CtsConfig::default().max_unbuffered_um * 1.01;
        for id in tree.node_ids() {
            if let Some(r) = &tree.node(id).route {
                prop_assert!(r.length_um() <= limit, "edge {} um", r.length_um());
            }
        }
    }

    /// Generated testcases keep sinks inside their regions and pairs
    /// reference live sinks, at any size/seed.
    #[test]
    fn testcase_generator_contract(n in 8usize..60, seed in 0u64..500) {
        let kind = match seed % 3 {
            0 => TestcaseKind::Cls1v1,
            1 => TestcaseKind::Cls1v2,
            _ => TestcaseKind::Cls2v1,
        };
        let tc = Testcase::generate(kind, n, seed);
        tc.tree.validate().expect("generated tree valid");
        prop_assert_eq!(tc.tree.sinks().count(), n);
        prop_assert!(!tc.tree.sink_pairs().is_empty());
        for p in tc.tree.sink_pairs() {
            prop_assert!(p.a != p.b);
        }
        for s in tc.tree.sinks().collect::<Vec<_>>() {
            prop_assert!(tc.floorplan.die.contains(tc.tree.loc(s)));
            for b in &tc.floorplan.blockages {
                prop_assert!(!b.contains(tc.tree.loc(s)), "sink inside blockage");
            }
        }
    }
}
