// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

//! `clk-lint` — the design-rule and invariant audit engine.
//!
//! Every stage of the optimization flow edits the same clock-tree
//! database; a bug in one stage (a stale route, a detached subtree, a
//! poisoned LP coefficient) surfaces as a mysterious wrong answer three
//! stages later. This crate turns the implicit invariants of the
//! workspace into explicit, individually coded checks:
//!
//! * [`Diagnostic`] — one finding, with a stable code (`S001`, `G002`,
//!   ...), a [`Severity`], a [`Locus`] (node, arc, pair, LP row/var) and
//!   a human-readable message;
//! * [`LintPass`] — one audit over a [`DesignCtx`] (tree + library +
//!   optional floorplan);
//! * [`LintRunner`] — a pass registry that produces a [`Report`] with
//!   text and JSON renderings;
//! * [`lp`] — auditors for [`clk_lp::Problem`] instances (finite
//!   coefficients, ordered bounds, Eq. (6)–(11) row/variable counts).
//!
//! The flow crates call the runner at phase boundaries behind
//! [`LintLevel`] gates: `Off` in release, `ErrorsOnly` in debug builds,
//! `Strict` for CI sweeps.
//!
//! # Diagnostic code families
//!
//! | Family | Pass | Invariant |
//! |--------|------|-----------|
//! | `S0xx` | tree-structure | parent/child symmetry, reachability, leaf-ness |
//! | `A0xx` | arc-cover / arc-chain / polarity | arc view == tree edges, uniform chains, sink parity |
//! | `G0xx` | route-geometry / placement | rectilinear pin-to-pin routes, legal sites |
//! | `R0xx` | parasitics / spef | RC matches geometry, nonnegative R/C, SPEF round-trip |
//! | `T0xx` | timing-sanity / drc | finite latencies, max-cap/max-slew, pair sanity |
//! | `L0xx` | [`lp`] module | finite LP model, expected shape |
//!
//! # Examples
//!
//! ```
//! use clk_geom::Point;
//! use clk_liberty::{Library, StdCorners};
//! use clk_netlist::{ClockTree, NodeKind};
//! use clk_lint::{DesignCtx, LintRunner};
//!
//! let lib = Library::synthetic_28nm(StdCorners::c0_c1_c3());
//! let x8 = lib.cell_by_name("CLKINV_X8").expect("exists");
//! let mut tree = ClockTree::new(Point::new(0, 0), x8);
//! let b = tree.add_node(NodeKind::Buffer(x8), Point::new(80_000, 0), tree.root());
//! let s1 = tree.add_node(NodeKind::Sink, Point::new(160_000, 0), b);
//! let s2 = tree.add_node(NodeKind::Sink, Point::new(160_000, 1_200), b);
//! let _ = (s1, s2);
//! let report = LintRunner::with_default_passes().run(&DesignCtx::new(&tree, &lib));
//! assert!(!report.has_errors(), "{}", report.to_text());
//! ```

pub mod context;
pub mod diag;
pub mod lp;
pub mod passes;
pub mod runner;

pub use context::DesignCtx;
pub use diag::{Diagnostic, Locus, Severity};
pub use passes::parasitics::audit_rc_tree;
pub use runner::{LintPass, LintRunner, Report};

/// How much linting a flow stage performs at its phase gates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintLevel {
    /// No linting; the gates compile to nothing.
    Off,
    /// Run the passes and fail on `Error` diagnostics only.
    ErrorsOnly,
    /// Fail on any diagnostic, warnings included.
    Strict,
}

impl LintLevel {
    /// Whether the gates should run at all.
    pub fn enabled(self) -> bool {
        self != LintLevel::Off
    }

    /// Whether `report` should fail a gate at this level.
    pub fn fails(self, report: &Report) -> bool {
        match self {
            LintLevel::Off => false,
            LintLevel::ErrorsOnly => report.has_errors(),
            LintLevel::Strict => !report.diagnostics().is_empty(),
        }
    }
}

impl Default for LintLevel {
    /// `ErrorsOnly` in debug builds, `Off` in release — the flow pays
    /// nothing for the gates at optimized benchmark settings.
    fn default() -> Self {
        if cfg!(debug_assertions) {
            LintLevel::ErrorsOnly
        } else {
            LintLevel::Off
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_level_tracks_build_profile() {
        let lvl = LintLevel::default();
        if cfg!(debug_assertions) {
            assert_eq!(lvl, LintLevel::ErrorsOnly);
        } else {
            assert_eq!(lvl, LintLevel::Off);
        }
    }

    #[test]
    fn off_never_fails() {
        let report = Report::from_diagnostics(vec![Diagnostic::error(
            "S001",
            Locus::Design,
            "boom".to_string(),
        )]);
        assert!(!LintLevel::Off.fails(&report));
        assert!(LintLevel::ErrorsOnly.fails(&report));
        assert!(LintLevel::Strict.fails(&report));
    }

    #[test]
    fn strict_fails_on_warnings() {
        let report = Report::from_diagnostics(vec![Diagnostic::warning(
            "T002",
            Locus::Design,
            "hot".to_string(),
        )]);
        assert!(!LintLevel::ErrorsOnly.fails(&report));
        assert!(LintLevel::Strict.fails(&report));
    }
}
