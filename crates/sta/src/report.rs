//! Signoff-style text reports: clock-latency paths and per-pair skew
//! variation tables (the PrimeTime `report_timing` stand-in for clock
//! networks).

use std::fmt::Write as _;

use clk_liberty::Library;
use clk_netlist::{ClockTree, NodeId, NodeKind};

use crate::skew::{alpha_factors, pair_skews, variation_report};
use crate::timer::{CornerTiming, Timer};

/// Writes a clock-path report for one sink at one analyzed corner:
/// per-stage arrival/slew from the source to the sink.
pub fn report_clock_path(
    tree: &ClockTree,
    lib: &Library,
    timing: &CornerTiming,
    sink: NodeId,
) -> String {
    let mut out = String::new();
    let corner = lib.corner(timing.corner());
    let _ = writeln!(out, "Clock path to {sink} at corner {}", corner.name);
    let _ = writeln!(
        out,
        "{:<10} {:<12} {:>12} {:>10}",
        "point", "cell", "arrival", "slew"
    );
    for n in tree.path_from_root(sink) {
        let cell = match tree.node(n).kind {
            NodeKind::Source => lib.cell(tree.source_cell()).name.clone(),
            NodeKind::Buffer(c) => lib.cell(c).name.clone(),
            NodeKind::Sink => "(sink)".to_string(),
        };
        let _ = writeln!(
            out,
            "{:<10} {:<12} {:>12.2} {:>10.2}",
            n.to_string(),
            cell,
            timing.arrival_ps(n),
            timing.slew_ps(n)
        );
    }
    out
}

/// Writes the top-`n` sink pairs by normalized skew variation with their
/// per-corner skews — the table a signoff engineer would read before
/// kicking off the optimization.
pub fn report_variation(tree: &ClockTree, lib: &Library, n: usize) -> String {
    let timer = Timer::golden();
    let analyses: Vec<CornerTiming> = timer.analyze_all(tree, lib);
    let skews: Vec<Vec<f64>> = analyses
        .iter()
        .map(|t| pair_skews(t, tree.sink_pairs()))
        .collect();
    let alphas = alpha_factors(&skews);
    let rep = variation_report(&skews, &alphas, None);
    let mut order: Vec<usize> = (0..rep.per_pair.len()).collect();
    order.sort_by(|&a, &b| rep.per_pair[b].total_cmp(&rep.per_pair[a]));

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Sum of normalized skew variation: {:.1} ps over {} pairs (max {:.1})",
        rep.sum,
        rep.per_pair.len(),
        rep.max
    );
    let _ = write!(out, "{:<18} {:>10}", "pair", "V (ps)");
    for c in lib.corners() {
        let _ = write!(out, " {:>10}", format!("skew@{}", c.name));
    }
    let _ = writeln!(out);
    for &i in order.iter().take(n) {
        let p = tree.sink_pairs()[i];
        let _ = write!(out, "{:<18} {:>10.2}", p.to_string(), rep.per_pair[i]);
        for sk in &skews {
            let _ = write!(out, " {:>10.2}", sk[i]);
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use clk_geom::Point;
    use clk_liberty::{CornerId, StdCorners};
    use clk_netlist::SinkPair;

    fn fixture() -> (ClockTree, Library) {
        let lib = Library::synthetic_28nm(StdCorners::c0_c1_c3());
        let x8 = lib.cell_by_name("CLKINV_X8").unwrap();
        let mut t = ClockTree::new(Point::new(0, 0), x8);
        let b = t.add_node(NodeKind::Buffer(x8), Point::new(50_000, 0), t.root());
        let s1 = t.add_node(NodeKind::Sink, Point::new(90_000, 20_000), b);
        let s2 = t.add_node(NodeKind::Sink, Point::new(100_000, -20_000), b);
        t.set_sink_pairs(vec![SinkPair::new(s1, s2)]);
        (t, lib)
    }

    #[test]
    fn clock_path_lists_every_stage() {
        let (t, lib) = fixture();
        let timing = Timer::golden().analyze(&t, &lib, CornerId(0));
        let sink = t.sinks().next().unwrap();
        let rep = report_clock_path(&t, &lib, &timing, sink);
        // source + buffer + sink = 3 data rows + 2 header rows
        assert_eq!(rep.lines().count(), 5, "{rep}");
        assert!(rep.contains("(sink)"));
        assert!(rep.contains("CLKINV_X8"));
    }

    #[test]
    fn variation_report_sorts_and_sums() {
        let (t, lib) = fixture();
        let rep = report_variation(&t, &lib, 5);
        assert!(rep.contains("Sum of normalized skew variation"));
        assert!(rep.contains("skew@c0"));
        assert!(rep.contains("over 1 pairs"));
    }
}
