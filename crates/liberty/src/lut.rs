//! One- and two-dimensional lookup tables with linear interpolation —
//! the NLDM table primitive, also reused by the ECO stage-delay LUTs.

/// A one-dimensional piecewise-linear lookup table.
///
/// Outside the axis range the table **extrapolates linearly** from the two
/// nearest breakpoints, matching common Liberty delay-calculator behaviour.
///
/// ```
/// use clk_liberty::Lut1;
/// let t = Lut1::new(vec![0.0, 10.0, 20.0], vec![1.0, 2.0, 4.0]).unwrap();
/// assert_eq!(t.eval(5.0), 1.5);
/// assert_eq!(t.eval(30.0), 6.0); // extrapolated
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Lut1 {
    axis: Vec<f64>,
    values: Vec<f64>,
}

/// Error building a lookup table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildLutError {
    /// Axis and value lengths differ, or a dimension is empty / too short.
    ShapeMismatch,
    /// An axis is not strictly increasing.
    AxisNotIncreasing,
}

impl std::fmt::Display for BuildLutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildLutError::ShapeMismatch => f.write_str("table shape mismatch"),
            BuildLutError::AxisNotIncreasing => f.write_str("axis not strictly increasing"),
        }
    }
}

impl std::error::Error for BuildLutError {}

fn check_axis(axis: &[f64]) -> Result<(), BuildLutError> {
    if axis.len() < 2 {
        return Err(BuildLutError::ShapeMismatch);
    }
    if axis.windows(2).any(|w| w[1] <= w[0]) {
        return Err(BuildLutError::AxisNotIncreasing);
    }
    Ok(())
}

/// Index of the segment `[axis[i], axis[i+1]]` to use for `x`, clamped so
/// that out-of-range points use the first/last segment (linear
/// extrapolation).
fn segment(axis: &[f64], x: f64) -> usize {
    match axis.binary_search_by(|a| a.total_cmp(&x)) {
        Ok(i) => i.min(axis.len() - 2),
        Err(0) => 0,
        Err(i) => (i - 1).min(axis.len() - 2),
    }
}

impl Lut1 {
    /// Builds a 1-D table.
    ///
    /// # Errors
    ///
    /// [`BuildLutError::ShapeMismatch`] when lengths differ or are < 2;
    /// [`BuildLutError::AxisNotIncreasing`] when the axis is not strictly
    /// increasing.
    pub fn new(axis: Vec<f64>, values: Vec<f64>) -> Result<Self, BuildLutError> {
        check_axis(&axis)?;
        if axis.len() != values.len() {
            return Err(BuildLutError::ShapeMismatch);
        }
        Ok(Lut1 { axis, values })
    }

    /// Evaluates the table at `x` with linear interpolation/extrapolation.
    pub fn eval(&self, x: f64) -> f64 {
        let i = segment(&self.axis, x);
        let (x0, x1) = (self.axis[i], self.axis[i + 1]);
        let (y0, y1) = (self.values[i], self.values[i + 1]);
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }

    /// The table axis.
    pub fn axis(&self) -> &[f64] {
        &self.axis
    }

    /// The table values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// A two-dimensional bilinear lookup table, NLDM style.
///
/// Rows follow the first axis, columns the second. Out-of-range queries
/// extrapolate linearly along each axis, which mirrors how signoff delay
/// calculators treat slews/loads outside the characterized window.
///
/// ```
/// use clk_liberty::Lut2;
/// let t = Lut2::new(
///     vec![0.0, 1.0],          // e.g. input slew
///     vec![0.0, 10.0],         // e.g. load cap
///     vec![vec![0.0, 10.0], vec![1.0, 11.0]],
/// ).unwrap();
/// assert_eq!(t.eval(0.5, 5.0), 5.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Lut2 {
    axis1: Vec<f64>,
    axis2: Vec<f64>,
    /// `values[i][j]` at `(axis1[i], axis2[j])`.
    values: Vec<Vec<f64>>,
}

impl Lut2 {
    /// Builds a 2-D table.
    ///
    /// # Errors
    ///
    /// [`BuildLutError`] when the shape is inconsistent or an axis is not
    /// strictly increasing.
    pub fn new(
        axis1: Vec<f64>,
        axis2: Vec<f64>,
        values: Vec<Vec<f64>>,
    ) -> Result<Self, BuildLutError> {
        check_axis(&axis1)?;
        check_axis(&axis2)?;
        if values.len() != axis1.len() || values.iter().any(|r| r.len() != axis2.len()) {
            return Err(BuildLutError::ShapeMismatch);
        }
        Ok(Lut2 {
            axis1,
            axis2,
            values,
        })
    }

    /// Builds the table by sampling `f(a1, a2)` on the grid.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Lut2::new`].
    pub fn tabulate(
        axis1: Vec<f64>,
        axis2: Vec<f64>,
        mut f: impl FnMut(f64, f64) -> f64,
    ) -> Result<Self, BuildLutError> {
        check_axis(&axis1)?;
        check_axis(&axis2)?;
        let values = axis1
            .iter()
            .map(|&a| axis2.iter().map(|&b| f(a, b)).collect())
            .collect();
        Ok(Lut2 {
            axis1,
            axis2,
            values,
        })
    }

    /// Evaluates the table at `(x1, x2)` with bilinear
    /// interpolation/extrapolation.
    pub fn eval(&self, x1: f64, x2: f64) -> f64 {
        let i = segment(&self.axis1, x1);
        let j = segment(&self.axis2, x2);
        let (a0, a1) = (self.axis1[i], self.axis1[i + 1]);
        let (b0, b1) = (self.axis2[j], self.axis2[j + 1]);
        let t = (x1 - a0) / (a1 - a0);
        let u = (x2 - b0) / (b1 - b0);
        let v00 = self.values[i][j];
        let v01 = self.values[i][j + 1];
        let v10 = self.values[i + 1][j];
        let v11 = self.values[i + 1][j + 1];
        v00 * (1.0 - t) * (1.0 - u) + v01 * (1.0 - t) * u + v10 * t * (1.0 - u) + v11 * t * u
    }

    /// First (row) axis.
    pub fn axis1(&self) -> &[f64] {
        &self.axis1
    }

    /// Second (column) axis.
    pub fn axis2(&self) -> &[f64] {
        &self.axis2
    }

    /// Raw values, row-major.
    pub fn values(&self) -> &[Vec<f64>] {
        &self.values
    }
}

#[cfg(test)]
// tests pin exact expected values on purpose
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn lut1_rejects_bad_shapes() {
        assert_eq!(
            Lut1::new(vec![0.0], vec![1.0]).unwrap_err(),
            BuildLutError::ShapeMismatch
        );
        assert_eq!(
            Lut1::new(vec![0.0, 0.0], vec![1.0, 2.0]).unwrap_err(),
            BuildLutError::AxisNotIncreasing
        );
        assert_eq!(
            Lut1::new(vec![0.0, 1.0], vec![1.0]).unwrap_err(),
            BuildLutError::ShapeMismatch
        );
    }

    #[test]
    fn lut1_hits_breakpoints_exactly() {
        let t = Lut1::new(vec![1.0, 2.0, 4.0], vec![10.0, 20.0, 0.0]).unwrap();
        assert_eq!(t.eval(1.0), 10.0);
        assert_eq!(t.eval(2.0), 20.0);
        assert_eq!(t.eval(4.0), 0.0);
        assert_eq!(t.eval(3.0), 10.0);
    }

    #[test]
    fn lut1_extrapolates() {
        let t = Lut1::new(vec![0.0, 1.0], vec![0.0, 2.0]).unwrap();
        assert_eq!(t.eval(-1.0), -2.0);
        assert_eq!(t.eval(2.0), 4.0);
    }

    #[test]
    fn lut2_reproduces_bilinear_function_exactly() {
        // f(x, y) = 3 + 2x + 5y is affine per axis; but bilinear
        // interpolation is exact for functions with an xy term only within
        // cells when sampled on the grid, so test an affine function.
        let f = |x: f64, y: f64| 3.0 + 2.0 * x + 5.0 * y;
        let t = Lut2::tabulate(vec![0.0, 2.0, 5.0], vec![1.0, 4.0, 9.0], f).unwrap();
        for &(x, y) in &[(0.5, 2.0), (3.0, 8.0), (-1.0, 0.0), (6.0, 12.0)] {
            assert!((t.eval(x, y) - f(x, y)).abs() < 1e-9, "at ({x},{y})");
        }
    }

    #[test]
    fn lut2_monotone_table_interpolates_within_bounds() {
        let t = Lut2::tabulate(vec![1.0, 2.0, 3.0], vec![1.0, 2.0], |a, b| a * b).unwrap();
        let v = t.eval(1.5, 1.5);
        assert!(v > 1.0 && v < 6.0);
    }

    #[test]
    fn lut2_shape_errors() {
        assert!(Lut2::new(vec![0.0, 1.0], vec![0.0, 1.0], vec![vec![0.0, 1.0]]).is_err());
        assert!(Lut2::new(vec![1.0, 0.0], vec![0.0, 1.0], vec![vec![0.0; 2]; 2]).is_err());
    }
}
