//! Axis-aligned rectangles and bounding boxes.

use crate::{Dbu, Point, DBU_PER_UM};

/// A closed axis-aligned rectangle `[lo.x, hi.x] x [lo.y, hi.y]` in dbu.
///
/// Degenerate rectangles (zero width and/or height) are allowed; they arise
/// naturally as bounding boxes of collinear pin sets.
///
/// ```
/// use clk_geom::{Point, Rect};
/// let r = Rect::new(Point::new(0, 0), Point::new(2_000, 1_000));
/// assert_eq!(r.area_um2(), 2.0);
/// assert!(r.contains(Point::new(500, 500)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rect {
    /// Lower-left corner.
    pub lo: Point,
    /// Upper-right corner.
    pub hi: Point,
}

impl Rect {
    /// Creates a rectangle from two corners, normalizing the order.
    pub fn new(a: Point, b: Point) -> Self {
        Rect {
            lo: Point::new(a.x.min(b.x), a.y.min(b.y)),
            hi: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Creates a rectangle from µm corner coordinates.
    pub fn from_um(lx: f64, ly: f64, hx: f64, hy: f64) -> Self {
        Rect::new(Point::from_um(lx, ly), Point::from_um(hx, hy))
    }

    /// The smallest rectangle containing every point, or `None` when `pts`
    /// is empty.
    pub fn bounding(pts: &[Point]) -> Option<Self> {
        let first = *pts.first()?;
        let mut r = Rect {
            lo: first,
            hi: first,
        };
        for &p in &pts[1..] {
            r.expand(p);
        }
        Some(r)
    }

    /// Grows the rectangle (in place) so that it contains `p`.
    pub fn expand(&mut self, p: Point) {
        self.lo.x = self.lo.x.min(p.x);
        self.lo.y = self.lo.y.min(p.y);
        self.hi.x = self.hi.x.max(p.x);
        self.hi.y = self.hi.y.max(p.y);
    }

    /// Width in dbu.
    #[inline]
    pub fn width(&self) -> Dbu {
        self.hi.x - self.lo.x
    }

    /// Height in dbu.
    #[inline]
    pub fn height(&self) -> Dbu {
        self.hi.y - self.lo.y
    }

    /// Area in µm².
    #[inline]
    pub fn area_um2(&self) -> f64 {
        let w = self.width() as f64 / DBU_PER_UM as f64;
        let h = self.height() as f64 / DBU_PER_UM as f64;
        w * h
    }

    /// Half-perimeter wirelength in µm — the classic HPWL net-length
    /// estimate.
    #[inline]
    pub fn hpwl_um(&self) -> f64 {
        (self.width() + self.height()) as f64 / DBU_PER_UM as f64
    }

    /// Aspect ratio `min(w, h) / max(w, h)` in `[0, 1]`; returns 1.0 for a
    /// degenerate (point) rectangle so that single-pin bounding boxes do not
    /// produce NaN features.
    pub fn aspect_ratio(&self) -> f64 {
        let w = self.width() as f64;
        let h = self.height() as f64;
        let (lo, hi) = if w < h { (w, h) } else { (h, w) };
        if hi == 0.0 {
            1.0
        } else {
            lo / hi
        }
    }

    /// Center point (rounded down per axis).
    #[inline]
    pub fn center(&self) -> Point {
        self.lo.midpoint(self.hi)
    }

    /// Whether `p` lies inside the closed rectangle.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.lo.x && p.x <= self.hi.x && p.y >= self.lo.y && p.y <= self.hi.y
    }

    /// Whether `other` lies entirely inside this rectangle.
    #[inline]
    pub fn contains_rect(&self, other: Rect) -> bool {
        self.contains(other.lo) && self.contains(other.hi)
    }

    /// Whether the closed rectangles intersect.
    #[inline]
    pub fn intersects(&self, other: Rect) -> bool {
        self.lo.x <= other.hi.x
            && other.lo.x <= self.hi.x
            && self.lo.y <= other.hi.y
            && other.lo.y <= self.hi.y
    }

    /// A rectangle inflated by `margin` dbu on every side.
    pub fn inflate(&self, margin: Dbu) -> Rect {
        Rect {
            lo: Point::new(self.lo.x - margin, self.lo.y - margin),
            hi: Point::new(self.hi.x + margin, self.hi.y + margin),
        }
    }

    /// The square of side `2 * half_side` centred on `c` — used for the
    /// "within bounding box of 50µm × 50µm" type-III move constraint.
    pub fn square_around(c: Point, half_side: Dbu) -> Rect {
        Rect {
            lo: Point::new(c.x - half_side, c.y - half_side),
            hi: Point::new(c.x + half_side, c.y + half_side),
        }
    }
}

impl std::fmt::Display for Rect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{} .. {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
// tests pin exact expected values on purpose
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn new_normalizes_corners() {
        let r = Rect::new(Point::new(5, 1), Point::new(-2, 8));
        assert_eq!(r.lo, Point::new(-2, 1));
        assert_eq!(r.hi, Point::new(5, 8));
    }

    #[test]
    fn bounding_of_empty_is_none() {
        assert!(Rect::bounding(&[]).is_none());
    }

    #[test]
    fn bounding_contains_all_points() {
        let pts = [
            Point::new(3, 3),
            Point::new(-1, 10),
            Point::new(7, -4),
            Point::new(0, 0),
        ];
        let r = Rect::bounding(&pts).unwrap();
        for p in pts {
            assert!(r.contains(p));
        }
        assert_eq!(r.lo, Point::new(-1, -4));
        assert_eq!(r.hi, Point::new(7, 10));
    }

    #[test]
    fn area_and_hpwl() {
        let r = Rect::from_um(0.0, 0.0, 3.0, 2.0);
        assert!((r.area_um2() - 6.0).abs() < 1e-12);
        assert!((r.hpwl_um() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn aspect_ratio_in_unit_interval() {
        assert!((Rect::from_um(0.0, 0.0, 4.0, 2.0).aspect_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(
            Rect::new(Point::new(1, 1), Point::new(1, 1)).aspect_ratio(),
            1.0
        );
        // degenerate in one axis only
        assert_eq!(
            Rect::new(Point::new(0, 0), Point::new(5, 0)).aspect_ratio(),
            0.0
        );
    }

    #[test]
    fn intersection_tests() {
        let a = Rect::new(Point::new(0, 0), Point::new(10, 10));
        let b = Rect::new(Point::new(10, 10), Point::new(20, 20)); // touching corner
        let c = Rect::new(Point::new(11, 11), Point::new(20, 20));
        assert!(a.intersects(b));
        assert!(!a.intersects(c));
        assert!(a.contains_rect(Rect::new(Point::new(2, 2), Point::new(8, 8))));
        assert!(!a.contains_rect(b));
    }

    #[test]
    fn square_around_is_centered() {
        let s = Rect::square_around(Point::new(100, 200), 25_000);
        assert_eq!(s.center(), Point::new(100, 200));
        assert_eq!(s.width(), 50_000);
        assert_eq!(s.height(), 50_000);
    }

    #[test]
    fn inflate_grows_symmetrically() {
        let r = Rect::new(Point::new(0, 0), Point::new(10, 10)).inflate(5);
        assert_eq!(r.lo, Point::new(-5, -5));
        assert_eq!(r.hi, Point::new(15, 15));
    }
}
