//! Developer probe: why does the local phase accept / reject moves?

use clk_cts::{Testcase, TestcaseKind};
use clk_skewopt::local::Ranker;
use clk_skewopt::{local_optimize, DeltaLatencyModel, LocalConfig, ModelKind, TrainConfig};

fn main() {
    let tc = Testcase::generate(TestcaseKind::Cls2v1, 128, 3);
    let train = TrainConfig {
        n_cases: 60,
        moves_per_case: 60,
        ..TrainConfig::default()
    };
    let model = DeltaLatencyModel::train(&tc.lib, ModelKind::Hsm, &train);
    let mut tree = tc.tree.clone();
    let cfg = LocalConfig {
        max_iterations: 3,
        max_batches: 3,
        ..LocalConfig::default()
    };
    let rep = local_optimize(&mut tree, &tc.lib, &tc.floorplan, Ranker::Ml(&model), &cfg);
    println!(
        "{:.1} -> {:.1} ({} accepted, {} evals)",
        rep.variation_before,
        rep.variation_after,
        rep.iterations.len(),
        rep.golden_evals
    );
}
