//! Local iterative optimization (paper §4.2, Algorithm 2): enumerate the
//! Table-2 moves, rank them with the delta-latency predictor, realize the
//! top `R` in parallel worker threads, accept what the golden timer
//! confirms, repeat until the predictor sees no improving move.

use std::collections::BTreeMap;

use clk_liberty::{CornerId, Library};
use clk_netlist::{ClockTree, Floorplan, NodeId, SinkPair, TreeError};
use clk_obs::{kv, LedgerRecord, Level};
use clk_sta::{
    alpha_factors, local_skew_ps, try_pair_skews, variation_report, CornerTiming, Timer,
    TimingError,
};

use crate::fault::{
    FaultCtx, FaultKind, FaultSite, FlowError, PhaseBudget, PhaseProgress, RecoveryAction, TreeTxn,
};
use crate::moves::{apply_move, enumerate_moves, touched_drivers, Move, MoveConfig};
use crate::predictor::{move_features_with_sides, DeltaLatencyModel, Topo};
use clk_delay::WireModel;

/// How candidate moves are ranked before golden verification — the ML
/// predictor in the paper's flow, with the analytical and random rankers
/// kept as the Fig. 6 / Fig. 8 baselines.
#[derive(Debug, Clone, Copy)]
pub enum Ranker<'a> {
    /// The trained per-corner ML model (the paper's flow).
    Ml(&'a DeltaLatencyModel),
    /// A single analytical estimate (Fig. 6 baselines).
    Analytic(Topo, WireModel),
    /// Uniform-random ranking (the Fig. 8 "random moves" dots).
    Random(u64),
}

/// Local-optimization knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalConfig {
    /// Moves realized per verification round (paper: R = 5 threads).
    pub moves_per_round: usize,
    /// Hard cap on accepted iterations.
    pub max_iterations: usize,
    /// Move-menu parameters (Table 2).
    pub move_cfg: MoveConfig,
    /// Candidates predicted to gain less than this are not tried, ps.
    pub min_predicted_gain_ps: f64,
    /// At most this many candidate batches per accepted iteration.
    pub max_batches: usize,
    /// Local-skew acceptance guard (factor, absolute ps) as in the global
    /// flow.
    pub skew_guard_factor: f64,
    /// Absolute allowance of the skew guard, ps.
    pub skew_guard_ps: f64,
    /// Budget of golden-timer evaluations (fair-comparison knob for the
    /// Fig. 8 baselines; effectively unlimited by default).
    pub max_golden_evals: usize,
    /// Worker threads evaluating candidates per batch; `0` = one per
    /// available core. QoR is byte-identical for every value: workers
    /// only read the committed tree and score private clones, results
    /// are scattered back by candidate index, and the commit decision
    /// is taken sequentially in slot order.
    pub workers: usize,
}

impl Default for LocalConfig {
    fn default() -> Self {
        LocalConfig {
            moves_per_round: 5,
            max_iterations: 25,
            move_cfg: MoveConfig::default(),
            min_predicted_gain_ps: 0.05,
            max_batches: 8,
            skew_guard_factor: 1.02,
            skew_guard_ps: 2.0,
            max_golden_evals: usize::MAX,
            workers: 0,
        }
    }
}

/// One accepted move of the trace (the Fig. 8 series).
#[derive(Debug, Clone, PartialEq)]
pub struct IterationRecord {
    /// Paper move type (1, 2 or 3) of the accepted move.
    pub move_type: u8,
    /// Sum of variation after accepting it, ps.
    pub variation_sum: f64,
}

/// Why a realized candidate was not committed — every worker outcome is
/// accounted for here instead of being silently dropped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CandidateRejects {
    /// The move could not be applied to the trial tree (typed
    /// [`TreeError`] from the move engine).
    pub apply_failed: usize,
    /// The golden timer could not time the trial tree.
    pub timing_failed: usize,
    /// The trial would have created new DRC violations.
    pub drc: usize,
    /// The worker thread panicked; the candidate was isolated and
    /// skipped.
    pub panicked: usize,
    /// Timed clean but worse (or guard-violating) than the incumbent.
    pub not_improving: usize,
}

impl CandidateRejects {
    /// Total candidates rejected for any reason.
    pub fn total(&self) -> usize {
        self.apply_failed + self.timing_failed + self.drc + self.panicked + self.not_improving
    }
}

/// Outcome of the local optimization.
#[derive(Debug, Clone)]
pub struct LocalReport {
    /// Sum of normalized skew variation before, ps.
    pub variation_before: f64,
    /// Sum after the last accepted move, ps.
    pub variation_after: f64,
    /// Accepted-move trace (one entry per accepted iteration).
    pub iterations: Vec<IterationRecord>,
    /// Golden-timer evaluations spent.
    pub golden_evals: usize,
    /// Typed accounting of every rejected candidate.
    pub rejects: CandidateRejects,
}

/// A worker's typed failure.
#[derive(Debug, Clone)]
enum CandidateFailure {
    Apply(TreeError),
    Timing(TimingError),
    Drc { violations: usize, baseline: usize },
}

/// Runs Algorithm 2 on `tree` in place.
///
/// # Panics
///
/// Panics if the incoming tree cannot be timed; use
/// [`local_optimize_checked`] for a typed error instead.
pub fn local_optimize(
    tree: &mut ClockTree,
    lib: &Library,
    fp: &Floorplan,
    ranker: Ranker<'_>,
    cfg: &LocalConfig,
) -> LocalReport {
    local_optimize_guarded(tree, lib, fp, ranker, cfg, None)
}

/// [`local_optimize`] with an explicit local-skew guard baseline
/// (ps per corner); `None` derives it from the incoming tree. Flows pass
/// the original tree's skews so per-phase guards do not compound.
///
/// # Panics
///
/// Panics if the incoming tree cannot be timed; use
/// [`local_optimize_checked`] for a typed error instead.
pub fn local_optimize_guarded(
    tree: &mut ClockTree,
    lib: &Library,
    fp: &Floorplan,
    ranker: Ranker<'_>,
    cfg: &LocalConfig,
    guard_baseline: Option<&[f64]>,
) -> LocalReport {
    let mut ctx = FaultCtx::passive();
    match local_optimize_checked(
        tree,
        lib,
        fp,
        ranker,
        cfg,
        guard_baseline,
        &mut ctx,
        &PhaseBudget::unlimited(),
    ) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// The checked core of Algorithm 2: runs on `tree` in place under a
/// fault context (injection plan, fault log, deadline) and a phase
/// budget, returning typed errors instead of panicking.
///
/// Worker-thread failures (typed or panics) are isolated per candidate:
/// a poisoned candidate is counted in [`LocalReport::rejects`] (panics
/// are also recorded in the fault log) and can never corrupt the
/// committed tree, which only ever advances through a verified
/// [`TreeTxn`] commit.
///
/// # Errors
///
/// [`FlowError::Timing`] when the *incoming* tree cannot be timed —
/// everything after that baseline is absorbed and degraded.
#[allow(clippy::too_many_arguments)]
pub fn local_optimize_checked(
    tree: &mut ClockTree,
    lib: &Library,
    fp: &Floorplan,
    ranker: Ranker<'_>,
    cfg: &LocalConfig,
    guard_baseline: Option<&[f64]>,
    ctx: &mut FaultCtx<'_>,
    budget: &PhaseBudget,
) -> Result<LocalReport, FlowError> {
    // the coordinator's timer observes the phase deadline; candidate
    // workers deliberately do NOT (a shared deadline observed from
    // racing threads would make the accepted-move sequence depend on
    // scheduling). Cancellation is acknowledged at coordinator safe
    // points: iteration top, candidate-scoring stride, batch boundary.
    let timer = Timer::golden().with_deadline(ctx.deadline.clone());
    let pairs: Vec<SinkPair> = tree.sink_pairs().to_vec();
    // alphas are an input parameter fixed on the incoming tree
    let analyses0 = timer.try_analyze_all(tree, lib)?;
    let skews0 = analyses0
        .iter()
        .map(|t| try_pair_skews(t, &pairs))
        .collect::<Result<Vec<_>, _>>()?;
    let alphas = alpha_factors(&skews0);
    let variation_before = variation_report(&skews0, &alphas, None).sum;
    let guard: Vec<f64> = match guard_baseline {
        Some(b) => b
            .iter()
            .map(|s| s * cfg.skew_guard_factor + cfg.skew_guard_ps)
            .collect(),
        None => skews0
            .iter()
            .map(|s| local_skew_ps(s) * cfg.skew_guard_factor + cfg.skew_guard_ps)
            .collect(),
    };

    let mut rng_state = match ranker {
        Ranker::Random(seed) => seed | 1,
        _ => 1,
    };
    let mut xorshift = move || {
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        rng_state
    };

    let mut report = LocalReport {
        variation_before,
        variation_after: variation_before,
        iterations: Vec::new(),
        golden_evals: 0,
        rejects: CandidateRejects::default(),
    };
    let mut current_sum = variation_before;
    let obs = ctx.obs.clone();
    // decision-ledger checkpoints are priced under the flow-level α*
    // (published at flow init); the accept decisions below keep using the
    // phase-local alphas, so QoR behavior is unchanged by ledgering
    let ledger = obs.ledger();
    let star_owned = ledger.alphas();
    let star: Option<&[f64]> = ledger
        .is_enabled()
        .then(|| star_owned.as_deref().unwrap_or(&alphas));
    // the paper's guarantee: no new max-cap / max-transition violations
    let drc_baseline: usize = analyses0.iter().map(|t| t.violations().len()).sum();

    let max_iterations = budget.clamp_iterations(cfg.max_iterations);
    if max_iterations < cfg.max_iterations {
        ctx.record(
            "local",
            FaultKind::IterationBudget,
            RecoveryAction::Degrade,
            format!(
                "iterations capped {} -> {max_iterations}",
                cfg.max_iterations
            ),
        );
    }

    // resolved once per phase: the stripe width of every batch
    let workers = if cfg.workers == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        cfg.workers
    };
    obs.gauge_set("local.workers", workers as i64);

    let mut interrupted = false;
    'outer: for iter in 0..max_iterations {
        let mut iter_span = obs.span_at(Level::Debug, "local.iter", vec![kv("iter", iter as u64)]);
        if ctx.out_of_time() {
            ctx.record_interrupt(
                "local",
                RecoveryAction::Degrade,
                format!(
                    "deadline cut after {} accepted moves; returning best-so-far",
                    report.iterations.len()
                ),
            );
            iter_span.record("outcome", "interrupted");
            interrupted = true;
            break;
        }
        if report.golden_evals >= cfg.max_golden_evals {
            break;
        }
        // the committed tree is always re-timeable, so an interrupt here
        // is the deadline cutting the walk, not a broken tree
        let timings: Vec<CornerTiming> = match timer.try_analyze_all(tree, lib) {
            Ok(t) => t,
            Err(TimingError::Interrupted) => {
                ctx.record_interrupt(
                    "local",
                    RecoveryAction::Degrade,
                    format!(
                        "deadline cut re-timing at iteration {iter}; returning best-so-far ({} accepted moves)",
                        report.iterations.len()
                    ),
                );
                iter_span.record("outcome", "interrupted");
                interrupted = true;
                break;
            }
            Err(e) => return Err(e.into()),
        };
        // golden per-corner local skews of the committed tree: the
        // baseline for per-candidate ledger deltas (ledger runs only)
        let cur_locals: Option<Vec<f64>> = star.and_then(|_| {
            timings
                .iter()
                .map(|t| try_pair_skews(t, &pairs).map(|s| local_skew_ps(&s)))
                .collect::<Result<Vec<_>, _>>()
                .ok()
        });
        let moves = enumerate_moves(tree, lib, &cfg.move_cfg, None);
        if moves.is_empty() {
            break;
        }
        // ---- rank all candidates by predicted variation reduction ----
        let predict_prof = obs.prof_scope("local.predict");
        let mut scored: Vec<(f64, Move)> = Vec::with_capacity(moves.len());
        let mut subtree_cache: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        for (mv_no, mv) in moves.into_iter().enumerate() {
            if mv_no % 64 == 0 && mv_no > 0 && ctx.out_of_time() {
                ctx.record_interrupt(
                    "local",
                    RecoveryAction::Degrade,
                    format!(
                        "deadline cut scoring candidate {mv_no} at iteration {iter}; returning best-so-far"
                    ),
                );
                iter_span.record("outcome", "interrupted");
                interrupted = true;
                break 'outer;
            }
            let gain = match ranker {
                Ranker::Random(_) => (xorshift() % 1_000) as f64,
                _ => predict_move_gain(
                    tree,
                    lib,
                    &timings,
                    &pairs,
                    &alphas,
                    &mv,
                    &cfg.move_cfg,
                    ranker,
                    &mut subtree_cache,
                ),
            };
            if gain > cfg.min_predicted_gain_ps {
                scored.push((gain, mv));
            }
        }
        drop(predict_prof);
        iter_span.record("predicted_positive", scored.len() as u64);
        obs.count("local.predicted_positive", scored.len() as u64);
        if scored.is_empty() {
            obs.event(Level::Debug, "local.no_candidates", Vec::new());
            iter_span.record("outcome", "no_candidates");
            break;
        }
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));
        if obs.at(Level::Trace) {
            let top: Vec<String> = scored
                .iter()
                .take(5)
                .map(|(g, m)| format!("{m} (+{g:.2})"))
                .collect();
            obs.event(
                Level::Trace,
                "local.candidates",
                vec![kv("count", scored.len() as u64), kv("top", top.join(" | "))],
            );
        }

        // ---- realize batches of R moves until one verifies ----
        for (batch_no, batch) in scored
            .chunks(cfg.moves_per_round.max(1))
            .take(cfg.max_batches)
            .enumerate()
        {
            // batch boundary: the last committed tree is the result, so a
            // cut here costs at most one in-flight batch of evaluations
            if ctx.out_of_time() {
                ctx.record_interrupt(
                    "local",
                    RecoveryAction::Degrade,
                    format!(
                        "deadline cut before batch {batch_no} at iteration {iter}; returning best-so-far ({} accepted moves)",
                        report.iterations.len()
                    ),
                );
                iter_span.record("outcome", "interrupted");
                interrupted = true;
                break 'outer;
            }
            let mut batch_span = obs.span_at(
                Level::Debug,
                "local.batch",
                vec![
                    kv("batch", batch_no as u64),
                    kv("candidates", batch.len() as u64),
                ],
            );
            let _batch_prof = obs.prof_scope("local.batch");
            // Realize and golden-time the candidates on a striped pool
            // of `workers` scoped threads (the paper uses R threads;
            // with one worker this degrades gracefully to sequential
            // evaluation). Worker `w` owns candidate slots w, w+W,
            // w+2W, ... — a fixed assignment, so which thread evaluates
            // a candidate never depends on scheduling. Each candidate
            // is wrapped in its own `catch_unwind`: a typed failure or
            // a panic poisons that slot only, and the committed tree is
            // untouched either way because workers only ever mutate
            // their private clone. Timing is cone-limited incremental
            // re-propagation from the committed tree's per-corner
            // analyses — bit-identical to a full golden re-analysis,
            // just skipping the untouched cone.
            let pairs_ref = &pairs;
            let alphas_ref = &alphas;
            let timings_ref = &timings;
            let plan = ctx.plan;
            let prof = obs.profiler();
            type CandidateResult =
                Result<(f64, Vec<f64>, Option<f64>, ClockTree), CandidateFailure>;
            /// slot-indexed results one worker's stripe produced
            type Stripe = Vec<(usize, Option<CandidateResult>)>;
            let n_workers = workers.min(batch.len()).max(1);
            let mut results: Vec<Option<CandidateResult>> =
                (0..batch.len()).map(|_| None).collect();
            let per_worker: Vec<Option<Stripe>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..n_workers)
                    .map(|w| {
                        let tree_ref: &ClockTree = tree;
                        let prof = prof.clone();
                        // clk-analyze: allow(A101) PROF_STACK is thread_local: each worker roots its own attribution subtree, no cross-thread sharing
                        scope.spawn(move || {
                            let mut out: Stripe =
                                Vec::with_capacity(batch.len().div_ceil(n_workers));
                            for i in (w..batch.len()).step_by(n_workers) {
                                let mv = &batch[i].1;
                                // per-candidate isolation: a panic
                                // poisons this slot, not the stripe
                                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                                    || -> CandidateResult {
                                        // workers root their own
                                        // attribution subtree
                                        // (thread-scoped nesting)
                                        let _eval_prof = prof.scope("local.eval");
                                        if plan.is_some_and(|p| p.fire(FaultSite::WorkerPanic)) {
                                            // clk-analyze: allow(A005) deliberate chaos-injection panic, absorbed by the phase transaction
                                            panic!("chaos: injected worker panic");
                                        }
                                        let dirty = touched_drivers(tree_ref, mv);
                                        let mut trial = tree_ref.clone();
                                        {
                                            let _g = prof.scope("apply");
                                            apply_move(&mut trial, lib, fp, &cfg.move_cfg, mv)
                                                .map_err(CandidateFailure::Apply)?;
                                        }
                                        let sta_prof = prof.scope("golden_sta");
                                        let analyses = Timer::golden()
                                            .try_analyze_all_incremental(
                                                &trial,
                                                lib,
                                                timings_ref,
                                                &dirty,
                                            )
                                            .map_err(CandidateFailure::Timing)?;
                                        drop(sta_prof);
                                        let _score_prof = prof.scope("score");
                                        let drc: usize =
                                            analyses.iter().map(|t| t.violations().len()).sum();
                                        if drc > drc_baseline {
                                            return Err(CandidateFailure::Drc {
                                                violations: drc,
                                                baseline: drc_baseline,
                                            });
                                        }
                                        let skews = analyses
                                            .iter()
                                            .map(|t| try_pair_skews(t, pairs_ref))
                                            .collect::<Result<Vec<_>, _>>()
                                            .map_err(CandidateFailure::Timing)?;
                                        let sum = variation_report(&skews, alphas_ref, None).sum;
                                        let locals: Vec<f64> =
                                            skews.iter().map(|s| local_skew_ps(s)).collect();
                                        let sum_star =
                                            star.map(|sa| variation_report(&skews, sa, None).sum);
                                        Ok((sum, locals, sum_star, trial))
                                    },
                                ))
                                .ok();
                                out.push((i, r));
                            }
                            out
                        })
                    })
                    .collect();
                // a worker thread dying outside the per-candidate
                // guard leaves its stripe's slots None (counted as
                // panicked), never aborts the phase
                handles.into_iter().map(|h| h.join().ok()).collect()
            });
            // scatter by slot index: result order is the candidate
            // order, independent of worker count or completion order
            for stripe in per_worker.into_iter().flatten() {
                for (i, r) in stripe {
                    results[i] = r;
                }
            }
            report.golden_evals += batch.len();
            obs.count("local.golden_evals", batch.len() as u64);

            let mut best: Option<(usize, f64)> = None;
            let slot_base = (batch_no * cfg.moves_per_round.max(1)) as u64;
            for (i, r) in results.iter().enumerate() {
                let (outcome, measured) = match r {
                    None => {
                        report.rejects.panicked += 1;
                        obs.count("local.reject.panicked", 1);
                        ctx.record(
                            "local",
                            FaultKind::WorkerPanic,
                            RecoveryAction::Skip,
                            format!("candidate {} ({}) isolated", i, batch[i].1),
                        );
                        ("panicked", None)
                    }
                    Some(Err(CandidateFailure::Apply(e))) => {
                        report.rejects.apply_failed += 1;
                        obs.count("local.reject.apply_failed", 1);
                        let _ = e;
                        ("apply_failed", None)
                    }
                    Some(Err(CandidateFailure::Timing(e))) => {
                        report.rejects.timing_failed += 1;
                        obs.count("local.reject.timing_failed", 1);
                        let _ = e;
                        ("timing_failed", None)
                    }
                    Some(Err(CandidateFailure::Drc { .. })) => {
                        report.rejects.drc += 1;
                        obs.count("local.reject.drc", 1);
                        ("drc", None)
                    }
                    Some(Ok((sum, locals, _, _))) => {
                        let ok = locals.iter().zip(&guard).all(|(l, g)| l <= g);
                        if ok && *sum < current_sum && best.is_none_or(|(_, b)| *sum < b) {
                            best = Some((i, *sum));
                        } else {
                            report.rejects.not_improving += 1;
                            obs.count("local.reject.not_improving", 1);
                        }
                        // how far the ranker's promise missed the golden
                        // measurement, per candidate (+ = over-promised)
                        obs.observe("local.predict.err_ps", batch[i].0 - (current_sum - sum));
                        let improving = ok && *sum < current_sum;
                        (
                            if improving {
                                "improving"
                            } else {
                                "not_improving"
                            },
                            Some(current_sum - sum),
                        )
                    }
                };
                if obs.ledgering() {
                    let deltas = match r {
                        Some(Ok((_, locals, _, _))) => cur_locals
                            .as_ref()
                            .map(|cur| locals.iter().zip(cur).map(|(l, c)| l - c).collect()),
                        _ => None,
                    };
                    obs.ledger_append(LedgerRecord::LocalCand {
                        iter: iter as u64,
                        slot: slot_base + i as u64,
                        mv: batch[i].1.to_ledger_rec(),
                        predicted: batch[i].0,
                        measured,
                        deltas,
                        outcome: outcome.to_string(),
                    });
                }
            }
            if obs.at(Level::Trace) {
                let outs: Vec<String> = results
                    .iter()
                    .map(|r| match r {
                        Some(Ok((s, _, _, _))) => format!("{s:.1}"),
                        Some(Err(CandidateFailure::Drc {
                            violations,
                            baseline,
                        })) => format!("drc:{violations}>{baseline}"),
                        Some(Err(CandidateFailure::Apply(_))) => "apply!".to_string(),
                        Some(Err(CandidateFailure::Timing(_))) => "time!".to_string(),
                        None => "panic!".to_string(),
                    })
                    .collect();
                obs.event(
                    Level::Trace,
                    "local.batch_sums",
                    vec![kv("current", current_sum), kv("sums", outs.join(" "))],
                );
            }
            if let Some((i, sum)) = best {
                let Some(Some(Ok((_, _, win_star, trial)))) = results.into_iter().nth(i) else {
                    // clk-analyze: allow(A005) unreachable by construction: best index points at an Ok result
                    unreachable!("best index points at an Ok result");
                };
                // transactional commit: the verified trial replaces the
                // tree only if it holds up structurally; otherwise the
                // exact pre-batch tree is restored
                let txn = TreeTxn::begin(tree);
                *tree = trial;
                if let Err(e) = tree.validate() {
                    txn.rollback(tree);
                    ctx.record(
                        "local",
                        FaultKind::PhaseError,
                        RecoveryAction::Rollback,
                        format!("verified candidate failed validation: {e}"),
                    );
                    batch_span.record("outcome", "rollback");
                    obs.count("local.rollback", 1);
                    if obs.ledgering() {
                        obs.ledger_append(LedgerRecord::LocalCommit {
                            iter: iter as u64,
                            mv: batch[i].1.to_ledger_rec(),
                            gain: current_sum - sum,
                            committed: false,
                            var: None,
                        });
                    }
                    continue;
                }
                #[cfg(debug_assertions)]
                {
                    let report = clk_lint::LintRunner::structural()
                        .run(&clk_lint::DesignCtx::with_floorplan(tree, lib, fp));
                    if report.has_errors() {
                        txn.rollback(tree);
                        ctx.record(
                            "local",
                            FaultKind::PhaseError,
                            RecoveryAction::Rollback,
                            format!("post-commit structural lint failed:\n{}", report.to_text()),
                        );
                        batch_span.record("outcome", "rollback");
                        obs.count("local.rollback", 1);
                        if obs.ledgering() {
                            obs.ledger_append(LedgerRecord::LocalCommit {
                                iter: iter as u64,
                                mv: batch[i].1.to_ledger_rec(),
                                gain: current_sum - sum,
                                committed: false,
                                var: None,
                            });
                        }
                        continue;
                    }
                }
                txn.commit();
                if obs.ledgering() {
                    obs.ledger_append(LedgerRecord::LocalCommit {
                        iter: iter as u64,
                        mv: batch[i].1.to_ledger_rec(),
                        gain: current_sum - sum,
                        committed: true,
                        var: win_star,
                    });
                }
                current_sum = sum;
                report.variation_after = sum;
                report.iterations.push(IterationRecord {
                    move_type: batch[i].1.move_type(),
                    variation_sum: sum,
                });
                batch_span.record("outcome", "accepted");
                batch_span.record("variation_sum", sum);
                obs.count("local.accepted", 1);
                iter_span.record("outcome", "accepted");
                continue 'outer;
            }
            batch_span.record("outcome", "no_winner");
        }
        // every batch failed golden verification: terminate
        iter_span.record("outcome", "exhausted");
        break;
    }
    ctx.progress = Some(if interrupted {
        PhaseProgress::interrupted(
            "local",
            report.iterations.len(),
            max_iterations,
            ctx.deadline.trigger(),
        )
    } else {
        PhaseProgress::complete("local", report.iterations.len(), max_iterations)
    });
    if obs.enabled() {
        let accepted = report.iterations.len();
        obs.event(
            Level::Debug,
            "local.summary",
            vec![
                kv("accepted", accepted as u64),
                kv("golden_evals", report.golden_evals as u64),
                kv("rejected", report.rejects.total() as u64),
                kv(
                    "predictor_precision",
                    if report.golden_evals > 0 {
                        accepted as f64 / report.golden_evals as f64
                    } else {
                        0.0
                    },
                ),
            ],
        );
    }
    Ok(report)
}

/// Predicted reduction of the variation sum for one move: apply the
/// predicted per-subtree latency deltas to the affected sinks and re-score
/// the affected pairs. Public so experiments (Fig. 6) can rank moves with
/// any [`Ranker`] outside the full Algorithm-2 loop.
#[allow(clippy::too_many_arguments)]
pub fn predict_move_gain(
    tree: &ClockTree,
    lib: &Library,
    timings: &[CornerTiming],
    pairs: &[SinkPair],
    alphas: &[f64],
    mv: &Move,
    mcfg: &MoveConfig,
    ranker: Ranker<'_>,
    subtree_cache: &mut BTreeMap<NodeId, Vec<NodeId>>,
) -> f64 {
    let n_corners = timings.len();
    // per-corner impact sets: (subtree root, delta ps)
    let mut impacts: Vec<Vec<(NodeId, f64)>> = Vec::with_capacity(n_corners);
    for (k, timing) in timings.iter().enumerate() {
        let corner = CornerId(k);
        let (features, detail) = move_features_with_sides(tree, lib, corner, timing, mv, mcfg);
        let primary = match ranker {
            Ranker::Ml(model) => model.predict(corner, &features),
            Ranker::Analytic(topo, wm) => {
                let idx = match (topo, wm) {
                    (Topo::Flute, WireModel::Elmore) => 0,
                    (Topo::Flute, WireModel::D2m) => 1,
                    (Topo::SingleTrunk, WireModel::Elmore) => 2,
                    (Topo::SingleTrunk, WireModel::D2m) => 3,
                };
                features[idx]
            }
            // clk-analyze: allow(A005) unreachable by construction: random never predicts
            Ranker::Random(_) => unreachable!("random never predicts"),
        };
        // keep the analytical *differential* structure between the
        // children, shifted so the mean matches the (calibrated) primary
        // prediction
        let correction = primary - detail.primary_delta;
        let mut imp: Vec<(NodeId, f64)> = detail
            .per_child
            .iter()
            .map(|&(c, d)| (c, d + correction))
            .collect();
        if imp.is_empty() {
            imp.push((mv.primary_node(), primary));
        }
        imp.extend(detail.side_effects);
        impacts.push(imp);
    }
    // resolve to per-sink deltas
    let mut sink_delta: BTreeMap<NodeId, Vec<f64>> = BTreeMap::new();
    for (k, imp) in impacts.iter().enumerate() {
        for &(root, delta) in imp {
            if delta == 0.0 {
                continue;
            }
            let sinks = subtree_cache.entry(root).or_insert_with(|| {
                tree.sinks()
                    .filter(|&s| tree.is_descendant(s, root))
                    .collect()
            });
            for &s in sinks.iter() {
                sink_delta.entry(s).or_insert_with(|| vec![0.0; n_corners])[k] += delta;
            }
        }
    }
    if sink_delta.is_empty() {
        return 0.0;
    }
    // re-score affected pairs
    let mut gain = 0.0;
    for p in pairs {
        let da = sink_delta.get(&p.a);
        let db = sink_delta.get(&p.b);
        if da.is_none() && db.is_none() {
            continue;
        }
        let mut v_before: f64 = 0.0;
        let mut v_after: f64 = 0.0;
        for k in 0..n_corners {
            for k2 in (k + 1)..n_corners {
                let s_k = timings[k].arrival_ps(p.a) - timings[k].arrival_ps(p.b);
                let s_k2 = timings[k2].arrival_ps(p.a) - timings[k2].arrival_ps(p.b);
                v_before = v_before.max((alphas[k] * s_k - alphas[k2] * s_k2).abs());
                let d = |m: Option<&Vec<f64>>, kk: usize| m.map_or(0.0, |v| v[kk]);
                let ns_k = s_k + d(da, k) - d(db, k);
                let ns_k2 = s_k2 + d(da, k2) - d(db, k2);
                v_after = v_after.max((alphas[k] * ns_k - alphas[k2] * ns_k2).abs());
            }
        }
        gain += v_before - v_after;
    }
    gain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{Deadline, FaultPlan};
    use crate::predictor::{DeltaLatencyModel, ModelKind, TrainConfig};
    use clk_cts::{Testcase, TestcaseKind};
    use clk_ml::MlpConfig;

    fn quick_local() -> LocalConfig {
        LocalConfig {
            max_iterations: 4,
            max_batches: 2,
            ..LocalConfig::default()
        }
    }

    #[test]
    fn analytic_ranker_reduces_variation() {
        let tc = Testcase::generate(TestcaseKind::Cls1v1, 48, 21);
        let mut tree = tc.tree.clone();
        let report = local_optimize(
            &mut tree,
            &tc.lib,
            &tc.floorplan,
            Ranker::Analytic(Topo::Flute, WireModel::D2m),
            &quick_local(),
        );
        tree.validate().unwrap();
        assert!(report.variation_after <= report.variation_before);
        // accepted moves must strictly decrease the tracked sum
        let mut last = report.variation_before;
        for it in &report.iterations {
            assert!(it.variation_sum < last);
            last = it.variation_sum;
        }
    }

    #[test]
    fn ml_ranker_runs_end_to_end() {
        let tc = Testcase::generate(TestcaseKind::Cls1v1, 32, 22);
        let train = TrainConfig {
            n_cases: 6,
            moves_per_case: 10,
            mlp: MlpConfig {
                epochs: 40,
                ..MlpConfig::default()
            },
            ..TrainConfig::default()
        };
        let model = DeltaLatencyModel::train(&tc.lib, ModelKind::Hsm, &train);
        let mut tree = tc.tree.clone();
        let cfg = LocalConfig {
            max_iterations: 2,
            ..quick_local()
        };
        let report = local_optimize(&mut tree, &tc.lib, &tc.floorplan, Ranker::Ml(&model), &cfg);
        tree.validate().unwrap();
        assert!(report.variation_after <= report.variation_before);
    }

    #[test]
    fn random_ranker_never_degrades_committed_tree() {
        let tc = Testcase::generate(TestcaseKind::Cls1v1, 32, 23);
        let mut tree = tc.tree.clone();
        let report = local_optimize(
            &mut tree,
            &tc.lib,
            &tc.floorplan,
            Ranker::Random(99),
            &quick_local(),
        );
        // the golden gate rejects bad random moves
        assert!(report.variation_after <= report.variation_before);
    }

    #[test]
    fn injected_worker_panic_is_isolated_and_logged() {
        let tc = Testcase::generate(TestcaseKind::Cls1v1, 32, 24);
        let plan = FaultPlan::inert(5);
        plan.arm(FaultSite::WorkerPanic, 0, 2);
        let mut ctx = FaultCtx::new(Some(&plan), Deadline::none());
        let mut tree = tc.tree.clone();
        let report = local_optimize_checked(
            &mut tree,
            &tc.lib,
            &tc.floorplan,
            Ranker::Analytic(Topo::Flute, WireModel::D2m),
            &quick_local(),
            None,
            &mut ctx,
            &PhaseBudget::unlimited(),
        )
        .expect("flow survives worker panics");
        tree.validate().unwrap();
        assert!(report.variation_after <= report.variation_before);
        assert_eq!(report.rejects.panicked, plan.injected().len());
        assert_eq!(
            ctx.log.of_kind(FaultKind::WorkerPanic).count(),
            plan.injected().len()
        );
        assert!(
            !plan.injected().is_empty(),
            "plan never got an opportunity to fire"
        );
    }

    #[test]
    fn iteration_budget_degrades_and_is_logged() {
        let tc = Testcase::generate(TestcaseKind::Cls1v1, 32, 25);
        let mut ctx = FaultCtx::passive();
        let mut tree = tc.tree.clone();
        let budget = PhaseBudget {
            wall_clock: None,
            max_iterations: Some(1),
        };
        let report = local_optimize_checked(
            &mut tree,
            &tc.lib,
            &tc.floorplan,
            Ranker::Analytic(Topo::Flute, WireModel::D2m),
            &quick_local(),
            None,
            &mut ctx,
            &budget,
        )
        .expect("budgeted run completes");
        assert!(report.iterations.len() <= 1);
        assert_eq!(ctx.log.of_kind(FaultKind::IterationBudget).count(), 1);
    }
}
