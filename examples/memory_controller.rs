//! Memory-controller scenario: the L-shaped CLS2v1 testcase whose ~1 mm
//! controller↔interface datapaths make cross-corner skew variation
//! especially painful (paper §5.1). Runs the global-local flow and then
//! breaks the result down by corner and by pair distance.
//!
//! ```sh
//! cargo run --release --example memory_controller -- [n_sinks]
//! ```

// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic)]

use clk_cts::{Testcase, TestcaseKind};
use clk_liberty::CornerId;
use clk_skewopt::{optimize, Flow};
use clk_sta::{alpha_factors, pair_skews, skew_ratios, Timer};
use clockvar_workbench::{quick_flow_config, table5_header, table5_orig_row, table5_row};

fn main() {
    let n_sinks: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(80);
    println!(
        "generating {} ({n_sinks} sinks)...",
        TestcaseKind::Cls2v1.name()
    );
    let tc = Testcase::generate(TestcaseKind::Cls2v1, n_sinks, 3);
    let spans: Vec<f64> = tc
        .tree
        .sink_pairs()
        .iter()
        .map(|p| tc.tree.loc(p.a).manhattan_um(tc.tree.loc(p.b)))
        .collect();
    let long = spans.iter().filter(|&&s| s > 800.0).count();
    println!(
        "  {} sink pairs, {} of them >0.8 mm apart (controller <-> interface)",
        spans.len(),
        long
    );

    let cfg = quick_flow_config();
    let report = optimize(&tc, Flow::GlobalLocal, &cfg);
    let corner_names: Vec<String> = tc.lib.corners().iter().map(|c| c.name.clone()).collect();
    println!();
    println!("{}", table5_header(&corner_names));
    println!("{}", table5_orig_row(&report));
    println!("{}", table5_row("global-local", &report));

    // Fig. 9-style check: spread of per-pair skew ratios (c1 vs c0)
    let timer = Timer::golden();
    for (label, tree) in [("orig", &tc.tree), ("optimized", &report.tree)] {
        let skews: Vec<Vec<f64>> = timer
            .analyze_all(tree, &tc.lib)
            .iter()
            .map(|t| pair_skews(t, tree.sink_pairs()))
            .collect();
        let alphas = alpha_factors(&skews);
        let ratios = skew_ratios(&skews, 1, 0, 1.0);
        if ratios.is_empty() {
            continue;
        }
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        let var = ratios.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / ratios.len() as f64;
        println!(
            "  {label:<10} skew ratio {}/{}: mean {mean:.2}, std {:.2}  (alpha_1 = {:.2})",
            tc.lib.corner(CornerId(1)).name,
            tc.lib.corner(CornerId(0)).name,
            var.sqrt(),
            alphas[1]
        );
    }
    println!(
        "\nsum of skew variation: {:.1} -> {:.1} ps ({:.1}% reduction)",
        report.variation_before,
        report.variation_after,
        100.0 * (1.0 - report.variation_ratio())
    );
}
