//! Feature standardization.

/// Per-feature standardization to zero mean / unit variance. Constant
/// features get standard deviation 1 so they map to 0 rather than NaN.
#[derive(Debug, Clone, PartialEq)]
pub struct StandardScaler {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl StandardScaler {
    /// Fits the scaler on a feature matrix (rows = samples).
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or rows have inconsistent widths.
    pub fn fit(xs: &[Vec<f64>]) -> Self {
        assert!(!xs.is_empty(), "cannot fit a scaler on no samples");
        let d = xs[0].len();
        let n = xs.len() as f64;
        let mut mean = vec![0.0; d];
        for x in xs {
            assert_eq!(x.len(), d, "inconsistent feature width");
            for (m, v) in mean.iter_mut().zip(x) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; d];
        for x in xs {
            for ((s, v), m) in var.iter_mut().zip(x).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        let std = var
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s < 1e-12 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        StandardScaler { mean, std }
    }

    /// Standardizes one sample.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        x.iter()
            .zip(self.mean.iter().zip(&self.std))
            .map(|(v, (m, s))| (v - m) / s)
            .collect()
    }

    /// Standardizes a batch.
    pub fn transform_batch(&self, xs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        xs.iter().map(|x| self.transform(x)).collect()
    }

    /// Reverses [`StandardScaler::transform`].
    pub fn inverse(&self, z: &[f64]) -> Vec<f64> {
        z.iter()
            .zip(self.mean.iter().zip(&self.std))
            .map(|(v, (m, s))| v * s + m)
            .collect()
    }

    /// Number of features.
    pub fn width(&self) -> usize {
        self.mean.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_to_zero_mean_unit_var() {
        let xs = vec![vec![1.0, 10.0], vec![3.0, 20.0], vec![5.0, 60.0]];
        let sc = StandardScaler::fit(&xs);
        let zs = sc.transform_batch(&xs);
        for d in 0..2 {
            let mean: f64 = zs.iter().map(|z| z[d]).sum::<f64>() / 3.0;
            let var: f64 = zs.iter().map(|z| z[d] * z[d]).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn inverse_roundtrips() {
        let xs = vec![vec![2.0, -1.0], vec![4.0, 5.0], vec![9.0, 0.0]];
        let sc = StandardScaler::fit(&xs);
        for x in &xs {
            let back = sc.inverse(&sc.transform(x));
            for (a, b) in back.iter().zip(x) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn constant_feature_maps_to_zero() {
        let xs = vec![vec![7.0], vec![7.0], vec![7.0]];
        let sc = StandardScaler::fit(&xs);
        assert_eq!(sc.transform(&[7.0]), vec![0.0]);
    }
}
