//! Feed-forward neural network (the paper's ANN predictor class).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Regressor;

/// Training configuration for [`Mlp`].
#[derive(Debug, Clone, PartialEq)]
pub struct MlpConfig {
    /// Hidden-layer widths (tanh activations; output is linear).
    pub hidden: Vec<usize>,
    /// SGD learning rate.
    pub lr: f64,
    /// Momentum coefficient.
    pub momentum: f64,
    /// Full passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// L2 weight decay.
    pub l2: f64,
    /// RNG seed (initialization + shuffling) — training is deterministic.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            hidden: vec![16, 8],
            lr: 0.02,
            momentum: 0.9,
            epochs: 200,
            batch: 16,
            l2: 1e-5,
            seed: 7,
        }
    }
}

/// A trained multi-layer perceptron with scalar output.
#[derive(Debug, Clone)]
pub struct Mlp {
    /// `weights[l]` is (out × in) row-major; `biases[l]` is out-sized.
    weights: Vec<Vec<f64>>,
    biases: Vec<Vec<f64>>,
    dims: Vec<usize>,
}

impl Mlp {
    /// Trains on `(xs, ys)` with mini-batch SGD + momentum.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty, widths are inconsistent, or
    /// `xs.len() != ys.len()`.
    pub fn train(xs: &[Vec<f64>], ys: &[f64], cfg: &MlpConfig) -> Self {
        assert!(!xs.is_empty(), "no training samples");
        assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
        let d_in = xs[0].len();
        assert!(xs.iter().all(|x| x.len() == d_in), "inconsistent width");
        let mut dims = vec![d_in];
        dims.extend_from_slice(&cfg.hidden);
        dims.push(1);

        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut weights: Vec<Vec<f64>> = Vec::new();
        let mut biases: Vec<Vec<f64>> = Vec::new();
        for l in 0..dims.len() - 1 {
            let (fan_in, fan_out) = (dims[l], dims[l + 1]);
            let scale = (2.0 / (fan_in + fan_out) as f64).sqrt();
            weights.push(
                (0..fan_in * fan_out)
                    .map(|_| rng.gen_range(-scale..scale))
                    .collect(),
            );
            biases.push(vec![0.0; fan_out]);
        }
        let mut vel_w: Vec<Vec<f64>> = weights.iter().map(|w| vec![0.0; w.len()]).collect();
        let mut vel_b: Vec<Vec<f64>> = biases.iter().map(|b| vec![0.0; b.len()]).collect();

        let mut order: Vec<usize> = (0..xs.len()).collect();
        let n_layers = dims.len() - 1;
        for _epoch in 0..cfg.epochs {
            // Fisher-Yates shuffle
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for chunk in order.chunks(cfg.batch.max(1)) {
                let mut grad_w: Vec<Vec<f64>> =
                    weights.iter().map(|w| vec![0.0; w.len()]).collect();
                let mut grad_b: Vec<Vec<f64>> = biases.iter().map(|b| vec![0.0; b.len()]).collect();
                for &s in chunk {
                    // forward
                    let mut acts: Vec<Vec<f64>> = vec![xs[s].clone()];
                    for l in 0..n_layers {
                        let (din, dout) = (dims[l], dims[l + 1]);
                        let mut z = vec![0.0; dout];
                        for o in 0..dout {
                            let mut v = biases[l][o];
                            let wrow = &weights[l][o * din..(o + 1) * din];
                            for (wi, ai) in wrow.iter().zip(&acts[l]) {
                                v += wi * ai;
                            }
                            z[o] = if l + 1 == n_layers { v } else { v.tanh() };
                        }
                        acts.push(z);
                    }
                    // backward (MSE loss, scalar output)
                    let pred = acts[n_layers][0];
                    let mut delta = vec![pred - ys[s]]; // dL/dz at output
                    for l in (0..n_layers).rev() {
                        let (din, dout) = (dims[l], dims[l + 1]);
                        for o in 0..dout {
                            grad_b[l][o] += delta[o];
                            let wrow = &mut grad_w[l][o * din..(o + 1) * din];
                            for (gi, ai) in wrow.iter_mut().zip(&acts[l]) {
                                *gi += delta[o] * ai;
                            }
                        }
                        if l > 0 {
                            let mut next = vec![0.0; din];
                            for (i, nx) in next.iter_mut().enumerate() {
                                let mut v = 0.0;
                                for o in 0..dout {
                                    v += weights[l][o * din + i] * delta[o];
                                }
                                // tanh' = 1 - a²
                                let a = acts[l][i];
                                *nx = v * (1.0 - a * a);
                            }
                            delta = next;
                        }
                    }
                }
                // SGD + momentum step
                let scale = cfg.lr / chunk.len() as f64;
                for l in 0..n_layers {
                    for (w, (g, v)) in weights[l]
                        .iter_mut()
                        .zip(grad_w[l].iter().zip(vel_w[l].iter_mut()))
                    {
                        *v = cfg.momentum * *v - scale * (g + cfg.l2 * *w);
                        *w += *v;
                    }
                    for (b, (g, v)) in biases[l]
                        .iter_mut()
                        .zip(grad_b[l].iter().zip(vel_b[l].iter_mut()))
                    {
                        *v = cfg.momentum * *v - scale * g;
                        *b += *v;
                    }
                }
            }
        }
        Mlp {
            weights,
            biases,
            dims,
        }
    }

    /// Input width the network expects.
    pub fn input_width(&self) -> usize {
        self.dims[0]
    }
}

impl Regressor for Mlp {
    fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dims[0], "feature width mismatch");
        let n_layers = self.dims.len() - 1;
        let mut act = x.to_vec();
        for l in 0..n_layers {
            let (din, dout) = (self.dims[l], self.dims[l + 1]);
            let mut z = vec![0.0; dout];
            for (o, zo) in z.iter_mut().enumerate() {
                let mut v = self.biases[l][o];
                let wrow = &self.weights[l][o * din..(o + 1) * din];
                for (wi, ai) in wrow.iter().zip(&act) {
                    v += wi * ai;
                }
                *zo = if l + 1 == n_layers { v } else { v.tanh() };
            }
            act = z;
        }
        act[0]
    }
}

#[cfg(test)]
// tests pin exact expected values on purpose
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::{mse, Regressor};

    fn grid() -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..144)
            .map(|i| vec![f64::from(i % 12) / 12.0, f64::from(i / 12) / 12.0])
            .collect();
        let ys = xs.iter().map(|x| 1.0 + 2.0 * x[0] - 3.0 * x[1]).collect();
        (xs, ys)
    }

    #[test]
    fn learns_linear_function() {
        let (xs, ys) = grid();
        let m = Mlp::train(&xs, &ys, &MlpConfig::default());
        let preds = m.predict_batch(&xs);
        assert!(mse(&preds, &ys) < 0.01, "mse = {}", mse(&preds, &ys));
    }

    #[test]
    fn learns_mild_nonlinearity() {
        let xs: Vec<Vec<f64>> = (0..200).map(|i| vec![f64::from(i) / 100.0 - 1.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * x[0]).collect();
        let cfg = MlpConfig {
            epochs: 400,
            ..MlpConfig::default()
        };
        let m = Mlp::train(&xs, &ys, &cfg);
        let preds = m.predict_batch(&xs);
        assert!(mse(&preds, &ys) < 0.01, "mse = {}", mse(&preds, &ys));
    }

    #[test]
    fn deterministic_given_seed() {
        let (xs, ys) = grid();
        let cfg = MlpConfig {
            epochs: 10,
            ..MlpConfig::default()
        };
        let a = Mlp::train(&xs, &ys, &cfg).predict(&[0.3, 0.6]);
        let b = Mlp::train(&xs, &ys, &cfg).predict(&[0.3, 0.6]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn predict_checks_width() {
        let (xs, ys) = grid();
        let cfg = MlpConfig {
            epochs: 1,
            ..MlpConfig::default()
        };
        let m = Mlp::train(&xs, &ys, &cfg);
        let _ = m.predict(&[1.0]);
    }
}
