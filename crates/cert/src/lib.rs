#![warn(missing_docs)]

//! Exact-arithmetic certificate checking for `clk-lp` — proof-carrying
//! optimization for the global phase of the DAC'15 flow.
//!
//! Every successful simplex solve emits a [`clk_lp::Certificate`] (final
//! basis, row duals, reduced costs) and every infeasible solve emits a
//! [`clk_lp::FarkasRay`]. This crate re-verifies those claims in exact
//! dyadic-rational arithmetic ([`BigRat`]) built from the `f64` bit
//! patterns: primal feasibility, dual feasibility, reduced-cost
//! consistency, complementary slackness via strong duality, and — for
//! infeasible outcomes — the Farkas gap. **No floating-point comparison
//! or arithmetic appears anywhere in the verification path** (enforced by
//! `clippy::float_cmp` / `clippy::float_arithmetic` denies); tolerances
//! are exact powers of two scaled by exactly-accumulated magnitudes.
//!
//! ```
//! use clk_lp::{Problem, RowKind};
//!
//! let mut p = Problem::new();
//! let x = p.add_var(0.0, 10.0, -1.0)?;
//! p.add_row(RowKind::Le, 4.0, &[(x, 1.0)])?;
//! let sol = clk_lp::solve(&p)?;
//! let report = clk_cert::check(&p, &sol);
//! assert!(report.ok(), "{:?}", report.violations);
//! # Ok::<(), clk_lp::LpError>(())
//! ```

#![cfg_attr(not(test), deny(clippy::float_cmp, clippy::float_arithmetic))]
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::panic, clippy::expect_used)
)]
#![cfg_attr(not(test), deny(clippy::indexing_slicing))]

pub mod check;
pub mod rat;

pub use check::{
    check, check_certified, check_infeasible, check_infeasible_with, check_with, CheckConfig,
    Report, Violation,
};
pub use rat::BigRat;
