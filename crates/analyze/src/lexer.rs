//! A lightweight, panic-free Rust tokenizer.
//!
//! The analysis passes are *lexical*: they work on a token stream with
//! line numbers, not on a parsed AST. The lexer therefore only has to
//! get the things right that would otherwise corrupt the stream —
//! comments, string/char/lifetime literals (including raw and byte
//! strings), and numbers — and can treat everything else as identifier
//! or punctuation tokens. It must never panic, whatever bytes it is
//! fed; `tests/props.rs` drives it with arbitrary input.

/// Token classification, deliberately coarse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`for`, `HashMap`, `unwrap`, ...).
    Ident,
    /// Punctuation; multi-character operators from [`MULTI_PUNCT`] are
    /// kept as one token (`::`, `+=`, `->`, ...).
    Punct,
    /// Numeric literal (integer or float, suffix included).
    Num,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`) or loop label (`'outer`).
    Lifetime,
}

/// One token with its 1-indexed source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Classification.
    pub kind: TokKind,
    /// Literal text, e.g. `"HashMap"` or `"+="`. String/char tokens
    /// keep only their delimiters' first character to stay small.
    pub text: String,
    /// 1-indexed line the token starts on.
    pub line: u32,
}

/// One comment (line or block) with the line its text starts on.
///
/// Comments are stripped from the token stream but retained separately
/// because suppression directives (`// clk-analyze: allow(...)`) live
/// in them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-indexed line the comment starts on.
    pub line: u32,
    /// Comment body without the `//` / `/*` markers, first line only
    /// for block comments (directives must fit on one line).
    pub text: String,
}

/// Multi-character operators the passes care about. Longest match wins;
/// anything else becomes a single-character `Punct`.
const MULTI_PUNCT: &[&str] = &[
    "..=", "::", "->", "=>", "..", "&&", "||", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=",
    "%=", "^=", "|=", "&=", "<<", ">>",
];

/// Tokenizes `src`, returning the token stream and the comments.
///
/// Invalid or truncated input never panics; the lexer simply does its
/// best (an unterminated string swallows the rest of the file, which is
/// exactly what rustc would refuse to compile anyway).
pub fn tokenize(src: &str) -> (Vec<Token>, Vec<Comment>) {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // byte-level helpers; multi-byte UTF-8 continuation bytes are >= 0x80
    // and simply fall through to the "other punct" arm, which is fine —
    // non-ASCII identifiers do not occur in codes the passes match on.
    let is_ident_start = |b: u8| b.is_ascii_alphabetic() || b == b'_';
    let is_ident_cont = |b: u8| b.is_ascii_alphanumeric() || b == b'_';

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\n' {
                    j += 1;
                }
                comments.push(Comment {
                    line,
                    text: String::from_utf8_lossy(&bytes[start..j]).into_owned(),
                });
                i = j; // the newline itself is handled above
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                let start = i + 2;
                let mut j = start;
                let mut depth = 1u32;
                let mut first_line_end = None;
                while j < bytes.len() && depth > 0 {
                    match bytes[j] {
                        b'\n' => {
                            if first_line_end.is_none() {
                                first_line_end = Some(j);
                            }
                            line += 1;
                            j += 1;
                        }
                        b'/' if bytes.get(j + 1) == Some(&b'*') => {
                            depth += 1;
                            j += 2;
                        }
                        b'*' if bytes.get(j + 1) == Some(&b'/') => {
                            depth -= 1;
                            j += 2;
                        }
                        _ => j += 1,
                    }
                }
                let text_end = first_line_end.unwrap_or_else(|| j.saturating_sub(2).max(start));
                comments.push(Comment {
                    line: start_line,
                    text: String::from_utf8_lossy(&bytes[start..text_end.min(bytes.len())])
                        .into_owned(),
                });
                i = j;
            }
            b'"' => {
                let tok_line = line;
                i = skip_string(bytes, i + 1, &mut line);
                toks.push(Token {
                    kind: TokKind::Str,
                    text: "\"".to_string(),
                    line: tok_line,
                });
            }
            b'r' | b'b' if raw_string_hashes(bytes, i).is_some() => {
                // r"...", r#"..."#, br#"..."#, b"..."
                let tok_line = line;
                let (hashes, body_start) = match raw_string_hashes(bytes, i) {
                    Some(h) => h,
                    None => (0, i + 1), // unreachable; keeps the lexer total
                };
                i = skip_raw_string(bytes, body_start, hashes, &mut line);
                toks.push(Token {
                    kind: TokKind::Str,
                    text: "\"".to_string(),
                    line: tok_line,
                });
            }
            b'\'' => {
                // lifetime/label vs char literal
                let tok_line = line;
                let next = bytes.get(i + 1).copied();
                if next.is_some_and(is_ident_start) && bytes.get(i + 2) != Some(&b'\'') {
                    // 'ident not closed by a quote -> lifetime/label
                    let mut j = i + 1;
                    while j < bytes.len() && is_ident_cont(bytes[j]) {
                        j += 1;
                    }
                    toks.push(Token {
                        kind: TokKind::Lifetime,
                        text: String::from_utf8_lossy(&bytes[i..j]).into_owned(),
                        line: tok_line,
                    });
                    i = j;
                } else {
                    i = skip_char_literal(bytes, i + 1, &mut line);
                    toks.push(Token {
                        kind: TokKind::Char,
                        text: "'".to_string(),
                        line: tok_line,
                    });
                }
            }
            _ if is_ident_start(b) => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && is_ident_cont(bytes[j]) {
                    j += 1;
                }
                // b'x' / b"s" are handled above via the b-prefix checks;
                // a lone `b` followed by a quote that was not raw falls
                // back here and the quote lexes as its own token, which
                // is harmless for the passes.
                toks.push(Token {
                    kind: TokKind::Ident,
                    text: String::from_utf8_lossy(&bytes[start..j]).into_owned(),
                    line,
                });
                i = j;
            }
            _ if b.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                let mut seen_dot = false;
                while j < bytes.len() {
                    let c = bytes[j];
                    if c.is_ascii_alphanumeric() || c == b'_' {
                        j += 1;
                    } else if c == b'.'
                        && !seen_dot
                        && bytes.get(j + 1).is_some_and(u8::is_ascii_digit)
                    {
                        // 1.5 but not 1..2 and not 1.method()
                        seen_dot = true;
                        j += 1;
                    } else if (c == b'+' || c == b'-')
                        && j > start
                        && matches!(bytes[j - 1], b'e' | b'E')
                        && bytes.get(j + 1).is_some_and(u8::is_ascii_digit)
                    {
                        j += 1; // exponent sign: 1e-9
                    } else {
                        break;
                    }
                }
                toks.push(Token {
                    kind: TokKind::Num,
                    text: String::from_utf8_lossy(&bytes[start..j]).into_owned(),
                    line,
                });
                i = j;
            }
            _ => {
                // punctuation: longest multi-char operator first
                let rest = &bytes[i..];
                let mut matched = None;
                for op in MULTI_PUNCT {
                    if rest.starts_with(op.as_bytes()) {
                        matched = Some(*op);
                        break;
                    }
                }
                if let Some(op) = matched {
                    toks.push(Token {
                        kind: TokKind::Punct,
                        text: op.to_string(),
                        line,
                    });
                    i += op.len();
                } else {
                    toks.push(Token {
                        kind: TokKind::Punct,
                        text: String::from_utf8_lossy(&bytes[i..i + 1]).into_owned(),
                        line,
                    });
                    i += 1;
                }
            }
        }
    }
    (toks, comments)
}

/// Detects a raw/byte string opener at `i` (`r`, `br`, `b` followed by
/// `#*"`); returns `(hash_count, index just past the opening quote)`.
fn raw_string_hashes(bytes: &[u8], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if bytes.get(j) == Some(&b'b') {
        j += 1;
    }
    if bytes.get(j) == Some(&b'r') {
        j += 1;
        let mut hashes = 0usize;
        while bytes.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        if bytes.get(j) == Some(&b'"') {
            return Some((hashes, j + 1));
        }
        return None;
    }
    // plain byte string b"..."
    if j > i && bytes.get(j) == Some(&b'"') {
        return Some((0, j + 1));
    }
    None
}

/// Skips a cooked string body starting just after the opening `"`.
fn skip_string(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i = (i + 2).min(bytes.len()),
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skips a raw string body until `"` followed by `hashes` `#`s.
fn skip_raw_string(bytes: &[u8], mut i: usize, hashes: usize, line: &mut u32) -> usize {
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if bytes[i] == b'"' {
            let mut j = i + 1;
            let mut h = 0usize;
            while h < hashes && bytes.get(j) == Some(&b'#') {
                h += 1;
                j += 1;
            }
            if h == hashes {
                return j;
            }
        }
        i += 1;
    }
    i
}

/// Skips a char/byte literal body starting just after the opening `'`.
fn skip_char_literal(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    // at most a handful of bytes: escape or single char, then closing '
    let mut budget = 12usize; // '\u{10FFFF}' is the longest legal form
    while i < bytes.len() && budget > 0 {
        match bytes[i] {
            b'\\' => i = (i + 2).min(bytes.len()),
            b'\'' => return i + 1,
            b'\n' => {
                *line += 1;
                return i + 1; // unterminated; don't swallow the file
            }
            _ => i += 1,
        }
        budget -= 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        tokenize(src)
            .0
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_are_stripped_and_kept() {
        let (toks, comments) = tokenize("let x = 1; // trailing\n/* block */ let y = 2;");
        assert!(toks
            .iter()
            .all(|t| t.text != "trailing" && t.text != "block"));
        assert_eq!(comments.len(), 2);
        assert_eq!(comments[0].text, " trailing");
        assert_eq!(comments[0].line, 1);
        assert_eq!(comments[1].line, 2);
    }

    #[test]
    fn strings_do_not_leak_idents() {
        assert_eq!(
            idents(r#"let s = "HashMap in a string";"#),
            vec!["let", "s"]
        );
        assert_eq!(
            idents(r##"let s = r#"raw "quoted" HashMap"#;"##),
            vec!["let", "s"]
        );
        assert_eq!(idents(r#"let b = b"bytes HashMap";"#), vec!["let", "b"]);
    }

    #[test]
    fn lifetimes_and_chars_disambiguate() {
        let (toks, _) = tokenize("fn f<'a>(x: &'a str) { let c = 'x'; let l = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars = toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn loop_labels_lex_as_lifetimes() {
        let (toks, _) = tokenize("'outer: for x in y { break 'outer; }");
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
            2
        );
    }

    #[test]
    fn multi_char_operators_stay_whole() {
        let (toks, _) = tokenize("a += b; c::d; e -> f; g ..= h;");
        let punct: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.as_str())
            .collect();
        assert!(punct.contains(&"+="));
        assert!(punct.contains(&"::"));
        assert!(punct.contains(&"->"));
        assert!(punct.contains(&"..="));
    }

    #[test]
    fn float_literals_keep_method_calls_separate() {
        let (toks, _) = tokenize("let x = 1.5e-3.max(0.0);");
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["1.5e-3", "0.0"]);
        assert!(toks.iter().any(|t| t.text == "max"));
    }

    #[test]
    fn lines_are_tracked_across_literals() {
        let (toks, _) = tokenize("a\n\"two\nlines\"\nb");
        let b = toks.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 4);
    }

    #[test]
    fn never_panics_on_garbage() {
        for src in [
            "\"unterminated",
            "r#\"unterminated",
            "'",
            "'\\",
            "/* unterminated",
            "b",
            "0.",
            "1e+",
            "\u{FFFD}\u{1F600}",
        ] {
            let _ = tokenize(src);
        }
    }
}
