//! Determinism & parallel-safety gate: runs the `clk-analyze` lexical
//! passes (A001–A006) and the semantic certification passes
//! (A101–A104: spawn-closure shared-state reachability, candidate-eval
//! purity, parallel float reductions, `Ordering::Relaxed` audit) over
//! the whole workspace, writes a machine-readable
//! `analyze-report.json`, and diffs the findings against the committed
//! `analyze-baseline.json`.
//!
//! ```sh
//! cargo run --release -p clk-bench --bin analyze
//! ```
//!
//! Exit code 0 when no finding is new relative to the baseline; 1 on
//! any new finding (the baseline is committed empty — the workspace is
//! analyzer-clean — so in practice any unsuppressed finding fails the
//! gate). Stale baseline entries are reported but do not fail. Flags:
//!
//! * `--root PATH` — workspace root (default: inferred from the build);
//! * `--out PATH` — report output (default `analyze-report.json`);
//! * `--baseline PATH` — baseline (default `analyze-baseline.json`);
//! * `--write-baseline` — refresh the baseline from this run and exit.

#![allow(clippy::float_arithmetic)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use clk_analyze::{analyze_workspace, diff_against_baseline, AnalyzeConfig, Code, Finding};
use clk_obs::json::{self, Value};
use clk_obs::{Obs, ObsConfig};

struct Args {
    root: PathBuf,
    out: String,
    baseline: String,
    write_baseline: bool,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().collect();
    let flag_val = |name: &str| -> Option<String> {
        argv.iter()
            .position(|a| a == name)
            .and_then(|i| argv.get(i + 1).cloned())
    };
    // the bin lives at crates/bench; the workspace root is two up
    let default_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map_or_else(|| PathBuf::from("."), Path::to_path_buf);
    Args {
        root: flag_val("--root").map_or(default_root, PathBuf::from),
        out: flag_val("--out").unwrap_or_else(|| "analyze-report.json".to_string()),
        baseline: flag_val("--baseline").unwrap_or_else(|| "analyze-baseline.json".to_string()),
        write_baseline: argv.iter().any(|a| a == "--write-baseline"),
    }
}

/// Baseline schema: an array of `{code, file, snippet}` identity
/// objects (no line numbers, so pure code motion does not churn it).
fn baseline_to_json(findings: &[Finding]) -> Value {
    Value::Obj(vec![
        ("schema_version".to_string(), Value::from(1u64)),
        (
            "findings".to_string(),
            Value::Arr(
                findings
                    .iter()
                    .map(|f| {
                        Value::Obj(vec![
                            ("code".to_string(), Value::from(f.code.as_str())),
                            ("file".to_string(), Value::from(f.file.as_str())),
                            ("snippet".to_string(), Value::from(f.snippet.as_str())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Parses a baseline document into [`Finding::key`] strings.
fn parse_baseline(text: &str) -> Result<Vec<String>, String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    let Some(Value::Arr(items)) = doc.get("findings") else {
        return Err("baseline has no `findings` array".to_string());
    };
    let mut keys = Vec::with_capacity(items.len());
    for item in items {
        let get = |k: &str| -> Result<String, String> {
            item.get(k)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("baseline entry missing `{k}`"))
        };
        keys.push(format!(
            "{}|{}|{}",
            get("code")?,
            get("file")?,
            get("snippet")?
        ));
    }
    Ok(keys)
}

fn finding_to_json(f: &Finding) -> Value {
    Value::Obj(vec![
        ("code".to_string(), Value::from(f.code.as_str())),
        (
            "severity".to_string(),
            Value::from(f.severity.to_string().as_str()),
        ),
        ("file".to_string(), Value::from(f.file.as_str())),
        ("line".to_string(), Value::from(u64::from(f.line))),
        ("snippet".to_string(), Value::from(f.snippet.as_str())),
        ("message".to_string(), Value::from(f.message.as_str())),
    ])
}

fn main() -> ExitCode {
    let args = parse_args();
    let cfg = AnalyzeConfig::default();
    println!(
        "analyze: workspace {} (lexical A001-A006, semantic A101-A104)",
        args.root.display()
    );
    let obs = Obs::new(ObsConfig::default());
    let start = clk_obs::wall_now();
    let report = match analyze_workspace(&args.root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("FAIL: cannot walk {}: {e}", args.root.display());
            return ExitCode::FAILURE;
        }
    };
    let analyze_ms = start.elapsed().as_secs_f64() * 1e3;
    obs.count("analyze.files", report.files as u64);
    obs.count("analyze.findings", report.findings.len() as u64);
    obs.observe("analyze.ms", analyze_ms);

    // per-code tally for the console and the report
    let mut tally: Vec<(Code, usize)> = Vec::new();
    for code in Code::ALL {
        tally.push((code, report.with_code(code).count()));
    }
    println!(
        "{} files analyzed in {analyze_ms:.0} ms, {} findings, {} suppressed (with reasons)",
        report.files,
        report.findings.len(),
        report.suppressed.len()
    );
    for (code, n) in &tally {
        if *n > 0 {
            println!("  {code} {:<62} {n}", code.title());
        }
    }
    for f in &report.findings {
        println!("{f}");
    }

    if args.write_baseline {
        let path = args.root.join(&args.baseline);
        if let Err(e) = std::fs::write(&path, baseline_to_json(&report.findings).to_json()) {
            eprintln!("FAIL: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("baseline refreshed at {}", path.display());
        return ExitCode::SUCCESS;
    }

    // gate: diff against the committed baseline (missing == empty, so a
    // fresh checkout still gates at full strictness)
    let baseline_path = args.root.join(&args.baseline);
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match parse_baseline(&text) {
            Ok(keys) => keys,
            Err(e) => {
                eprintln!(
                    "FAIL: baseline {} does not parse: {e}",
                    baseline_path.display()
                );
                return ExitCode::FAILURE;
            }
        },
        Err(_) => {
            println!(
                "no baseline at {}; gating against empty",
                baseline_path.display()
            );
            Vec::new()
        }
    };
    let (new, stale) = diff_against_baseline(&report.findings, &baseline);
    for key in &stale {
        println!("note: stale baseline entry (fixed since committed): {key}");
    }

    // artifact
    let doc = Value::Obj(vec![
        ("schema_version".to_string(), Value::from(1u64)),
        ("files".to_string(), Value::from(report.files as u64)),
        ("ms".to_string(), Value::from(analyze_ms)),
        (
            "summary".to_string(),
            Value::Obj(
                tally
                    .iter()
                    .map(|(c, n)| (c.as_str().to_string(), Value::from(*n as u64)))
                    .collect(),
            ),
        ),
        (
            "findings".to_string(),
            Value::Arr(report.findings.iter().map(finding_to_json).collect()),
        ),
        (
            "suppressed".to_string(),
            Value::Arr(
                report
                    .suppressed
                    .iter()
                    .map(|s| {
                        Value::Obj(vec![
                            ("code".to_string(), Value::from(s.code.as_str())),
                            ("file".to_string(), Value::from(s.file.as_str())),
                            ("line".to_string(), Value::from(u64::from(s.line))),
                            ("reason".to_string(), Value::from(s.reason.as_str())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "new_findings".to_string(),
            Value::Arr(new.iter().map(|f| finding_to_json(f)).collect()),
        ),
        (
            "stale_baseline".to_string(),
            Value::Arr(stale.iter().map(|k| Value::from(k.as_str())).collect()),
        ),
        ("gate_clean".to_string(), Value::Bool(new.is_empty())),
    ]);
    if let Err(e) = std::fs::write(&args.out, doc.to_json()) {
        eprintln!("FAIL: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("report written to {}", args.out);

    if new.is_empty() {
        println!("analyze: gate clean");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "FAIL: {} new finding(s) vs baseline — fix them or add a \
             `// clk-analyze: allow(A00x) <reason>` with justification",
            new.len()
        );
        ExitCode::FAILURE
    }
}
