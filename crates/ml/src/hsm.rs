//! Hybrid Surrogate Modeling: a validation-weighted convex blend of base
//! regressors (Kahng-Lin-Nath, DATE'13).

use crate::cv::mse;
use crate::Regressor;

/// A convex combination of base models, with weights chosen to minimize
/// validation MSE over a simplex grid.
#[derive(Debug)]
pub struct Hsm<M> {
    models: Vec<M>,
    weights: Vec<f64>,
}

impl<M: Regressor> Hsm<M> {
    /// Blends `models` using validation data `(xs_val, ys_val)`.
    ///
    /// Weights are searched on the probability simplex with the given
    /// `step` resolution (e.g. 0.05); ties prefer the earlier model.
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty, validation data is empty/mismatched,
    /// or `step` is not in `(0, 1]`.
    pub fn blend(models: Vec<M>, xs_val: &[Vec<f64>], ys_val: &[f64], step: f64) -> Self {
        assert!(!models.is_empty(), "need at least one base model");
        assert!(!xs_val.is_empty(), "need validation samples");
        assert_eq!(xs_val.len(), ys_val.len(), "validation length mismatch");
        assert!(step > 0.0 && step <= 1.0, "step must be in (0, 1]");
        let preds: Vec<Vec<f64>> = models.iter().map(|m| m.predict_batch(xs_val)).collect();
        let k = models.len();
        let steps = (1.0 / step).round() as usize;
        let mut best = (f64::INFINITY, vec![0.0; k]);
        let mut w = vec![0usize; k];
        enumerate_simplex(&mut w, 0, steps, &mut |w| {
            let weights: Vec<f64> = w.iter().map(|&u| u as f64 / steps as f64).collect();
            let blended: Vec<f64> = (0..xs_val.len())
                .map(|i| weights.iter().zip(&preds).map(|(wk, pk)| wk * pk[i]).sum())
                .collect();
            let e = mse(&blended, ys_val);
            if e < best.0 - 1e-15 {
                best = (e, weights);
            }
        });
        Hsm {
            models,
            weights: best.1,
        }
    }

    /// The blend weights (sum to 1).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The base models.
    pub fn models(&self) -> &[M] {
        &self.models
    }
}

/// Enumerates all length-`w.len()` compositions of `steps` units.
fn enumerate_simplex(w: &mut [usize], idx: usize, remaining: usize, f: &mut impl FnMut(&[usize])) {
    if idx + 1 == w.len() {
        w[idx] = remaining;
        f(w);
        return;
    }
    for take in 0..=remaining {
        w[idx] = take;
        enumerate_simplex(w, idx + 1, remaining - take, f);
    }
}

impl<M: Regressor> Regressor for Hsm<M> {
    fn predict(&self, x: &[f64]) -> f64 {
        self.models
            .iter()
            .zip(&self.weights)
            .map(|(m, w)| w * m.predict(x))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fixed affine "model" for testing blends.
    struct Affine(f64, f64);

    impl Regressor for Affine {
        fn predict(&self, x: &[f64]) -> f64 {
            self.0 * x[0] + self.1
        }
    }

    #[test]
    fn picks_the_better_model() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![f64::from(i)]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x[0] + 1.0).collect();
        let good = Affine(2.0, 1.0);
        let bad = Affine(-1.0, 5.0);
        let h = Hsm::blend(vec![good, bad], &xs, &ys, 0.1);
        assert!((h.weights()[0] - 1.0).abs() < 1e-12, "{:?}", h.weights());
        assert!((h.predict(&[3.0]) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn blend_beats_each_base_when_errors_cancel() {
        // truth = x; model A overshoots by +1, model B undershoots by -1
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![f64::from(i)]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0]).collect();
        let a = Affine(1.0, 1.0);
        let b = Affine(1.0, -1.0);
        let h = Hsm::blend(vec![a, b], &xs, &ys, 0.05);
        let blended: Vec<f64> = xs.iter().map(|x| h.predict(x)).collect();
        assert!(mse(&blended, &ys) < 1e-12);
        assert!((h.weights()[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weights_sum_to_one() {
        let xs: Vec<Vec<f64>> = (0..5).map(|i| vec![f64::from(i)]).collect();
        let ys = vec![0.0; 5];
        let h = Hsm::blend(
            vec![Affine(1.0, 0.0), Affine(0.5, 0.2), Affine(0.0, 0.0)],
            &xs,
            &ys,
            0.25,
        );
        let s: f64 = h.weights().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
        assert_eq!(h.models().len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one base model")]
    fn empty_models_panic() {
        let _: Hsm<Affine> = Hsm::blend(vec![], &[vec![0.0]], &[0.0], 0.5);
    }
}
