//! Per-corner propagation of arrivals and slews through the clock tree.

use clk_delay::{peri_slew, NetTiming, RcTree, WireModel};
use clk_liberty::{CornerId, Library};
use clk_netlist::{ArcSet, ClockTree, NodeId, NodeKind};
use clk_obs::{Deadline, Obs};
use clk_route::WireTree;

/// The single place the documented panicking wrappers are allowed to
/// abort from; everything else in the crate must return [`TimingError`].
#[cold]
#[allow(clippy::panic)]
fn die(e: TimingError) -> ! {
    panic!("{e}")
}

/// Timing-analysis configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimerOptions {
    /// Wire delay metric.
    pub wire_model: WireModel,
    /// Maximum RC segment length, µm (small = signoff-accurate, huge =
    /// lumped fast estimate).
    pub seg_max_um: f64,
    /// Transition of the ideal clock at the source input, ps.
    pub source_slew_ps: f64,
}

impl Default for TimerOptions {
    fn default() -> Self {
        TimerOptions {
            wire_model: WireModel::D2m,
            seg_max_um: 5.0,
            source_slew_ps: 20.0,
        }
    }
}

/// A slew or load design-rule violation found during analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// Input transition at the node exceeded the library limit.
    MaxSlew {
        /// Node whose input slew violates.
        node: NodeId,
        /// Observed slew, ps.
        slew_ps: f64,
        /// Library limit, ps.
        limit_ps: f64,
    },
    /// The driver's load exceeded the cell's max capacitance.
    MaxCap {
        /// Driving node.
        node: NodeId,
        /// Observed load, fF.
        load_ff: f64,
        /// Cell limit, fF.
        limit_ff: f64,
    },
}

/// Errors from the fallible analysis entry points ([`Timer::try_analyze`],
/// [`CornerTiming::try_arrival_ps`], ...). The panicking variants keep
/// their historical behaviour by delegating to these and unwrapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimingError {
    /// A node with fanout is neither a source nor a buffer, so it has no
    /// driving cell (structurally corrupt tree).
    NoDriverCell(NodeId),
    /// A non-root node carries no route, so its net cannot be extracted.
    MissingRoute(NodeId),
    /// A source node appeared as somebody's child.
    SourceHasParent(NodeId),
    /// A queried arrival or slew is not finite (dead or unreachable node,
    /// or a numerically poisoned analysis).
    NonFinite {
        /// The node queried.
        node: NodeId,
        /// Which quantity was non-finite (`"arrival"` or `"slew"`).
        what: &'static str,
    },
    /// Propagation was cut by the timer's [`Deadline`] (see
    /// [`Timer::with_deadline`]); the partial analysis is discarded.
    Interrupted,
}

impl std::fmt::Display for TimingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimingError::NoDriverCell(n) => write!(f, "node {n} drives fanout but has no cell"),
            TimingError::MissingRoute(n) => write!(f, "non-root node {n} has no route"),
            TimingError::SourceHasParent(n) => write!(f, "source node {n} has a parent"),
            TimingError::NonFinite { node, what } => write!(f, "no finite {what} at {node}"),
            TimingError::Interrupted => {
                f.write_str("timing analysis interrupted by deadline or cancellation")
            }
        }
    }
}

impl std::error::Error for TimingError {}

/// The result of analyzing one corner: arrivals and slews at every node
/// input, loads at every driver, and net capacitance totals (for power).
#[derive(Debug, Clone)]
pub struct CornerTiming {
    corner: CornerId,
    arrival_ps: Vec<f64>,
    slew_ps: Vec<f64>,
    load_ff: Vec<f64>,
    wire_cap_ff: f64,
    pin_cap_ff: f64,
    violations: Vec<Violation>,
}

impl CornerTiming {
    /// The corner this analysis ran at.
    pub fn corner(&self) -> CornerId {
        self.corner
    }

    /// Arrival time (clock latency) at the node's input pin, ps.
    ///
    /// # Panics
    ///
    /// Panics if the node was dead or unreachable during analysis.
    pub fn arrival_ps(&self, id: NodeId) -> f64 {
        match self.try_arrival_ps(id) {
            Ok(v) => v,
            Err(e) => die(e),
        }
    }

    /// Fallible variant of [`CornerTiming::arrival_ps`].
    ///
    /// # Errors
    ///
    /// [`TimingError::NonFinite`] if the node was dead or unreachable
    /// during analysis.
    pub fn try_arrival_ps(&self, id: NodeId) -> Result<f64, TimingError> {
        let v = self.arrival_ps[id.0 as usize];
        if v.is_finite() {
            Ok(v)
        } else {
            Err(TimingError::NonFinite {
                node: id,
                what: "arrival",
            })
        }
    }

    /// Input transition at the node, ps.
    ///
    /// # Panics
    ///
    /// Panics if the node was dead or unreachable during analysis.
    pub fn slew_ps(&self, id: NodeId) -> f64 {
        match self.try_slew_ps(id) {
            Ok(v) => v,
            Err(e) => die(e),
        }
    }

    /// Fallible variant of [`CornerTiming::slew_ps`].
    ///
    /// # Errors
    ///
    /// [`TimingError::NonFinite`] if the node was dead or unreachable
    /// during analysis.
    pub fn try_slew_ps(&self, id: NodeId) -> Result<f64, TimingError> {
        let v = self.slew_ps[id.0 as usize];
        if v.is_finite() {
            Ok(v)
        } else {
            Err(TimingError::NonFinite {
                node: id,
                what: "slew",
            })
        }
    }

    /// Load capacitance a driving node sees (0 for sinks), fF.
    pub fn load_ff(&self, id: NodeId) -> f64 {
        self.load_ff[id.0 as usize]
    }

    /// Maximum sink latency, ps.
    pub fn max_latency_ps(&self, tree: &ClockTree) -> f64 {
        tree.sinks().map(|s| self.arrival_ps(s)).fold(0.0, f64::max)
    }

    /// Total routed wire capacitance of the tree at this corner, fF.
    pub fn wire_cap_ff(&self) -> f64 {
        self.wire_cap_ff
    }

    /// Total receiver pin capacitance, fF.
    pub fn pin_cap_ff(&self) -> f64 {
        self.pin_cap_ff
    }

    /// Design-rule violations observed during propagation.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }
}

/// The timing engine. Create with [`Timer::golden`] for signoff-accurate
/// settings or [`Timer::new`] with custom options.
#[derive(Debug, Clone, Default)]
pub struct Timer {
    opts: TimerOptions,
    obs: Obs,
    deadline: Deadline,
}

impl Timer {
    /// A timer with explicit options.
    pub fn new(opts: TimerOptions) -> Self {
        Timer {
            opts,
            obs: Obs::disabled(),
            deadline: Deadline::none(),
        }
    }

    /// The signoff configuration: D2M on 5 µm-segmented parasitics.
    pub fn golden() -> Self {
        Timer::default()
    }

    /// Attaches an observability pipeline: every analysis then updates
    /// the `sta.analyze.count` / `sta.analyze.us` / `sta.violations`
    /// metrics. A disabled pipeline (the default) costs one branch per
    /// analysis.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Makes every analysis interruptible: propagation polls `deadline`
    /// once per driver net and returns [`TimingError::Interrupted`] on
    /// expiry, discarding the partial corner. The default timer carries
    /// the inert deadline (polling costs one branch). Callers that need
    /// reproducible results across runs (e.g. parallel candidate
    /// workers) should keep the default rather than share a deadline
    /// whose observation order is racy.
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = deadline;
        self
    }

    /// The options in use.
    pub fn options(&self) -> TimerOptions {
        self.opts
    }

    /// Analyzes `tree` at `corner`.
    ///
    /// # Panics
    ///
    /// Panics if the tree is structurally corrupt (fanout without a
    /// driving cell, or a non-root node without a route). Use
    /// [`Timer::try_analyze`] to get a [`TimingError`] instead.
    pub fn analyze(&self, tree: &ClockTree, lib: &Library, corner: CornerId) -> CornerTiming {
        match self.try_analyze(tree, lib, corner) {
            Ok(t) => t,
            Err(e) => die(e),
        }
    }

    /// Fallible variant of [`Timer::analyze`].
    ///
    /// # Errors
    ///
    /// [`TimingError`] when the tree cannot be timed: a node with fanout
    /// has no driving cell, a non-root node carries no route, or a source
    /// appears as a child.
    pub fn try_analyze(
        &self,
        tree: &ClockTree,
        lib: &Library,
        corner: CornerId,
    ) -> Result<CornerTiming, TimingError> {
        if !self.obs.enabled() {
            return self.analyze_inner(tree, lib, corner);
        }
        let _prof = self.obs.prof_scope("sta.analyze");
        // clk-analyze: allow(A102) telemetry-only: behind obs.enabled(), feeds the sta.analyze.ms histogram, never the QoR
        let start = clk_obs::wall_now();
        let result = self.analyze_inner(tree, lib, corner);
        self.obs.count("sta.analyzes", 1);
        self.obs
            .observe("sta.analyze.ms", start.elapsed().as_secs_f64() * 1e3);
        match &result {
            Ok(t) => {
                if !t.violations.is_empty() {
                    self.obs.count("sta.violations", t.violations.len() as u64);
                }
                // per-eval propagation stats: how much of the tree this
                // corner's walk re-timed (full re-propagation today;
                // the denominator the incremental rewrite must shrink)
                let nodes_timed = t.arrival_ps.iter().filter(|a| a.is_finite()).count() as u64;
                self.obs.count("sta.nodes_timed", nodes_timed);
                self.obs
                    .count(&format!("sta.corner.{}.nodes_timed", corner.0), nodes_timed);
                self.obs.observe("sta.eval.nodes", nodes_timed as f64);
            }
            Err(_) => self.obs.count("sta.analyze.errors", 1),
        }
        result
    }

    fn analyze_inner(
        &self,
        tree: &ClockTree,
        lib: &Library,
        corner: CornerId,
    ) -> Result<CornerTiming, TimingError> {
        let n = tree
            .node_ids()
            .map(|id| id.0 as usize + 1)
            .max()
            .unwrap_or(1);
        let mut out = CornerTiming {
            corner,
            arrival_ps: vec![f64::NAN; n],
            slew_ps: vec![f64::NAN; n],
            load_ff: vec![0.0; n],
            wire_cap_ff: 0.0,
            pin_cap_ff: 0.0,
            violations: Vec::new(),
        };
        let root = tree.root();
        out.arrival_ps[root.0 as usize] = 0.0;
        out.slew_ps[root.0 as usize] = self.opts.source_slew_ps;

        let wire_rc = lib.wire_rc(corner);

        // Preorder walk: parents are timed before children.
        let mut stack = vec![root];
        while let Some(d) = stack.pop() {
            // cooperative cancellation: one poll per driver net bounds
            // the ack latency to a single net's extraction + analysis
            if self.deadline.expired() {
                return Err(TimingError::Interrupted);
            }
            if tree.children(d).is_empty() {
                continue;
            }
            for c in self.time_net(tree, lib, wire_rc, corner, d, &mut out)? {
                stack.push(c);
            }
        }
        assemble(tree, lib, &mut out)?;
        Ok(out)
    }

    /// Times one driver's fanout net: writes `load_ff[d]` and the
    /// children's arrivals/slews into `out`, returning the children in
    /// route order. Aggregates (caps, violations) are deliberately NOT
    /// updated here — [`assemble`] recomputes them in one canonical walk
    /// so the full and incremental paths produce bit-identical results.
    fn time_net(
        &self,
        tree: &ClockTree,
        lib: &Library,
        wire_rc: clk_liberty::WireRc,
        corner: CornerId,
        d: NodeId,
        out: &mut CornerTiming,
    ) -> Result<Vec<NodeId>, TimingError> {
        let children = tree.children(d);
        let cell = tree.cell(d).ok_or(TimingError::NoDriverCell(d))?;
        let t_in = out.arrival_ps[d.0 as usize];
        let s_in = out.slew_ps[d.0 as usize];

        // Build the fanout wire tree from the actual routed paths.
        let mut wt = WireTree::new(tree.loc(d));
        let mut ends = Vec::with_capacity(children.len());
        let mut loads = Vec::with_capacity(children.len());
        for &c in children {
            let route = tree
                .node(c)
                .route
                .as_ref()
                .ok_or(TimingError::MissingRoute(c))?;
            let mut prev = WireTree::ROOT;
            for &p in &route.points()[1..] {
                prev = wt.add_child(prev, p);
            }
            let pin_cap = match tree.node(c).kind {
                NodeKind::Buffer(cc) => lib.cell(cc).input_cap_ff,
                NodeKind::Sink => lib.sink_cap_ff(),
                NodeKind::Source => return Err(TimingError::SourceHasParent(c)),
            };
            ends.push((c, prev));
            loads.push((prev, pin_cap));
        }
        let rct = RcTree::extract(&wt, wire_rc, &loads, self.opts.seg_max_um);
        let nt = NetTiming::analyze(&rct);
        let load = nt.total_cap_ff();
        out.load_ff[d.0 as usize] = load;

        let gate_delay = lib.gate_delay(cell, corner, s_in, load);
        let gate_slew = lib.gate_output_slew(cell, corner, s_in, load);

        let mut kids = Vec::with_capacity(ends.len());
        for (c, wnode) in ends {
            let rc_node = rct.rc_node_of_wire_node(wnode);
            let wire_delay = nt.delay_ps(rc_node, self.opts.wire_model);
            let wire_slew = nt.wire_slew_ps(rc_node);
            out.arrival_ps[c.0 as usize] = t_in + gate_delay + wire_delay;
            out.slew_ps[c.0 as usize] = peri_slew(gate_slew, wire_slew);
            kids.push(c);
        }
        Ok(kids)
    }

    /// Cone-limited incremental re-analysis: starting from a previous
    /// analysis of a structurally compatible tree, re-times only the
    /// `dirty` driver nets (see `clk-core`'s `touched_drivers`) and the
    /// cone below them where arrivals or slews actually changed.
    /// Descent prunes on bit-equality: an untouched subtree whose head
    /// arrival/slew is bit-identical re-derives the exact same values,
    /// so the result is bit-identical to a full [`Timer::try_analyze`]
    /// of the edited tree — the property the parallel local phase's
    /// byte-stable QoR rests on.
    ///
    /// Falls back to a full analysis when `prev` does not match the tree
    /// shape (different corner or node-id range, e.g. after an edit that
    /// grew the tree).
    ///
    /// # Errors
    ///
    /// Same contract as [`Timer::try_analyze`].
    pub fn try_analyze_incremental(
        &self,
        tree: &ClockTree,
        lib: &Library,
        prev: &CornerTiming,
        dirty: &[NodeId],
    ) -> Result<CornerTiming, TimingError> {
        let corner = prev.corner;
        let n = tree
            .node_ids()
            .map(|id| id.0 as usize + 1)
            .max()
            .unwrap_or(1);
        if prev.arrival_ps.len() != n {
            return self.try_analyze(tree, lib, corner);
        }
        let mut out = prev.clone();
        let wire_rc = lib.wire_rc(corner);

        // Worklist ordered by (depth, id): a net is recomputed only
        // after every dirty ancestor net above it, so its input
        // arrival/slew are final when it runs and each net runs at most
        // once.
        let mut pending: std::collections::BTreeSet<(u32, NodeId)> = dirty
            .iter()
            .filter_map(|&d| depth_of(tree, d).map(|dep| (dep, d)))
            .collect();
        while let Some((dep, d)) = pending.pop_first() {
            if self.deadline.expired() {
                return Err(TimingError::Interrupted);
            }
            let children = tree.children(d);
            if children.is_empty() {
                // a driver that lost its whole fanout (type-III surgery)
                // no longer presents a load
                out.load_ff[d.0 as usize] = 0.0;
                continue;
            }
            let before: Vec<(u64, u64)> = children
                .iter()
                .map(|&c| {
                    (
                        out.arrival_ps[c.0 as usize].to_bits(),
                        out.slew_ps[c.0 as usize].to_bits(),
                    )
                })
                .collect();
            let kids = self.time_net(tree, lib, wire_rc, corner, d, &mut out)?;
            for (c, (a0, s0)) in kids.into_iter().zip(before) {
                let changed = out.arrival_ps[c.0 as usize].to_bits() != a0
                    || out.slew_ps[c.0 as usize].to_bits() != s0;
                if changed {
                    pending.insert((dep + 1, c));
                }
            }
        }
        assemble(tree, lib, &mut out)?;
        Ok(out)
    }

    /// [`Timer::try_analyze_incremental`] across every corner of `prev`
    /// (one previous analysis per corner, as returned by
    /// [`Timer::try_analyze_all`]).
    ///
    /// # Errors
    ///
    /// The first [`TimingError`] encountered, if any.
    pub fn try_analyze_all_incremental(
        &self,
        tree: &ClockTree,
        lib: &Library,
        prev: &[CornerTiming],
        dirty: &[NodeId],
    ) -> Result<Vec<CornerTiming>, TimingError> {
        prev.iter()
            .map(|p| self.try_analyze_incremental(tree, lib, p, dirty))
            .collect()
    }

    /// Analyzes every corner of `lib`, in corner order.
    ///
    /// # Panics
    ///
    /// Panics on structurally corrupt trees; see [`Timer::analyze`].
    pub fn analyze_all(&self, tree: &ClockTree, lib: &Library) -> Vec<CornerTiming> {
        lib.corner_ids()
            .map(|c| self.analyze(tree, lib, c))
            .collect()
    }

    /// Fallible variant of [`Timer::analyze_all`]: stops at the first
    /// corner that cannot be timed.
    ///
    /// # Errors
    ///
    /// The first [`TimingError`] encountered, if any.
    pub fn try_analyze_all(
        &self,
        tree: &ClockTree,
        lib: &Library,
    ) -> Result<Vec<CornerTiming>, TimingError> {
        lib.corner_ids()
            .map(|c| self.try_analyze(tree, lib, c))
            .collect()
    }
}

/// Depth of `n` below the root (root = 0); `None` if the parent chain
/// is broken (node not attached to this tree).
fn depth_of(tree: &ClockTree, n: NodeId) -> Option<u32> {
    let mut d = 0u32;
    let mut cur = n;
    while let Some(p) = tree.parent(cur) {
        d += 1;
        cur = p;
        if d as usize > tree.len() {
            return None; // cycle guard; validated trees never hit this
        }
    }
    (cur == tree.root()).then_some(d)
}

/// Recomputes the aggregate results — total wire/pin capacitance and
/// the violation list — from the per-node arrays in one canonical
/// preorder walk. Both the full and the incremental analysis end with
/// this pass, so their float summation order and violation order are
/// identical by construction (the bit-stability contract of
/// [`Timer::try_analyze_incremental`]).
fn assemble(tree: &ClockTree, lib: &Library, out: &mut CornerTiming) -> Result<(), TimingError> {
    out.wire_cap_ff = 0.0;
    out.pin_cap_ff = 0.0;
    out.violations.clear();
    let max_slew = lib.max_slew_ps();
    let mut stack = vec![tree.root()];
    while let Some(d) = stack.pop() {
        let children = tree.children(d);
        if children.is_empty() {
            continue;
        }
        let cell = tree.cell(d).ok_or(TimingError::NoDriverCell(d))?;
        let mut pin_sum = 0.0;
        for &c in children {
            let pin_cap = match tree.node(c).kind {
                NodeKind::Buffer(cc) => lib.cell(cc).input_cap_ff,
                NodeKind::Sink => lib.sink_cap_ff(),
                NodeKind::Source => return Err(TimingError::SourceHasParent(c)),
            };
            out.pin_cap_ff += pin_cap;
            pin_sum += pin_cap;
        }
        let load = out.load_ff[d.0 as usize];
        out.wire_cap_ff += load - pin_sum;
        let limit_ff = lib.cell(cell).max_cap_ff;
        if load > limit_ff {
            out.violations.push(Violation::MaxCap {
                node: d,
                load_ff: load,
                limit_ff,
            });
        }
        for &c in children {
            let s = out.slew_ps[c.0 as usize];
            if s > max_slew {
                out.violations.push(Violation::MaxSlew {
                    node: c,
                    slew_ps: s,
                    limit_ps: max_slew,
                });
            }
            stack.push(c);
        }
    }
    Ok(())
}

/// Per-arc delays `D_j^{c_k}` of Table 1: latency difference between the
/// arc's two junctions, indexed by [`clk_netlist::ArcId`] position.
pub fn arc_delays_ps(tree: &ClockTree, arcs: &ArcSet, timing: &CornerTiming) -> Vec<f64> {
    let _ = tree;
    arcs.arcs()
        .iter()
        .map(|a| timing.arrival_ps(a.to) - timing.arrival_ps(a.from))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use clk_geom::Point;
    use clk_liberty::{CellId, Library, StdCorners};
    use clk_netlist::SinkPair;

    fn lib() -> Library {
        Library::synthetic_28nm(StdCorners::c0_c1_c3())
    }

    /// Symmetric H: root -> b -> {s1, s2} with equal route lengths.
    fn symmetric(lib: &Library) -> (ClockTree, NodeId, NodeId) {
        let x8 = lib.cell_by_name("CLKINV_X8").unwrap();
        let mut t = ClockTree::new(Point::new(0, 0), x8);
        let b = t.add_node(NodeKind::Buffer(x8), Point::new(60_000, 0), t.root());
        let s1 = t.add_node(NodeKind::Sink, Point::new(110_000, 25_000), b);
        let s2 = t.add_node(NodeKind::Sink, Point::new(110_000, -25_000), b);
        t.set_sink_pairs(vec![SinkPair::new(s1, s2)]);
        (t, s1, s2)
    }

    #[test]
    fn arrival_increases_along_path() {
        let lib = lib();
        let (t, s1, _) = symmetric(&lib);
        let timing = Timer::golden().analyze(&t, &lib, CornerId(0));
        let path = t.path_from_root(s1);
        let mut last = -1.0;
        for n in path {
            let a = timing.arrival_ps(n);
            assert!(a > last, "arrival not increasing at {n}");
            last = a;
        }
    }

    #[test]
    fn symmetric_tree_has_zero_skew() {
        let lib = lib();
        let (t, s1, s2) = symmetric(&lib);
        for corner in lib.corner_ids() {
            let timing = Timer::golden().analyze(&t, &lib, corner);
            let d = (timing.arrival_ps(s1) - timing.arrival_ps(s2)).abs();
            assert!(d < 1e-9, "skew {d} at {corner}");
        }
    }

    #[test]
    fn slow_corner_has_larger_latency() {
        let lib = lib();
        let (t, s1, _) = symmetric(&lib);
        let timer = Timer::golden();
        let t0 = timer.analyze(&t, &lib, CornerId(0)).arrival_ps(s1);
        let t1 = timer.analyze(&t, &lib, CornerId(1)).arrival_ps(s1);
        let t3 = timer.analyze(&t, &lib, CornerId(2)).arrival_ps(s1); // c3 corner
        assert!(t1 > 1.3 * t0, "c1 {t1} vs c0 {t0}");
        assert!(t3 < 0.8 * t0, "c3 {t3} vs c0 {t0}");
    }

    #[test]
    fn arc_delays_sum_to_sink_latency() {
        let lib = lib();
        let (t, s1, _) = symmetric(&lib);
        let arcs = ArcSet::extract(&t);
        let timing = Timer::golden().analyze(&t, &lib, CornerId(0));
        let d = arc_delays_ps(&t, &arcs, &timing);
        let path = arcs.path_arcs(&t, s1);
        let sum: f64 = path.iter().map(|a| d[a.0 as usize]).sum();
        assert!((sum - timing.arrival_ps(s1)).abs() < 1e-9);
    }

    #[test]
    fn overloaded_small_buffer_reports_violations() {
        let lib = lib();
        let x1 = lib.cell_by_name("CLKINV_X1").unwrap();
        let mut t = ClockTree::new(Point::new(0, 0), x1);
        // X1 driving 600 µm of Cmax wire: both cap and slew blow up
        let b = t.add_node(NodeKind::Buffer(x1), Point::new(10_000, 0), t.root());
        let _s = t.add_node(NodeKind::Sink, Point::new(600_000, 0), b);
        let timing = Timer::golden().analyze(&t, &lib, CornerId(0));
        assert!(
            timing
                .violations()
                .iter()
                .any(|v| matches!(v, Violation::MaxCap { .. })),
            "expected a max-cap violation"
        );
        assert!(
            timing
                .violations()
                .iter()
                .any(|v| matches!(v, Violation::MaxSlew { .. })),
            "expected a max-slew violation"
        );
    }

    #[test]
    fn lumped_and_golden_are_close_but_not_equal() {
        let lib = lib();
        let (t, s1, _) = symmetric(&lib);
        let golden = Timer::golden().analyze(&t, &lib, CornerId(0));
        let fast = Timer::new(TimerOptions {
            seg_max_um: 1e9,
            ..TimerOptions::default()
        })
        .analyze(&t, &lib, CornerId(0));
        let g = golden.arrival_ps(s1);
        let f = fast.arrival_ps(s1);
        assert!((g - f).abs() / g < 0.15, "golden {g} vs fast {f}");
    }

    #[test]
    fn elmore_at_least_d2m_latency() {
        let lib = lib();
        let (t, s1, _) = symmetric(&lib);
        let d2m = Timer::golden()
            .analyze(&t, &lib, CornerId(0))
            .arrival_ps(s1);
        let elm = Timer::new(TimerOptions {
            wire_model: WireModel::Elmore,
            ..TimerOptions::default()
        })
        .analyze(&t, &lib, CornerId(0))
        .arrival_ps(s1);
        assert!(elm >= d2m);
    }

    #[test]
    fn loads_and_caps_accumulate() {
        let lib = lib();
        let (t, ..) = symmetric(&lib);
        let timing = Timer::golden().analyze(&t, &lib, CornerId(0));
        assert!(timing.wire_cap_ff() > 0.0);
        // 2 sinks + 1 buffer input pin
        let x8 = lib.cell_by_name("CLKINV_X8").unwrap();
        let want = 2.0 * lib.sink_cap_ff() + lib.cell(x8).input_cap_ff;
        assert!((timing.pin_cap_ff() - want).abs() < 1e-9);
        assert!(timing.load_ff(t.root()) > 0.0);
    }

    #[test]
    fn cancelled_timer_returns_interrupted() {
        use clk_obs::CancelToken;
        let lib = lib();
        let (t, ..) = symmetric(&lib);
        let tok = CancelToken::new();
        tok.cancel();
        let timer = Timer::golden().with_deadline(Deadline::from_token(&tok));
        let e = timer.try_analyze(&t, &lib, CornerId(0)).unwrap_err();
        assert_eq!(e, TimingError::Interrupted);
        let e = timer.try_analyze_all(&t, &lib).unwrap_err();
        assert_eq!(e, TimingError::Interrupted);
        // a live token leaves the analysis untouched
        let tok = CancelToken::new();
        let timer = Timer::golden().with_deadline(Deadline::from_token(&tok));
        assert!(timer.try_analyze(&t, &lib, CornerId(0)).is_ok());
    }

    /// Bit-exact equality of two analyses, field by field (NaN slots
    /// must match as NaN, so compare bits, not values).
    fn assert_bit_identical(a: &CornerTiming, b: &CornerTiming) {
        assert_eq!(a.corner, b.corner);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a.arrival_ps), bits(&b.arrival_ps), "arrivals");
        assert_eq!(bits(&a.slew_ps), bits(&b.slew_ps), "slews");
        assert_eq!(bits(&a.load_ff), bits(&b.load_ff), "loads");
        assert_eq!(a.wire_cap_ff.to_bits(), b.wire_cap_ff.to_bits(), "wire cap");
        assert_eq!(a.pin_cap_ff.to_bits(), b.pin_cap_ff.to_bits(), "pin cap");
        assert_eq!(a.violations, b.violations, "violations");
    }

    #[test]
    fn incremental_matches_full_after_cell_swap() {
        let lib = lib();
        let (mut t, ..) = symmetric(&lib);
        let timer = Timer::golden();
        let prev: Vec<CornerTiming> = lib
            .corner_ids()
            .map(|c| timer.analyze(&t, &lib, c))
            .collect();
        let b = t.buffers().next().unwrap();
        let x4 = lib.cell_by_name("CLKINV_X4").unwrap();
        // dirty roots for a resize: the buffer's net and its parent's
        let dirty = [t.parent(b).unwrap(), b];
        t.set_cell(b, x4).unwrap();
        for (k, corner) in lib.corner_ids().enumerate() {
            let full = timer.try_analyze(&t, &lib, corner).unwrap();
            let inc = timer
                .try_analyze_incremental(&t, &lib, &prev[k], &dirty)
                .unwrap();
            assert_bit_identical(&full, &inc);
        }
    }

    #[test]
    fn incremental_matches_full_after_displacement() {
        let lib = lib();
        let (mut t, ..) = symmetric(&lib);
        let timer = Timer::golden();
        let prev = timer.try_analyze_all(&t, &lib).unwrap();
        let b = t.buffers().next().unwrap();
        let dirty = [t.parent(b).unwrap(), b];
        t.move_node(b, Point::new(70_000, 5_000)).unwrap();
        let full = timer.try_analyze_all(&t, &lib).unwrap();
        let inc = timer
            .try_analyze_all_incremental(&t, &lib, &prev, &dirty)
            .unwrap();
        for (f, i) in full.iter().zip(&inc) {
            assert_bit_identical(f, i);
        }
    }

    #[test]
    fn incremental_noop_edit_is_identical_and_prunes() {
        let lib = lib();
        let (t, ..) = symmetric(&lib);
        let timer = Timer::golden();
        let prev = timer.try_analyze_all(&t, &lib).unwrap();
        // no edit at all: re-timing any dirty set must reproduce the
        // previous analysis exactly
        let dirty = [t.root()];
        let inc = timer
            .try_analyze_all_incremental(&t, &lib, &prev, &dirty)
            .unwrap();
        for (p, i) in prev.iter().zip(&inc) {
            assert_bit_identical(p, i);
        }
    }

    #[test]
    fn incremental_falls_back_when_tree_grew() {
        let lib = lib();
        let (mut t, ..) = symmetric(&lib);
        let timer = Timer::golden();
        let prev = timer.try_analyze_all(&t, &lib).unwrap();
        let x8 = lib.cell_by_name("CLKINV_X8").unwrap();
        let b = t.buffers().next().unwrap();
        let nb = t.add_node(NodeKind::Buffer(x8), Point::new(80_000, 10_000), b);
        let full = timer.try_analyze_all(&t, &lib).unwrap();
        // prev arrays are too short for the grown tree: the incremental
        // entry point must detect that and fall back to a full analysis
        let inc = timer
            .try_analyze_all_incremental(&t, &lib, &prev, &[b, nb])
            .unwrap();
        for (f, i) in full.iter().zip(&inc) {
            assert_bit_identical(f, i);
        }
    }

    #[test]
    fn dangling_buffer_is_harmless() {
        let lib = lib();
        let x2 = CellId(1);
        let (mut t, s1, _) = symmetric(&lib);
        let b = t.add_node(NodeKind::Buffer(x2), Point::new(30_000, 9_000), t.root());
        let timing = Timer::golden().analyze(&t, &lib, CornerId(0));
        assert!(timing.arrival_ps(s1).is_finite());
        assert!(timing.arrival_ps(b).is_finite());
    }
}
