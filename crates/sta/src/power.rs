//! Clock-tree power reporting (the PT-PX stand-in).

use clk_liberty::Library;
use clk_netlist::{ClockTree, NodeKind};

use crate::timer::CornerTiming;

/// Clock-tree power at one corner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerReport {
    /// Switching power of wires + pins at the clock frequency, mW.
    pub dynamic_mw: f64,
    /// Leakage of the clock cells, mW.
    pub leakage_mw: f64,
}

impl PowerReport {
    /// Total power, mW.
    pub fn total_mw(&self) -> f64 {
        self.dynamic_mw + self.leakage_mw
    }
}

impl std::fmt::Display for PowerReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.3} mW (dyn {:.3} + lkg {:.3})",
            self.total_mw(),
            self.dynamic_mw,
            self.leakage_mw
        )
    }
}

/// Computes clock-tree power from an analyzed corner.
///
/// Every clock net toggles twice per cycle (rise + fall covers one full
/// `C·V²` per period), so `P_dyn = f · C_total · V²`; with `f` in GHz and
/// `C` in fF this is µW, hence the /1000 to mW.
pub fn clock_power(
    tree: &ClockTree,
    lib: &Library,
    timing: &CornerTiming,
    freq_ghz: f64,
) -> PowerReport {
    let corner = timing.corner();
    let cap_ff = timing.wire_cap_ff() + timing.pin_cap_ff();
    let dynamic_mw = freq_ghz * lib.switching_energy_fj(corner, cap_ff) / 1_000.0;
    let mut leakage_nw = 0.0;
    for id in tree.node_ids() {
        if let NodeKind::Buffer(c) = tree.node(id).kind {
            leakage_nw += lib.cell_leakage_nw(c, corner);
        }
    }
    PowerReport {
        dynamic_mw,
        leakage_mw: leakage_nw / 1.0e6,
    }
}

#[cfg(test)]
// tests pin exact expected values on purpose
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::timer::Timer;
    use clk_geom::Point;
    use clk_liberty::{CornerId, StdCorners};
    use clk_netlist::NodeKind;

    #[test]
    fn power_positive_and_scales_with_frequency() {
        let lib = Library::synthetic_28nm(StdCorners::c0_c1_c3());
        let x8 = lib.cell_by_name("CLKINV_X8").unwrap();
        let mut t = ClockTree::new(Point::new(0, 0), x8);
        let b = t.add_node(NodeKind::Buffer(x8), Point::new(50_000, 0), t.root());
        let _s = t.add_node(NodeKind::Sink, Point::new(100_000, 0), b);
        let timing = Timer::golden().analyze(&t, &lib, CornerId(0));
        let p1 = clock_power(&t, &lib, &timing, 1.0);
        let p2 = clock_power(&t, &lib, &timing, 2.0);
        assert!(p1.total_mw() > 0.0);
        assert!((p2.dynamic_mw - 2.0 * p1.dynamic_mw).abs() < 1e-12);
        assert_eq!(p1.leakage_mw, p2.leakage_mw);
    }

    #[test]
    fn higher_voltage_corner_burns_more() {
        let lib = Library::synthetic_28nm(StdCorners::c0_c1_c3());
        let x8 = lib.cell_by_name("CLKINV_X8").unwrap();
        let mut t = ClockTree::new(Point::new(0, 0), x8);
        let b = t.add_node(NodeKind::Buffer(x8), Point::new(50_000, 0), t.root());
        let _s = t.add_node(NodeKind::Sink, Point::new(100_000, 0), b);
        let timer = Timer::golden();
        // corner index 2 in this library is the fast 1.32V corner (c3)
        let p0 = clock_power(&t, &lib, &timer.analyze(&t, &lib, CornerId(0)), 1.0);
        let p3 = clock_power(&t, &lib, &timer.analyze(&t, &lib, CornerId(2)), 1.0);
        // Cmin wire cap is lower but V² wins: compare energy per fF instead
        assert!(
            lib.switching_energy_fj(CornerId(2), 1.0) > lib.switching_energy_fj(CornerId(0), 1.0)
        );
        assert!(p3.leakage_mw > p0.leakage_mw);
    }
}
