//! Steiner-tree topology generators: single-trunk trees and an iterated
//! 1-Steiner RSMT heuristic (the FLUTE stand-in — see crate docs).

use crate::WireTree;
use clk_geom::{Dbu, Point, Rect};

/// Builds a **single-trunk Steiner tree** from `driver` to `pins`.
///
/// The trunk runs along the longer dimension of the pin bounding box at the
/// median of the perpendicular coordinate; each pin attaches by a
/// perpendicular stub, and the driver attaches to the nearest trunk point.
/// This is one of the two routing-pattern estimates used by the paper's
/// delta-latency model.
///
/// Duplicate pins are tolerated. With no pins, the tree is just the driver.
pub fn single_trunk(driver: Point, pins: &[Point]) -> WireTree {
    let mut tree = WireTree::new(driver);
    if pins.is_empty() {
        return tree;
    }
    if pins.len() == 1 {
        tree.add_child(WireTree::ROOT, pins[0]);
        return tree;
    }
    let bbox = Rect::bounding(pins).expect("pins non-empty");
    let horizontal = bbox.width() >= bbox.height();
    // trunk coordinate = median of the perpendicular coordinate
    let mut perp: Vec<Dbu> = pins
        .iter()
        .map(|p| if horizontal { p.y } else { p.x })
        .collect();
    perp.sort_unstable();
    let trunk_c = perp[perp.len() / 2];

    // Feet of the pin stubs on the trunk, plus the driver attachment.
    let foot = |p: Point| -> Point {
        if horizontal {
            Point::new(p.x, trunk_c)
        } else {
            Point::new(trunk_c, p.y)
        }
    };
    let driver_foot = {
        // clamp the driver's along-trunk coordinate into the trunk span
        let (lo, hi) = if horizontal {
            (bbox.lo.x, bbox.hi.x)
        } else {
            (bbox.lo.y, bbox.hi.y)
        };
        if horizontal {
            Point::new(driver.x.clamp(lo, hi), trunk_c)
        } else {
            Point::new(trunk_c, driver.y.clamp(lo, hi))
        }
    };

    // Order attachment feet along the trunk and chain them from the driver
    // foot outward in both directions.
    let along = |p: Point| if horizontal { p.x } else { p.y };
    let mut feet: Vec<(Dbu, usize)> = pins.iter().map(|&p| (along(foot(p)), 0usize)).collect();
    for (i, f) in feet.iter_mut().enumerate() {
        f.1 = i;
    }
    feet.sort_unstable();

    let anchor = tree.add_child(WireTree::ROOT, driver_foot);
    let d_along = along(driver_foot);
    // nodes to the right of (>=) the driver foot, chained left to right
    let mut last = anchor;
    let mut foot_node = vec![usize::MAX; pins.len()];
    for &(c, pin_idx) in feet.iter().filter(|&&(c, _)| c >= d_along) {
        let fp = if horizontal {
            Point::new(c, trunk_c)
        } else {
            Point::new(trunk_c, c)
        };
        let node = if tree.point(last) == fp {
            last
        } else {
            tree.add_child(last, fp)
        };
        foot_node[pin_idx] = node;
        last = node;
    }
    // nodes to the left, chained right to left
    let mut last = anchor;
    for &(c, pin_idx) in feet.iter().rev().filter(|&&(c, _)| c < d_along) {
        let fp = if horizontal {
            Point::new(c, trunk_c)
        } else {
            Point::new(trunk_c, c)
        };
        let node = if tree.point(last) == fp {
            last
        } else {
            tree.add_child(last, fp)
        };
        foot_node[pin_idx] = node;
        last = node;
    }
    // stubs
    for (i, &p) in pins.iter().enumerate() {
        let f = foot_node[i];
        if tree.point(f) == p {
            continue; // pin sits on the trunk
        }
        tree.add_child(f, p);
    }
    tree
}

/// Iterated 1-Steiner is applied only to nets with at most this many
/// terminals (driver + pins); larger nets use the Manhattan MST.
pub const MAX_ONE_STEINER_TERMS: usize = 12;

/// Builds a rectilinear Steiner tree over `driver ∪ pins` with the
/// **iterated 1-Steiner** heuristic: start from the Manhattan MST, then
/// repeatedly add the Hanan-grid point that most reduces the MST length
/// until no candidate helps.
///
/// Exact for ≤ 2 pins; for 3 pins the single Hanan candidate scan finds the
/// optimal median point, so it is exact there too. Above
/// [`MAX_ONE_STEINER_TERMS`] terminals the O(n⁴) Hanan scan is skipped and
/// the plain Manhattan MST is returned — the delta-latency estimator calls
/// this in a hot loop over every candidate move, and MST wirelength is
/// within a few % of RSMT at clock-net fanouts.
pub fn rsmt(driver: Point, pins: &[Point]) -> WireTree {
    // Deduplicate terminals while remembering every original pin location.
    let mut terms: Vec<Point> = Vec::with_capacity(pins.len() + 1);
    terms.push(driver);
    for &p in pins {
        if !terms.contains(&p) {
            terms.push(p);
        }
    }
    let n_terms = terms.len();
    if n_terms == 1 {
        return WireTree::new(driver);
    }

    let mut nodes = terms.clone();
    if n_terms <= MAX_ONE_STEINER_TERMS {
        loop {
            let (mut best_gain, mut best_pt) = (0, None);
            let base = mst_length(&nodes);
            // Hanan grid of the *terminals* (adding Steiner-point coords to
            // the grid as well gives tiny gains at much higher cost).
            let mut xs: Vec<Dbu> = terms.iter().map(|p| p.x).collect();
            let mut ys: Vec<Dbu> = terms.iter().map(|p| p.y).collect();
            xs.sort_unstable();
            xs.dedup();
            ys.sort_unstable();
            ys.dedup();
            for &x in &xs {
                for &y in &ys {
                    let h = Point::new(x, y);
                    if nodes.contains(&h) {
                        continue;
                    }
                    nodes.push(h);
                    let len = mst_length_pruned(&nodes, n_terms);
                    nodes.pop();
                    let gain = base - len;
                    if gain > best_gain {
                        best_gain = gain;
                        best_pt = Some(h);
                    }
                }
            }
            match best_pt {
                Some(h) => nodes.push(h),
                None => break,
            }
        }
        // Drop added Steiner points that ended up as MST leaves (they only
        // lengthen the tree).
        loop {
            let (parent_of, _) = mst_edges(&nodes);
            let mut degree = vec![0usize; nodes.len()];
            for (i, p) in parent_of.iter().enumerate() {
                if let Some(p) = p {
                    degree[i] += 1;
                    degree[*p] += 1;
                }
            }
            let dead: Vec<usize> = (n_terms..nodes.len()).filter(|&i| degree[i] <= 1).collect();
            if dead.is_empty() {
                break;
            }
            for &i in dead.iter().rev() {
                nodes.remove(i);
            }
        }
    }

    // Build the final tree rooted at the driver (index 0).
    let (parent_of, _) = mst_edges(&nodes);
    // Re-root the MST at node 0 by BFS over the undirected edge set.
    let mut adj = vec![Vec::new(); nodes.len()];
    for (i, p) in parent_of.iter().enumerate() {
        if let Some(p) = p {
            adj[i].push(*p);
            adj[*p].push(i);
        }
    }
    let mut tree = WireTree::new(driver);
    let mut tree_idx = vec![usize::MAX; nodes.len()];
    tree_idx[0] = WireTree::ROOT;
    let mut queue = std::collections::VecDeque::from([0usize]);
    let mut visited = vec![false; nodes.len()];
    visited[0] = true;
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u] {
            if !visited[v] {
                visited[v] = true;
                tree_idx[v] = tree.add_child(tree_idx[u], nodes[v]);
                queue.push_back(v);
            }
        }
    }
    tree
}

/// Prim MST: returns per-node parent (node 0 is the root) and total length.
fn mst_edges(pts: &[Point]) -> (Vec<Option<usize>>, Dbu) {
    let n = pts.len();
    let mut in_tree = vec![false; n];
    let mut best = vec![Dbu::MAX; n];
    let mut parent: Vec<Option<usize>> = vec![None; n];
    best[0] = 0;
    let mut total = 0;
    for _ in 0..n {
        let u = (0..n)
            .filter(|&i| !in_tree[i])
            .min_by_key(|&i| best[i])
            .expect("node remains");
        in_tree[u] = true;
        total += if best[u] == Dbu::MAX { 0 } else { best[u] };
        for v in 0..n {
            if !in_tree[v] {
                let d = pts[u].manhattan(pts[v]);
                if d < best[v] {
                    best[v] = d;
                    parent[v] = Some(u);
                }
            }
        }
    }
    (parent, total)
}

/// MST length over `pts`.
fn mst_length(pts: &[Point]) -> Dbu {
    mst_edges(pts).1
}

/// MST length where Steiner points (index ≥ `n_terms`) that are leaves are
/// not charged — a cheap proxy for "length after pruning useless Steiner
/// points", used during candidate scoring.
fn mst_length_pruned(pts: &[Point], n_terms: usize) -> Dbu {
    let (parent, total) = mst_edges(pts);
    let mut degree = vec![0usize; pts.len()];
    let mut edge_to_parent = vec![0; pts.len()];
    for (i, p) in parent.iter().enumerate() {
        if let Some(p) = p {
            degree[i] += 1;
            degree[*p] += 1;
            edge_to_parent[i] = pts[i].manhattan(pts[*p]);
        }
    }
    let mut len = total;
    for i in n_terms..pts.len() {
        if degree[i] == 1 {
            len -= edge_to_parent[i];
        }
    }
    len
}

#[cfg(test)]
// tests pin exact expected values on purpose
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn hpwl(driver: Point, pins: &[Point]) -> Dbu {
        let mut all = vec![driver];
        all.extend_from_slice(pins);
        let r = Rect::bounding(&all).unwrap();
        r.width() + r.height()
    }

    #[test]
    fn rsmt_two_pins_is_manhattan() {
        let d = Point::new(0, 0);
        let p = Point::new(7_000, -3_000);
        let t = rsmt(d, &[p]);
        assert_eq!(t.wirelength_um(), clk_geom::dbu_to_um(d.manhattan(p)));
    }

    #[test]
    fn rsmt_three_pins_uses_median_point() {
        // classic: three corners of an L; optimal = HPWL via median point
        let d = Point::new(0, 0);
        let pins = [Point::new(10_000, 0), Point::new(0, 10_000)];
        let t = rsmt(d, &pins);
        assert_eq!(t.wirelength_um(), 20.0);
        // A T configuration where the Steiner point saves wire vs MST:
        let d = Point::new(0, 0);
        let pins = [Point::new(20_000, 0), Point::new(10_000, 10_000)];
        let t = rsmt(d, &pins);
        assert!(
            (t.wirelength_um() - 30.0).abs() < 1e-9,
            "{}",
            t.wirelength_um()
        );
    }

    #[test]
    fn rsmt_cross_saves_over_mst() {
        // 4 pins in a plus sign around an empty centre: Steiner point at the
        // centre gives 4 spokes; MST must be longer.
        let d = Point::new(0, 10_000);
        let pins = [
            Point::new(20_000, 10_000),
            Point::new(10_000, 0),
            Point::new(10_000, 20_000),
        ];
        let t = rsmt(d, &pins);
        assert!(
            (t.wirelength_um() - 40.0).abs() < 1e-9,
            "{}",
            t.wirelength_um()
        );
    }

    #[test]
    fn rsmt_bounded_by_hpwl_and_mst() {
        // deterministic pseudo-random pins
        let mut seed = 12345u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) % 50_000) as Dbu
        };
        for case in 0..10 {
            let driver = Point::new(next(), next());
            let pins: Vec<Point> = (0..(3 + case % 8))
                .map(|_| Point::new(next(), next()))
                .collect();
            let t = rsmt(driver, &pins);
            let mut all = vec![driver];
            all.extend_from_slice(&pins);
            let mst = mst_length(&all);
            let len = clk_geom::um_to_dbu(t.wirelength_um());
            assert!(len <= mst, "case {case}: rsmt {len} > mst {mst}");
            assert!(len >= hpwl(driver, &pins) / 2, "absurdly short tree");
            // every pin must be present in the tree
            for &p in &pins {
                assert!(t.index_of(p).is_some(), "pin {p} missing");
            }
        }
    }

    #[test]
    fn single_trunk_connects_everything() {
        let d = Point::new(0, 0);
        let pins = [
            Point::new(10_000, 5_000),
            Point::new(20_000, -2_000),
            Point::new(15_000, 8_000),
            Point::new(5_000, 1_000),
        ];
        let t = single_trunk(d, &pins);
        for &p in &pins {
            assert!(t.index_of(p).is_some(), "pin {p} missing");
        }
        // trunk trees are at least HPWL-ish long and at most star length
        let star: Dbu = pins.iter().map(|&p| d.manhattan(p)).sum();
        assert!(clk_geom::um_to_dbu(t.wirelength_um()) <= star);
    }

    #[test]
    fn single_trunk_vertical_box() {
        // taller than wide -> vertical trunk
        let d = Point::new(0, 0);
        let pins = [Point::new(1_000, 10_000), Point::new(-1_000, 30_000)];
        let t = single_trunk(d, &pins);
        for &p in &pins {
            assert!(t.index_of(p).is_some());
        }
    }

    #[test]
    fn degenerate_nets() {
        let d = Point::new(3, 3);
        assert_eq!(single_trunk(d, &[]).node_count(), 1);
        assert_eq!(rsmt(d, &[]).node_count(), 1);
        // all pins coincident with driver
        let t = rsmt(d, &[d, d]);
        assert_eq!(t.wirelength_um(), 0.0);
        let t = single_trunk(d, &[Point::new(3, 3)]);
        assert_eq!(t.wirelength_um(), 0.0);
    }

    #[test]
    fn duplicate_pins_tolerated() {
        let d = Point::new(0, 0);
        let p = Point::new(5_000, 5_000);
        let t = rsmt(d, &[p, p, p]);
        assert_eq!(t.wirelength_um(), 10.0);
    }
}
