//! The parallel local phase's two contracts, end to end:
//!
//! 1. **Bit-stable incremental timing** — re-timing only the dirty cone
//!    of a Table-2 move equals a full golden re-analysis bit for bit,
//!    for every move type and corner.
//! 2. **Worker-count invariance** — Algorithm 2 commits the exact same
//!    move sequence (and produces the exact same tree) whether candidate
//!    evaluation runs on 1, 4, or 8 worker threads. This is the test the
//!    ThreadSanitizer CI job runs under `-Zsanitizer=thread`.

use clk_cts::{Testcase, TestcaseKind};
use clk_delay::WireModel;
use clk_netlist::ClockTree;
use clk_skewopt::local::{local_optimize, LocalConfig, Ranker};
use clk_skewopt::predictor::Topo;
use clk_skewopt::{apply_move, enumerate_moves, touched_drivers, MoveConfig};
use clk_sta::{CornerTiming, Timer};
use proptest::prelude::*;

/// Bit-exact comparison of two corner analyses through the public API.
fn assert_timing_bits_equal(tree: &ClockTree, a: &CornerTiming, b: &CornerTiming, what: &str) {
    assert_eq!(a.corner(), b.corner(), "{what}: corner");
    for n in tree.node_ids() {
        let pair = |x: Result<f64, _>| x.map(f64::to_bits).ok();
        assert_eq!(
            pair(a.try_arrival_ps(n)),
            pair(b.try_arrival_ps(n)),
            "{what}: arrival at {n}"
        );
        assert_eq!(
            pair(a.try_slew_ps(n)),
            pair(b.try_slew_ps(n)),
            "{what}: slew at {n}"
        );
        assert_eq!(
            a.load_ff(n).to_bits(),
            b.load_ff(n).to_bits(),
            "{what}: load at {n}"
        );
    }
    assert_eq!(
        a.wire_cap_ff().to_bits(),
        b.wire_cap_ff().to_bits(),
        "{what}: wire cap"
    );
    assert_eq!(
        a.pin_cap_ff().to_bits(),
        b.pin_cap_ff().to_bits(),
        "{what}: pin cap"
    );
    assert_eq!(a.violations(), b.violations(), "{what}: violations");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For every sampled Table-2 move, the cone-limited incremental
    /// re-analysis from the pre-move timing is bit-identical to a full
    /// re-analysis of the edited tree, at every corner.
    #[test]
    fn incremental_timing_is_bit_identical_to_full(n in 10usize..28, seed in 0u64..200) {
        let tc = Testcase::generate(TestcaseKind::Cls1v1, n, seed);
        let mcfg = MoveConfig::default();
        let timer = Timer::golden();
        let prev = timer.try_analyze_all(&tc.tree, &tc.lib).expect("baseline times");
        let moves = enumerate_moves(&tc.tree, &tc.lib, &mcfg, None);
        prop_assert!(!moves.is_empty());
        // sample across the menu to cover all three move types
        for mv in moves.iter().step_by(11) {
            let dirty = touched_drivers(&tc.tree, mv);
            prop_assert!(!dirty.is_empty(), "move {mv} has no dirty drivers");
            let mut trial = tc.tree.clone();
            if apply_move(&mut trial, &tc.lib, &tc.floorplan, &mcfg, mv).is_err() {
                continue; // legality is another test's business
            }
            let full = timer.try_analyze_all(&trial, &tc.lib).expect("full times");
            let inc = timer
                .try_analyze_all_incremental(&trial, &tc.lib, &prev, &dirty)
                .expect("incremental times");
            for (f, i) in full.iter().zip(&inc) {
                assert_timing_bits_equal(&trial, f, i, &format!("move {mv}"));
            }
        }
    }
}

/// A structural digest of the final tree: topology, placement, sizing.
fn tree_digest(tree: &ClockTree) -> Vec<String> {
    tree.node_ids()
        .map(|n| {
            format!(
                "{n}: parent={:?} loc={:?} cell={:?} kind={:?}",
                tree.parent(n),
                tree.loc(n),
                tree.cell(n),
                tree.node(n).kind
            )
        })
        .collect()
}

/// Runs the local phase on one generated case with a given worker count
/// and returns everything observable about the outcome.
fn run_local(seed: u64, workers: usize) -> (Vec<String>, Vec<(u8, u64)>, u64, usize) {
    let tc = Testcase::generate(TestcaseKind::Cls1v1, 24, seed);
    let mut tree = tc.tree.clone();
    let cfg = LocalConfig {
        max_iterations: 3,
        max_batches: 2,
        workers,
        ..LocalConfig::default()
    };
    let report = local_optimize(
        &mut tree,
        &tc.lib,
        &tc.floorplan,
        Ranker::Analytic(Topo::Flute, WireModel::D2m),
        &cfg,
    );
    tree.validate().expect("final tree valid");
    (
        tree_digest(&tree),
        report
            .iterations
            .iter()
            .map(|it| (it.move_type, it.variation_sum.to_bits()))
            .collect(),
        report.variation_after.to_bits(),
        report.golden_evals,
    )
}

/// The determinism invariant the A1xx certification and the TSan job
/// guard: byte-identical results across thread counts {1, 4, 8} on the
/// chaos seeds.
#[test]
fn parallel_local_is_deterministic_across_worker_counts() {
    for seed in [2015u64, 7, 136] {
        let base = run_local(seed, 1);
        for workers in [4usize, 8] {
            let got = run_local(seed, workers);
            assert_eq!(
                base, got,
                "seed {seed}: workers=1 vs workers={workers} diverged"
            );
        }
    }
}
