//! End-to-end flows (`global`, `local`, `global-local`) and the Table-5
//! report, on top of the fault-tolerant runtime of [`crate::fault`]:
//! every phase runs inside a snapshot transaction under its own budget,
//! phase failures and lint-gate rejections roll back instead of
//! propagating, and everything the flow absorbed is listed on
//! [`OptReport::faults`].

use clk_lint::{DesignCtx, LintLevel, LintRunner};
use clk_netlist::{ClockTree, Floorplan, TreeStats};
use clk_obs::{kv, Ledger, LedgerRecord, Level, Obs};
use clk_sta::{
    alpha_factors, clock_power, local_skew_ps, try_pair_skews, variation_report, Timer, TimingError,
};

use clk_cts::Testcase;

use crate::fault::{
    emit_fault, CancelToken, Checkpoint, Deadline, FaultCtx, FaultKind, FaultLog, FaultPlan,
    FlowBudget, FlowError, PhaseProgress, RecoveryAction, TreeTxn,
};
use crate::global::{global_optimize_checked, GlobalConfig, GlobalReport};
use crate::local::{local_optimize_checked, LocalConfig, LocalReport, Ranker};
use crate::lut::StageLuts;
use crate::predictor::{DeltaLatencyModel, ModelKind, TrainConfig};

/// Which optimization flow to run (the three rows per testcase of
/// Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Flow {
    /// LP-guided global optimization only.
    Global,
    /// ML-guided local iterative optimization only.
    Local,
    /// Global, then local on the global result (the paper's headline
    /// flow).
    GlobalLocal,
}

impl std::fmt::Display for Flow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Flow::Global => "global",
            Flow::Local => "local",
            Flow::GlobalLocal => "global-local",
        })
    }
}

/// Flow-level configuration.
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// Global-phase knobs.
    pub global: GlobalConfig,
    /// Local-phase knobs.
    pub local: LocalConfig,
    /// Predictor training (used by local flows).
    pub train: TrainConfig,
    /// Which learner the local phase uses.
    pub model_kind: ModelKind,
    /// Clock frequency for the power report, GHz.
    pub freq_ghz: f64,
    /// Design-rule audit level at phase boundaries (input, post-global,
    /// post-local). Defaults to `ErrorsOnly` in debug builds and `Off` in
    /// release, where the gates cost nothing.
    pub lint_level: LintLevel,
    /// Per-phase wall-clock / iteration budgets (unbounded by default).
    pub budget: FlowBudget,
    /// Deterministic fault-injection plan, armed by the chaos harness.
    /// `None` (the default) injects nothing.
    pub fault_plan: Option<std::sync::Arc<FaultPlan>>,
    /// Cooperative cancellation handle. Clone it before starting the
    /// flow and call [`CancelToken::cancel`] from any thread (or arm
    /// [`CancelToken::trip_after_polls`] for a deterministic cut): the
    /// flow stops at the next safe point, rolls back uncommitted work,
    /// and returns the best-so-far result with
    /// [`OptReport::partial`] set. The default token never fires.
    pub cancel: CancelToken,
    /// Observability pipeline: spans, metrics, event sinks, and the
    /// flight recorder. Disabled by default (one branch per
    /// instrumentation point); see `clk_obs::Obs::from_env` for the
    /// `CLOCKVAR_OBS` / `CLOCKVAR_OBS_JSONL` environment hookup.
    pub obs: Obs,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            global: GlobalConfig::default(),
            local: LocalConfig::default(),
            train: TrainConfig::default(),
            model_kind: ModelKind::Hsm,
            freq_ghz: 1.0,
            lint_level: LintLevel::default(),
            budget: FlowBudget::default(),
            fault_plan: None,
            cancel: CancelToken::new(),
            obs: Obs::disabled(),
        }
    }
}

/// Runs the full `clk-lint` suite on `tree` and returns a typed
/// [`FlowError::LintGate`] (carrying the stage and the rendered report)
/// when `level` considers it a failure. A no-op at [`LintLevel::Off`],
/// so release flows pay nothing.
///
/// # Errors
///
/// [`FlowError::LintGate`] when the audit fails at the configured level.
pub fn check_lint_gate(
    stage: &str,
    level: LintLevel,
    tree: &ClockTree,
    lib: &clk_liberty::Library,
    fp: &Floorplan,
) -> Result<(), FlowError> {
    if !level.enabled() {
        return Ok(());
    }
    let report = LintRunner::with_default_passes().run(&DesignCtx::with_floorplan(tree, lib, fp));
    if level.fails(&report) {
        return Err(FlowError::LintGate {
            stage: stage.to_string(),
            report: report.to_text(),
        });
    }
    Ok(())
}

/// The committed checkpoint the current phase last wrote to the ledger
/// (the adopted round's / committed move's variation under the flow's
/// init-time alphas), or `fallback` when the phase committed nothing.
fn last_phase_checkpoint(ledger: &Ledger, fallback: f64) -> f64 {
    for rec in ledger.records().iter().rev() {
        match rec {
            LedgerRecord::PhaseStart { .. } | LedgerRecord::PhaseEnd { .. } => break,
            LedgerRecord::RoundEnd { var, .. } => return *var,
            LedgerRecord::LocalCommit {
                committed: true,
                var: Some(v),
                ..
            } => return *v,
            _ => {}
        }
    }
    fallback
}

/// [`check_lint_gate`] with the legacy abort-on-failure contract.
///
/// # Panics
///
/// Panics when the audit fails at the configured level.
pub fn lint_gate(
    stage: &str,
    level: LintLevel,
    tree: &ClockTree,
    lib: &clk_liberty::Library,
    fp: &Floorplan,
) {
    if let Err(e) = check_lint_gate(stage, level, tree, lib, fp) {
        panic!("{e}");
    }
}

/// The Table-5 row: metric deltas of one flow on one testcase.
#[derive(Debug, Clone)]
pub struct OptReport {
    /// Flow that produced this report.
    pub flow: Flow,
    /// Σ variation before, ps (normalized column of Table 5).
    pub variation_before: f64,
    /// Σ variation after, ps.
    pub variation_after: f64,
    /// Local skew per corner before, ps.
    pub local_skew_before: Vec<f64>,
    /// Local skew per corner after, ps.
    pub local_skew_after: Vec<f64>,
    /// Clock cells before.
    pub cells_before: usize,
    /// Clock cells after.
    pub cells_after: usize,
    /// Clock-tree power before (corner 0), mW.
    pub power_before_mw: f64,
    /// Clock-tree power after, mW.
    pub power_after_mw: f64,
    /// Clock-cell area before, µm².
    pub area_before_um2: f64,
    /// Clock-cell area after, µm².
    pub area_after_um2: f64,
    /// The optimized tree.
    pub tree: ClockTree,
    /// Global-phase details when the flow ran it.
    pub global_report: Option<GlobalReport>,
    /// Local-phase details when the flow ran it.
    pub local_report: Option<LocalReport>,
    /// Every fault the runtime absorbed (injected or organic), with the
    /// recovery action taken. Empty on a clean run.
    pub faults: FaultLog,
    /// Whether the flow was cut (deadline expiry or cancellation) and
    /// this report carries a best-so-far result rather than the full
    /// optimization. The tree is still valid, lint-clean at the
    /// configured level, and fully re-timed.
    pub partial: bool,
    /// Per-phase progress markers: how far each phase got and, when cut,
    /// what stopped it.
    pub progress: Vec<PhaseProgress>,
}

impl OptReport {
    /// `after / before` of the variation sum (the `[norm]` column).
    pub fn variation_ratio(&self) -> f64 {
        if self.variation_before <= 0.0 {
            1.0
        } else {
            self.variation_after / self.variation_before
        }
    }
}

/// Runs `flow` on the testcase, characterizing LUTs and training the
/// predictor as needed. For repeated runs share them via
/// [`optimize_with`].
///
/// # Panics
///
/// Panics when the flow fails hard (untimeable input, failed input lint
/// gate); use [`try_optimize`] for a typed error instead.
pub fn optimize(tc: &Testcase, flow: Flow, cfg: &FlowConfig) -> OptReport {
    match try_optimize(tc, flow, cfg) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// [`optimize`] returning a typed [`FlowError`] instead of panicking.
///
/// # Errors
///
/// See [`try_optimize_with`].
pub fn try_optimize(tc: &Testcase, flow: Flow, cfg: &FlowConfig) -> Result<OptReport, FlowError> {
    let luts =
        matches!(flow, Flow::Global | Flow::GlobalLocal).then(|| StageLuts::characterize(&tc.lib));
    let model = matches!(flow, Flow::Local | Flow::GlobalLocal)
        .then(|| DeltaLatencyModel::train(&tc.lib, cfg.model_kind, &cfg.train));
    try_optimize_with(tc, flow, cfg, luts.as_ref(), model.as_ref())
}

/// Runs `flow` with pre-characterized LUTs / a pre-trained model (both
/// are per-technology artifacts the paper reuses across designs).
///
/// # Panics
///
/// Panics when the flow fails hard; use [`try_optimize_with`] for a
/// typed error instead.
pub fn optimize_with(
    tc: &Testcase,
    flow: Flow,
    cfg: &FlowConfig,
    luts: Option<&StageLuts>,
    model: Option<&DeltaLatencyModel>,
) -> OptReport {
    match try_optimize_with(tc, flow, cfg, luts, model) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// The checked flow driver. Fails hard only on problems that make the
/// run meaningless (untimeable input, failed input lint gate, missing
/// per-technology artifact); everything downstream — LP failures, ECO
/// panics, worker panics, phase errors, post-phase lint rejections,
/// exhausted budgets — is absorbed, rolled back to the last good tree,
/// and listed on [`OptReport::faults`].
///
/// # Errors
///
/// * [`FlowError::Timing`] — the *input* tree cannot be timed;
/// * [`FlowError::LintGate`] — the input tree fails the input gate;
/// * [`FlowError::MissingArtifact`] — the flow needs LUTs / a model that
///   were not provided;
/// * [`FlowError::Ctree`] — a best-so-far checkpoint failed to restore
///   (never for a valid input tree).
pub fn try_optimize_with(
    tc: &Testcase,
    flow: Flow,
    cfg: &FlowConfig,
    luts: Option<&StageLuts>,
    model: Option<&DeltaLatencyModel>,
) -> Result<OptReport, FlowError> {
    let lib = &tc.lib;
    let obs = &cfg.obs;
    let flow_start = clk_obs::wall_now();
    let mut flow_span = obs.span_at(
        Level::Info,
        "flow",
        vec![
            kv("flow", flow.to_string()),
            kv("sinks", tc.tree.sinks().count()),
        ],
    );

    let init_span = obs.span("phase.init");
    // structural validity is a precondition, not a lint: even at
    // LintLevel::Off a corrupt database (dangling links, mismatched
    // route endpoints) is rejected with a typed error rather than
    // optimized into a corrupt result
    tc.tree.validate().map_err(FlowError::Tree)?;
    check_lint_gate(
        "CTS (flow input)",
        cfg.lint_level,
        &tc.tree,
        lib,
        &tc.floorplan,
    )?;
    // the baseline STA polls the cancel token (no wall budget: wall
    // clocks are per-phase); a cut here happens before any result
    // exists, so it is the one place the flow surfaces a typed
    // `Interrupted` error instead of a partial report
    let init_timer = Timer::golden()
        .with_obs(obs.clone())
        .with_deadline(Deadline::new(None, Some(cfg.cancel.clone())));
    let analyses0 = match init_timer.try_analyze_all(&tc.tree, lib) {
        Ok(a) => a,
        Err(TimingError::Interrupted) => return Err(FlowError::Interrupted { phase: "init" }),
        Err(e) => return Err(e.into()),
    };
    // final scoring runs deadline-free: once a best-so-far tree exists,
    // even a cancelled flow re-times it fully so the report is complete
    let timer = Timer::golden().with_obs(obs.clone());
    let skews0: Vec<Vec<f64>> = analyses0
        .iter()
        .map(|t| try_pair_skews(t, tc.tree.sink_pairs()))
        .collect::<Result<_, _>>()?;
    let alphas = alpha_factors(&skews0);
    let variation_before = variation_report(&skews0, &alphas, None).sum;
    // the decision ledger checkpoints every accepted decision under
    // these init-time alphas so deltas telescope to the end-to-end
    // variation delta (the waterfall reconciliation gate)
    let ledger = obs.ledger();
    let mut ledger_ckpt = variation_before;
    if ledger.is_enabled() {
        ledger.set_alphas(alphas.clone());
        obs.ledger_append(LedgerRecord::FlowInit {
            flow: flow.to_string(),
            sinks: tc.tree.sinks().count() as u64,
            corners: skews0.len() as u64,
            var: variation_before,
        });
    }
    let local_skew_before: Vec<f64> = skews0.iter().map(|s| local_skew_ps(s)).collect();
    let stats0 = TreeStats::compute(&tc.tree, lib);
    let power_before = clock_power(&tc.tree, lib, &analyses0[0], cfg.freq_ghz);
    // the deepest rollback target: the input tree is known timeable and
    // gate-clean, so a flow can always fall back to "did nothing"
    let input_ckpt = Checkpoint::capture(&tc.tree, lib);
    drop(init_span);

    let plan = cfg.fault_plan.as_deref();
    let mut faults = FaultLog::new().with_origin(flow_start);
    let mut tree = tc.tree.clone();
    let mut global_report = None;
    let mut local_report = None;
    let mut progress: Vec<PhaseProgress> = Vec::new();

    if matches!(flow, Flow::Global | Flow::GlobalLocal) {
        let luts = luts.ok_or(FlowError::MissingArtifact(
            "characterized stage LUTs (global phase)",
        ))?;
        let phase_start = clk_obs::wall_now();
        let mut phase_span = obs.span_at(
            Level::Info,
            "phase.global",
            vec![kv(
                "budget_ms",
                cfg.budget
                    .global
                    .wall_clock
                    .map_or(-1.0, |d| d.as_secs_f64() * 1e3),
            )],
        );
        if ledger.is_enabled() {
            obs.ledger_append(LedgerRecord::PhaseStart {
                phase: "global".to_string(),
            });
        }
        let mut phase_committed = false;
        let mut ctx = FaultCtx::new(
            plan,
            cfg.budget.global.deadline(phase_start, Some(&cfg.cancel)),
        )
        .with_obs(obs.clone())
        .with_origin(flow_start)
        .with_seq_base(faults.next_seq());
        match global_optimize_checked(
            &tree,
            lib,
            &tc.floorplan,
            luts,
            &cfg.global,
            Some(&local_skew_before),
            &mut ctx,
            &cfg.budget.global,
        ) {
            Ok((opt, rep)) => match check_lint_gate(
                "global optimization",
                cfg.lint_level,
                &opt,
                lib,
                &tc.floorplan,
            ) {
                Ok(()) => {
                    phase_span.record("lp_iterations", rep.lp_iterations);
                    phase_span.record("arcs_changed", rep.arcs_changed);
                    tree = opt;
                    global_report = Some(rep);
                    phase_committed = true;
                }
                Err(e) => ctx.record(
                    "flow",
                    FaultKind::LintGateFailed,
                    RecoveryAction::Rollback,
                    format!("{e}; keeping the pre-phase tree"),
                ),
            },
            Err(e) => {
                let kind = if e.is_interrupt() {
                    ctx.interrupt_kind()
                } else {
                    FaultKind::PhaseError
                };
                ctx.record(
                    "flow",
                    kind,
                    RecoveryAction::Rollback,
                    format!("global phase failed ({e}); keeping the pre-phase tree"),
                );
            }
        }
        if let Some(p) = ctx.progress.take() {
            phase_span.record("progress", p.to_string());
            progress.push(p);
        }
        phase_span.record("faults", ctx.log.len());
        faults.absorb(ctx.log);
        drop(phase_span);
        if ledger.is_enabled() {
            if phase_committed {
                ledger_ckpt = last_phase_checkpoint(&ledger, ledger_ckpt);
            }
            obs.ledger_append(LedgerRecord::PhaseEnd {
                phase: "global".to_string(),
                committed: phase_committed,
                var: ledger_ckpt,
            });
        }
    }
    if matches!(flow, Flow::Local | Flow::GlobalLocal) {
        let model = model.ok_or(FlowError::MissingArtifact(
            "trained delta-latency predictor (local phase)",
        ))?;
        let phase_start = clk_obs::wall_now();
        let mut phase_span = obs.span_at(
            Level::Info,
            "phase.local",
            vec![kv(
                "budget_ms",
                cfg.budget
                    .local
                    .wall_clock
                    .map_or(-1.0, |d| d.as_secs_f64() * 1e3),
            )],
        );
        if ledger.is_enabled() {
            obs.ledger_append(LedgerRecord::PhaseStart {
                phase: "local".to_string(),
            });
        }
        let mut phase_committed = false;
        let txn = TreeTxn::begin(&tree);
        let mut ctx = FaultCtx::new(
            plan,
            cfg.budget.local.deadline(phase_start, Some(&cfg.cancel)),
        )
        .with_obs(obs.clone())
        .with_origin(flow_start)
        .with_seq_base(faults.next_seq());
        match local_optimize_checked(
            &mut tree,
            lib,
            &tc.floorplan,
            Ranker::Ml(model),
            &cfg.local,
            Some(&local_skew_before),
            &mut ctx,
            &cfg.budget.local,
        ) {
            Ok(rep) => {
                if let Err(e) = check_lint_gate(
                    "local optimization",
                    cfg.lint_level,
                    &tree,
                    lib,
                    &tc.floorplan,
                ) {
                    ctx.record(
                        "flow",
                        FaultKind::LintGateFailed,
                        RecoveryAction::Rollback,
                        format!("{e}; rolled back to the pre-phase tree"),
                    );
                    txn.rollback(&mut tree);
                } else {
                    phase_span.record("accepted_moves", rep.iterations.len());
                    phase_span.record("golden_evals", rep.golden_evals);
                    local_report = Some(rep);
                    txn.commit();
                    phase_committed = true;
                }
            }
            Err(e) => {
                let kind = if e.is_interrupt() {
                    // cut before the phase's own baseline STA finished:
                    // there is nothing to keep, only to roll back
                    if ctx.progress.is_none() {
                        ctx.progress = Some(PhaseProgress::interrupted(
                            "local",
                            0,
                            cfg.local.max_iterations,
                            ctx.deadline.trigger(),
                        ));
                    }
                    ctx.interrupt_kind()
                } else {
                    FaultKind::PhaseError
                };
                ctx.record(
                    "flow",
                    kind,
                    RecoveryAction::Rollback,
                    format!("local phase failed ({e}); rolled back to the pre-phase tree"),
                );
                txn.rollback(&mut tree);
            }
        }
        if let Some(p) = ctx.progress.take() {
            phase_span.record("progress", p.to_string());
            progress.push(p);
        }
        phase_span.record("faults", ctx.log.len());
        faults.absorb(ctx.log);
        drop(phase_span);
        if ledger.is_enabled() {
            if phase_committed {
                ledger_ckpt = last_phase_checkpoint(&ledger, ledger_ckpt);
            }
            obs.ledger_append(LedgerRecord::PhaseEnd {
                phase: "local".to_string(),
                committed: phase_committed,
                var: ledger_ckpt,
            });
        }
    }

    let scoring_span = obs.span("phase.scoring");
    // final scoring; a tree that passed its gates but cannot be re-timed
    // (possible at LintLevel::Off) falls back to the input checkpoint
    let (tree, analyses1) = match timer.try_analyze_all(&tree, lib) {
        Ok(a) => (tree, a),
        Err(e) => {
            let seq = faults.record(
                "flow",
                FaultKind::PhaseError,
                RecoveryAction::Rollback,
                format!("optimized tree failed final timing ({e}); restoring the input checkpoint"),
            );
            emit_fault(
                obs,
                seq,
                "flow",
                FaultKind::PhaseError,
                RecoveryAction::Rollback,
                "optimized tree failed final timing; restoring the input checkpoint",
            );
            global_report = None;
            local_report = None;
            let t = input_ckpt.restore(lib)?;
            let a = timer.try_analyze_all(&t, lib)?;
            (t, a)
        }
    };
    let skews1: Vec<Vec<f64>> = analyses1
        .iter()
        .map(|t| try_pair_skews(t, tree.sink_pairs()))
        .collect::<Result<_, _>>()?;
    let variation_after = variation_report(&skews1, &alphas, None).sum;
    if ledger.is_enabled() {
        obs.ledger_append(LedgerRecord::FlowEnd {
            var: variation_after,
        });
    }
    let local_skew_after: Vec<f64> = skews1.iter().map(|s| local_skew_ps(s)).collect();
    let stats1 = TreeStats::compute(&tree, lib);
    let power_after = clock_power(&tree, lib, &analyses1[0], cfg.freq_ghz);
    drop(scoring_span);

    let partial = progress.iter().any(|p| p.interrupted);
    flow_span.record("variation_before", variation_before);
    flow_span.record("variation_after", variation_after);
    flow_span.record("faults", faults.len());
    flow_span.record("partial", partial);
    drop(flow_span);
    obs.flush();

    Ok(OptReport {
        flow,
        variation_before,
        variation_after,
        local_skew_before,
        local_skew_after,
        cells_before: stats0.n_buffers,
        cells_after: stats1.n_buffers,
        power_before_mw: power_before.total_mw(),
        power_after_mw: power_after.total_mw(),
        area_before_um2: stats0.buffer_area_um2,
        area_after_um2: stats1.buffer_area_um2,
        tree,
        global_report,
        local_report,
        faults,
        partial,
        progress,
    })
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::fault::FaultSite;
    use clk_cts::TestcaseKind;
    use clk_ml::MlpConfig;

    pub(crate) fn quick_cfg() -> FlowConfig {
        FlowConfig {
            global: GlobalConfig {
                max_pairs: 30,
                lambdas: vec![0.05, 0.3],
                rounds: 1,
                ..GlobalConfig::default()
            },
            local: LocalConfig {
                max_iterations: 2,
                max_batches: 1,
                ..LocalConfig::default()
            },
            train: TrainConfig {
                n_cases: 5,
                moves_per_case: 8,
                mlp: MlpConfig {
                    epochs: 30,
                    ..MlpConfig::default()
                },
                ..TrainConfig::default()
            },
            ..FlowConfig::default()
        }
    }

    #[test]
    fn global_local_flow_improves_and_reports() {
        let tc = clk_cts::Testcase::generate(TestcaseKind::Cls1v1, 40, 31);
        let report = optimize(&tc, Flow::GlobalLocal, &quick_cfg());
        report.tree.validate().unwrap();
        assert!(report.variation_ratio() <= 1.0);
        assert!(report.global_report.is_some());
        assert!(report.local_report.is_some());
        assert_eq!(report.local_skew_before.len(), 3);
        assert!(report.power_before_mw > 0.0);
        assert!(report.cells_before > 0);
        assert!(report.faults.is_empty(), "{}", report.faults.to_text());
        // cell-count overhead stays small (paper: ~1-2%)
        assert!(
            (report.cells_after as f64) < 1.35 * report.cells_before as f64,
            "cells {} -> {}",
            report.cells_before,
            report.cells_after
        );
    }

    #[test]
    // bit-exact checkpoint equality is the property under test
    #[allow(clippy::float_cmp)]
    fn ledger_reconciles_and_round_trips() {
        let tc = clk_cts::Testcase::generate(TestcaseKind::Cls1v1, 40, 34);
        let mut cfg = quick_cfg();
        cfg.obs = Obs::new(clk_obs::ObsConfig {
            ledger: true,
            ..clk_obs::ObsConfig::default()
        });
        let report = optimize(&tc, Flow::GlobalLocal, &cfg);
        let ledger = cfg.obs.ledger();
        let records = ledger.records();

        // the ledger brackets the run
        let Some(LedgerRecord::FlowInit { var: init_var, .. }) = records.first() else {
            panic!("ledger starts with flow_init: {records:?}");
        };
        let Some(LedgerRecord::FlowEnd { var: end_var }) = records.last() else {
            panic!("ledger ends with flow_end: {records:?}");
        };
        assert_eq!(*init_var, report.variation_before);
        assert_eq!(*end_var, report.variation_after);
        assert!(records
            .iter()
            .any(|r| matches!(r, LedgerRecord::Lambda { .. })));
        assert!(records
            .iter()
            .any(|r| matches!(r, LedgerRecord::LocalCand { .. })));

        // JSONL round-trip is byte-identical
        let text = ledger.to_jsonl();
        let parsed = clk_obs::ledger::parse_jsonl(&text).expect("ledger parses");
        assert_eq!(parsed.len(), records.len());
        assert_eq!(clk_obs::ledger::encode_jsonl(&parsed), text);

        // reconciliation: committed checkpoints telescope bit-exactly to
        // the end-to-end variation delta
        let mut ckpt = *init_var;
        let mut phase_ckpt = ckpt;
        for rec in &records {
            match rec {
                LedgerRecord::PhaseStart { .. } => phase_ckpt = ckpt,
                LedgerRecord::RoundEnd { var, .. } => phase_ckpt = *var,
                LedgerRecord::LocalCommit {
                    committed: true,
                    var: Some(v),
                    ..
                } => phase_ckpt = *v,
                LedgerRecord::PhaseEnd { committed, var, .. } => {
                    if *committed {
                        ckpt = phase_ckpt;
                    }
                    assert_eq!(*var, ckpt, "phase_end checkpoint mismatch");
                }
                _ => {}
            }
        }
        assert!(
            (ckpt - end_var).abs() <= 1e-6,
            "ledger checkpoint {ckpt} vs end-to-end {end_var}"
        );
    }

    #[test]
    fn flow_names_are_stable() {
        assert_eq!(Flow::Global.to_string(), "global");
        assert_eq!(Flow::Local.to_string(), "local");
        assert_eq!(Flow::GlobalLocal.to_string(), "global-local");
    }

    #[test]
    fn pure_global_flow_needs_no_model() {
        let tc = clk_cts::Testcase::generate(TestcaseKind::Cls1v1, 24, 33);
        let luts = crate::lut::StageLuts::characterize(&tc.lib);
        let report = optimize_with(&tc, Flow::Global, &quick_cfg(), Some(&luts), None);
        assert!(report.local_report.is_none());
        assert!(report.variation_ratio() <= 1.0 + 1e-9);
        assert!(report.variation_ratio() > 0.0);
    }

    #[test]
    fn pure_local_flow_runs() {
        let tc = clk_cts::Testcase::generate(TestcaseKind::Cls1v1, 32, 32);
        let report = optimize(&tc, Flow::Local, &quick_cfg());
        assert!(report.global_report.is_none());
        assert!(report.variation_ratio() <= 1.0);
    }

    #[test]
    fn missing_artifacts_are_typed_errors() {
        let tc = clk_cts::Testcase::generate(TestcaseKind::Cls1v1, 24, 35);
        let e = try_optimize_with(&tc, Flow::Global, &quick_cfg(), None, None).unwrap_err();
        assert!(matches!(e, FlowError::MissingArtifact(_)), "{e}");
        let e = try_optimize_with(&tc, Flow::Local, &quick_cfg(), None, None).unwrap_err();
        assert!(matches!(e, FlowError::MissingArtifact(_)), "{e}");
    }

    #[test]
    fn cancelled_flow_returns_partial_best_so_far() {
        let tc = clk_cts::Testcase::generate(TestcaseKind::Cls1v1, 24, 37);
        let luts = crate::lut::StageLuts::characterize(&tc.lib);
        let model = DeltaLatencyModel::train(&tc.lib, quick_cfg().model_kind, &quick_cfg().train);

        // calibrate: count the flow's total deadline polls
        let calib = CancelToken::new();
        let mut cfg = quick_cfg();
        cfg.cancel = calib.clone();
        let full = try_optimize_with(&tc, Flow::GlobalLocal, &cfg, Some(&luts), Some(&model))
            .expect("uncancelled run completes");
        assert!(!full.partial);
        assert!(full.progress.iter().all(|p| !p.interrupted));
        let total = calib.polls();
        assert!(total > 0, "flow never polled its deadline");

        // cut mid-flow: the report is partial, the tree still valid
        let token = CancelToken::new();
        token.trip_after_polls(total / 2);
        let mut cfg = quick_cfg();
        cfg.cancel = token;
        let rep = try_optimize_with(&tc, Flow::GlobalLocal, &cfg, Some(&luts), Some(&model))
            .expect("mid-flow cut yields best-so-far");
        assert!(rep.partial, "cut at {}/{total} was not partial", total / 2);
        assert!(rep.progress.iter().any(|p| p.interrupted));
        rep.tree.validate().unwrap();

        // cut before anything exists: a typed interrupt error
        let token = CancelToken::new();
        token.trip_after_polls(1);
        let mut cfg = quick_cfg();
        cfg.cancel = token;
        let e = try_optimize_with(&tc, Flow::GlobalLocal, &cfg, Some(&luts), Some(&model))
            .expect_err("cut during init has no best-so-far");
        assert!(e.is_interrupt(), "{e}");
    }

    #[test]
    fn seeded_fault_plan_is_absorbed_and_logged() {
        let tc = clk_cts::Testcase::generate(TestcaseKind::Cls1v1, 40, 36);
        let plan = std::sync::Arc::new(FaultPlan::seeded(7));
        let mut cfg = quick_cfg();
        cfg.fault_plan = Some(plan.clone());
        let report = try_optimize(&tc, Flow::GlobalLocal, &cfg).expect("flow absorbs the plan");
        report.tree.validate().unwrap();
        assert!(report.variation_ratio() <= 1.0 + 1e-9);
        let injected = plan.injected();
        assert!(!injected.is_empty(), "the plan never got to fire");
        for site in injected {
            let kind = match site {
                FaultSite::NanArcDelay => FaultKind::NanArcDelay,
                FaultSite::CorruptLutRow => FaultKind::CorruptDelayModel,
                FaultSite::InfeasibleLp => FaultKind::LpFailure,
                FaultSite::WorkerPanic => FaultKind::WorkerPanic,
            };
            assert!(
                report.faults.of_kind(kind).count() >= 1,
                "injected {site} has no {kind} record:\n{}",
                report.faults.to_text()
            );
        }
    }
}
