// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic)]
#![warn(missing_docs)]

//! Baseline clock-tree synthesis and testcase generation — the stand-in
//! for the commercial CTS flow and for the paper's benchmark designs.
//!
//! * [`builder`]: a best-practices CTS: recursive geometric clustering
//!   (large leaf fanout, small branch fanout), inverter-**pair** insertion
//!   at every cluster driver (clock polarity stays even by construction),
//!   load-aware sizing, repeater chains on long edges, and a latency-
//!   balancing pass that adds routing detours until the skew target (0 ps)
//!   stops improving — in single-corner (MCSM) or multi-corner (MCMM)
//!   mode, mirroring how the paper's original trees were produced.
//! * [`testcase`]: generators for the paper's two design classes — CLS1
//!   (four-ILM application processor, Table 4: CLS1v1/CLS1v2) and CLS2
//!   (L-shaped memory controller, CLS2v1) — plus the **artificial
//!   training testcases** used to fit the delta-latency models (fanout
//!   1–5, 20–40 at the last stage; bounding boxes 1000–8000 µm², aspect
//!   ratio 0.5–1).
//!
//! Sizes are parameterizable: the paper's 36K–270K-sink blocks scale down
//! to hundreds–thousands of sinks here (see DESIGN.md §4).
//!
//! # Examples
//!
//! ```
//! use clk_cts::testcase::{Testcase, TestcaseKind};
//!
//! let tc = Testcase::generate(TestcaseKind::Cls1v1, 64, 1);
//! assert_eq!(tc.tree.sinks().count(), 64);
//! assert!(!tc.tree.sink_pairs().is_empty());
//! tc.tree.validate().expect("CTS produces well-formed trees");
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used))]
pub mod balance;
pub mod builder;
pub mod testcase;

pub use balance::{balance_by_detours, BalanceMode};
pub use builder::{CtsConfig, CtsEngine};
pub use testcase::{artificial, variation_sum, ArtificialCase, Testcase, TestcaseKind};
