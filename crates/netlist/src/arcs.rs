//! The arc view of a clock tree and arc-level ECO surgery.
//!
//! An **arc** (paper Table 1, `s_j`) is a maximal tree segment without
//! branching: it runs from a *junction* (the source, a branching node, or
//! any non-sink node about to end a chain) through a chain of single-fanout
//! buffers to the next junction (a branching node or a sink). The global LP
//! optimizes one delay variable per (arc, corner); the ECO engine realizes
//! the LP answer by rebuilding the buffer chain of whole arcs.

use std::collections::HashMap;

use clk_geom::dbu_to_um;
use clk_liberty::CellId;
use clk_route::RoutePath;

use crate::tree::{ClockTree, NodeId, NodeKind, TreeError};

/// Opaque handle of an arc within an [`ArcSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArcId(pub u32);

impl std::fmt::Display for ArcId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// One arc: junction `from` → chain `interior` → junction `to`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arc {
    /// Driver-side junction (source or branching node).
    pub from: NodeId,
    /// Load-side junction (branching node or sink).
    pub to: NodeId,
    /// Single-fanout buffers strictly between, ordered from `from` to `to`.
    pub interior: Vec<NodeId>,
}

impl Arc {
    /// Total routed length of the arc, µm (edges of interior nodes plus the
    /// final edge into `to`).
    pub fn length_um(&self, tree: &ClockTree) -> f64 {
        let mut len = 0;
        for &n in self.interior.iter().chain(std::iter::once(&self.to)) {
            if let Some(r) = &tree.node(n).route {
                len += r.length_dbu();
            }
        }
        dbu_to_um(len)
    }

    /// Number of interior inverters (buffer instances) on the arc.
    pub fn inverter_count(&self) -> usize {
        self.interior.len()
    }
}

/// The set of arcs of a tree at a moment in time, with lookup indices.
/// Tree edits invalidate the set; re-extract after structural changes.
#[derive(Debug, Clone)]
pub struct ArcSet {
    arcs: Vec<Arc>,
    /// Maps the load-side junction of each arc to the arc id.
    by_to: HashMap<NodeId, ArcId>,
}

impl ArcSet {
    /// Extracts all arcs of `tree`.
    ///
    /// Junctions are: the root, every node with `children.len() != 1`, and
    /// every sink. Chains of single-child buffers form arc interiors.
    pub fn extract(tree: &ClockTree) -> Self {
        let is_junction = |id: NodeId| -> bool {
            id == tree.root()
                || tree.node(id).kind == NodeKind::Sink
                || tree.children(id).len() != 1
        };
        let mut arcs = Vec::new();
        let mut by_to = HashMap::new();
        let mut stack = vec![tree.root()];
        while let Some(j) = stack.pop() {
            debug_assert!(is_junction(j));
            for &c in tree.children(j) {
                let mut interior = Vec::new();
                let mut cur = c;
                while !is_junction(cur) {
                    interior.push(cur);
                    cur = tree.children(cur)[0];
                }
                let id = ArcId(arcs.len() as u32);
                by_to.insert(cur, id);
                arcs.push(Arc {
                    from: j,
                    to: cur,
                    interior,
                });
                stack.push(cur);
            }
        }
        ArcSet { arcs, by_to }
    }

    /// All arcs.
    pub fn arcs(&self) -> &[Arc] {
        &self.arcs
    }

    /// Number of arcs.
    pub fn len(&self) -> usize {
        self.arcs.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.arcs.is_empty()
    }

    /// The arc with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn arc(&self, id: ArcId) -> &Arc {
        &self.arcs[id.0 as usize]
    }

    /// The arc whose load-side junction is `to`, if any.
    pub fn arc_ending_at(&self, to: NodeId) -> Option<ArcId> {
        self.by_to.get(&to).copied()
    }

    /// The arcs of the clock path from the root to `sink`, root-side first
    /// — the set `P_i` of the paper.
    pub fn path_arcs(&self, tree: &ClockTree, sink: NodeId) -> Vec<ArcId> {
        let mut path = Vec::new();
        let mut cur = sink;
        while cur != tree.root() {
            let id = self
                .by_to
                .get(&cur)
                .copied()
                .expect("every junction below the root terminates an arc");
            path.push(id);
            cur = self.arc(id).from;
        }
        path.reverse();
        path
    }
}

/// Rebuilds the buffer chain of `arc` in `tree`: removes the old interior
/// inverters and inserts `n_inverters` new instances of `cell`, placed
/// uniformly along `path` (which must run from the `from` junction to the
/// `to` junction and may include a detour). This is the ECO primitive of
/// the paper's Algorithm 1 (lines 2 and 19).
///
/// Positions are **not** legalized here; callers legalize with a
/// [`crate::Floorplan`] and then, if desired, re-route — or use
/// [`rebuild_arc_legalized`]. Returns the new interior node ids.
///
/// # Errors
///
/// [`TreeError::RouteEndpointMismatch`] if `path` endpoints do not match
/// the junction locations.
///
/// # Panics
///
/// Panics if `arc` does not describe the current chain between its
/// junctions (the arc set is stale).
pub fn rebuild_arc(
    tree: &mut ClockTree,
    arc: &Arc,
    cell: CellId,
    n_inverters: usize,
    path: RoutePath,
) -> Result<Vec<NodeId>, TreeError> {
    rebuild_arc_impl(tree, arc, cell, n_inverters, path, None)
}

/// [`rebuild_arc`] with placement legalization: every inserted inverter
/// is snapped to a legal site of `fp`, and the route pieces get small
/// L-shape jogs so segment endpoints still meet the actual locations.
///
/// # Errors
///
/// [`TreeError::RouteEndpointMismatch`] if `path` endpoints do not match
/// the junction locations.
///
/// # Panics
///
/// Panics if `arc` does not describe the current chain between its
/// junctions (the arc set is stale).
pub fn rebuild_arc_legalized(
    tree: &mut ClockTree,
    arc: &Arc,
    cell: CellId,
    n_inverters: usize,
    path: RoutePath,
    fp: &crate::Floorplan,
) -> Result<Vec<NodeId>, TreeError> {
    rebuild_arc_impl(tree, arc, cell, n_inverters, path, Some(fp))
}

fn rebuild_arc_impl(
    tree: &mut ClockTree,
    arc: &Arc,
    cell: CellId,
    n_inverters: usize,
    path: RoutePath,
    fp: Option<&crate::Floorplan>,
) -> Result<Vec<NodeId>, TreeError> {
    if path.start() != tree.loc(arc.from) || path.end() != tree.loc(arc.to) {
        return Err(TreeError::RouteEndpointMismatch(arc.to));
    }
    // Verify staleness: walking parents from `to` must traverse interior
    // reversed and stop at `from`.
    {
        let mut cur = tree.parent(arc.to).expect("arc end has a parent");
        for &n in arc.interior.iter().rev() {
            assert_eq!(cur, n, "stale arc: interior mismatch");
            cur = tree.parent(n).expect("interior has a parent");
        }
        assert_eq!(cur, arc.from, "stale arc: from mismatch");
    }
    // Remove the old chain (front interior node detaches from `from`).
    for &n in &arc.interior {
        tree.remove_buffer(n)?;
    }
    // After splicing removals, `to` hangs directly under `from`.
    debug_assert_eq!(tree.parent(arc.to), Some(arc.from));
    // Insert the new chain: exact sub-path routes at the uniform split
    // points, jogged to the legal sites when a floorplan is given.
    let total = path.length_dbu();
    let n = n_inverters;
    let mut new_ids = Vec::with_capacity(n);
    let mut prev = arc.from;
    let mut prev_d = 0;
    let mut prev_loc = tree.loc(arc.from);
    for k in 1..=n {
        let d = total * k as i64 / (n as i64 + 1);
        let ideal = path.locate(d);
        let pos = fp.map_or(ideal, |f| f.legalize(ideal));
        let seg = jogged(path.sub_path(prev_d, d), prev_loc, pos);
        let id = tree.add_node_with_route(NodeKind::Buffer(cell), pos, prev, seg)?;
        new_ids.push(id);
        prev = id;
        prev_d = d;
        prev_loc = pos;
    }
    // Reattach `to` under the last new inverter with the final segment.
    if prev != arc.from {
        tree.set_parent(arc.to, prev)?;
    }
    let last = jogged(path.sub_path(prev_d, total), prev_loc, tree.loc(arc.to));
    tree.set_route(arc.to, last)?;
    Ok(new_ids)
}

/// `seg` with L-shape jogs patched on either end so it runs exactly from
/// `start` to `end` (a no-op when the endpoints already match).
fn jogged(seg: RoutePath, start: clk_geom::Point, end: clk_geom::Point) -> RoutePath {
    let mut seg = seg;
    if seg.start() != start {
        seg = RoutePath::l_shape(start, seg.start()).join(&seg);
    }
    if seg.end() != end {
        seg = seg.join(&RoutePath::l_shape(seg.end(), end));
    }
    seg
}

#[cfg(test)]
mod tests {
    use super::*;
    use clk_geom::Point;

    fn cell() -> CellId {
        CellId(1)
    }

    /// root -> a -> b -> branch(c) -> {chain d -> sink1, sink2}
    fn chain_tree() -> (ClockTree, Vec<NodeId>) {
        let mut t = ClockTree::new(Point::new(0, 0), cell());
        let a = t.add_node(NodeKind::Buffer(cell()), Point::new(10_000, 0), t.root());
        let b = t.add_node(NodeKind::Buffer(cell()), Point::new(20_000, 0), a);
        let c = t.add_node(NodeKind::Buffer(cell()), Point::new(30_000, 0), b);
        let d = t.add_node(NodeKind::Buffer(cell()), Point::new(40_000, 5_000), c);
        let s1 = t.add_node(NodeKind::Sink, Point::new(50_000, 5_000), d);
        let s2 = t.add_node(NodeKind::Sink, Point::new(40_000, -5_000), c);
        (t, vec![a, b, c, d, s1, s2])
    }

    #[test]
    fn extract_finds_three_arcs() {
        let (t, n) = chain_tree();
        let (a, b, c, d, s1, s2) = (n[0], n[1], n[2], n[3], n[4], n[5]);
        let set = ArcSet::extract(&t);
        assert_eq!(set.len(), 3);
        // root -> c with interior a, b
        let arc0 = set.arc(set.arc_ending_at(c).unwrap());
        assert_eq!(arc0.from, t.root());
        assert_eq!(arc0.interior, vec![a, b]);
        // c -> s1 with interior d
        let arc1 = set.arc(set.arc_ending_at(s1).unwrap());
        assert_eq!(arc1.from, c);
        assert_eq!(arc1.interior, vec![d]);
        // c -> s2 with no interior
        let arc2 = set.arc(set.arc_ending_at(s2).unwrap());
        assert_eq!(arc2.from, c);
        assert!(arc2.interior.is_empty());
    }

    #[test]
    fn path_arcs_orders_root_first() {
        let (t, n) = chain_tree();
        let (c, s1) = (n[2], n[4]);
        let set = ArcSet::extract(&t);
        let path = set.path_arcs(&t, s1);
        assert_eq!(path.len(), 2);
        assert_eq!(set.arc(path[0]).from, t.root());
        assert_eq!(set.arc(path[0]).to, c);
        assert_eq!(set.arc(path[1]).to, s1);
    }

    #[test]
    fn arc_length_sums_routes() {
        let (t, n) = chain_tree();
        let set = ArcSet::extract(&t);
        let arc0 = set.arc(set.arc_ending_at(n[2]).unwrap());
        assert!((arc0.length_um(&t) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn rebuild_arc_replaces_chain() {
        let (mut t, n) = chain_tree();
        let c = n[2];
        let set = ArcSet::extract(&t);
        let arc0 = set.arc(set.arc_ending_at(c).unwrap()).clone();
        let path = RoutePath::with_detour(t.loc(t.root()), t.loc(c), 20.0);
        let new_cell = CellId(3);
        let ids = rebuild_arc(&mut t, &arc0, new_cell, 4, path.clone()).unwrap();
        t.validate().unwrap();
        assert_eq!(ids.len(), 4);
        for &id in &ids {
            assert_eq!(t.cell(id), Some(new_cell));
        }
        // old interior removed
        assert!(!t.is_alive(n[0]));
        assert!(!t.is_alive(n[1]));
        // arc re-extraction sees the new chain, with preserved total length
        let set2 = ArcSet::extract(&t);
        let arc0b = set2.arc(set2.arc_ending_at(c).unwrap());
        assert_eq!(arc0b.interior, ids);
        assert!((arc0b.length_um(&t) - path.length_um()).abs() < 1e-6);
    }

    #[test]
    fn rebuild_arc_to_zero_inverters() {
        let (mut t, n) = chain_tree();
        let c = n[2];
        let set = ArcSet::extract(&t);
        let arc0 = set.arc(set.arc_ending_at(c).unwrap()).clone();
        let path = RoutePath::l_shape(t.loc(t.root()), t.loc(c));
        let ids = rebuild_arc(&mut t, &arc0, cell(), 0, path).unwrap();
        assert!(ids.is_empty());
        t.validate().unwrap();
        assert_eq!(t.parent(c), Some(t.root()));
    }

    #[test]
    fn rebuild_arc_rejects_bad_path() {
        let (mut t, n) = chain_tree();
        let c = n[2];
        let set = ArcSet::extract(&t);
        let arc0 = set.arc(set.arc_ending_at(c).unwrap()).clone();
        let bad = RoutePath::l_shape(Point::new(1, 1), t.loc(c));
        assert!(rebuild_arc(&mut t, &arc0, cell(), 2, bad).is_err());
    }

    #[test]
    fn single_sink_tree_has_one_arc() {
        let mut t = ClockTree::new(Point::new(0, 0), cell());
        let s = t.add_node(NodeKind::Sink, Point::new(10, 10), t.root());
        let set = ArcSet::extract(&t);
        assert_eq!(set.len(), 1);
        assert_eq!(set.arc(ArcId(0)).to, s);
    }
}
