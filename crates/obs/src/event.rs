//! Event records — the unit of data flowing from instrumentation
//! points to sinks and the flight recorder.

use crate::json::Value;

/// Severity / verbosity level of an event or span.
///
/// Ordered so that `level <= verbosity` means "emit": `Error` is always
/// emitted by an enabled pipeline, `Trace` only at maximum verbosity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Level {
    /// Unrecoverable or absorbed-fault conditions.
    Error,
    /// Suspicious conditions the flow worked around.
    Warn,
    /// Phase/round milestones. The default verbosity.
    #[default]
    Info,
    /// Per-lambda / per-batch detail.
    Debug,
    /// Per-candidate / per-pivot detail.
    Trace,
}

impl Level {
    /// Short lowercase name used in sink output.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses a level name (case-insensitive); `None` for unknown.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }
}

/// What kind of record this is — the `t` key in the JSONL schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened.
    SpanStart,
    /// A span closed (carries `elapsed_ms`).
    SpanEnd,
    /// A point event.
    Event,
    /// An absorbed fault (mirrors a `FaultLog` record).
    Fault,
    /// A flight-recorder dump triggered by a fault.
    FlightDump,
    /// A full metrics snapshot.
    Metrics,
}

impl EventKind {
    /// The `t` tag used in JSONL output.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::SpanStart => "span_start",
            EventKind::SpanEnd => "span_end",
            EventKind::Event => "event",
            EventKind::Fault => "fault",
            EventKind::FlightDump => "flight_dump",
            EventKind::Metrics => "metrics",
        }
    }
}

/// One fully-resolved record handed to every sink.
#[derive(Debug, Clone)]
pub struct EventRecord {
    /// Record kind (`t` in JSONL).
    pub kind: EventKind,
    /// Globally monotonic sequence number within one `Obs` pipeline.
    pub seq: u64,
    /// Milliseconds since the pipeline epoch (flow start).
    pub ts_ms: f64,
    /// Id of the span this record belongs to, if any.
    pub span: Option<u64>,
    /// Id of the enclosing span, if any.
    pub parent: Option<u64>,
    /// Severity.
    pub level: Level,
    /// Dotted event/span name, e.g. `global.round`.
    pub name: String,
    /// Wall-clock duration for `SpanEnd` records.
    pub elapsed_ms: Option<f64>,
    /// Free-form key=value payload.
    pub fields: Vec<(String, Value)>,
}

impl EventRecord {
    /// Renders the record as one compact JSON object (no trailing
    /// newline).
    pub fn to_json(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = vec![
            ("t".to_string(), Value::from(self.kind.as_str())),
            ("seq".to_string(), Value::from(self.seq)),
            (
                "ts_ms".to_string(),
                Value::Num((self.ts_ms * 1000.0).round() / 1000.0),
            ),
        ];
        if let Some(id) = self.span {
            pairs.push(("span".to_string(), Value::from(id)));
        }
        if let Some(id) = self.parent {
            pairs.push(("parent".to_string(), Value::from(id)));
        }
        pairs.push(("level".to_string(), Value::from(self.level.as_str())));
        pairs.push(("name".to_string(), Value::from(self.name.as_str())));
        if let Some(ms) = self.elapsed_ms {
            pairs.push((
                "elapsed_ms".to_string(),
                Value::Num((ms * 1000.0).round() / 1000.0),
            ));
        }
        if !self.fields.is_empty() {
            pairs.push(("fields".to_string(), Value::Obj(self.fields.clone())));
        }
        Value::Obj(pairs)
    }

    /// Renders the record as one human-readable line (no trailing
    /// newline), e.g.
    /// `[  12.345ms info ] global.round end (87.2ms) round=1 lambdas=5`.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut line = format!(
            "[{:>10.3}ms {:>5}] {}",
            self.ts_ms,
            self.level.as_str(),
            self.name
        );
        match self.kind {
            EventKind::SpanStart => line.push_str(" start"),
            EventKind::SpanEnd => {
                let _ = write!(line, " end ({:.3}ms)", self.elapsed_ms.unwrap_or(0.0));
            }
            EventKind::Fault => line.push_str(" FAULT"),
            EventKind::FlightDump => line.push_str(" flight-dump"),
            EventKind::Metrics | EventKind::Event => {}
        }
        for (k, v) in &self.fields {
            match v {
                Value::Str(s) => {
                    let _ = write!(line, " {k}={s}");
                }
                other => {
                    let _ = write!(line, " {k}={}", other.to_json());
                }
            }
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_by_verbosity() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Info < Level::Trace);
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("nope"), None);
    }

    #[test]
    fn json_rendering_includes_schema_keys() {
        let rec = EventRecord {
            kind: EventKind::SpanEnd,
            seq: 7,
            ts_ms: 1.23456,
            span: Some(3),
            parent: Some(1),
            level: Level::Debug,
            name: "global.round".to_string(),
            elapsed_ms: Some(88.5),
            fields: vec![("round".to_string(), Value::from(2u64))],
        };
        let v = rec.to_json();
        assert_eq!(v.get("t").and_then(Value::as_str), Some("span_end"));
        assert_eq!(v.get("seq").and_then(Value::as_u64), Some(7));
        assert_eq!(v.get("span").and_then(Value::as_u64), Some(3));
        assert_eq!(
            v.get("fields")
                .and_then(|f| f.get("round"))
                .and_then(Value::as_u64),
            Some(2)
        );
        let text = rec.to_text();
        assert!(text.contains("global.round end"), "{text}");
        assert!(text.contains("round=2"), "{text}");
    }
}
