// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic)]
#![warn(missing_docs)]

//! Fixed-point geometry primitives for the clockvar physical-design database.
//!
//! All coordinates are stored as [`Dbu`] (database units); **1 dbu = 1 nm**.
//! Conversions to and from micrometres are provided for the math layers,
//! which work in `f64` µm.
//!
//! # Examples
//!
//! ```
//! use clk_geom::{Point, Rect};
//!
//! let a = Point::new(0, 0);
//! let b = Point::from_um(10.0, 5.0);
//! assert_eq!(a.manhattan(b), 15_000);
//! let r = Rect::bounding(&[a, b]).expect("non-empty");
//! assert_eq!(r.width(), 10_000);
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used))]
pub mod point;
pub mod rect;

pub use point::{Dbu, Direction, Point, DBU_PER_UM};
pub use rect::Rect;

/// Converts database units to micrometres.
///
/// ```
/// assert_eq!(clk_geom::dbu_to_um(2_500), 2.5);
/// ```
#[inline]
pub fn dbu_to_um(dbu: Dbu) -> f64 {
    dbu as f64 / DBU_PER_UM as f64
}

/// Converts micrometres to database units, rounding to the nearest unit.
///
/// ```
/// assert_eq!(clk_geom::um_to_dbu(2.5), 2_500);
/// ```
#[inline]
pub fn um_to_dbu(um: f64) -> Dbu {
    (um * DBU_PER_UM as f64).round() as Dbu
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbu_um_roundtrip() {
        for v in [-12.25, 0.0, 0.001, 3.75, 650.0] {
            assert!((dbu_to_um(um_to_dbu(v)) - v).abs() < 1e-9);
        }
    }

    #[test]
    fn um_to_dbu_rounds() {
        assert_eq!(um_to_dbu(0.0004), 0);
        assert_eq!(um_to_dbu(0.0006), 1);
        assert_eq!(um_to_dbu(-0.0006), -1);
    }
}
