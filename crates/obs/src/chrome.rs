//! Chrome trace-event exporter.
//!
//! Converts the JSONL event stream produced by [`JsonlSink`] into the
//! Chrome trace-event JSON format understood by `about://tracing` and
//! [Perfetto](https://ui.perfetto.dev): spans become `ph: "B"` / `ph:
//! "E"` duration pairs, point events and faults become `ph: "i"`
//! instants. Timestamps are microseconds since the pipeline epoch, as
//! the format requires.
//!
//! The JSONL stream does not record thread ids, so spans are assigned
//! to synthetic tracks (`tid`) greedily such that within one track the
//! `B`/`E` pairs nest properly — concurrent sibling spans land on
//! separate tracks instead of producing a malformed stack.
//!
//! [`JsonlSink`]: crate::JsonlSink

use crate::json::{self, Value};

/// One span reconstructed from its `span_start` / `span_end` records.
struct SpanRec {
    id: u64,
    name: String,
    start_us: f64,
    end_us: f64,
    start_fields: Vec<(String, Value)>,
    end_fields: Vec<(String, Value)>,
}

/// One instant (point event or fault).
struct InstantRec {
    name: String,
    ts_us: f64,
    cat: &'static str,
    span: Option<u64>,
    fields: Vec<(String, Value)>,
}

fn fields_of(v: &Value) -> Vec<(String, Value)> {
    match v.get("fields") {
        Some(Value::Obj(pairs)) => pairs.clone(),
        _ => Vec::new(),
    }
}

/// Converts one JSONL trace into a list of Chrome trace events.
///
/// `pid` is stamped on every event, so multiple independent traces
/// (e.g. one flow run per testcase) can be merged into a single file
/// as separate processes.
///
/// # Errors
///
/// The 1-based line number and message of the first JSONL line that
/// does not parse.
pub fn trace_events_from_jsonl(jsonl: &str, pid: u64) -> Result<Vec<Value>, String> {
    let mut spans: Vec<SpanRec> = Vec::new();
    let mut open: Vec<usize> = Vec::new(); // indices of spans awaiting an end
    let mut instants: Vec<InstantRec> = Vec::new();
    let mut max_us: f64 = 0.0;

    for (i, line) in jsonl.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let kind = v.get("t").and_then(Value::as_str).unwrap_or("");
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string();
        let ts_us = v.get("ts_ms").and_then(Value::as_f64).unwrap_or(0.0) * 1e3;
        max_us = max_us.max(ts_us);
        match kind {
            "span_start" => {
                let Some(id) = v.get("span").and_then(Value::as_u64) else {
                    continue;
                };
                open.push(spans.len());
                spans.push(SpanRec {
                    id,
                    name,
                    start_us: ts_us,
                    end_us: f64::NAN, // patched by the matching span_end
                    start_fields: fields_of(&v),
                    end_fields: Vec::new(),
                });
            }
            "span_end" => {
                let id = v.get("span").and_then(Value::as_u64);
                if let Some(pos) = open.iter().rposition(|&s| Some(spans[s].id) == id) {
                    let s = open.remove(pos);
                    spans[s].end_us = ts_us;
                    spans[s].end_fields = fields_of(&v);
                }
            }
            "event" | "fault" => {
                instants.push(InstantRec {
                    name,
                    ts_us,
                    cat: if kind == "fault" { "fault" } else { "event" },
                    span: v.get("span").and_then(Value::as_u64),
                    fields: fields_of(&v),
                });
            }
            // metrics / flight_dump records carry no timeline shape
            _ => {}
        }
    }
    // close dangling spans (e.g. a truncated stream) at the last
    // timestamp so every B still has an E
    for s in &mut spans {
        if !s.end_us.is_finite() {
            s.end_us = max_us.max(s.start_us);
        }
    }

    // Assign spans to tracks so B/E nest properly per tid: sort outer
    // spans first, then place each span on the first track whose open
    // top still contains it. Each track's B/E record sequence is
    // emitted *during* the assignment walk (a pop is an E, a placement
    // is a B, leftovers flush as Es in LIFO order), so every track is
    // stack-disciplined by construction. A global (ts, E-before-B,
    // depth) sort — the previous scheme — breaks on zero-length spans
    // (e.g. a dangling span force-closed at its own start timestamp):
    // at a shared timestamp it ordered such a span's E before its B.
    let mut order: Vec<usize> = (0..spans.len()).collect();
    order.sort_by(|&a, &b| {
        spans[a]
            .start_us
            .total_cmp(&spans[b].start_us)
            .then(spans[b].end_us.total_cmp(&spans[a].end_us))
    });
    enum TrackEv {
        Begin(usize),
        End(usize),
    }
    let mut tracks: Vec<Vec<usize>> = Vec::new(); // per-track open stacks
    let mut track_events: Vec<Vec<TrackEv>> = Vec::new();
    let mut tid_of: Vec<u64> = vec![0; spans.len()];
    for &s in &order {
        let (start, end) = (spans[s].start_us, spans[s].end_us);
        let mut chosen = None;
        for (t, stack) in tracks.iter_mut().enumerate() {
            while let Some(&top) = stack.last() {
                if spans[top].end_us <= start {
                    track_events[t].push(TrackEv::End(top));
                    stack.pop();
                } else {
                    break;
                }
            }
            let fits = stack.last().is_none_or(|&top| spans[top].end_us >= end);
            if fits {
                chosen = Some(t);
                break;
            }
        }
        let t = chosen.unwrap_or_else(|| {
            tracks.push(Vec::new());
            track_events.push(Vec::new());
            tracks.len() - 1
        });
        track_events[t].push(TrackEv::Begin(s));
        tracks[t].push(s);
        tid_of[s] = t as u64 + 1;
    }
    // close whatever is still open, innermost first
    for (t, stack) in tracks.iter().enumerate() {
        for &s in stack.iter().rev() {
            track_events[t].push(TrackEv::End(s));
        }
    }

    let trace_event =
        |name: &str, cat: &str, ph: &str, ts: f64, tid: u64, args: &[(String, Value)]| {
            let mut pairs = vec![
                ("name".to_string(), Value::from(name)),
                ("cat".to_string(), Value::from(cat)),
                ("ph".to_string(), Value::from(ph)),
                ("ts".to_string(), Value::Num((ts * 1e3).round() / 1e3)),
                ("pid".to_string(), Value::from(pid)),
                ("tid".to_string(), Value::from(tid)),
            ];
            if ph == "i" {
                pairs.push(("s".to_string(), Value::from("t")));
            }
            if !args.is_empty() {
                pairs.push(("args".to_string(), Value::Obj(args.to_vec())));
            }
            Value::Obj(pairs)
        };
    // merge the per-track sequences by timestamp. Each track's sequence
    // is ts-nondecreasing by construction, and the sort is stable, so
    // within-track order (the part Perfetto's stack rendering depends
    // on) survives the merge; cross-track order at equal ts is free.
    struct Keyed {
        ts: f64,
        ev: Value,
    }
    let mut events: Vec<Keyed> = Vec::new();
    for (t, evs) in track_events.iter().enumerate() {
        let tid = t as u64 + 1;
        for e in evs {
            events.push(match *e {
                TrackEv::Begin(s) => Keyed {
                    ts: spans[s].start_us,
                    ev: trace_event(
                        &spans[s].name,
                        "span",
                        "B",
                        spans[s].start_us,
                        tid,
                        &spans[s].start_fields,
                    ),
                },
                TrackEv::End(s) => Keyed {
                    ts: spans[s].end_us,
                    ev: trace_event(
                        &spans[s].name,
                        "span",
                        "E",
                        spans[s].end_us,
                        tid,
                        &spans[s].end_fields,
                    ),
                },
            });
        }
    }
    let tid_of_span = |id: Option<u64>| -> u64 {
        id.and_then(|id| spans.iter().position(|s| s.id == id))
            .map_or(0, |i| tid_of[i])
    };
    // instants are pushed after all span events so at a shared
    // timestamp they render after the span transition
    for inst in &instants {
        let tid = tid_of_span(inst.span);
        events.push(Keyed {
            ts: inst.ts_us,
            ev: trace_event(&inst.name, inst.cat, "i", inst.ts_us, tid, &inst.fields),
        });
    }
    events.sort_by(|a, b| a.ts.total_cmp(&b.ts));
    Ok(events.into_iter().map(|k| k.ev).collect())
}

/// Wraps trace events into a complete Chrome trace document
/// (`{"traceEvents": [...], "displayTimeUnit": "ms"}`).
pub fn trace_document(events: Vec<Value>) -> Value {
    Value::Obj(vec![
        ("traceEvents".to_string(), Value::Arr(events)),
        ("displayTimeUnit".to_string(), Value::from("ms")),
    ])
}

/// One-shot: JSONL trace text in, Chrome trace JSON text out.
///
/// # Errors
///
/// See [`trace_events_from_jsonl`].
pub fn chrome_trace_from_jsonl(jsonl: &str) -> Result<String, String> {
    Ok(trace_document(trace_events_from_jsonl(jsonl, 1)?).to_json())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Level, Obs, ObsConfig, SharedBuf};

    fn traced_run() -> String {
        let obs = Obs::new(ObsConfig {
            verbosity: Level::Trace,
            ..ObsConfig::default()
        });
        let buf = SharedBuf::new();
        obs.add_jsonl_buffer(&buf);
        {
            let _flow = obs.span("flow");
            {
                let mut g = obs.span("phase.global");
                g.record("rounds", 2u64);
                obs.event(Level::Debug, "global.retry", vec![crate::kv("step", 1u64)]);
            }
            let _l = obs.span("phase.local");
        }
        obs.flush();
        buf.contents()
    }

    /// Walks every track's B/E records checking stack discipline.
    fn assert_be_paired(events: &[Value]) {
        use std::collections::BTreeMap;
        let mut stacks: BTreeMap<u64, Vec<String>> = BTreeMap::new();
        for ev in events {
            let ph = ev.get("ph").and_then(Value::as_str).unwrap();
            let tid = ev.get("tid").and_then(Value::as_u64).unwrap();
            let name = ev.get("name").and_then(Value::as_str).unwrap().to_string();
            match ph {
                "B" => stacks.entry(tid).or_default().push(name),
                "E" => {
                    let top = stacks.get_mut(&tid).and_then(std::vec::Vec::pop);
                    assert_eq!(top.as_deref(), Some(name.as_str()), "unbalanced E");
                }
                _ => {}
            }
        }
        for (tid, stack) in stacks {
            assert!(stack.is_empty(), "unclosed spans on tid {tid}: {stack:?}");
        }
    }

    #[test]
    fn spans_become_paired_b_e_events() {
        let text = chrome_trace_from_jsonl(&traced_run()).unwrap();
        let doc = json::parse(&text).unwrap();
        let events = doc.get("traceEvents").and_then(Value::as_arr).unwrap();
        let b = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("B"))
            .count();
        let e = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("E"))
            .count();
        assert_eq!(b, 3);
        assert_eq!(b, e);
        assert_be_paired(events);
        // span end-fields survive on the E record
        let global_end = events
            .iter()
            .find(|e| {
                e.get("ph").and_then(Value::as_str) == Some("E")
                    && e.get("name").and_then(Value::as_str) == Some("phase.global")
            })
            .unwrap();
        assert_eq!(
            global_end
                .get("args")
                .and_then(|a| a.get("rounds"))
                .and_then(Value::as_u64),
            Some(2)
        );
    }

    #[test]
    fn events_become_thread_scoped_instants() {
        let events = trace_events_from_jsonl(&traced_run(), 7).unwrap();
        let inst = events
            .iter()
            .find(|e| e.get("ph").and_then(Value::as_str) == Some("i"))
            .unwrap();
        assert_eq!(
            inst.get("name").and_then(Value::as_str),
            Some("global.retry")
        );
        assert_eq!(inst.get("s").and_then(Value::as_str), Some("t"));
        assert_eq!(inst.get("pid").and_then(Value::as_u64), Some(7));
        // the instant rides on the same track as its enclosing span
        let tid = inst.get("tid").and_then(Value::as_u64).unwrap();
        assert!(tid >= 1);
    }

    #[test]
    fn overlapping_spans_get_separate_tracks() {
        // hand-written stream: two spans overlap without nesting, which
        // a single B/E track cannot represent
        let jsonl = concat!(
            "{\"t\":\"span_start\",\"seq\":0,\"ts_ms\":0.0,\"span\":0,\"level\":\"info\",\"name\":\"a\"}\n",
            "{\"t\":\"span_start\",\"seq\":1,\"ts_ms\":1.0,\"span\":1,\"level\":\"info\",\"name\":\"b\"}\n",
            "{\"t\":\"span_end\",\"seq\":2,\"ts_ms\":2.0,\"span\":0,\"level\":\"info\",\"name\":\"a\",\"elapsed_ms\":2.0}\n",
            "{\"t\":\"span_end\",\"seq\":3,\"ts_ms\":3.0,\"span\":1,\"level\":\"info\",\"name\":\"b\",\"elapsed_ms\":2.0}\n",
        );
        let events = trace_events_from_jsonl(jsonl, 1).unwrap();
        assert_be_paired(&events);
        let tids: std::collections::BTreeSet<u64> = events
            .iter()
            .filter_map(|e| e.get("tid").and_then(Value::as_u64))
            .collect();
        assert_eq!(tids.len(), 2, "overlap must split tracks");
    }

    #[test]
    fn dangling_span_is_closed_at_last_ts() {
        let jsonl = concat!(
            "{\"t\":\"span_start\",\"seq\":0,\"ts_ms\":0.0,\"span\":0,\"level\":\"info\",\"name\":\"flow\"}\n",
            "{\"t\":\"event\",\"seq\":1,\"ts_ms\":5.5,\"level\":\"info\",\"name\":\"tick\"}\n",
        );
        let events = trace_events_from_jsonl(jsonl, 1).unwrap();
        assert_be_paired(&events);
        let end = events
            .iter()
            .find(|e| e.get("ph").and_then(Value::as_str) == Some("E"))
            .unwrap();
        assert!((end.get("ts").and_then(Value::as_f64).unwrap() - 5500.0).abs() < 1e-6);
    }

    #[test]
    fn zero_length_dangling_span_stays_stack_disciplined() {
        // a span that *starts* at the trace's last timestamp gets
        // force-closed at its own start, producing a zero-length span;
        // the old global (ts, E-before-B) sort emitted its E first
        let jsonl = concat!(
            "{\"t\":\"span_start\",\"seq\":0,\"ts_ms\":0.0,\"span\":0,\"level\":\"info\",\"name\":\"flow\"}\n",
            "{\"t\":\"span_end\",\"seq\":1,\"ts_ms\":2.0,\"span\":0,\"level\":\"info\",\"name\":\"flow\",\"elapsed_ms\":2.0}\n",
            "{\"t\":\"span_start\",\"seq\":2,\"ts_ms\":2.0,\"span\":1,\"level\":\"info\",\"name\":\"late\"}\n",
        );
        let events = trace_events_from_jsonl(jsonl, 1).unwrap();
        assert_be_paired(&events);
        let late: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("name").and_then(Value::as_str) == Some("late"))
            .collect();
        assert_eq!(late.len(), 2, "late must have both B and E");
        assert_eq!(late[0].get("ph").and_then(Value::as_str), Some("B"));
        assert_eq!(late[1].get("ph").and_then(Value::as_str), Some("E"));
    }

    #[test]
    fn equal_ts_close_open_and_zero_length_spans_interleave_cleanly() {
        // a closes at exactly the instant z (zero-length) and c open;
        // per-track sequencing must keep every track balanced
        let jsonl = concat!(
            "{\"t\":\"span_start\",\"seq\":0,\"ts_ms\":0.0,\"span\":0,\"level\":\"info\",\"name\":\"a\"}\n",
            "{\"t\":\"span_end\",\"seq\":1,\"ts_ms\":2.0,\"span\":0,\"level\":\"info\",\"name\":\"a\",\"elapsed_ms\":2.0}\n",
            "{\"t\":\"span_start\",\"seq\":2,\"ts_ms\":2.0,\"span\":1,\"level\":\"info\",\"name\":\"z\"}\n",
            "{\"t\":\"span_end\",\"seq\":3,\"ts_ms\":2.0,\"span\":1,\"level\":\"info\",\"name\":\"z\",\"elapsed_ms\":0.0}\n",
            "{\"t\":\"span_start\",\"seq\":4,\"ts_ms\":2.0,\"span\":2,\"level\":\"info\",\"name\":\"c\"}\n",
            "{\"t\":\"span_end\",\"seq\":5,\"ts_ms\":4.0,\"span\":2,\"level\":\"info\",\"name\":\"c\",\"elapsed_ms\":2.0}\n",
        );
        let events = trace_events_from_jsonl(jsonl, 1).unwrap();
        assert_be_paired(&events);
        assert_eq!(
            events
                .iter()
                .filter(|e| e.get("ph").and_then(Value::as_str) == Some("B"))
                .count(),
            3
        );
    }

    #[test]
    fn bad_jsonl_reports_line_number() {
        let err = trace_events_from_jsonl("{\"t\":\"event\"}\nnot json\n", 1).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }
}
