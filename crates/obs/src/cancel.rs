//! Cooperative cancellation: [`CancelToken`] and [`Deadline`].
//!
//! The anytime property of the flow rests on two zero-dependency
//! primitives built from std atomics:
//!
//! * [`CancelToken`] — a shared flag another thread (or a test harness)
//!   flips to request cancellation. Tokens also carry the flow-global
//!   *poll counter*: every deadline poll anywhere in the flow advances
//!   it, which gives chaos runs a deterministic, wall-clock-free way to
//!   express a cut point ("trip on the N-th poll").
//! * [`Deadline`] — what inner loops actually poll. It combines an
//!   optional wall-clock expiry with an optional token and answers one
//!   question, [`Deadline::expired`], cheaply enough to ask every few
//!   simplex pivots.
//!
//! The module lives in `clk-obs` (rather than the fault runtime in
//! `clk-skewopt`) because the leaf crates that host the hot loops —
//! `clk-lp`, `clk-sta` — depend on `clk-obs` only, and because expiry
//! is the one algorithmic decision the wall clock is allowed to make,
//! so it belongs next to [`wall_now`](crate::wall_now). `clk-skewopt`
//! re-exports both types from its `fault` module.
//!
//! ```
//! use clk_obs::{CancelToken, Deadline};
//!
//! let token = CancelToken::new();
//! let dl = Deadline::from_token(&token);
//! assert!(!dl.expired());
//! token.cancel();
//! assert!(dl.expired());
//! assert!(dl.ack_latency_ms().is_some());
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Sentinel for "not yet" in the µs-since-epoch atomics below.
const UNSET: u64 = u64::MAX;

#[derive(Debug)]
struct TokenInner {
    /// Set by [`CancelToken::cancel`]; checked by every poll.
    cancelled: AtomicBool,
    /// Flow-global poll counter (advanced by [`Deadline::expired`]).
    polls: AtomicU64,
    /// Deterministic trip: expire once `polls` reaches this. `UNSET`
    /// disables the trip.
    trip_at: AtomicU64,
    /// µs after `epoch` when `cancel()` ran (for ack latency).
    cancelled_at_us: AtomicU64,
    /// Creation instant; the zero point of the µs stamps.
    epoch: Instant,
}

/// A shared cooperative-cancellation handle.
///
/// Clones share one flag: any clone's [`cancel`](CancelToken::cancel)
/// is visible to every poller. The token never interrupts anything by
/// itself — loops observe it through a [`Deadline`] at their own safe
/// points, which is what makes any cut point leave a legal tree.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                polls: AtomicU64::new(0),
                trip_at: AtomicU64::new(UNSET),
                cancelled_at_us: AtomicU64::new(UNSET),
                epoch: crate::wall_now(),
            }),
        }
    }

    /// Requests cancellation. Idempotent; the first call stamps the
    /// request time so ack latency can be measured.
    pub fn cancel(&self) {
        let us = elapsed_us(self.inner.epoch);
        let _ = self.inner.cancelled_at_us.compare_exchange(
            UNSET,
            us,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether cancellation was requested (does not count as a poll).
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// Arms a deterministic trip: every [`Deadline`] carrying this
    /// token reports expiry from the `n`-th poll on. Because polls
    /// advance in the deterministic order the (single-threaded) flow
    /// reaches its safe points, `n` is a reproducible cut point —
    /// the chaos battery sweeps it across phases.
    pub fn trip_after_polls(&self, n: u64) {
        self.inner.trip_at.store(n, Ordering::Relaxed);
    }

    /// How many deadline polls this token has absorbed.
    pub fn polls(&self) -> u64 {
        self.inner.polls.load(Ordering::Relaxed)
    }

    /// Counts one poll; returns `true` when the token demands a stop
    /// (external cancel or armed trip reached).
    fn poll(&self) -> bool {
        let n = self.inner.polls.fetch_add(1, Ordering::Relaxed) + 1;
        if self.inner.cancelled.load(Ordering::Acquire) {
            return true;
        }
        let trip = self.inner.trip_at.load(Ordering::Relaxed);
        if n >= trip {
            // a trip is a cancellation requested by the poll counter
            let us = elapsed_us(self.inner.epoch);
            let _ = self.inner.cancelled_at_us.compare_exchange(
                UNSET,
                us,
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
            self.inner.cancelled.store(true, Ordering::Release);
            return true;
        }
        false
    }

    /// µs after the token's epoch when cancellation was requested.
    fn cancelled_at_us(&self) -> Option<u64> {
        match self.inner.cancelled_at_us.load(Ordering::Relaxed) {
            UNSET => None,
            us => Some(us),
        }
    }
}

fn elapsed_us(epoch: Instant) -> u64 {
    // saturate rather than wrap; UNSET stays reserved
    u64::try_from(crate::wall_now().duration_since(epoch).as_micros())
        .unwrap_or(UNSET - 1)
        .min(UNSET - 1)
}

#[derive(Debug)]
struct DeadlineInner {
    /// Wall-clock expiry, if bounded.
    wall: Option<Instant>,
    /// External cancellation source, if attached.
    token: Option<CancelToken>,
    /// Polls absorbed by this deadline (wall-only deadlines have no
    /// token counter to lean on).
    polls: AtomicU64,
    /// µs after `epoch` when a poll first observed expiry.
    acked_at_us: AtomicU64,
    /// Creation instant; zero point for `acked_at_us`.
    epoch: Instant,
}

/// What inner loops poll: wall-clock expiry and/or cooperative cancel.
///
/// `Deadline::none()` is inert and free to poll (one `Option` check),
/// so hot loops take a `&Deadline` unconditionally. Clones share state:
/// the first clone to observe expiry stamps the ack for all of them.
///
/// The polling contract that keeps the flow *anytime*: every loop that
/// can run longer than a few milliseconds polls [`expired`]
/// (Deadline::expired) at its safe points — the simplex pivot loop
/// every [`SIMPLEX_POLL_STRIDE`] pivots, STA once per driver net, the
/// global phase per λ-trial and per ECO arc, the local phase per
/// candidate eval — and on `true` abandons the unit of work in
/// progress, restores the last committed state, and returns a typed
/// `Interrupted` error to its caller.
#[derive(Debug, Clone, Default)]
pub struct Deadline {
    inner: Option<Arc<DeadlineInner>>,
}

/// The simplex pivot loop polls its deadline every this many pivots;
/// the acceptance bound of the chaos battery (≤ 64 pivots to ack).
pub const SIMPLEX_POLL_STRIDE: u64 = 16;

impl Deadline {
    /// The inert deadline: never expires, costs one branch to poll.
    pub fn none() -> Self {
        Deadline { inner: None }
    }

    /// Expires at `wall`.
    pub fn at(wall: Instant) -> Self {
        Deadline::new(Some(wall), None)
    }

    /// Expires when `token` is cancelled (or its armed trip fires).
    pub fn from_token(token: &CancelToken) -> Self {
        Deadline::new(None, Some(token.clone()))
    }

    /// Combines an optional wall expiry with an optional token. Both
    /// `None` yields the inert deadline.
    pub fn new(wall: Option<Instant>, token: Option<CancelToken>) -> Self {
        if wall.is_none() && token.is_none() {
            return Deadline::none();
        }
        Deadline {
            inner: Some(Arc::new(DeadlineInner {
                wall,
                token,
                polls: AtomicU64::new(0),
                acked_at_us: AtomicU64::new(UNSET),
                epoch: crate::wall_now(),
            })),
        }
    }

    /// Whether polling can ever return `true`.
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// The wall-clock expiry, if one is set.
    pub fn wall(&self) -> Option<Instant> {
        self.inner.as_ref().and_then(|i| i.wall)
    }

    /// Polls the deadline at a safe point. Counts the poll (on the
    /// token's flow-global counter when one is attached) and stamps
    /// the ack on the first `true`.
    pub fn expired(&self) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        inner.polls.fetch_add(1, Ordering::Relaxed);
        let hit = inner.token.as_ref().is_some_and(CancelToken::poll)
            || inner.wall.is_some_and(|w| crate::wall_now() >= w);
        if hit {
            let us = elapsed_us(inner.epoch);
            let _ =
                inner
                    .acked_at_us
                    .compare_exchange(UNSET, us, Ordering::Relaxed, Ordering::Relaxed);
        }
        hit
    }

    /// Polls absorbed by this deadline handle (all clones).
    pub fn polls(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.polls.load(Ordering::Relaxed))
    }

    /// Wall time between the expiry trigger (wall instant passing,
    /// `cancel()` running, or an armed trip firing) and the first poll
    /// that observed it — the cancellation ack latency. `None` until a
    /// poll has observed expiry.
    pub fn ack_latency_ms(&self) -> Option<f64> {
        let inner = self.inner.as_ref()?;
        let acked_us = match inner.acked_at_us.load(Ordering::Relaxed) {
            UNSET => return None,
            us => us,
        };
        let acked = inner.epoch + Duration::from_micros(acked_us);
        // the earliest trigger that could have caused the ack
        let mut trigger = acked;
        if let Some(w) = inner.wall {
            if w < trigger {
                trigger = w;
            }
        }
        if let Some(tok) = &inner.token {
            if let Some(c_us) = tok.cancelled_at_us() {
                let c = tok.inner.epoch + Duration::from_micros(c_us);
                if c < trigger {
                    trigger = c;
                }
            }
        }
        Some(acked.duration_since(trigger).as_secs_f64() * 1e3)
    }

    /// What caused expiry: `"cancel"`, `"wall"`, or `None` while live.
    /// Trips report `"cancel"` — a trip *is* a (counter-requested)
    /// cancellation.
    pub fn trigger(&self) -> Option<&'static str> {
        let inner = self.inner.as_ref()?;
        if inner.token.as_ref().is_some_and(CancelToken::is_cancelled) {
            return Some("cancel");
        }
        if inner.wall.is_some_and(|w| crate::wall_now() >= w) {
            return Some("wall");
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_deadline_never_expires() {
        let dl = Deadline::none();
        assert!(!dl.is_active());
        for _ in 0..1000 {
            assert!(!dl.expired());
        }
        assert_eq!(dl.polls(), 0);
        assert!(dl.ack_latency_ms().is_none());
        assert!(dl.trigger().is_none());
    }

    #[test]
    fn token_cancel_is_observed_and_stamped() {
        let tok = CancelToken::new();
        let dl = Deadline::from_token(&tok);
        assert!(!dl.expired());
        assert!(!tok.is_cancelled());
        tok.cancel();
        assert!(tok.is_cancelled());
        assert!(dl.expired());
        assert_eq!(dl.trigger(), Some("cancel"));
        let lat = dl.ack_latency_ms().expect("acked");
        assert!(lat >= 0.0);
    }

    #[test]
    fn clones_share_the_flag() {
        let tok = CancelToken::new();
        let other = tok.clone();
        other.cancel();
        assert!(tok.is_cancelled());
    }

    #[test]
    fn wall_deadline_expires() {
        let now = crate::wall_now();
        let dl = Deadline::at(now); // already past by poll time
        assert!(dl.expired());
        assert_eq!(dl.trigger(), Some("wall"));
        assert!(dl.ack_latency_ms().expect("acked") >= 0.0);
        let far = Deadline::at(now + Duration::from_secs(3600));
        assert!(!far.expired());
    }

    #[test]
    fn armed_trip_fires_on_exact_poll_and_is_deterministic() {
        for _ in 0..2 {
            let tok = CancelToken::new();
            tok.trip_after_polls(5);
            let dl = Deadline::from_token(&tok);
            let mut fired_at = None;
            for i in 1..=10u64 {
                if dl.expired() && fired_at.is_none() {
                    fired_at = Some(i);
                }
            }
            assert_eq!(fired_at, Some(5), "trip is an exact cut point");
            assert!(tok.is_cancelled(), "a trip is a cancellation");
        }
    }

    #[test]
    fn token_counter_is_shared_across_deadlines() {
        let tok = CancelToken::new();
        tok.trip_after_polls(4);
        let phase1 = Deadline::from_token(&tok);
        let phase2 = Deadline::from_token(&tok);
        assert!(!phase1.expired()); // poll 1
        assert!(!phase1.expired()); // poll 2
        assert!(!phase2.expired()); // poll 3
        assert!(phase2.expired()); // poll 4: trips on the shared count
        assert_eq!(tok.polls(), 4);
    }

    #[test]
    fn combined_wall_and_token() {
        let tok = CancelToken::new();
        let dl = Deadline::new(
            Some(crate::wall_now() + Duration::from_secs(3600)),
            Some(tok.clone()),
        );
        assert!(!dl.expired());
        tok.cancel();
        assert!(dl.expired());
        assert_eq!(dl.trigger(), Some("cancel"));
    }
}
