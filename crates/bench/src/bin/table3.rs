//! Table 3: description of corners — with the synthetic library's derived
//! electrical behaviour appended (delay scale factor relative to c0, wire
//! RC), which is what the reproduction substitutes for the foundry PDK.

// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic)]

use clk_liberty::{CellId, CornerId, Library, StdCorners};

fn main() {
    let lib = Library::synthetic_28nm(StdCorners::all());
    let x4 = lib.cell_by_name("CLKINV_X4").expect("library size");
    let d0 = lib.gate_delay(x4, CornerId(0), 20.0, 8.0);
    println!("Table 3: Description of corners");
    println!(
        "{:<6} {:<8} {:<8} {:<12} {:<8} | {:>12} {:>12} {:>12}",
        "Corner",
        "Process",
        "Voltage",
        "Temperature",
        "BEOL",
        "delay/c0",
        "r (Ohm/um)",
        "c (fF/um)"
    );
    for (k, c) in lib.corners().iter().enumerate() {
        let d = lib.gate_delay(x4, CornerId(k), 20.0, 8.0);
        let rc = c.wire_rc();
        println!(
            "{:<6} {:<8} {:<8} {:<12} {:<8} | {:>12.3} {:>12.3} {:>12.3}",
            c.name,
            c.process.to_string(),
            format!("{:.2}V", c.voltage),
            format!("{:.0}C", c.temp_c),
            c.beol.to_string(),
            d / d0,
            rc.r_per_um * 1_000.0,
            rc.c_per_um,
        );
    }
    println!("\n(X4 clock inverter @ 20 ps slew / 8 fF load; paper Table 3 lists the PVT");
    println!(" points only — the electrical columns document the synthetic substitution)");
    let _ = CellId(0);
}
