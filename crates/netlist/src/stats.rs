//! Cell / area / wirelength accounting for Table-5-style reports.

use clk_liberty::Library;

use crate::tree::{ClockTree, NodeKind};

/// Aggregate physical statistics of a clock tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TreeStats {
    /// Number of clock inverters (the "#cells" column of Table 5).
    pub n_buffers: usize,
    /// Number of sinks (flip-flop clock pins).
    pub n_sinks: usize,
    /// Total area of clock cells, µm².
    pub buffer_area_um2: f64,
    /// Total routed clock wirelength, µm.
    pub wirelength_um: f64,
    /// Buffer count per library size index.
    pub per_size: Vec<usize>,
}

impl TreeStats {
    /// Computes the statistics of `tree` against `lib`.
    pub fn compute(tree: &ClockTree, lib: &Library) -> Self {
        let mut stats = TreeStats {
            per_size: vec![0; lib.cells().len()],
            ..TreeStats::default()
        };
        for id in tree.node_ids() {
            let n = tree.node(id);
            match n.kind {
                NodeKind::Buffer(c) => {
                    stats.n_buffers += 1;
                    stats.buffer_area_um2 += lib.cell(c).area_um2;
                    stats.per_size[c.0] += 1;
                }
                NodeKind::Sink => stats.n_sinks += 1,
                NodeKind::Source => {}
            }
            if let Some(r) = &n.route {
                stats.wirelength_um += r.length_um();
            }
        }
        stats
    }
}

impl std::fmt::Display for TreeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} buffers ({:.1} um2), {} sinks, {:.1} um wire",
            self.n_buffers, self.buffer_area_um2, self.n_sinks, self.wirelength_um
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::NodeKind;
    use clk_geom::Point;
    use clk_liberty::{Library, StdCorners};

    #[test]
    fn stats_count_cells_and_wire() {
        let lib = Library::synthetic_28nm(StdCorners::c0_c1_c3());
        let x2 = lib.cell_by_name("CLKINV_X2").unwrap();
        let x8 = lib.cell_by_name("CLKINV_X8").unwrap();
        let mut t = ClockTree::new(Point::new(0, 0), x8);
        let b = t.add_node(NodeKind::Buffer(x2), Point::new(10_000, 0), t.root());
        let b2 = t.add_node(NodeKind::Buffer(x8), Point::new(10_000, 5_000), b);
        let _s = t.add_node(NodeKind::Sink, Point::new(20_000, 5_000), b2);
        let s = TreeStats::compute(&t, &lib);
        assert_eq!(s.n_buffers, 2);
        assert_eq!(s.n_sinks, 1);
        assert_eq!(s.per_size[x2.0], 1);
        assert_eq!(s.per_size[x8.0], 1);
        assert!((s.wirelength_um - 25.0).abs() < 1e-9);
        let want_area = lib.cell(x2).area_um2 + lib.cell(x8).area_um2;
        assert!((s.buffer_area_um2 - want_area).abs() < 1e-9);
    }
}
