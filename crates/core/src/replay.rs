//! Deterministic replay of a decision ledger (`clk_obs::ledger`).
//!
//! [`replay_ledger`] re-applies the *accepted* decisions of a recorded
//! run to that run's input tree: per adopted global round, the winner-λ
//! ECO arcs in ledger order (each re-realized from the recorded LP/now
//! delay targets against the re-derived round-baseline timings and arc
//! set), then every committed local move. Each accepted step of the
//! recording operated on exactly this committed-state trajectory —
//! rejected candidates were rolled back to a bit-exact clone — and the
//! golden timer and arc extraction are deterministic, so the replayed
//! tree is bit-identical to the recorded run's output tree. The
//! `waterfall --replay` gate asserts that by comparing the tree-outcome
//! QoR snapshots byte for byte.
//!
//! Replay requires the same [`FlowConfig`] the recording ran with: the
//! ECO realization search reads `GlobalConfig` knobs (detour budget,
//! uncertainty penalty) and local moves read `MoveConfig`.

use clk_liberty::Library;
use clk_netlist::{ArcId, ArcSet, ClockTree, Floorplan, TreeError};
use clk_obs::{LedgerRecord, Obs};
use clk_sta::{CornerTiming, Timer, TimingError};

use crate::flow::FlowConfig;
use crate::global::realize_arc;
use crate::lut::StageLuts;
use crate::moves::{apply_move, Move};

/// Why a ledger could not be replayed onto its input tree.
#[derive(Debug, Clone)]
pub enum ReplayError {
    /// The committed tree at some step could not be golden-timed.
    Timing(TimingError),
    /// An ECO record names an arc id outside the re-derived arc set —
    /// the ledger does not belong to this input tree / config.
    ArcOutOfRange {
        /// Global round of the offending record.
        round: u64,
        /// The out-of-range arc id.
        arc: u64,
        /// Arcs the round-baseline tree actually has.
        have: usize,
    },
    /// An accepted ECO arc failed to realize on replay — the recording
    /// realized it, so the ledger and the input tree / config disagree.
    RealizeFailed {
        /// Global round of the offending record.
        round: u64,
        /// The arc that would not realize.
        arc: u64,
    },
    /// A committed local move record is structurally inconsistent
    /// (unknown type tag, bad direction index, missing operand).
    BadMove {
        /// Local iteration of the offending record.
        iter: u64,
    },
    /// A committed local move failed to apply on replay.
    Apply {
        /// Local iteration of the offending record.
        iter: u64,
        /// The underlying tree-edit error.
        err: TreeError,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Timing(e) => write!(f, "replay: timing failed: {e}"),
            ReplayError::ArcOutOfRange { round, arc, have } => write!(
                f,
                "replay: round {round} names arc {arc} but the tree has {have} arcs \
                 (wrong input tree or config?)"
            ),
            ReplayError::RealizeFailed { round, arc } => write!(
                f,
                "replay: accepted arc {arc} of round {round} failed to realize \
                 (wrong input tree or config?)"
            ),
            ReplayError::BadMove { iter } => {
                write!(f, "replay: malformed move record at local iteration {iter}")
            }
            ReplayError::Apply { iter, err } => {
                write!(f, "replay: move at local iteration {iter} failed: {err}")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<TimingError> for ReplayError {
    fn from(e: TimingError) -> Self {
        ReplayError::Timing(e)
    }
}

/// Whether the ledger marks `phase` as committed at the flow level.
fn phase_committed(records: &[LedgerRecord], name: &str) -> bool {
    records.iter().any(
        |r| matches!(r, LedgerRecord::PhaseEnd { phase, committed: true, .. } if phase == name),
    )
}

/// Re-applies the accepted decisions of `records` to `tree0` and
/// returns the reconstructed output tree. `cfg` must be the flow
/// configuration the recording ran with (see the module docs).
///
/// # Errors
///
/// Any [`ReplayError`]: the ledger does not match the given input tree
/// and configuration, or the committed trajectory cannot be re-timed.
pub fn replay_ledger(
    tree0: &ClockTree,
    lib: &Library,
    fp: &Floorplan,
    cfg: &FlowConfig,
    records: &[LedgerRecord],
) -> Result<ClockTree, ReplayError> {
    let mut tree = tree0.clone();
    let timer = Timer::golden();

    if phase_committed(records, "global") {
        let luts = StageLuts::characterize(lib);
        // adopted rounds, in ledger (= execution) order
        let adopted: Vec<(u64, f64)> = records
            .iter()
            .filter_map(|r| match r {
                LedgerRecord::RoundEnd {
                    round,
                    winner_lambda: Some(wl),
                    adopted: true,
                    ..
                } => Some((*round, *wl)),
                _ => None,
            })
            .collect();
        for (round, winner) in adopted {
            // the recording derived this round's arc ids and baseline
            // slews from the committed tree at round start; both are
            // deterministic, so re-deriving them here reproduces the
            // exact inputs of every accepted realize call
            let timings: Vec<CornerTiming> = timer.try_analyze_all(&tree, lib)?;
            let arcs = ArcSet::extract(&tree);
            for rec in records {
                let LedgerRecord::EcoArc {
                    round: r,
                    lambda,
                    arc,
                    d_lp,
                    d_now,
                    realized: Some(_),
                    accepted: true,
                    ..
                } = rec
                else {
                    continue;
                };
                if *r != round || lambda.to_bits() != winner.to_bits() {
                    continue;
                }
                let idx = usize::try_from(*arc).unwrap_or(usize::MAX);
                if idx >= arcs.arcs().len() {
                    return Err(ReplayError::ArcOutOfRange {
                        round,
                        arc: *arc,
                        have: arcs.arcs().len(),
                    });
                }
                #[allow(clippy::cast_possible_truncation)]
                let a = arcs.arc(ArcId(idx as u32)).clone();
                if !realize_arc(
                    &mut tree,
                    lib,
                    fp,
                    &luts,
                    &timings,
                    &a,
                    d_lp,
                    d_now,
                    &cfg.global,
                    &Obs::disabled(),
                ) {
                    return Err(ReplayError::RealizeFailed { round, arc: *arc });
                }
            }
        }
    }

    if phase_committed(records, "local") {
        for rec in records {
            let LedgerRecord::LocalCommit {
                iter,
                mv,
                committed: true,
                ..
            } = rec
            else {
                continue;
            };
            let m = Move::from_ledger_rec(mv).ok_or(ReplayError::BadMove { iter: *iter })?;
            apply_move(&mut tree, lib, fp, &cfg.local.move_cfg, &m)
                .map_err(|err| ReplayError::Apply { iter: *iter, err })?;
        }
    }

    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{optimize, Flow};
    use clk_cts::{Testcase, TestcaseKind};
    use clk_sta::try_pair_skews;

    #[test]
    fn replayed_tree_times_identically() {
        let tc = Testcase::generate(TestcaseKind::Cls1v1, 40, 36);
        let mut cfg = crate::flow::tests::quick_cfg();
        cfg.obs = Obs::new(clk_obs::ObsConfig {
            ledger: true,
            ..clk_obs::ObsConfig::default()
        });
        let report = optimize(&tc, Flow::GlobalLocal, &cfg);
        let records = cfg.obs.ledger().records();
        let replayed = replay_ledger(&tc.tree, &tc.lib, &tc.floorplan, &cfg, &records)
            .expect("ledger replays onto its own input");
        replayed.validate().unwrap();

        // bit-identical golden timing: per-corner arrival skews of the
        // replayed tree match the recorded run's output tree exactly
        let timer = Timer::golden();
        let a_rec = timer.try_analyze_all(&report.tree, &tc.lib).unwrap();
        let a_rep = timer.try_analyze_all(&replayed, &tc.lib).unwrap();
        assert_eq!(a_rec.len(), a_rep.len());
        let pairs = report.tree.sink_pairs();
        for (tr, tp) in a_rec.iter().zip(&a_rep) {
            let s_rec = try_pair_skews(tr, pairs).unwrap();
            let s_rep = try_pair_skews(tp, replayed.sink_pairs()).unwrap();
            assert_eq!(s_rec, s_rep);
        }
        assert_eq!(
            report.tree.buffers().count(),
            replayed.buffers().count(),
            "replayed tree has a different buffer count"
        );
    }

    #[test]
    fn foreign_ledger_is_rejected() {
        let tc = Testcase::generate(TestcaseKind::Cls1v1, 40, 36);
        let cfg = crate::flow::tests::quick_cfg();
        // a ledger claiming an adopted round with an impossible arc id
        let records = vec![
            LedgerRecord::PhaseEnd {
                phase: "global".to_string(),
                committed: true,
                var: 0.0,
            },
            LedgerRecord::EcoArc {
                round: 0,
                lambda: 0.1,
                arc: 1_000_000,
                d_lp: vec![0.0; 3],
                d_now: vec![0.0; 3],
                realized: Some(vec![0.0; 3]),
                accepted: true,
                var: None,
            },
            LedgerRecord::RoundEnd {
                round: 0,
                winner_lambda: Some(0.1),
                adopted: true,
                var: 0.0,
            },
        ];
        let err = replay_ledger(&tc.tree, &tc.lib, &tc.floorplan, &cfg, &records)
            .expect_err("impossible arc id must be rejected");
        assert!(matches!(err, ReplayError::ArcOutOfRange { .. }), "{err}");
    }
}
