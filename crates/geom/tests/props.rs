//! Property tests of the geometry primitives.

use clk_geom::{Dbu, Direction, Point, Rect};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (-1_000_000i64..1_000_000, -1_000_000i64..1_000_000).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    /// Manhattan distance is a metric: symmetry, identity, triangle
    /// inequality.
    #[test]
    fn manhattan_is_a_metric(a in arb_point(), b in arb_point(), c in arb_point()) {
        prop_assert_eq!(a.manhattan(b), b.manhattan(a));
        prop_assert_eq!(a.manhattan(a), 0);
        prop_assert!(a.manhattan(c) <= a.manhattan(b) + b.manhattan(c));
    }

    /// One compass step moves by exactly the expected Manhattan distance.
    #[test]
    fn steps_have_exact_length(p in arb_point(), d in 0usize..8, dist in 1i64..100_000) {
        let dir = Direction::ALL[d];
        let q = p.step(dir, dist);
        let expect = match dir {
            Direction::North | Direction::South | Direction::East | Direction::West => dist,
            _ => 2 * dist,
        };
        prop_assert_eq!(p.manhattan(q), expect);
    }

    /// A bounding box contains its generators and is minimal per axis.
    #[test]
    fn bounding_box_is_tight(pts in prop::collection::vec(arb_point(), 1..20)) {
        let r = Rect::bounding(&pts).expect("non-empty");
        for &p in &pts {
            prop_assert!(r.contains(p));
        }
        prop_assert!(pts.iter().any(|p| p.x == r.lo.x));
        prop_assert!(pts.iter().any(|p| p.x == r.hi.x));
        prop_assert!(pts.iter().any(|p| p.y == r.lo.y));
        prop_assert!(pts.iter().any(|p| p.y == r.hi.y));
    }

    /// Clamping lands inside and is idempotent.
    #[test]
    fn clamp_contract(p in arb_point(), a in arb_point(), b in arb_point()) {
        let r = Rect::new(a, b);
        let q = p.clamp_to(r);
        prop_assert!(r.contains(q));
        prop_assert_eq!(q.clamp_to(r), q);
        if r.contains(p) {
            prop_assert_eq!(q, p);
        }
    }

    /// Inflation preserves containment and grows the perimeter linearly.
    #[test]
    fn inflate_grows(a in arb_point(), b in arb_point(), m in 0i64..10_000) {
        let r = Rect::new(a, b);
        let g = r.inflate(m);
        prop_assert!(g.contains_rect(r));
        prop_assert_eq!(g.width(), r.width() + 2 * m);
        prop_assert_eq!(g.height(), r.height() + 2 * m);
    }

    /// dbu ↔ µm conversions round-trip within half a dbu.
    #[test]
    fn unit_conversions_roundtrip(v in -1_000_000i64..1_000_000) {
        let um = clk_geom::dbu_to_um(v);
        let back: Dbu = clk_geom::um_to_dbu(um);
        prop_assert_eq!(back, v);
    }
}
