//! Workspace traversal: find every `.rs` file worth analyzing.

use std::path::{Path, PathBuf};

use crate::{source_from_str, AnalyzeConfig, SourceFile};

/// Collects every `.rs` file under `root`, skipping the config's `skip`
/// prefixes and hidden directories. Results are sorted by path so the
/// analyzer's own output is deterministic.
///
/// # Errors
///
/// Propagates errors from reading the root directory itself; deeper
/// unreadable directories or files are skipped (a permissions quirk
/// must not take the gate down).
pub fn collect_sources(root: &Path, cfg: &AnalyzeConfig) -> std::io::Result<Vec<SourceFile>> {
    let mut paths: Vec<PathBuf> = Vec::new();
    walk(root, root, cfg, &mut paths)?;
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for p in paths {
        let Ok(src) = std::fs::read_to_string(&p) else {
            continue;
        };
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .to_string_lossy()
            .replace('\\', "/");
        out.push(source_from_str(&rel, &src));
    }
    Ok(out)
}

fn walk(
    root: &Path,
    dir: &Path,
    cfg: &AnalyzeConfig,
    out: &mut Vec<PathBuf>,
) -> std::io::Result<()> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if dir == root => return Err(e),
        Err(_) => return Ok(()),
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') {
            continue;
        }
        if cfg
            .skip
            .iter()
            .any(|p| rel.starts_with(p.as_str()) || rel.starts_with(p.trim_end_matches('/')))
        {
            continue;
        }
        let Ok(ft) = entry.file_type() else { continue };
        if ft.is_dir() {
            walk(root, &path, cfg, out)?;
        } else if ft.is_file() && name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_this_crate_sorted_and_skips_vendor() {
        // the crate's own source tree doubles as the fixture; resolve
        // the workspace root from the manifest dir
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let cfg = AnalyzeConfig::default();
        let files = collect_sources(root, &cfg).expect("walk");
        assert!(files.iter().any(|f| f.path == "crates/analyze/src/lib.rs"));
        assert!(files.iter().all(|f| !f.path.starts_with("vendor/")));
        assert!(files.iter().all(|f| !f.path.starts_with("target/")));
        let mut sorted: Vec<&str> = files.iter().map(|f| f.path.as_str()).collect();
        let original = sorted.clone();
        sorted.sort_unstable();
        assert_eq!(original, sorted, "collection order must be deterministic");
    }
}
