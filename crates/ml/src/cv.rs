//! Cross-validation splits and regression error metrics.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Mean squared error between predictions and targets.
///
/// # Panics
///
/// Panics if lengths differ or are zero.
pub fn mse(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "length mismatch");
    assert!(!pred.is_empty(), "empty metric input");
    pred.iter()
        .zip(truth)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / pred.len() as f64
}

/// Mean absolute percentage error, %. Targets with magnitude below
/// `floor` are excluded (division blow-up); returns 0 when everything is
/// excluded.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn mape(pred: &[f64], truth: &[f64], floor: f64) -> f64 {
    assert_eq!(pred.len(), truth.len(), "length mismatch");
    let mut sum = 0.0;
    let mut n = 0usize;
    for (p, t) in pred.iter().zip(truth) {
        if t.abs() >= floor {
            sum += ((p - t) / t).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        100.0 * sum / n as f64
    }
}

/// Coefficient of determination R².
///
/// # Panics
///
/// Panics if lengths differ or are zero.
pub fn r_squared(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "length mismatch");
    assert!(!pred.is_empty(), "empty metric input");
    let mean: f64 = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_tot: f64 = truth.iter().map(|t| (t - mean) * (t - mean)).sum();
    let ss_res: f64 = pred.iter().zip(truth).map(|(p, t)| (p - t) * (p - t)).sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Deterministic shuffled `k`-fold split of `n` samples: returns `k`
/// disjoint index sets covering `0..n` whose sizes differ by at most 1.
///
/// # Panics
///
/// Panics if `k == 0` or `k > n`.
pub fn kfold_indices(n: usize, k: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(k > 0 && k <= n, "k must be in 1..=n");
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    let mut folds = vec![Vec::new(); k];
    for (pos, i) in idx.into_iter().enumerate() {
        folds[pos % k].push(i);
    }
    folds
}

/// Deterministic shuffled train/validation split; `val_frac` of the
/// samples (rounded, at least 1 when `n > 1`) go to validation.
///
/// # Panics
///
/// Panics if `n == 0` or `val_frac` not in `(0, 1)`.
pub fn train_val_split(n: usize, val_frac: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    assert!(n > 0, "no samples to split");
    assert!(val_frac > 0.0 && val_frac < 1.0, "val_frac in (0,1)");
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    let n_val = ((n as f64 * val_frac).round() as usize).clamp(1, n - 1);
    let val = idx.split_off(n - n_val);
    (idx, val)
}

#[cfg(test)]
// tests pin exact expected values on purpose
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn mse_basics() {
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert_eq!(mse(&[0.0, 0.0], &[3.0, -4.0]), 12.5);
    }

    #[test]
    fn mape_skips_small_targets() {
        let m = mape(&[110.0, 1.0], &[100.0, 0.0001], 0.01);
        assert!((m - 10.0).abs() < 1e-9);
        assert_eq!(mape(&[1.0], &[0.0], 0.5), 0.0);
    }

    #[test]
    fn r2_perfect_and_mean() {
        assert_eq!(r_squared(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]), 1.0);
        let r = r_squared(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]);
        assert!(r.abs() < 1e-12); // predicting the mean gives R² = 0
    }

    #[test]
    fn kfold_partitions_everything() {
        let folds = kfold_indices(23, 5, 42);
        assert_eq!(folds.len(), 5);
        let mut all: Vec<usize> = folds.concat();
        all.sort_unstable();
        assert_eq!(all, (0..23).collect::<Vec<_>>());
        for f in &folds {
            assert!(f.len() == 4 || f.len() == 5);
        }
    }

    #[test]
    fn kfold_deterministic() {
        assert_eq!(kfold_indices(10, 3, 7), kfold_indices(10, 3, 7));
        assert_ne!(kfold_indices(10, 3, 7), kfold_indices(10, 3, 8));
    }

    #[test]
    fn split_covers_and_respects_fraction() {
        let (tr, va) = train_val_split(100, 0.2, 1);
        assert_eq!(tr.len(), 80);
        assert_eq!(va.len(), 20);
        let mut all = tr;
        all.extend(va);
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_tiny() {
        let (tr, va) = train_val_split(2, 0.5, 3);
        assert_eq!(tr.len() + va.len(), 2);
        assert!(!tr.is_empty() && !va.is_empty());
    }
}
