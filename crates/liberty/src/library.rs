//! The multi-corner library: cells + corners + generated NLDM tables.

use crate::cell::{Cell, CellId};
use crate::corner::{Corner, CornerId, StdCorners, WireRc};
use crate::lut::Lut2;

/// Drive strengths of the five-size clock-inverter family (the paper's ECO
/// lookup tables use five inverter sizes).
pub const INVERTER_DRIVES: [f64; 5] = [1.0, 2.0, 4.0, 8.0, 16.0];

/// Drive resistance of the X1 inverter at the normalization corner, kΩ.
const R_UNIT_KOHM: f64 = 4.0;
/// Self (output) capacitance per unit drive, fF.
const C_SELF_PER_DRIVE: f64 = 0.9;
/// Output-slew shape factor (`ln 9 ≈ 2.2` for a 10–90% single-pole ramp).
const SLEW_SHAPE: f64 = 2.2;
/// Fraction of the input slew carried into the output slew.
const SLEW_FEEDTHROUGH: f64 = 0.15;
/// Smallest representable transition, ps.
const MIN_SLEW_PS: f64 = 2.0;

/// A generated multi-corner cell library.
///
/// See the crate-level documentation for the modelling rationale. All delay
/// and slew queries go through NLDM-style [`Lut2`] tables generated at
/// construction; the analytic model behind the tables is also exposed
/// (`analytic_*`) so that tests can bound interpolation error.
#[derive(Debug, Clone)]
pub struct Library {
    cells: Vec<Cell>,
    corners: Vec<Corner>,
    /// `tables[cell][corner]`.
    delay_tables: Vec<Vec<Lut2>>,
    slew_tables: Vec<Vec<Lut2>>,
    /// Flip-flop clock-pin capacitance, fF.
    sink_cap_ff: f64,
    /// Maximum transition allowed anywhere in the clock tree, ps.
    max_slew_ps: f64,
}

impl Library {
    /// Generates the synthetic 28nm-LP-like library at the given corners.
    ///
    /// # Panics
    ///
    /// Panics if `corners` is empty.
    pub fn synthetic_28nm(corners: Vec<Corner>) -> Self {
        assert!(!corners.is_empty(), "a library needs at least one corner");
        let cells: Vec<Cell> = INVERTER_DRIVES
            .iter()
            .map(|&d| Cell::clock_inverter(d))
            .collect();
        let slew_axis = vec![2.0, 5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0];
        let mut delay_tables = Vec::with_capacity(cells.len());
        let mut slew_tables = Vec::with_capacity(cells.len());
        for cell in &cells {
            let load_axis: Vec<f64> = [0.2, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 30.0]
                .iter()
                .map(|s| s * cell.drive)
                .collect();
            let mut per_corner_delay = Vec::with_capacity(corners.len());
            let mut per_corner_slew = Vec::with_capacity(corners.len());
            for corner in &corners {
                let d = Lut2::tabulate(slew_axis.clone(), load_axis.clone(), |s, c| {
                    analytic_gate_delay(cell, corner, s, c)
                })
                .expect("axes are valid by construction");
                let s = Lut2::tabulate(slew_axis.clone(), load_axis.clone(), |s, c| {
                    analytic_output_slew(cell, corner, s, c)
                })
                .expect("axes are valid by construction");
                per_corner_delay.push(d);
                per_corner_slew.push(s);
            }
            delay_tables.push(per_corner_delay);
            slew_tables.push(per_corner_slew);
        }
        Library {
            cells,
            corners,
            delay_tables,
            slew_tables,
            sink_cap_ff: 1.2,
            max_slew_ps: 400.0,
        }
    }

    /// The cell masters, ordered by increasing drive.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// The corners the library is characterized at.
    pub fn corners(&self) -> &[Corner] {
        &self.corners
    }

    /// Number of corners.
    pub fn corner_count(&self) -> usize {
        self.corners.len()
    }

    /// Iterator over corner ids.
    pub fn corner_ids(&self) -> impl Iterator<Item = CornerId> {
        (0..self.corners.len()).map(CornerId)
    }

    /// The cell master for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.0]
    }

    /// The corner for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn corner(&self, id: CornerId) -> &Corner {
        &self.corners[id.0]
    }

    /// Finds a cell by master name.
    pub fn cell_by_name(&self, name: &str) -> Option<CellId> {
        self.cells.iter().position(|c| c.name == name).map(CellId)
    }

    /// The next-larger size, if any (one-step upsizing move).
    pub fn size_up(&self, id: CellId) -> Option<CellId> {
        (id.0 + 1 < self.cells.len()).then(|| CellId(id.0 + 1))
    }

    /// The next-smaller size, if any (one-step downsizing move).
    pub fn size_down(&self, id: CellId) -> Option<CellId> {
        (id.0 > 0).then(|| CellId(id.0 - 1))
    }

    /// Gate delay from the NLDM table, ps.
    ///
    /// # Panics
    ///
    /// Panics if `cell` or `corner` is out of range.
    pub fn gate_delay(&self, cell: CellId, corner: CornerId, slew_in_ps: f64, load_ff: f64) -> f64 {
        self.delay_tables[cell.0][corner.0].eval(slew_in_ps, load_ff)
    }

    /// Gate output slew from the NLDM table, ps.
    ///
    /// # Panics
    ///
    /// Panics if `cell` or `corner` is out of range.
    pub fn gate_output_slew(
        &self,
        cell: CellId,
        corner: CornerId,
        slew_in_ps: f64,
        load_ff: f64,
    ) -> f64 {
        self.slew_tables[cell.0][corner.0].eval(slew_in_ps, load_ff)
    }

    /// Effective drive resistance of `cell` at `corner`, kΩ.
    pub fn drive_res_kohm(&self, cell: CellId, corner: CornerId) -> f64 {
        drive_res_kohm(self.cell(cell), self.corner(corner))
    }

    /// Per-unit wire parasitics at `corner`.
    pub fn wire_rc(&self, corner: CornerId) -> WireRc {
        self.corner(corner).wire_rc()
    }

    /// Flip-flop clock-pin capacitance, fF.
    pub fn sink_cap_ff(&self) -> f64 {
        self.sink_cap_ff
    }

    /// Maximum transition allowed in the clock tree, ps.
    pub fn max_slew_ps(&self) -> f64 {
        self.max_slew_ps
    }

    /// Leakage of `cell` at `corner`, nW.
    pub fn cell_leakage_nw(&self, cell: CellId, corner: CornerId) -> f64 {
        self.cell(cell).leakage_nw * self.corner(corner).leakage_factor()
    }

    /// Energy of one full swing of `cap_ff` at `corner`, fJ (`C·V²`).
    pub fn switching_energy_fj(&self, corner: CornerId, cap_ff: f64) -> f64 {
        cap_ff * self.corner(corner).voltage.powi(2)
    }
}

impl Default for Library {
    /// The library at all four Table-3 corners.
    fn default() -> Self {
        Library::synthetic_28nm(StdCorners::all())
    }
}

/// Normalization constant: delay factor of the standard `c0` corner, so the
/// X1 drive resistance is exactly [`R_UNIT_KOHM`] at `c0` regardless of
/// which corners a particular library instance carries.
fn norm_factor() -> f64 {
    StdCorners::c0().delay_factor()
}

/// Drive resistance of `cell` at `corner`, kΩ (analytic).
pub fn drive_res_kohm(cell: &Cell, corner: &Corner) -> f64 {
    R_UNIT_KOHM * (corner.delay_factor() / norm_factor()) / cell.drive
}

/// Sensitivity of gate delay to input slew at `corner` (dimensionless).
/// Larger when the gate overdrive is small, as on the 0.75 V SS corner.
fn slew_sensitivity(corner: &Corner) -> f64 {
    (0.12 + 0.10 * (corner.vth() / corner.overdrive() - 1.0)).max(0.06)
}

/// Analytic gate delay, ps: the function the NLDM tables sample.
///
/// `delay = intrinsic + R_drive · C_load + k_slew · slew_in + weak
/// slew×load cross term`. The cross term makes the surface genuinely
/// bilinear-inexact so that table interpolation behaves like real NLDM.
pub fn analytic_gate_delay(cell: &Cell, corner: &Corner, slew_in_ps: f64, load_ff: f64) -> f64 {
    let r = drive_res_kohm(cell, corner);
    let c_self = C_SELF_PER_DRIVE * cell.drive;
    let intrinsic = r * c_self;
    let cross = 0.02 * slew_in_ps * load_ff / (load_ff + 3.0 * cell.drive);
    intrinsic + r * load_ff + slew_sensitivity(corner) * slew_in_ps + cross
}

/// Analytic gate output slew, ps: the function the slew tables sample.
pub fn analytic_output_slew(cell: &Cell, corner: &Corner, slew_in_ps: f64, load_ff: f64) -> f64 {
    let r = drive_res_kohm(cell, corner);
    let c_self = C_SELF_PER_DRIVE * cell.drive;
    (SLEW_SHAPE * r * (load_ff + 0.5 * c_self) + SLEW_FEEDTHROUGH * slew_in_ps).max(MIN_SLEW_PS)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib4() -> Library {
        Library::default()
    }

    #[test]
    fn library_has_five_sizes() {
        let lib = lib4();
        assert_eq!(lib.cells().len(), 5);
        assert_eq!(lib.cells()[0].name, "CLKINV_X1");
        assert_eq!(lib.cells()[4].name, "CLKINV_X16");
    }

    #[test]
    fn size_stepping() {
        let lib = lib4();
        let x4 = lib.cell_by_name("CLKINV_X4").unwrap();
        assert_eq!(lib.cell(lib.size_up(x4).unwrap()).name, "CLKINV_X8");
        assert_eq!(lib.cell(lib.size_down(x4).unwrap()).name, "CLKINV_X2");
        let x1 = lib.cell_by_name("CLKINV_X1").unwrap();
        assert!(lib.size_down(x1).is_none());
        let x16 = lib.cell_by_name("CLKINV_X16").unwrap();
        assert!(lib.size_up(x16).is_none());
    }

    #[test]
    fn delay_monotone_in_load_and_slew() {
        let lib = lib4();
        for cell in (0..5).map(CellId) {
            for corner in lib.corner_ids() {
                let d1 = lib.gate_delay(cell, corner, 10.0, 2.0);
                let d2 = lib.gate_delay(cell, corner, 10.0, 8.0);
                let d3 = lib.gate_delay(cell, corner, 40.0, 8.0);
                assert!(d2 > d1, "load monotone at {cell:?} {corner:?}");
                assert!(d3 > d2, "slew monotone at {cell:?} {corner:?}");
            }
        }
    }

    #[test]
    fn bigger_cell_is_faster_at_same_load() {
        let lib = lib4();
        let x1 = lib.cell_by_name("CLKINV_X1").unwrap();
        let x8 = lib.cell_by_name("CLKINV_X8").unwrap();
        for corner in lib.corner_ids() {
            assert!(
                lib.gate_delay(x8, corner, 20.0, 12.0) < lib.gate_delay(x1, corner, 20.0, 12.0)
            );
        }
    }

    #[test]
    fn table_matches_analytic_within_interpolation_error() {
        let lib = lib4();
        let cell_id = lib.cell_by_name("CLKINV_X4").unwrap();
        let cell = lib.cell(cell_id).clone();
        for (k, corner) in lib.corners().iter().enumerate() {
            for &(s, c) in &[(7.0, 3.0), (25.0, 9.5), (100.0, 21.0), (15.0, 1.1)] {
                let table = lib.gate_delay(cell_id, CornerId(k), s, c);
                let exact = analytic_gate_delay(&cell, corner, s, c);
                let rel = (table - exact).abs() / exact;
                assert!(rel < 0.03, "corner {k}: table {table} vs exact {exact}");
            }
        }
    }

    #[test]
    fn corner_delay_ratio_ranges() {
        let lib = lib4();
        let x4 = lib.cell_by_name("CLKINV_X4").unwrap();
        let d: Vec<f64> = lib
            .corner_ids()
            .map(|c| lib.gate_delay(x4, c, 20.0, 8.0))
            .collect();
        let r1 = d[1] / d[0];
        let r2 = d[2] / d[0];
        let r3 = d[3] / d[0];
        assert!(r1 > 1.5 && r1 < 2.5, "c1/c0 = {r1}");
        assert!(r2 > 0.35 && r2 < 0.75, "c2/c0 = {r2}");
        assert!(r3 > 0.25 && r3 < 0.6, "c3/c0 = {r3}");
    }

    #[test]
    fn output_slew_floors_at_min() {
        let lib = lib4();
        let x16 = lib.cell_by_name("CLKINV_X16").unwrap();
        // huge driver, tiny load, fast corner => min slew clamp
        let s = lib.gate_output_slew(x16, CornerId(3), 2.0, 0.2);
        assert!(s >= MIN_SLEW_PS);
    }

    #[test]
    fn leakage_scales_with_corner() {
        let lib = lib4();
        let x2 = lib.cell_by_name("CLKINV_X2").unwrap();
        assert!(lib.cell_leakage_nw(x2, CornerId(3)) > lib.cell_leakage_nw(x2, CornerId(0)));
    }

    #[test]
    fn switching_energy_uses_v_squared() {
        let lib = lib4();
        let e0 = lib.switching_energy_fj(CornerId(0), 10.0);
        assert!((e0 - 10.0 * 0.9 * 0.9).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one corner")]
    fn empty_corner_list_panics() {
        let _ = Library::synthetic_28nm(vec![]);
    }
}
