//! Table 5: the main experimental results — for each testcase, the
//! `orig` / `global` / `local` / `global-local` rows with the sum of
//! normalized skew variation (the `norm` ratio), local skew per corner,
//! number of clock cells, clock power and clock-cell area.
//!
//! Paper reference points (foundry 28nm, 36K–270K sinks): global up to
//! 16%, local up to 5%, global-local up to 22% variation reduction with
//! no local-skew degradation and ~0–2% cell/power/area overhead. The
//! scaled reproduction should reproduce those *shapes*.
//!
//! ```sh
//! cargo run --release -p clk-bench --bin table5 -- [--sinks N] [--quick]
//! ```

use clk_bench::{suite_cases, ExpArgs, PreparedCase, Stopwatch};
use clk_skewopt::Flow;

fn main() {
    let args = ExpArgs::parse();
    let n = args.sinks.unwrap_or(if args.quick { 48 } else { 128 });
    let cfg = if args.quick {
        clockvar_workbench::quick_flow_config()
    } else {
        // full defaults (deeper λ sweep, full ANN training), sized up
        let mut cfg = clk_skewopt::FlowConfig::default();
        cfg.global.max_pairs = 120;
        cfg.local.max_iterations = 12;
        cfg.train.n_cases = 60;
        cfg.train.moves_per_case = 60;
        cfg
    };

    let flows = [Flow::Global, Flow::Local, Flow::GlobalLocal];
    println!("Table 5: Experimental results ({n} sinks per testcase, scaled)");
    for case in suite_cases(args.seed) {
        let sw = Stopwatch::start(case.kind.name());
        let prep = PreparedCase::generate(case, n, &cfg, &flows);
        println!("\n--- {} ---", case.kind.name());
        println!(
            "{}",
            clockvar_workbench::table5_header(&prep.corner_names())
        );
        let mut printed = false;
        for flow in flows {
            let (report, _ms) = match prep.run(flow, &cfg) {
                Ok(r) => r,
                Err(e) => panic!("{e}"),
            };
            if !printed {
                println!("{}", clockvar_workbench::table5_orig_row(&report));
                printed = true;
            }
            println!(
                "{}",
                clockvar_workbench::table5_row(&flow.to_string(), &report)
            );
        }
        sw.report();
    }
    println!("\npaper: global -9..16%, local -4..5%, global-local -13..22%, skews never degrade");
}
