// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic)]
#![warn(missing_docs)]

//! A linear-programming solver — the optimization substrate behind the
//! paper's global skew-variation LP (Eqs. (4)–(11)).
//!
//! [`Problem`] models `min cᵀx` subject to sparse linear rows
//! (`≤`, `=`, `≥`) and per-variable bounds (± infinity allowed). [`solve`]
//! runs a **bounded-variable revised primal simplex** with an explicit
//! dense basis inverse, two-phase start (artificial variables), Dantzig
//! pricing and a Bland anti-cycling fallback.
//!
//! The dense inverse bounds practical problems to a few thousand rows,
//! which matches this workspace's scaled testcases (the paper offloads its
//! LP to a commercial solver; see DESIGN.md §4).
//!
//! # Examples
//!
//! ```
//! use clk_lp::{Problem, RowKind};
//!
//! // max x + y  s.t. x + 2y <= 4, 3x + y <= 6, x,y >= 0
//! let mut p = Problem::new();
//! let x = p.add_var(0.0, f64::INFINITY, -1.0)?;
//! let y = p.add_var(0.0, f64::INFINITY, -1.0)?;
//! p.add_row(RowKind::Le, 4.0, &[(x, 1.0), (y, 2.0)])?;
//! p.add_row(RowKind::Le, 6.0, &[(x, 3.0), (y, 1.0)])?;
//! let sol = clk_lp::solve(&p)?;
//! assert!((sol.objective - (-2.8)).abs() < 1e-6); // x = 1.6, y = 1.2
//! # Ok::<(), clk_lp::LpError>(())
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![cfg_attr(not(test), deny(clippy::panic, clippy::expect_used))]
#![cfg_attr(not(test), deny(clippy::indexing_slicing))]
pub mod simplex;

pub use simplex::{
    solve, solve_certified, solve_certified_with_deadline, solve_certified_with_obs,
    solve_with_deadline, solve_with_obs, Certificate, Certified, FarkasRay, LpError, Problem,
    RowKind, Solution, VarId, VarStatus, REDUNDANT_ROW,
};
