//! `L0xx` — LP model audits for the paper's global skew-variation
//! program (Eqs. (4)–(11)).
//!
//! Unlike the tree passes these run over a [`clk_lp::Problem`], so they
//! are standalone functions rather than [`crate::LintPass`]es: the
//! global optimizer calls [`audit_problem`] + [`audit_shape`] right
//! after building each LP (in debug builds), and the corruption tests
//! call them on deliberately poisoned models.

use clk_lp::{Problem, VarId};

use crate::diag::{Diagnostic, Locus};

/// The expected shape of one scalarized (or U-bound) LP instance, in
/// terms of the design quantities that generate its rows:
///
/// * Eq. (6) — `2·C(k,2)` ≥-rows per pair (variation envelope);
/// * Eq. (7) — `2k` ≤-rows per pair (skew-bound cone);
/// * Eq. (8) — `2(k−1)` ≤-rows per pair (cross-corner ratio band);
/// * Eq. (9) — `k` ≤-rows per latency-bounded sink;
/// * Eq. (11) — `2(k−1)` rows per *long* involved arc (delay-ratio
///   proportionality, enforced only past the length threshold);
/// * one extra ≤-row when the objective is the U-bound sweep.
///
/// Variables: one `(pos, neg)` delta pair per involved arc per corner,
/// plus one `V` variable per pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LpShape {
    /// Corner count `k`.
    pub n_corners: usize,
    /// Sink pairs carried into the model.
    pub n_pairs: usize,
    /// Arcs with delta variables (arcs on some pair's root path).
    pub n_involved_arcs: usize,
    /// Involved arcs long enough for Eq. (11) ratio rows.
    pub n_long_arcs: usize,
    /// Sinks with Eq. (9) latency-budget rows.
    pub n_latency_sinks: usize,
    /// Whether the objective carries the extra U-bound row.
    pub ubound: bool,
}

impl LpShape {
    /// Number of decision variables the model must have.
    pub fn expected_vars(&self) -> usize {
        2 * self.n_corners * self.n_involved_arcs + self.n_pairs
    }

    /// Number of constraint rows the model must have.
    pub fn expected_rows(&self) -> usize {
        let k = self.n_corners;
        let per_pair = k * (k - 1)          // Eq. (6): 2·C(k,2)
            + 2 * k                         // Eq. (7)
            + 2 * (k.saturating_sub(1)); // Eq. (8)
        self.n_pairs * per_pair
            + self.n_latency_sinks * k
            + self.n_long_arcs * 2 * (k.saturating_sub(1))
            + usize::from(self.ubound)
    }
}

/// Audits numeric sanity of a problem: `L001` a NaN bound or non-finite
/// objective coefficient, `L002` bounds out of order, `L003` a
/// non-finite structural coefficient or right-hand side.
pub fn audit_problem(p: &Problem) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for v in 0..p.num_vars() {
        let var = VarId(v);
        // the accessors are fallible now, but v < num_vars by construction
        let Ok((lo, hi)) = p.bounds(var) else {
            continue;
        };
        let Ok(cost) = p.cost(var) else { continue };
        if lo.is_nan() || hi.is_nan() {
            out.push(Diagnostic::error(
                "L001",
                Locus::Var(v),
                format!("variable bound is NaN: [{lo}, {hi}]"),
            ));
        } else if lo > hi {
            out.push(Diagnostic::error(
                "L002",
                Locus::Var(v),
                format!("variable bounds out of order: [{lo}, {hi}]"),
            ));
        }
        if !cost.is_finite() {
            out.push(Diagnostic::error(
                "L001",
                Locus::Var(v),
                format!("objective coefficient is {cost}"),
            ));
        }
        for &(row, a) in p.col(var).unwrap_or_default() {
            if !a.is_finite() {
                out.push(Diagnostic::error(
                    "L003",
                    Locus::Row(row),
                    format!("coefficient of var{v} in row{row} is {a}"),
                ));
            }
        }
    }
    for i in 0..p.num_rows() {
        let Ok((_, rhs)) = p.row(i) else { continue };
        if !rhs.is_finite() {
            out.push(Diagnostic::error(
                "L003",
                Locus::Row(i),
                format!("right-hand side of row{i} is {rhs}"),
            ));
        }
    }
    out
}

/// Audits the model against its expected shape: `L004` row-count
/// mismatch, `L005` variable-count mismatch.
pub fn audit_shape(p: &Problem, shape: &LpShape) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if p.num_rows() != shape.expected_rows() {
        out.push(Diagnostic::error(
            "L004",
            Locus::Design,
            format!(
                "LP has {} rows but Eq. (6)-(11) over {} pairs / {} arcs ({} long) / {} sinks at {} corners imply {}",
                p.num_rows(),
                shape.n_pairs,
                shape.n_involved_arcs,
                shape.n_long_arcs,
                shape.n_latency_sinks,
                shape.n_corners,
                shape.expected_rows()
            ),
        ));
    }
    if p.num_vars() != shape.expected_vars() {
        out.push(Diagnostic::error(
            "L005",
            Locus::Design,
            format!(
                "LP has {} vars but {} involved arcs x {} corners + {} pairs imply {}",
                p.num_vars(),
                shape.n_involved_arcs,
                shape.n_corners,
                shape.n_pairs,
                shape.expected_vars()
            ),
        ));
    }
    out
}

/// Audits a solve certificate against the Eq. (6)–(11) row census:
/// `L006` certificate basis does not cover the model's rows, `L007`
/// certificate status vector does not cover the model's variables plus
/// one slack per row, `L008` (warning) a certified-redundant row — the
/// census generated a row the final basis proved linearly dependent.
pub fn audit_certificate(
    p: &Problem,
    shape: &LpShape,
    cert: &clk_lp::Certificate,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let rows = shape.expected_rows();
    let vars = shape.expected_vars();
    if cert.basis.len() != rows || p.num_rows() != rows {
        out.push(Diagnostic::error(
            "L006",
            Locus::Design,
            format!(
                "certified basis covers {} rows, model has {}, Eq. (6)-(11) census implies {}",
                cert.basis.len(),
                p.num_rows(),
                rows
            ),
        ));
    }
    if cert.status.len() != vars + rows || p.num_vars() != vars {
        out.push(Diagnostic::error(
            "L007",
            Locus::Design,
            format!(
                "certificate tracks {} internal vars, census implies {} structural + {} slack",
                cert.status.len(),
                vars,
                rows
            ),
        ));
    }
    for (i, &b) in cert.basis.iter().enumerate() {
        if b == clk_lp::REDUNDANT_ROW {
            out.push(Diagnostic::warning(
                "L008",
                Locus::Row(i),
                format!("row {i} of the Eq. (6)-(11) census is certified linearly redundant"),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use clk_lp::RowKind;

    fn tiny() -> Problem {
        let mut p = Problem::new();
        let x = p.add_var(0.0, 10.0, 1.0).unwrap();
        let y = p.add_var(0.0, f64::INFINITY, 2.0).unwrap();
        p.add_row(RowKind::Le, 4.0, &[(x, 1.0), (y, 2.0)]).unwrap();
        p
    }

    #[test]
    fn clean_problem_audits_clean() {
        assert!(audit_problem(&tiny()).is_empty());
    }

    #[test]
    fn poisoned_bounds_are_l001_l002() {
        let mut p = tiny();
        p.debug_poison_bounds(VarId(0), f64::NAN, 1.0);
        p.debug_poison_bounds(VarId(1), 5.0, 2.0);
        let out = audit_problem(&p);
        assert!(out.iter().any(|d| d.code == "L001"), "{out:?}");
        assert!(out.iter().any(|d| d.code == "L002"), "{out:?}");
    }

    #[test]
    fn poisoned_coeff_and_rhs_are_l003() {
        let mut p = tiny();
        p.debug_poison_coeff(VarId(0), 0, f64::NAN).unwrap();
        p.debug_poison_rhs(0, f64::INFINITY);
        let out = audit_problem(&p);
        assert_eq!(out.iter().filter(|d| d.code == "L003").count(), 2);
    }

    #[test]
    fn honest_certificate_passes_census() {
        // tiny(): 2 vars, 1 row — matched by k=1, 1 arc, 1 latency sink
        let p = tiny();
        let shape = LpShape {
            n_corners: 1,
            n_pairs: 0,
            n_involved_arcs: 1,
            n_long_arcs: 0,
            n_latency_sinks: 1,
            ubound: false,
        };
        assert_eq!(shape.expected_vars(), 2);
        assert_eq!(shape.expected_rows(), 1);
        let sol = clk_lp::solve(&p).unwrap();
        let out = audit_certificate(&p, &shape, &sol.certificate);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn certificate_census_mismatch_is_l006_l007() {
        let p = tiny();
        let sol = clk_lp::solve(&p).unwrap();
        let shape = LpShape {
            n_corners: 3,
            n_pairs: 1,
            n_involved_arcs: 2,
            n_long_arcs: 1,
            n_latency_sinks: 2,
            ubound: false,
        };
        let out = audit_certificate(&p, &shape, &sol.certificate);
        assert!(out.iter().any(|d| d.code == "L006"), "{out:?}");
        assert!(out.iter().any(|d| d.code == "L007"), "{out:?}");
    }

    #[test]
    fn redundant_basis_row_is_l008() {
        let p = tiny();
        let shape = LpShape {
            n_corners: 1,
            n_pairs: 0,
            n_involved_arcs: 1,
            n_long_arcs: 0,
            n_latency_sinks: 1,
            ubound: false,
        };
        let mut sol = clk_lp::solve(&p).unwrap();
        sol.certificate.basis[0] = clk_lp::REDUNDANT_ROW;
        let out = audit_certificate(&p, &shape, &sol.certificate);
        assert!(
            out.iter()
                .any(|d| d.code == "L008" && d.severity == Severity::Warning),
            "{out:?}"
        );
    }

    #[test]
    fn shape_mismatch_is_l004_l005() {
        let shape = LpShape {
            n_corners: 3,
            n_pairs: 1,
            n_involved_arcs: 2,
            n_long_arcs: 1,
            n_latency_sinks: 2,
            ubound: false,
        };
        // expected: rows = 1*(6+6+4) + 2*3 + 1*4 = 26, vars = 12 + 1 = 13
        assert_eq!(shape.expected_rows(), 26);
        assert_eq!(shape.expected_vars(), 13);
        let out = audit_shape(&tiny(), &shape);
        assert!(out.iter().any(|d| d.code == "L004"));
        assert!(out.iter().any(|d| d.code == "L005"));
    }
}
