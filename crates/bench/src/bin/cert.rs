//! Exact LP-certificate gate: replays the table-4/5 flow suite with
//! certificate checking armed and then feeds the checker a battery of
//! poisoned LPs and mutated certificates that must all be rejected.
//!
//! ```sh
//! cargo run --release -p clk-bench --bin cert -- --quick --seed 2015
//! ```
//!
//! Exit code 0 when every honest solve in CLS1v1/CLS1v2/CLS2v1
//! certifies (`cert.checks > 0`, `cert.violations == 0`) **and** every
//! poisoned problem or mutated certificate is rejected; 1 otherwise. A
//! machine-readable `cert-report.json` is written either way (override
//! with `--out PATH`) so CI can archive the violation evidence.

// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic)]

use std::process::ExitCode;

use clk_bench::{suite_cases, ExpArgs, PreparedCase, Stopwatch};
use clk_cert::{check, check_infeasible, Report};
use clk_lp::{solve, solve_certified, Certified, Problem, RowKind};
use clk_obs::{Level, MetricValue, Obs, ObsConfig, Value};
use clk_skewopt::Flow;

/// Outcome of one adversarial case: the checker must reject.
struct PoisonOutcome {
    name: &'static str,
    rejected: bool,
    violations: Vec<String>,
}

fn violations_of(r: &Report) -> Vec<String> {
    r.violations.iter().map(ToString::to_string).collect()
}

/// A small LP with a tight equality row and a nonzero optimum, so every
/// poison below lands on an active part of the certificate: minimize
/// `-x - y` over `x ∈ [0, 5]`, `y ∈ [0, 4]` with `x + y = 3` and
/// `x - y ≤ 2`.
fn seed_problem() -> Option<Problem> {
    let mut p = Problem::new();
    let x = p.add_var(0.0, 5.0, -1.0).ok()?;
    let y = p.add_var(0.0, 4.0, -1.0).ok()?;
    p.add_row(RowKind::Eq, 3.0, &[(x, 1.0), (y, 1.0)]).ok()?;
    p.add_row(RowKind::Le, 2.0, &[(x, 1.0), (y, -1.0)]).ok()?;
    Some(p)
}

/// An LP that is infeasible by construction: `x ∈ [0, 1]` with
/// `2x ≥ 5`.
fn infeasible_problem() -> Option<Problem> {
    let mut p = Problem::new();
    let x = p.add_var(0.0, 1.0, 1.0).ok()?;
    p.add_row(RowKind::Ge, 5.0, &[(x, 2.0)]).ok()?;
    Some(p)
}

/// Runs the adversarial battery: solve honestly, then poison the
/// problem (the certificate no longer matches) or mutate the
/// certificate (the problem no longer backs it). Every case must come
/// back rejected.
fn poison_battery() -> Option<Vec<PoisonOutcome>> {
    let p = seed_problem()?;
    let sol = solve(&p).ok()?;
    let honest = check(&p, &sol);
    let mut out = vec![PoisonOutcome {
        name: "honest-solve-accepted",
        // inverted sense: the honest baseline must PASS
        rejected: !honest.ok(),
        violations: violations_of(&honest),
    }];

    let mut against = |name: &'static str, poisoned: &Problem| {
        let r = check(poisoned, &sol);
        out.push(PoisonOutcome {
            name,
            rejected: !r.ok(),
            violations: violations_of(&r),
        });
    };

    let mut q = p.clone();
    q.debug_poison_rhs(0, f64::NAN);
    against("nan-rhs", &q);

    let mut q = p.clone();
    q.debug_poison_rhs(0, 4.0); // equality row shifted after the solve
    against("shifted-eq-rhs", &q);

    let mut q = p.clone();
    q.debug_poison_cost(clk_lp::VarId(0), 1.0); // was -1.0
    against("flipped-cost", &q);

    let mut q = p.clone();
    if q.debug_poison_coeff(clk_lp::VarId(0), 0, 2.0).is_err() {
        return None;
    }
    against("doubled-coeff", &q);

    let mut q = p.clone();
    q.debug_poison_bounds(clk_lp::VarId(1), f64::NAN, 4.0);
    against("nan-bound", &q);

    // mutated certificates against the honest problem
    let mut s = sol.clone();
    if let Some(y0) = s.certificate.y.first_mut() {
        *y0 += 1.0;
    }
    let r = check(&p, &s);
    out.push(PoisonOutcome {
        name: "perturbed-dual",
        rejected: !r.ok(),
        violations: violations_of(&r),
    });

    let mut s = sol.clone();
    s.certificate.basis.pop();
    let r = check(&p, &s);
    out.push(PoisonOutcome {
        name: "dropped-basis-column",
        rejected: !r.ok(),
        violations: violations_of(&r),
    });

    // Farkas side: an honest infeasibility witness must verify, and its
    // sign-flip or erasure must not
    let ip = infeasible_problem()?;
    let Ok(Certified::Infeasible { ray }) = solve_certified(&ip) else {
        return None;
    };
    let honest_ray = check_infeasible(&ip, &ray);
    out.push(PoisonOutcome {
        name: "honest-farkas-accepted",
        rejected: !honest_ray.ok(), // inverted sense, as above
        violations: violations_of(&honest_ray),
    });
    let mut flipped = ray.clone();
    for v in &mut flipped.y {
        *v = -*v;
    }
    let r = check_infeasible(&ip, &flipped);
    out.push(PoisonOutcome {
        name: "flipped-farkas-ray",
        rejected: !r.ok(),
        violations: violations_of(&r),
    });
    let mut zeroed = ray.clone();
    for v in &mut zeroed.y {
        *v = 0.0;
    }
    let r = check_infeasible(&ip, &zeroed);
    out.push(PoisonOutcome {
        name: "zeroed-farkas-ray",
        rejected: !r.ok(),
        violations: violations_of(&r),
    });
    Some(out)
}

/// Per-testcase tallies scraped from the run's metrics registry.
struct SuiteOutcome {
    id: String,
    checks: u64,
    violations: u64,
    max_resid: f64,
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().collect();
    let out_path = argv
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| argv.get(i + 1).cloned())
        .unwrap_or_else(|| "cert-report.json".to_string());
    let args = ExpArgs::parse();
    let n = args.sinks.unwrap_or(if args.quick { 48 } else { 128 });
    let seed = args.seed;
    let cfg_base = clockvar_workbench::quick_flow_config();

    println!("cert: suite seed {seed}, {n} sinks/testcase, flow global-local");
    let sw = Stopwatch::start("cert");
    let mut failed = false;
    let mut check_line = |ok: bool, what: &str| {
        if ok {
            println!("ok: {what}");
        } else {
            eprintln!("FAIL: {what}");
            failed = true;
        }
    };

    // ---- phase A: every honest LP solve in the suite must certify ----
    let mut suite_out: Vec<SuiteOutcome> = Vec::new();
    for case in suite_cases(seed) {
        let obs = Obs::new(ObsConfig {
            verbosity: Level::Debug,
            ..ObsConfig::default()
        });
        let mut cfg = cfg_base.clone();
        cfg.obs = obs.clone();
        let prep = PreparedCase::generate(case, n, &cfg, &[Flow::GlobalLocal]);
        if let Err(e) = prep.run(Flow::GlobalLocal, &cfg) {
            eprintln!("FAIL: {} flow failed: {e}", case.kind.name());
            return ExitCode::FAILURE;
        }
        obs.flush();
        let (mut checks, mut violations, mut max_resid) = (0, 0, 0.0);
        if let Some(snap) = obs.metrics_snapshot() {
            if let Some(MetricValue::Counter(c)) = snap.get("cert.checks") {
                checks = *c;
            }
            if let Some(MetricValue::Counter(c)) = snap.get("cert.violations") {
                violations = *c;
            }
            if let Some(MetricValue::Histogram(h)) = snap.get("cert.max_resid") {
                max_resid = h.max;
            }
        }
        let id = case.kind.name().to_string();
        check_line(
            checks > 0,
            &format!("{id}: certificate checking armed ({checks} checks)"),
        );
        check_line(
            violations == 0,
            &format!("{id}: zero certificate violations (max residual {max_resid:.3e})"),
        );
        suite_out.push(SuiteOutcome {
            id,
            checks,
            violations,
            max_resid,
        });
    }

    // ---- phase B: poisoned problems and mutated certificates ----
    let Some(battery) = poison_battery() else {
        eprintln!("FAIL: poison battery could not be constructed");
        return ExitCode::FAILURE;
    };
    for case in &battery {
        let verdict = if case.name.ends_with("accepted") {
            // inverted-sense rows: rejected==false means the honest
            // artifact verified, which is the pass condition
            !case.rejected
        } else {
            case.rejected
        };
        let detail = if case.violations.is_empty() {
            String::new()
        } else {
            format!(" [{}]", case.violations.join("; "))
        };
        check_line(verdict, &format!("poison case {}{detail}", case.name));
    }
    sw.report();

    // ---- artifact ----
    let report = Value::Obj(vec![
        ("seed".to_string(), Value::from(seed)),
        (
            "suite".to_string(),
            Value::Arr(
                suite_out
                    .iter()
                    .map(|s| {
                        Value::Obj(vec![
                            ("id".to_string(), Value::from(s.id.as_str())),
                            ("cert_checks".to_string(), Value::from(s.checks)),
                            ("cert_violations".to_string(), Value::from(s.violations)),
                            ("cert_max_resid".to_string(), Value::Num(s.max_resid)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "poison".to_string(),
            Value::Arr(
                battery
                    .iter()
                    .map(|c| {
                        Value::Obj(vec![
                            ("name".to_string(), Value::from(c.name)),
                            ("rejected".to_string(), Value::Bool(c.rejected)),
                            (
                                "violations".to_string(),
                                Value::Arr(
                                    c.violations
                                        .iter()
                                        .map(|v| Value::from(v.as_str()))
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("gate_clean".to_string(), Value::Bool(!failed)),
    ]);
    if let Err(e) = std::fs::write(&out_path, report.to_json()) {
        eprintln!("FAIL: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("report written to {out_path}");

    if failed {
        eprintln!("FAIL: certificate gate found violations");
        ExitCode::FAILURE
    } else {
        println!("cert: gate clean");
        ExitCode::SUCCESS
    }
}
