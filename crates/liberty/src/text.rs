//! Liberty-format text output and a minimal reader.
//!
//! The paper's framework interfaces with commercial P&R/STA tools through
//! production PDK libraries; this module is that interface's stand-in. It
//! writes the synthetic library as industry-syntax Liberty (`.lib`) — one
//! file per corner, NLDM `lu_table_template`/`cell`/`pin`/`timing` groups
//! — and reads the same dialect back, so external tooling (or a future
//! real-PDK flow) can exchange characterization data with this workspace.
//!
//! The reader handles the subset this crate writes (it is not a general
//! Liberty parser): nested `group(name) { ... }` blocks,
//! `attribute : value;` statements and quoted number lists.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::limits::{LimitExceeded, ParseLimits};
use crate::{Cell, CellId, Corner, CornerId, Library, Lut2};

/// Writes one corner of the library as Liberty text.
///
/// ```
/// use clk_liberty::{Library, StdCorners, CornerId};
/// let lib = Library::synthetic_28nm(StdCorners::c0_c1_c3());
/// let text = clk_liberty::text::write_liberty(&lib, CornerId(0));
/// assert!(text.contains("library (clockvar_28nm_c0)"));
/// assert!(text.contains("cell (CLKINV_X4)"));
/// ```
pub fn write_liberty(lib: &Library, corner: CornerId) -> String {
    let c = lib.corner(corner);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "/* synthetic 28nm-class clock library, corner {} */",
        c.name
    );
    let _ = writeln!(out, "library (clockvar_28nm_{}) {{", c.name);
    let _ = writeln!(out, "  delay_model : table_lookup;");
    let _ = writeln!(out, "  time_unit : \"1ps\";");
    let _ = writeln!(out, "  capacitive_load_unit (1, ff);");
    let _ = writeln!(out, "  voltage_unit : \"1V\";");
    let _ = writeln!(out, "  nom_voltage : {:.2};", c.voltage);
    let _ = writeln!(out, "  nom_temperature : {:.1};", c.temp_c);
    let _ = writeln!(out, "  nom_process : 1.0;");

    for (idx, cell) in lib.cells().iter().enumerate() {
        let id = CellId(idx);
        let (Some(delay), Some(slew)) = (
            sample_table(lib, id, corner, true),
            sample_table(lib, id, corner, false),
        ) else {
            // the fixed sampling axes cannot fail to tabulate; if they
            // somehow do, emit the rest of the library without this cell
            debug_assert!(false, "fixed sampling axes failed to tabulate");
            continue;
        };
        let _ = writeln!(out, "  cell ({}) {{", cell.name);
        let _ = writeln!(out, "    area : {:.4};", cell.area_um2);
        let _ = writeln!(
            out,
            "    cell_leakage_power : {:.6};",
            lib.cell_leakage_nw(id, corner)
        );
        let _ = writeln!(out, "    pin (A) {{");
        let _ = writeln!(out, "      direction : input;");
        let _ = writeln!(out, "      capacitance : {:.4};", cell.input_cap_ff);
        let _ = writeln!(out, "    }}");
        let _ = writeln!(out, "    pin (Y) {{");
        let _ = writeln!(out, "      direction : output;");
        let _ = writeln!(out, "      function : \"(!A)\";");
        let _ = writeln!(out, "      max_capacitance : {:.4};", cell.max_cap_ff);
        let _ = writeln!(out, "      timing () {{");
        let _ = writeln!(out, "        related_pin : \"A\";");
        let _ = writeln!(out, "        timing_sense : negative_unate;");
        write_lut(&mut out, "cell_rise", &delay);
        write_lut(&mut out, "rise_transition", &slew);
        let _ = writeln!(out, "      }}");
        let _ = writeln!(out, "    }}");
        let _ = writeln!(out, "  }}");
    }
    let _ = writeln!(out, "}}");
    out
}

/// Samples the library's (interpolating) tables back onto a fixed grid so
/// the emitted Liberty is self-contained. `None` only if the fixed axes
/// were somehow rejected (callers skip the cell rather than panic).
fn sample_table(lib: &Library, cell: CellId, corner: CornerId, delay: bool) -> Option<Lut2> {
    let slews = vec![2.0, 10.0, 40.0, 160.0, 320.0];
    let loads: Vec<f64> = [0.5, 2.0, 8.0, 16.0, 30.0]
        .iter()
        .map(|s| s * lib.cell(cell).drive)
        .collect();
    Lut2::tabulate(slews, loads, |s, c| {
        if delay {
            lib.gate_delay(cell, corner, s, c)
        } else {
            lib.gate_output_slew(cell, corner, s, c)
        }
    })
    .ok()
}

fn write_lut(out: &mut String, group: &str, t: &Lut2) {
    let fmt_row = |row: &[f64]| -> String {
        row.iter()
            .map(|v| format!("{v:.4}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let _ = writeln!(out, "        {group} (delay_template) {{");
    let _ = writeln!(out, "          index_1 (\"{}\");", fmt_row(t.axis1()));
    let _ = writeln!(out, "          index_2 (\"{}\");", fmt_row(t.axis2()));
    let _ = writeln!(out, "          values ( \\");
    for (i, row) in t.values().iter().enumerate() {
        let sep = if i + 1 == t.values().len() {
            " );"
        } else {
            ", \\"
        };
        let _ = writeln!(out, "            \"{}\"{sep}", fmt_row(row));
    }
    let _ = writeln!(out, "        }}");
}

/// A parsed Liberty cell (the subset [`write_liberty`] emits).
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedCell {
    /// Cell master name.
    pub name: String,
    /// `area` attribute, µm².
    pub area_um2: f64,
    /// Input pin capacitance, fF.
    pub input_cap_ff: f64,
    /// Output max capacitance, fF.
    pub max_cap_ff: f64,
    /// The `cell_rise` NLDM table.
    pub delay: Lut2,
    /// The `rise_transition` NLDM table.
    pub slew: Lut2,
}

/// A parsed Liberty library (the subset [`write_liberty`] emits).
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedLiberty {
    /// `library (...)` group name.
    pub name: String,
    /// `nom_voltage`.
    pub nom_voltage: f64,
    /// `nom_temperature`.
    pub nom_temperature: f64,
    /// Parsed cells, in file order.
    pub cells: Vec<ParsedCell>,
}

impl ParsedLiberty {
    /// Finds a parsed cell by name.
    pub fn cell(&self, name: &str) -> Option<&ParsedCell> {
        self.cells.iter().find(|c| c.name == name)
    }
}

/// Errors from [`parse_liberty`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLibertyError {
    /// Offending line (1-based) where parsing stopped; 0 when the error
    /// is structural (detected after tokenizing) rather than positional.
    pub line: usize,
    /// Byte offset into the input where the offending construct starts
    /// (0 for structural errors).
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseLibertyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "liberty parse error at line {} (byte {}): {}",
            self.line, self.offset, self.message
        )
    }
}

impl std::error::Error for ParseLibertyError {}

/// A parsed group tree node.
#[derive(Debug, Default)]
struct Group {
    kind: String,
    name: String,
    attrs: HashMap<String, String>,
    children: Vec<Group>,
}

/// Parses the dialect emitted by [`write_liberty`] under the default
/// [`ParseLimits`].
///
/// # Errors
///
/// [`ParseLibertyError`] on structural problems (unbalanced braces,
/// missing required attributes, malformed tables) or exceeded limits.
pub fn parse_liberty(text: &str) -> Result<ParsedLiberty, ParseLibertyError> {
    parse_liberty_with_limits(text, &ParseLimits::default())
}

/// [`parse_liberty`] with an explicit resource-limit policy for
/// untrusted input. Every limit violation is a typed error carrying the
/// byte offset where the offending construct starts — never a panic,
/// never unbounded allocation.
pub fn parse_liberty_with_limits(
    text: &str,
    limits: &ParseLimits,
) -> Result<ParsedLiberty, ParseLibertyError> {
    let root = parse_groups(text, limits)?;
    let lib = root
        .children
        .iter()
        .find(|g| g.kind == "library")
        .ok_or_else(|| err(1, 0, "no library group"))?;
    let mut cells = Vec::new();
    for cg in lib.children.iter().filter(|g| g.kind == "cell") {
        let area = attr_f64(cg, "area")?;
        let mut input_cap = 0.0;
        let mut max_cap = 0.0;
        let mut delay = None;
        let mut slew = None;
        for pin in cg.children.iter().filter(|g| g.kind == "pin") {
            if let Some(c) = pin.attrs.get("capacitance") {
                input_cap = parse_f64(c)?;
            }
            if let Some(c) = pin.attrs.get("max_capacitance") {
                max_cap = parse_f64(c)?;
            }
            for timing in pin.children.iter().filter(|g| g.kind == "timing") {
                for t in &timing.children {
                    match t.kind.as_str() {
                        "cell_rise" => delay = Some(parse_lut(t, limits)?),
                        "rise_transition" => slew = Some(parse_lut(t, limits)?),
                        _ => {}
                    }
                }
            }
        }
        cells.push(ParsedCell {
            name: cg.name.clone(),
            area_um2: area,
            input_cap_ff: input_cap,
            max_cap_ff: max_cap,
            delay: delay.ok_or_else(|| err(0, 0, "cell without cell_rise table"))?,
            slew: slew.ok_or_else(|| err(0, 0, "cell without rise_transition table"))?,
        });
    }
    Ok(ParsedLiberty {
        name: lib.name.clone(),
        nom_voltage: attr_f64(lib, "nom_voltage")?,
        nom_temperature: attr_f64(lib, "nom_temperature")?,
        cells,
    })
}

fn err(line: usize, offset: usize, m: impl Into<String>) -> ParseLibertyError {
    ParseLibertyError {
        line,
        offset,
        message: m.into(),
    }
}

fn limit_err(line: usize, offset: usize, e: LimitExceeded) -> ParseLibertyError {
    err(line, offset, e.to_string())
}

fn parse_f64(s: &str) -> Result<f64, ParseLibertyError> {
    s.trim()
        .parse()
        .map_err(|_| err(0, 0, format!("bad number: {s:?}")))
}

fn attr_f64(g: &Group, key: &str) -> Result<f64, ParseLibertyError> {
    parse_f64(
        g.attrs
            .get(key)
            .ok_or_else(|| err(0, 0, format!("missing attribute {key}")))?,
    )
}

fn parse_lut(g: &Group, limits: &ParseLimits) -> Result<Lut2, ParseLibertyError> {
    let nums = |key: &str| -> Result<Vec<f64>, ParseLibertyError> {
        let raw = g
            .attrs
            .get(key)
            .ok_or_else(|| err(0, 0, format!("missing {key}")))?;
        raw.replace(['(', ')', '"', '\\'], " ")
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(parse_f64)
            .collect()
    };
    let a1 = nums("index_1")?;
    let a2 = nums("index_2")?;
    let dim = a1.len().max(a2.len());
    if dim > limits.max_lut_dim {
        return Err(limit_err(
            0,
            0,
            LimitExceeded {
                what: "LUT axis entries",
                actual: dim,
                limit: limits.max_lut_dim,
            },
        ));
    }
    let flat = nums("values")?;
    // checked_mul: adversarial axes must not overflow the shape check
    if a1.is_empty() || a2.is_empty() || a1.len().checked_mul(a2.len()) != Some(flat.len()) {
        return Err(err(0, 0, "table shape mismatch"));
    }
    let values: Vec<Vec<f64>> = flat.chunks(a2.len()).map(<[f64]>::to_vec).collect();
    Lut2::new(a1, a2, values).map_err(|e| err(0, 0, e.to_string()))
}

/// 1-based line number of a byte offset.
fn line_of(text: &str, offset: usize) -> usize {
    text.as_bytes()[..offset.min(text.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
        + 1
}

/// Blanks `/* */` comments to spaces, preserving every byte position and
/// newline so downstream line numbers and byte offsets stay exact.
fn blank_comments(text: &str) -> Result<String, ParseLibertyError> {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
            let close = text[i + 2..]
                .find("*/")
                .ok_or_else(|| err(line_of(text, i), i, "unterminated comment"))?;
            let end = i + 2 + close + 2;
            out.extend(
                bytes[i..end]
                    .iter()
                    .map(|&b| if b == b'\n' { b'\n' } else { b' ' }),
            );
            i = end;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    // comment bytes became ASCII spaces and everything else is copied
    // verbatim in order, so the result is valid UTF-8 whenever the
    // input was
    String::from_utf8(out).map_err(|_| err(0, 0, "input is not valid utf-8"))
}

/// Tokenizes `text` into a group tree. Handles `/* */` comments,
/// `\`-continued lines, `key : value;`, `key (args...);`-style complex
/// attributes (stored with the parenthesized body as the value) and
/// nested `kind (name) { ... }`. Enforces `limits` on nesting depth,
/// group count and token length; every violation reports the byte
/// offset where the offending construct starts.
fn parse_groups(text: &str, limits: &ParseLimits) -> Result<Group, ParseLibertyError> {
    limits
        .check_bytes(text.len())
        .map_err(|e| limit_err(1, 0, e))?;
    let src = blank_comments(text)?;

    let mut root = Group::default();
    let mut stack: Vec<Group> = vec![];
    let mut cur = std::mem::take(&mut root);
    let mut records = 0usize;

    // `\`-continued statements accumulate here, pinned to the byte
    // offset and line where the statement started
    let mut pending = String::new();
    let mut pending_line = 0usize;
    let mut pending_off = 0usize;

    let mut offset = 0usize;
    for (ln0, raw) in src.lines().enumerate() {
        let raw_off = offset;
        offset += raw.len() + 1; // + the newline lines() swallowed
        let ln = ln0 + 1;

        if let Some(head) = raw.trim_end().strip_suffix('\\') {
            if pending.is_empty() {
                pending_line = ln;
                pending_off = raw_off;
            }
            pending.push_str(head);
            pending.push(' ');
            if pending.len() > limits.max_token_len {
                return Err(limit_err(
                    pending_line,
                    pending_off,
                    LimitExceeded {
                        what: "token length",
                        actual: pending.len(),
                        limit: limits.max_token_len,
                    },
                ));
            }
            continue;
        }
        let joined: Option<String> = if pending.is_empty() {
            None
        } else {
            pending.push_str(raw);
            Some(std::mem::take(&mut pending))
        };
        let (line, ln, line_off) = match &joined {
            Some(s) => (s.trim(), pending_line, pending_off),
            None => (raw.trim(), ln, raw_off),
        };
        if line.is_empty() {
            continue;
        }
        if line.len() > limits.max_token_len {
            return Err(limit_err(
                ln,
                line_off,
                LimitExceeded {
                    what: "token length",
                    actual: line.len(),
                    limit: limits.max_token_len,
                },
            ));
        }
        if line == "}" {
            let done = cur;
            cur = stack
                .pop()
                .ok_or_else(|| err(ln, line_off, "unbalanced closing brace"))?;
            cur.children.push(done);
            continue;
        }
        if let Some(body) = line.strip_suffix('{') {
            // `kind (name) {`
            if stack.len() + 1 > limits.max_depth {
                return Err(limit_err(
                    ln,
                    line_off,
                    LimitExceeded {
                        what: "nesting depth",
                        actual: stack.len() + 1,
                        limit: limits.max_depth,
                    },
                ));
            }
            records += 1;
            if records > limits.max_records {
                return Err(limit_err(
                    ln,
                    line_off,
                    LimitExceeded {
                        what: "group records",
                        actual: records,
                        limit: limits.max_records,
                    },
                ));
            }
            let body = body.trim();
            let (kind, name) = match body.split_once('(') {
                Some((k, n)) => (
                    k.trim().to_string(),
                    n.trim().trim_end_matches(')').trim().to_string(),
                ),
                None => (body.to_string(), String::new()),
            };
            stack.push(cur);
            cur = Group {
                kind,
                name,
                ..Group::default()
            };
            continue;
        }
        let stmt = line.trim_end_matches(';').trim();
        if let Some((key, value)) = stmt.split_once(':') {
            cur.attrs.insert(
                key.trim().to_string(),
                value.trim().trim_matches('"').to_string(),
            );
        } else if let Some((key, value)) = stmt.split_once('(') {
            // complex attribute: index_1 ("...") / values (...)
            cur.attrs.insert(
                key.trim().to_string(),
                value.trim().trim_end_matches(')').to_string(),
            );
        }
    }
    if !pending.is_empty() {
        return Err(err(
            pending_line,
            pending_off,
            "continuation at end of input",
        ));
    }
    if !stack.is_empty() {
        return Err(err(
            line_of(&src, src.len()),
            src.len(),
            "unbalanced open brace",
        ));
    }
    Ok(Group {
        children: vec![cur]
            .into_iter()
            .flat_map(|g| {
                if g.kind.is_empty() {
                    g.children
                } else {
                    vec![g]
                }
            })
            .collect(),
        ..Group::default()
    })
}

/// Convenience: a parsed view of every corner of `lib`.
pub fn round_trip(lib: &Library) -> Result<Vec<ParsedLiberty>, ParseLibertyError> {
    lib.corner_ids()
        .map(|c| parse_liberty(&write_liberty(lib, c)))
        .collect()
}

/// Used by tests to compare cells.
pub fn cells_match(lib_cell: &Cell, parsed: &ParsedCell, tol: f64) -> bool {
    (lib_cell.area_um2 - parsed.area_um2).abs() < tol
        && (lib_cell.input_cap_ff - parsed.input_cap_ff).abs() < tol
        && (lib_cell.max_cap_ff - parsed.max_cap_ff).abs() < tol
}

/// Re-exported corner helper for binding parsed data to corners.
pub fn corner_label(c: &Corner) -> String {
    format!("clockvar_28nm_{}", c.name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StdCorners;

    #[test]
    fn writes_syntactically_balanced_liberty() {
        let lib = Library::synthetic_28nm(StdCorners::c0_c1_c3());
        let text = write_liberty(&lib, CornerId(1));
        assert_eq!(
            text.matches('{').count(),
            text.matches('}').count(),
            "unbalanced braces"
        );
        assert!(text.contains("nom_voltage : 0.75"));
        assert!(text.contains("pin (Y)"));
    }

    #[test]
    fn round_trips_every_corner() {
        let lib = Library::synthetic_28nm(StdCorners::all());
        let parsed = round_trip(&lib).expect("parses its own output");
        assert_eq!(parsed.len(), 4);
        for (k, p) in parsed.iter().enumerate() {
            assert_eq!(p.name, corner_label(lib.corner(CornerId(k))));
            assert_eq!(p.cells.len(), lib.cells().len());
            for (i, cell) in lib.cells().iter().enumerate() {
                let pc = p.cell(&cell.name).expect("cell present");
                assert!(cells_match(cell, pc, 1e-3), "{} mismatch", cell.name);
                // table lookups agree with the library within print precision
                let want = lib.gate_delay(CellId(i), CornerId(k), 40.0, 8.0 * cell.drive);
                let got = pc.delay.eval(40.0, 8.0 * cell.drive);
                assert!((want - got).abs() < 0.01, "{}: {want} vs {got}", cell.name);
            }
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_liberty("cell (X) {").is_err());
        assert!(parse_liberty("}").is_err());
        assert!(parse_liberty("/* unterminated").is_err());
        assert!(parse_liberty("").is_err()); // no library group
    }

    #[test]
    fn parse_error_displays() {
        let e = parse_liberty("}").unwrap_err();
        assert!(e.to_string().contains("line"));
        assert!(e.to_string().contains("byte"));
    }

    #[test]
    fn errors_carry_exact_byte_offsets() {
        // line 1 is 16 bytes ("/* a comment */\n"); the stray closing
        // brace statement starts at byte 16, line 2
        let e = parse_liberty("/* a comment */\n }\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(e.offset, 16);
        assert!(e.message.contains("unbalanced closing brace"));
    }

    #[test]
    fn limits_reject_adversarial_input() {
        let strict = ParseLimits::strict();

        // nesting depth
        let mut deep = String::new();
        for _ in 0..strict.max_depth + 4 {
            deep.push_str("g (x) {\n");
        }
        let e = parse_liberty_with_limits(&deep, &strict).unwrap_err();
        assert!(e.message.contains("nesting depth"), "{e}");
        assert!(e.offset > 0);

        // byte budget
        let tiny = ParseLimits {
            max_bytes: 8,
            ..strict.clone()
        };
        let e = parse_liberty_with_limits("library (x) { }", &tiny).unwrap_err();
        assert!(e.message.contains("input bytes"), "{e}");

        // token length, including `\`-continued accumulation
        let short = ParseLimits {
            max_token_len: 16,
            ..strict.clone()
        };
        let long = format!("library (l) {{\n  key : \"{}\";\n}}\n", "x".repeat(64));
        let e = parse_liberty_with_limits(&long, &short).unwrap_err();
        assert!(e.message.contains("token length"), "{e}");
        let continued = format!(
            "library (l) {{\n  values ( \\\n\"{}\" \\\n",
            "1, ".repeat(32)
        );
        let e = parse_liberty_with_limits(&continued, &short).unwrap_err();
        assert!(e.message.contains("token length"), "{e}");

        // group records
        let few = ParseLimits {
            max_records: 2,
            ..strict.clone()
        };
        let many = "library (l) {\n  cell (a) {\n  }\n  cell (b) {\n  }\n}\n";
        let e = parse_liberty_with_limits(many, &few).unwrap_err();
        assert!(e.message.contains("group records"), "{e}");
    }

    #[test]
    fn lut_axis_limit_is_enforced() {
        let limits = ParseLimits {
            max_lut_dim: 4,
            ..ParseLimits::strict()
        };
        let axis: String = (0..8)
            .map(|i| format!("{i}.0"))
            .collect::<Vec<_>>()
            .join(", ");
        let text = format!(
            "library (l) {{\n  cell (c) {{\n    area : 1.0;\n    pin (Y) {{\n      timing () {{\n        cell_rise (t) {{\n          index_1 (\"{axis}\");\n          index_2 (\"1.0\");\n          values (\"{axis}\");\n        }}\n      }}\n    }}\n  }}\n}}\n"
        );
        let e = parse_liberty_with_limits(&text, &limits).unwrap_err();
        assert!(e.message.contains("LUT axis entries"), "{e}");
    }

    #[test]
    fn round_trip_is_well_within_default_limits() {
        let lib = Library::synthetic_28nm(StdCorners::c0_c1_c3());
        let text = write_liberty(&lib, CornerId(0));
        parse_liberty_with_limits(&text, &ParseLimits::strict()).expect("own output fits strict");
    }
}
