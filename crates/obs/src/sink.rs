//! Output sinks: human-readable text and machine-readable JSONL.

use std::io::Write;
use std::sync::{Arc, Mutex};

use crate::event::{EventRecord, Level};

/// A destination for event records.
///
/// Sinks run under the pipeline's sink mutex, so implementations may
/// hold internal state without further locking. Write failures are
/// swallowed — observability must never take the flow down.
pub trait Sink: Send {
    /// Consumes one record.
    fn emit(&mut self, rec: &EventRecord);
    /// Flushes buffered output (best-effort).
    fn flush(&mut self) {}
}

/// Human-readable line-per-event sink with its own level filter.
pub struct TextSink {
    out: Box<dyn Write + Send>,
    max_level: Level,
}

impl TextSink {
    /// A text sink writing records at or below `max_level` to `out`.
    pub fn new(out: Box<dyn Write + Send>, max_level: Level) -> Self {
        Self { out, max_level }
    }

    /// A text sink on stderr.
    pub fn stderr(max_level: Level) -> Self {
        Self::new(Box::new(std::io::stderr()), max_level)
    }
}

impl Sink for TextSink {
    fn emit(&mut self, rec: &EventRecord) {
        if rec.level <= self.max_level {
            let _ = writeln!(self.out, "{}", rec.to_text());
        }
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// One-JSON-object-per-line sink; emits every record it receives (the
/// pipeline's verbosity already filtered upstream).
pub struct JsonlSink {
    out: Box<dyn Write + Send>,
}

impl JsonlSink {
    /// A JSONL sink writing to `out`.
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        Self { out }
    }

    /// A JSONL sink appending to the file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying `File::create` error.
    pub fn file(path: &std::path::Path) -> std::io::Result<Self> {
        let f = std::fs::File::create(path)?;
        Ok(Self::new(Box::new(std::io::BufWriter::new(f))))
    }
}

impl Sink for JsonlSink {
    fn emit(&mut self, rec: &EventRecord) {
        let _ = writeln!(self.out, "{}", rec.to_json().to_json());
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// A clonable in-memory byte buffer usable as a sink target — lets
/// tests and `obs-report` capture a JSONL stream without touching the
/// filesystem.
#[derive(Debug, Clone, Default)]
pub struct SharedBuf {
    buf: Arc<Mutex<Vec<u8>>>,
}

impl SharedBuf {
    /// An empty shared buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The buffer contents decoded as UTF-8 (lossy).
    pub fn contents(&self) -> String {
        let buf = self
            .buf
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        String::from_utf8_lossy(&buf).into_owned()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.buf
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .extend_from_slice(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::json;

    fn rec(level: Level, name: &str) -> EventRecord {
        EventRecord {
            kind: EventKind::Event,
            seq: 1,
            ts_ms: 0.5,
            span: None,
            parent: None,
            level,
            name: name.to_string(),
            elapsed_ms: None,
            fields: vec![],
        }
    }

    #[test]
    fn text_sink_filters_by_level() {
        let buf = SharedBuf::new();
        let mut sink = TextSink::new(Box::new(buf.clone()), Level::Info);
        sink.emit(&rec(Level::Debug, "hidden"));
        sink.emit(&rec(Level::Info, "shown"));
        let text = buf.contents();
        assert!(!text.contains("hidden"));
        assert!(text.contains("shown"));
    }

    #[test]
    fn jsonl_sink_emits_parseable_lines() {
        let buf = SharedBuf::new();
        let mut sink = JsonlSink::new(Box::new(buf.clone()));
        sink.emit(&rec(Level::Trace, "a"));
        sink.emit(&rec(Level::Error, "b"));
        let text = buf.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v = json::parse(line).unwrap();
            assert_eq!(v.get("t").and_then(json::Value::as_str), Some("event"));
        }
    }
}
