//! [`BigRat`]: a zero-dependency arbitrary-precision rational built for
//! exact verification of floating-point LP certificates.
//!
//! Every finite `f64` is exactly `(-1)^s · m · 2^e` with `m < 2^53`, so
//! every number the checker ever constructs is a *dyadic* rational:
//! sign + arbitrary-precision magnitude (`Vec<u64>` limbs) + a power-of-
//! two scale. Dyadic rationals are closed under addition, subtraction
//! and multiplication — and the certificate checks need nothing else
//! (no division appears in primal/dual feasibility, complementary
//! slackness, or Farkas-gap arithmetic). The denominator is therefore
//! always a power of two and is carried as the `exp` field instead of a
//! second magnitude, which makes normalization a shift instead of a gcd.
//!
//! No `f64` arithmetic or comparison appears anywhere in this module
//! except the clearly-marked [`BigRat::approx_f64`] telemetry exporter;
//! conversion *from* `f64` goes through [`f64::to_bits`] only.

use std::cmp::Ordering;

/// An exact dyadic rational `(-1)^neg · mag · 2^exp`.
///
/// Invariants (maintained by [`BigRat::normalize`]):
/// * `mag` has no trailing (most-significant) zero limbs;
/// * the low bit of `mag` is set (odd magnitude) unless the value is 0;
/// * zero is `{ neg: false, mag: [], exp: 0 }`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BigRat {
    neg: bool,
    /// Little-endian base-2⁶⁴ limbs of the magnitude.
    mag: Vec<u64>,
    /// Power-of-two scale (the negated dyadic denominator exponent).
    exp: i64,
}

impl BigRat {
    /// Exact zero.
    pub fn zero() -> Self {
        BigRat {
            neg: false,
            mag: Vec::new(),
            exp: 0,
        }
    }

    /// Exact one.
    pub fn one() -> Self {
        BigRat {
            neg: false,
            mag: vec![1],
            exp: 0,
        }
    }

    /// Exactly `2^e` (e.g. `two_pow(-17)` is the checker tolerance unit).
    pub fn two_pow(e: i64) -> Self {
        BigRat {
            neg: false,
            mag: vec![1],
            exp: e,
        }
    }

    /// Exactly `v`.
    pub fn from_i64(v: i64) -> Self {
        let neg = v < 0;
        let mag = v.unsigned_abs();
        let mut r = BigRat {
            neg,
            mag: if mag == 0 { Vec::new() } else { vec![mag] },
            exp: 0,
        };
        r.normalize();
        r
    }

    /// The exact value of a finite `f64`, decoded from its bit pattern
    /// (sign, biased exponent, mantissa — subnormals included).
    /// `None` for NaN and ±∞.
    pub fn from_f64_exact(v: f64) -> Option<Self> {
        let bits = v.to_bits();
        let neg = (bits >> 63) != 0;
        let biased = ((bits >> 52) & 0x7ff) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        if biased == 0x7ff {
            return None; // NaN or infinity
        }
        let (mant, exp) = if biased == 0 {
            (frac, -1074) // subnormal (or zero)
        } else {
            (frac | (1u64 << 52), biased - 1075)
        };
        let mut r = BigRat {
            neg: neg && mant != 0,
            mag: if mant == 0 { Vec::new() } else { vec![mant] },
            exp,
        };
        r.normalize();
        Some(r)
    }

    /// Whether the value is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.mag.is_empty()
    }

    /// Whether the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.neg
    }

    /// Whether the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        !self.neg && !self.is_zero()
    }

    /// Exact negation.
    pub fn negate(&self) -> Self {
        let mut r = self.clone();
        if !r.is_zero() {
            r.neg = !r.neg;
        }
        r
    }

    /// Exact absolute value.
    pub fn abs(&self) -> Self {
        let mut r = self.clone();
        r.neg = false;
        r
    }

    /// Exact sum.
    pub fn add(&self, other: &Self) -> Self {
        if self.is_zero() {
            return other.clone();
        }
        if other.is_zero() {
            return self.clone();
        }
        // align the scales: both magnitudes shifted up to the smaller exp
        let exp = self.exp.min(other.exp);
        let a = mag_shl(&self.mag, (self.exp - exp) as u64);
        let b = mag_shl(&other.mag, (other.exp - exp) as u64);
        let mut r = if self.neg == other.neg {
            BigRat {
                neg: self.neg,
                mag: mag_add(&a, &b),
                exp,
            }
        } else {
            match mag_cmp(&a, &b) {
                Ordering::Equal => BigRat::zero(),
                Ordering::Greater => BigRat {
                    neg: self.neg,
                    mag: mag_sub(&a, &b),
                    exp,
                },
                Ordering::Less => BigRat {
                    neg: other.neg,
                    mag: mag_sub(&b, &a),
                    exp,
                },
            }
        };
        r.normalize();
        r
    }

    /// Exact difference `self - other`.
    pub fn sub(&self, other: &Self) -> Self {
        self.add(&other.negate())
    }

    /// Exact product.
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return BigRat::zero();
        }
        let mut r = BigRat {
            neg: self.neg != other.neg,
            mag: mag_mul(&self.mag, &other.mag),
            exp: self.exp + other.exp,
        };
        r.normalize();
        r
    }

    /// Exact maximum.
    pub fn max(&self, other: &Self) -> Self {
        if self.cmp_exact(other) == Ordering::Less {
            other.clone()
        } else {
            self.clone()
        }
    }

    /// Exact total order.
    pub fn cmp_exact(&self, other: &Self) -> Ordering {
        let d = self.sub(other);
        if d.is_zero() {
            Ordering::Equal
        } else if d.neg {
            Ordering::Less
        } else {
            Ordering::Greater
        }
    }

    /// Whether `|self| <= tol` (exact comparison).
    pub fn within(&self, tol: &Self) -> bool {
        self.abs().cmp_exact(tol) != Ordering::Greater
    }

    fn normalize(&mut self) {
        while self.mag.last() == Some(&0) {
            self.mag.pop();
        }
        if self.mag.is_empty() {
            self.neg = false;
            self.exp = 0;
            return;
        }
        // shift out trailing zero bits into the exponent so magnitudes
        // stay minimal across long dot products
        let mut tz: u64 = 0;
        for &limb in &self.mag {
            if limb == 0 {
                tz += 64;
            } else {
                tz += u64::from(limb.trailing_zeros());
                break;
            }
        }
        if tz > 0 {
            self.mag = mag_shr(&self.mag, tz);
            self.exp += tz as i64;
        }
    }

    /// A lossy `f64` approximation — **telemetry only**; never used in
    /// any acceptance decision (the checker compares exact rationals).
    #[allow(
        clippy::float_arithmetic,
        clippy::float_cmp,
        clippy::cast_precision_loss,
        clippy::indexing_slicing
    )]
    pub fn approx_f64(&self) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        // take the top <= 64 bits of the magnitude and rescale
        let nlimbs = self.mag.len();
        let top = self.mag[nlimbs - 1];
        let mut v = top as f64;
        if nlimbs > 1 {
            v += self.mag[nlimbs - 2] as f64 / 1.8446744073709552e19; // 2^64
        }
        let scale = self.exp + 64 * (nlimbs as i64 - 1);
        let mut out = v;
        // apply the power-of-two scale in clamped steps so intermediate
        // values neither overflow nor flush to zero prematurely
        let mut s = scale;
        while s != 0 {
            let step = s.clamp(-512, 512);
            out *= f64::powi(2.0, step as i32);
            s -= step;
            if out == 0.0 || out.is_infinite() {
                break;
            }
        }
        if self.neg {
            -out
        } else {
            out
        }
    }
}

impl std::fmt::Display for BigRat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:e}", self.approx_f64())
    }
}

// ---- limb arithmetic ----------------------------------------------------

fn mag_cmp(a: &[u64], b: &[u64]) -> Ordering {
    if a.len() != b.len() {
        return a.len().cmp(&b.len());
    }
    for (x, y) in a.iter().rev().zip(b.iter().rev()) {
        match x.cmp(y) {
            Ordering::Equal => {}
            o => return o,
        }
    }
    Ordering::Equal
}

// every index below is bounded by the iteration limit of its own loop
#[allow(clippy::indexing_slicing)]
fn mag_add(a: &[u64], b: &[u64]) -> Vec<u64> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry = 0u64;
    for (i, &li) in long.iter().enumerate() {
        let s = u128::from(li) + u128::from(short.get(i).copied().unwrap_or(0)) + u128::from(carry);
        out.push(s as u64);
        carry = (s >> 64) as u64;
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

/// `a - b`; callers guarantee `a >= b`.
#[allow(clippy::indexing_slicing)]
fn mag_sub(a: &[u64], b: &[u64]) -> Vec<u64> {
    debug_assert!(mag_cmp(a, b) != Ordering::Less);
    let mut out = Vec::with_capacity(a.len());
    let mut borrow = 0u64;
    for (i, &ai) in a.iter().enumerate() {
        let bi = b.get(i).copied().unwrap_or(0);
        let (d1, o1) = ai.overflowing_sub(bi);
        let (d2, o2) = d1.overflowing_sub(borrow);
        out.push(d2);
        borrow = u64::from(o1) + u64::from(o2);
    }
    debug_assert_eq!(borrow, 0);
    out
}

// `out` is sized `a.len() + b.len()` up front, which bounds `i + j` and
// the carry walk (the product of an i-limb and j-limb number fits)
#[allow(clippy::indexing_slicing)]
fn mag_mul(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &bj) in b.iter().enumerate() {
            let cur = u128::from(out[i + j]) + u128::from(ai) * u128::from(bj) + carry;
            out[i + j] = cur as u64;
            carry = cur >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let cur = u128::from(out[k]) + carry;
            out[k] = cur as u64;
            carry = cur >> 64;
            k += 1;
        }
    }
    out
}

fn mag_shl(a: &[u64], bits: u64) -> Vec<u64> {
    if a.is_empty() || bits == 0 {
        return a.to_vec();
    }
    let limbs = (bits / 64) as usize;
    let rem = bits % 64;
    let mut out = vec![0u64; limbs];
    if rem == 0 {
        out.extend_from_slice(a);
        return out;
    }
    let mut carry = 0u64;
    for &limb in a {
        out.push((limb << rem) | carry);
        carry = limb >> (64 - rem);
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

/// `a >> bits`; callers guarantee the shifted-out bits are zero.
#[allow(clippy::indexing_slicing)]
fn mag_shr(a: &[u64], bits: u64) -> Vec<u64> {
    let limbs = (bits / 64) as usize;
    let rem = bits % 64;
    let kept = &a[limbs.min(a.len())..];
    if rem == 0 {
        return kept.to_vec();
    }
    let mut out = Vec::with_capacity(kept.len());
    for i in 0..kept.len() {
        let hi = kept.get(i + 1).copied().unwrap_or(0);
        out.push((kept[i] >> rem) | (hi << (64 - rem)));
    }
    while out.last() == Some(&0) {
        out.pop();
    }
    out
}

#[cfg(test)]
// tests exercise float decode on purpose
#[allow(clippy::float_arithmetic, clippy::float_cmp)]
mod tests {
    use super::*;

    fn r(v: f64) -> BigRat {
        BigRat::from_f64_exact(v).unwrap()
    }

    #[test]
    fn f64_decode_is_exact() {
        assert!(r(0.0).is_zero());
        assert!(r(-0.0).is_zero());
        assert_eq!(r(1.0), BigRat::one());
        assert_eq!(r(-2.0), BigRat::from_i64(-2));
        assert_eq!(r(0.5), BigRat::two_pow(-1));
        // 0.1 is NOT 1/10 in binary; the decode must capture the real value
        let tenth = r(0.1);
        let ten = BigRat::from_i64(10);
        assert_ne!(tenth.mul(&ten), BigRat::one());
        // but the decode round-trips through the approximation
        assert_eq!(tenth.approx_f64(), 0.1);
        assert!(BigRat::from_f64_exact(f64::NAN).is_none());
        assert!(BigRat::from_f64_exact(f64::INFINITY).is_none());
        assert!(BigRat::from_f64_exact(f64::NEG_INFINITY).is_none());
    }

    #[test]
    fn subnormals_and_extremes_decode() {
        let tiny = r(f64::MIN_POSITIVE / 4.0); // subnormal
        assert!(tiny.is_positive());
        assert_eq!(tiny.approx_f64(), f64::MIN_POSITIVE / 4.0);
        let huge = r(f64::MAX);
        assert_eq!(huge.approx_f64(), f64::MAX);
        // product of extremes stays exact (overflows f64, not BigRat)
        let sq = huge.mul(&huge);
        assert!(sq.is_positive());
        assert!(sq.mul(&tiny).is_positive());
    }

    #[test]
    fn point_one_plus_point_two_is_not_point_three() {
        // the classic: the exact sum of the f64s 0.1 and 0.2 is the
        // unrounded 10808639105689191·2⁻⁵⁵, strictly between 0.3 and the
        // float-rounded 0.30000000000000004 — exact arithmetic keeps what
        // f64 addition throws away
        let sum = r(0.1).add(&r(0.2));
        assert_ne!(sum, r(0.3));
        assert_eq!(sum.cmp_exact(&r(0.3)), Ordering::Greater);
        assert_ne!(sum, r(0.30000000000000004));
        assert_eq!(sum.cmp_exact(&r(0.30000000000000004)), Ordering::Less);
        // and the gap is exactly one unit in the 55th binary place
        assert_eq!(r(0.30000000000000004).sub(&sum), BigRat::two_pow(-55));
    }

    #[test]
    fn ring_identities_hold() {
        let a = r(3.75);
        let b = r(-1.2109375);
        let c = r(1e-9);
        assert_eq!(a.add(&b), b.add(&a));
        assert_eq!(a.mul(&b), b.mul(&a));
        assert_eq!(a.sub(&a), BigRat::zero());
        assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
        assert_eq!(a.negate().negate(), a);
        assert_eq!(a.add(&b).approx_f64(), 3.75 + -1.2109375);
    }

    #[test]
    fn ordering_and_tolerance() {
        assert_eq!(r(1.5).cmp_exact(&r(1.5)), Ordering::Equal);
        assert_eq!(r(-3.0).cmp_exact(&r(2.0)), Ordering::Less);
        assert_eq!(r(1e300).cmp_exact(&r(1e-300)), Ordering::Greater);
        let tol = BigRat::two_pow(-20);
        assert!(r(0.0).within(&tol));
        assert!(r(1e-7).within(&tol));
        assert!(!r(1e-5).within(&tol));
        assert!(r(-1e-7).within(&tol));
        assert_eq!(r(2.0).max(&r(3.0)), r(3.0));
    }

    #[test]
    fn long_alignment_chains_stay_exact() {
        // 2^-1074 + 2^1000 - 2^1000 == 2^-1074 requires ~2100-bit alignment
        let tiny = BigRat::two_pow(-1074);
        let big = BigRat::two_pow(1000);
        let back = tiny.add(&big).sub(&big);
        assert_eq!(back, tiny);
    }
}
