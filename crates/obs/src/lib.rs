//! `clk-obs`: zero-dependency structured tracing, metrics, and a
//! flight recorder for the clockvar global-local flow.
//!
//! The crate provides one handle type, [`Obs`], designed so a disabled
//! pipeline (the default) costs a single branch per instrumentation
//! point:
//!
//! - **Spans** ([`SpanGuard`]) — hierarchical scoped timers emitting
//!   `span_start`/`span_end` records and a `span.{name}.ms` histogram.
//! - **Metrics** ([`Registry`]) — thread-safe counters, gauges, and
//!   log-linear histograms with p50/p95/p99 quantiles.
//! - **Sinks** ([`TextSink`], [`JsonlSink`]) — human-readable text at a
//!   configurable verbosity, and a JSONL event stream for machines.
//! - **Flight recorder** ([`FlightRecorder`]) — a bounded ring of the
//!   most recent events, dumped when the fault runtime absorbs a fault
//!   so post-mortems can see what led up to it.
//!
//! ```
//! use clk_obs::{Obs, ObsConfig, Level, SharedBuf};
//!
//! let obs = Obs::new(ObsConfig { verbosity: Level::Debug, ..ObsConfig::default() });
//! let buf = SharedBuf::new();
//! obs.add_jsonl_buffer(&buf);
//! {
//!     let mut span = obs.span("flow");
//!     span.record("phases", 4u64);
//!     obs.event(Level::Info, "phase.init", vec![clk_obs::kv("sinks", 1u64)]);
//! }
//! obs.flush();
//! assert!(buf.contents().lines().count() >= 3); // start, event, end
//! ```

// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic)]

mod event;
mod recorder;
mod sink;
mod span;

pub mod cancel;
pub mod chrome;
pub mod dict;
pub mod json;
pub mod ledger;
pub mod metrics;
pub mod profile;

pub use cancel::{CancelToken, Deadline, SIMPLEX_POLL_STRIDE};
pub use dict::{MetricDef, MetricKind, Unit};
pub use event::{EventKind, EventRecord, Level};
pub use json::Value;
pub use ledger::{AppendOutcome, Ledger, LedgerError, LedgerRecord, MoveRec};
pub use metrics::{
    Counter, Gauge, HistSnapshot, Histogram, MetricValue, MetricsSnapshot, Registry,
};
pub use profile::{AttrNode, ProfGuard, Profiler};
pub use recorder::{FlightDump, FlightRecorder, DEFAULT_RECORDER_CAPACITY};
pub use sink::{JsonlSink, SharedBuf, Sink, TextSink};
pub use span::SpanGuard;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Convenience constructor for one event/span field.
pub fn kv(key: &str, value: impl Into<Value>) -> (String, Value) {
    (key.to_string(), value.into())
}

/// The sanctioned wall-clock read.
///
/// Every timing read outside this crate goes through here (enforced by
/// the clk-analyze A003 pass), so there is exactly one place to audit
/// when asking "can the wall clock influence an algorithmic decision?" —
/// and one seam to instrument if runs ever need a virtual clock. The
/// returned [`Instant`] is ordinary; only the *read* is funneled.
#[must_use]
pub fn wall_now() -> Instant {
    Instant::now()
}

/// Configuration for an enabled pipeline.
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Events above this level are dropped before reaching any sink.
    pub verbosity: Level,
    /// Flight-recorder ring depth.
    pub recorder_capacity: usize,
    /// Enable the attribution profiler ([`Profiler`]); off by default
    /// so the hot-loop micro-timers stay a single branch.
    pub profile: bool,
    /// Enable the decision ledger ([`Ledger`]); off by default so
    /// every decision site stays a single branch.
    pub ledger: bool,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self {
            verbosity: Level::Info,
            recorder_capacity: DEFAULT_RECORDER_CAPACITY,
            profile: false,
            ledger: false,
        }
    }
}

struct ObsInner {
    verbosity: Level,
    sinks: Mutex<Vec<Box<dyn Sink>>>,
    metrics: Registry,
    recorder: FlightRecorder,
    profiler: Profiler,
    ledger: Ledger,
    seq: AtomicU64,
    epoch: Instant,
}

impl std::fmt::Debug for ObsInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsInner")
            .field("verbosity", &self.verbosity)
            .field("metrics", &self.metrics)
            .finish_non_exhaustive()
    }
}

/// Handle to an observability pipeline.
///
/// Cheap to clone and share across threads. The default handle is
/// *disabled*: every instrumentation method short-circuits on one
/// `Option` check, which keeps overhead well under the 2% budget on
/// the hot kernels.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

impl Obs {
    /// A disabled pipeline (same as `Obs::default()`).
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled pipeline with no sinks attached yet.
    ///
    /// Metrics and the flight recorder are live immediately; attach
    /// sinks with [`add_sink`](Self::add_sink) and friends to stream
    /// events out.
    pub fn new(config: ObsConfig) -> Self {
        Self {
            inner: Some(Arc::new(ObsInner {
                verbosity: config.verbosity,
                sinks: Mutex::new(Vec::new()),
                metrics: Registry::default(),
                recorder: FlightRecorder::new(config.recorder_capacity),
                profiler: if config.profile {
                    Profiler::enabled()
                } else {
                    Profiler::disabled()
                },
                ledger: if config.ledger {
                    Ledger::enabled()
                } else {
                    Ledger::disabled()
                },
                seq: AtomicU64::new(0),
                epoch: Instant::now(),
            })),
        }
    }

    /// Builds a pipeline from the environment.
    ///
    /// `CLOCKVAR_OBS=<level>` enables a stderr text sink at that level;
    /// `CLOCKVAR_OBS_JSONL=<path>` adds a JSONL file sink;
    /// `CLOCKVAR_PROFILE=1` turns on the attribution profiler;
    /// `CLOCKVAR_LEDGER=1` turns on the decision ledger. With none of
    /// the variables set the pipeline is disabled.
    pub fn from_env() -> Self {
        let text_level = std::env::var("CLOCKVAR_OBS")
            .ok()
            .and_then(|s| Level::parse(&s));
        let jsonl_path = std::env::var("CLOCKVAR_OBS_JSONL").ok();
        let profile = std::env::var("CLOCKVAR_PROFILE").is_ok_and(|v| v == "1");
        let ledger = std::env::var("CLOCKVAR_LEDGER").is_ok_and(|v| v == "1");
        if text_level.is_none() && jsonl_path.is_none() && !profile && !ledger {
            return Self::disabled();
        }
        let verbosity = text_level.unwrap_or(Level::Trace);
        let obs = Self::new(ObsConfig {
            // the JSONL sink wants everything the text level allows or more
            verbosity: verbosity.max(if jsonl_path.is_some() {
                Level::Debug
            } else {
                verbosity
            }),
            profile,
            ledger,
            ..ObsConfig::default()
        });
        if let Some(level) = text_level {
            obs.add_sink(Box::new(TextSink::stderr(level)));
        }
        if let Some(path) = jsonl_path {
            if let Ok(sink) = JsonlSink::file(std::path::Path::new(&path)) {
                obs.add_sink(Box::new(sink));
            }
        }
        obs
    }

    /// Whether the pipeline is enabled at all.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether records at `level` would be emitted. Use this to guard
    /// expensive field construction at call sites.
    #[inline]
    pub fn at(&self, level: Level) -> bool {
        match &self.inner {
            Some(inner) => level <= inner.verbosity,
            None => false,
        }
    }

    /// Attaches a sink.
    pub fn add_sink(&self, sink: Box<dyn Sink>) {
        if let Some(inner) = &self.inner {
            inner
                .sinks
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(sink);
        }
    }

    /// Attaches a JSONL sink writing into `buf`.
    pub fn add_jsonl_buffer(&self, buf: &SharedBuf) {
        self.add_sink(Box::new(JsonlSink::new(Box::new(buf.clone()))));
    }

    /// Flushes every sink (best-effort).
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            for sink in inner
                .sinks
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .iter_mut()
            {
                sink.flush();
            }
        }
    }

    /// Milliseconds since the pipeline was created (the flow epoch).
    pub fn elapsed_ms(&self) -> f64 {
        match &self.inner {
            Some(inner) => inner.epoch.elapsed().as_secs_f64() * 1e3,
            None => 0.0,
        }
    }

    pub(crate) fn next_seq(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.seq.fetch_add(1, Ordering::Relaxed),
            None => 0,
        }
    }

    pub(crate) fn emit_record(&self, rec: EventRecord) {
        let Some(inner) = &self.inner else { return };
        inner.recorder.record(&rec);
        for sink in inner
            .sinks
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter_mut()
        {
            sink.emit(&rec);
        }
    }

    /// Opens an `Info`-level span.
    #[inline]
    pub fn span(&self, name: &str) -> SpanGuard {
        self.span_at(Level::Info, name, Vec::new())
    }

    /// Opens a span at `level` with start fields.
    pub fn span_at(&self, level: Level, name: &str, fields: Vec<(String, Value)>) -> SpanGuard {
        if self.at(level) {
            SpanGuard::open(self, name, level, fields)
        } else {
            SpanGuard::noop()
        }
    }

    /// Emits a point event.
    pub fn event(&self, level: Level, name: &str, fields: Vec<(String, Value)>) {
        if !self.at(level) {
            return;
        }
        let seq = self.next_seq();
        self.emit_record(EventRecord {
            kind: EventKind::Event,
            seq,
            ts_ms: self.elapsed_ms(),
            span: span::current_span(),
            parent: None,
            level,
            name: name.to_string(),
            elapsed_ms: None,
            fields,
        });
    }

    /// Emits an absorbed-fault event and dumps the flight recorder.
    ///
    /// `fault_seq` is the fault log's own sequence number; it is echoed
    /// in the event fields and in the dump so chaos runs can join the
    /// three records. Fault events are `Error` level and therefore pass
    /// any enabled verbosity.
    pub fn fault(&self, name: &str, fault_seq: u64, mut fields: Vec<(String, Value)>) {
        let Some(inner) = &self.inner else { return };
        fields.insert(0, kv("fault_seq", fault_seq));
        let seq = self.next_seq();
        self.emit_record(EventRecord {
            kind: EventKind::Fault,
            seq,
            ts_ms: self.elapsed_ms(),
            span: span::current_span(),
            parent: None,
            level: Level::Error,
            name: name.to_string(),
            elapsed_ms: None,
            fields,
        });
        let dump = inner.recorder.dump(&format!("fault:{name}"), fault_seq);
        let dump_seq = self.next_seq();
        self.emit_record(EventRecord {
            kind: EventKind::FlightDump,
            seq: dump_seq,
            ts_ms: self.elapsed_ms(),
            span: span::current_span(),
            parent: None,
            level: Level::Error,
            name: "flight_dump".to_string(),
            elapsed_ms: None,
            fields: match dump.to_json() {
                Value::Obj(pairs) => pairs,
                _ => Vec::new(),
            },
        });
    }

    /// The counter `name`, or `None` when disabled.
    #[inline]
    pub fn counter(&self, name: &str) -> Option<Arc<Counter>> {
        self.inner.as_ref().map(|i| i.metrics.counter(name))
    }

    /// The gauge `name`, or `None` when disabled.
    #[inline]
    pub fn gauge(&self, name: &str) -> Option<Arc<Gauge>> {
        self.inner.as_ref().map(|i| i.metrics.gauge(name))
    }

    /// The histogram `name`, or `None` when disabled.
    #[inline]
    pub fn histogram(&self, name: &str) -> Option<Arc<Histogram>> {
        self.inner.as_ref().map(|i| i.metrics.histogram(name))
    }

    /// Adds `n` to counter `name` (no-op when disabled).
    #[inline]
    pub fn count(&self, name: &str, n: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.counter(name).add(n);
        }
    }

    /// Records `v` into histogram `name` (no-op when disabled).
    #[inline]
    pub fn observe(&self, name: &str, v: f64) {
        if let Some(inner) = &self.inner {
            inner.metrics.histogram(name).observe(v);
        }
    }

    /// Sets gauge `name` to `v` (no-op when disabled).
    #[inline]
    pub fn gauge_set(&self, name: &str, v: i64) {
        if let Some(inner) = &self.inner {
            inner.metrics.gauge(name).set(v);
        }
    }

    /// A snapshot of every metric, or `None` when disabled.
    pub fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        self.inner.as_ref().map(|i| i.metrics.snapshot())
    }

    /// Emits a `metrics` record carrying the full snapshot.
    pub fn emit_metrics(&self) {
        let Some(snap) = self.metrics_snapshot() else {
            return;
        };
        let fields = match metrics::snapshot_to_json(&snap) {
            Value::Obj(pairs) => pairs,
            _ => Vec::new(),
        };
        let seq = self.next_seq();
        self.emit_record(EventRecord {
            kind: EventKind::Metrics,
            seq,
            ts_ms: self.elapsed_ms(),
            span: None,
            parent: None,
            level: Level::Info,
            name: "metrics".to_string(),
            elapsed_ms: None,
            fields,
        });
    }

    /// Opens an attribution-profiler scope (no-op unless the pipeline
    /// was built with [`ObsConfig::profile`]). Far cheaper than a span:
    /// no event records, just in-memory aggregation — suitable for
    /// per-pivot hot loops.
    #[inline]
    pub fn prof_scope(&self, name: &str) -> ProfGuard {
        match &self.inner {
            Some(inner) => inner.profiler.scope(name),
            None => ProfGuard::noop(),
        }
    }

    /// Whether the attribution profiler is recording.
    #[inline]
    pub fn profiling(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.profiler.is_enabled())
    }

    /// A clone of the pipeline's profiler handle (disabled when the
    /// pipeline is disabled or was built without profiling).
    pub fn profiler(&self) -> Profiler {
        self.inner
            .as_ref()
            .map(|i| i.profiler.clone())
            .unwrap_or_default()
    }

    /// Whether the decision ledger is recording. Decision sites guard
    /// record construction (and any extra checkpoint evaluation)
    /// behind this single branch.
    #[inline]
    pub fn ledgering(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.ledger.is_enabled())
    }

    /// A clone of the pipeline's ledger handle (disabled when the
    /// pipeline is disabled or was built without the ledger).
    pub fn ledger(&self) -> Ledger {
        self.inner
            .as_ref()
            .map(|i| i.ledger.clone())
            .unwrap_or_default()
    }

    /// Appends a decision record to the ledger, tallying the
    /// `ledger.records` / `ledger.dropped_nonfinite` counters.
    pub fn ledger_append(&self, rec: LedgerRecord) {
        let Some(inner) = &self.inner else { return };
        match inner.ledger.append(rec) {
            AppendOutcome::Recorded => inner.metrics.counter("ledger.records").add(1),
            AppendOutcome::DroppedNonFinite => {
                inner.metrics.counter("ledger.dropped_nonfinite").add(1);
            }
            AppendOutcome::Disabled => {}
        }
    }

    /// Every flight-recorder dump captured so far.
    pub fn flight_dumps(&self) -> Vec<FlightDump> {
        match &self.inner {
            Some(inner) => inner.recorder.dumps(),
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn debug_obs() -> (Obs, SharedBuf) {
        let obs = Obs::new(ObsConfig {
            verbosity: Level::Trace,
            ..ObsConfig::default()
        });
        let buf = SharedBuf::new();
        obs.add_jsonl_buffer(&buf);
        (obs, buf)
    }

    #[test]
    fn disabled_pipeline_is_inert() {
        let obs = Obs::default();
        assert!(!obs.enabled());
        assert!(!obs.at(Level::Error));
        let mut span = obs.span("nothing");
        span.record("k", 1u64);
        assert!(!span.is_active());
        obs.count("c", 1);
        assert!(obs.metrics_snapshot().is_none());
        obs.fault("x", 0, vec![]);
        assert!(obs.flight_dumps().is_empty());
    }

    #[test]
    fn spans_nest_and_emit_paired_records() {
        let (obs, buf) = debug_obs();
        {
            let _outer = obs.span("flow");
            let mut inner = obs.span("phase.global");
            inner.record("rounds", 3u64);
        }
        obs.flush();
        let lines: Vec<Value> = buf
            .contents()
            .lines()
            .map(|l| json::parse(l).unwrap())
            .collect();
        assert_eq!(lines.len(), 4);
        let inner_start = &lines[1];
        assert_eq!(
            inner_start.get("t").and_then(Value::as_str),
            Some("span_start")
        );
        assert_eq!(
            inner_start.get("parent").and_then(Value::as_u64),
            lines[0].get("span").and_then(Value::as_u64)
        );
        let inner_end = &lines[2];
        assert_eq!(inner_end.get("t").and_then(Value::as_str), Some("span_end"));
        assert!(inner_end
            .get("elapsed_ms")
            .and_then(Value::as_f64)
            .is_some());
        assert_eq!(
            inner_end
                .get("fields")
                .and_then(|f| f.get("rounds"))
                .and_then(Value::as_u64),
            Some(3)
        );
    }

    #[test]
    fn span_durations_feed_histograms() {
        let (obs, _buf) = debug_obs();
        drop(obs.span("phase.init"));
        let snap = obs.metrics_snapshot().unwrap();
        match snap.get("span.phase.init.ms") {
            Some(MetricValue::Histogram(h)) => assert_eq!(h.count, 1),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn fault_emits_event_and_flight_dump() {
        let (obs, buf) = debug_obs();
        obs.event(Level::Info, "before", vec![]);
        obs.fault("lp_infeasible", 42, vec![kv("phase", "global")]);
        obs.flush();
        let dumps = obs.flight_dumps();
        assert_eq!(dumps.len(), 1);
        assert_eq!(dumps[0].fault_seq, 42);
        assert!(!dumps[0].events.is_empty());
        let text = buf.contents();
        let fault_line = text
            .lines()
            .find(|l| l.contains("\"fault\""))
            .expect("fault event present");
        let v = json::parse(fault_line).unwrap();
        assert_eq!(
            v.get("fields")
                .and_then(|f| f.get("fault_seq"))
                .and_then(Value::as_u64),
            Some(42)
        );
    }

    #[test]
    fn verbosity_filters_spans_and_events() {
        let obs = Obs::new(ObsConfig {
            verbosity: Level::Info,
            ..ObsConfig::default()
        });
        let buf = SharedBuf::new();
        obs.add_jsonl_buffer(&buf);
        obs.event(Level::Debug, "hidden", vec![]);
        drop(obs.span_at(Level::Trace, "hidden_span", vec![]));
        obs.event(Level::Info, "shown", vec![]);
        obs.flush();
        let text = buf.contents();
        assert!(!text.contains("hidden"));
        assert!(text.contains("shown"));
    }
}
