//! The paper's literal LP formulation (§4.1): minimize `Σ|Δ|` subject to
//! `Σ V ≤ U`, sweeping the bound `U` — the Pareto curve between ECO effort
//! and achievable skew-variation sum that the scalarized flow walks
//! implicitly.

use clk_bench::ExpArgs;
use clk_cts::{Testcase, TestcaseKind};
use clk_skewopt::{u_sweep, GlobalConfig, StageLuts};

fn main() {
    let args = ExpArgs::parse();
    let n = args.sinks.unwrap_or(if args.quick { 40 } else { 96 });
    let tc = Testcase::generate(TestcaseKind::Cls1v1, n, args.seed);
    let luts = StageLuts::characterize(&tc.lib);
    let cfg = GlobalConfig {
        max_pairs: if args.quick { 40 } else { 100 },
        ..GlobalConfig::default()
    };
    println!(
        "U-sweep on {} ({n} sinks): min sum|delta| s.t. sum V <= U",
        tc.kind.name()
    );
    println!(
        "{:>12} {:>16} {:>10}",
        "U (ps)", "sum|delta| (ps)", "feasible"
    );
    for p in u_sweep(&tc.tree, &tc.lib, &luts, &cfg, 8) {
        println!(
            "{:>12.1} {:>16.1} {:>10}",
            p.u,
            p.total_delta,
            if p.feasible { "yes" } else { "no" }
        );
    }
    println!("\npaper: the bound is swept to find the achievable solution with the");
    println!("minimum sum of skew variations; smaller U demands more ECO delay change");
}
