//! `G0xx` — geometry audits: routes are rectilinear pin-to-pin
//! polylines, and instances sit on legal placement sites off blockages.

use clk_netlist::NodeKind;

use crate::context::DesignCtx;
use crate::diag::{Diagnostic, Locus};
use crate::runner::LintPass;

/// The route-geometry audit pass: `G001` non-rectilinear polyline,
/// `G002` route endpoints not at the parent/child pin locations, `G004`
/// missing route on a non-root node.
pub struct RouteGeometryPass;

impl LintPass for RouteGeometryPass {
    fn name(&self) -> &'static str {
        "route-geometry"
    }

    fn description(&self) -> &'static str {
        "every non-root node carries a rectilinear route from its parent's pin to its own"
    }

    fn run(&self, ctx: &DesignCtx, out: &mut Vec<Diagnostic>) {
        let tree = ctx.tree;
        for id in tree.node_ids() {
            let Some(p) = tree.parent(id) else { continue };
            if !tree.is_alive(p) {
                continue; // S004's job
            }
            let Some(route) = tree.node(id).route.as_ref() else {
                out.push(Diagnostic::error(
                    "G004",
                    Locus::Node(id),
                    format!("non-root node {id} has no route"),
                ));
                continue;
            };
            if !route.is_valid() {
                out.push(Diagnostic::error(
                    "G001",
                    Locus::Node(id),
                    format!("route of {id} is not a rectilinear polyline"),
                ));
            }
            if route.start() != tree.loc(p) || route.end() != tree.loc(id) {
                out.push(Diagnostic::error(
                    "G002",
                    Locus::Node(id),
                    format!(
                        "route of {id} runs ({},{}) -> ({},{}) but pins are at ({},{}) -> ({},{})",
                        route.start().x,
                        route.start().y,
                        route.end().x,
                        route.end().y,
                        tree.loc(p).x,
                        tree.loc(p).y,
                        tree.loc(id).x,
                        tree.loc(id).y
                    ),
                ));
            }
        }
    }
}

/// The placement-legality audit pass (skipped when the context carries
/// no floorplan): `G003` an instance outside the die or on a blockage,
/// `G005` a buffer off the legal site grid.
///
/// Sinks are flip-flop pins placed by the (synthetic) netlist, not by
/// us, so only die/blockage containment is checked for them; buffers and
/// the source must additionally sit on legal sites.
pub struct PlacementPass;

impl LintPass for PlacementPass {
    fn name(&self) -> &'static str {
        "placement"
    }

    fn description(&self) -> &'static str {
        "instances sit inside the die, off blockages, and buffers on legal sites"
    }

    fn run(&self, ctx: &DesignCtx, out: &mut Vec<Diagnostic>) {
        let Some(fp) = ctx.floorplan else { return };
        for id in ctx.tree.node_ids() {
            let loc = ctx.tree.loc(id);
            if !fp.die.contains(loc) {
                out.push(Diagnostic::error(
                    "G003",
                    Locus::Node(id),
                    format!("instance at ({},{}) is outside the die", loc.x, loc.y),
                ));
                continue;
            }
            if fp.blockages.iter().any(|b| b.contains(loc)) {
                out.push(Diagnostic::error(
                    "G003",
                    Locus::Node(id),
                    format!("instance at ({},{}) sits on a blockage", loc.x, loc.y),
                ));
                continue;
            }
            let is_placeable = !matches!(ctx.tree.node(id).kind, NodeKind::Sink);
            if is_placeable && !fp.is_legal(loc) {
                out.push(Diagnostic::error(
                    "G005",
                    Locus::Node(id),
                    format!("buffer at ({},{}) is off the legal site grid", loc.x, loc.y),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clk_geom::{Point, Rect};
    use clk_liberty::{Library, StdCorners};
    use clk_netlist::{ClockTree, Floorplan};

    fn fixture() -> (Library, Floorplan, ClockTree) {
        let lib = Library::synthetic_28nm(StdCorners::c0_c1_c3());
        let fp = Floorplan::open(Rect::from_um(0.0, 0.0, 500.0, 500.0));
        let x4 = lib.cell_by_name("CLKINV_X4").expect("exists");
        let mut tree = ClockTree::new(Point::new(0, 0), x4);
        let b = tree.add_node(
            NodeKind::Buffer(x4),
            fp.legalize(Point::new(100_000, 100_000)),
            tree.root(),
        );
        tree.add_node(NodeKind::Sink, Point::new(200_123, 100_457), b);
        tree.add_node(NodeKind::Sink, Point::new(200_123, 151_457), b);
        (lib, fp, tree)
    }

    fn run(
        pass: &dyn LintPass,
        lib: &Library,
        fp: &Floorplan,
        tree: &ClockTree,
    ) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        pass.run(&DesignCtx::with_floorplan(tree, lib, fp), &mut out);
        out
    }

    #[test]
    fn clean_fixture_passes() {
        let (lib, fp, tree) = fixture();
        assert!(run(&RouteGeometryPass, &lib, &fp, &tree).is_empty());
        let placement = run(&PlacementPass, &lib, &fp, &tree);
        assert!(placement.is_empty(), "{placement:?}");
    }

    #[test]
    fn stale_route_is_g002() {
        let (lib, fp, mut tree) = fixture();
        let b = tree.children(tree.root())[0];
        tree.debug_set_loc_raw(b, Point::new(100_200, 100_800));
        let out = run(&RouteGeometryPass, &lib, &fp, &tree);
        assert!(out.iter().any(|d| d.code == "G002"), "{out:?}");
    }

    #[test]
    fn off_grid_buffer_is_g005() {
        let (lib, fp, mut tree) = fixture();
        let b = tree.children(tree.root())[0];
        // keep routes consistent by moving the node *and* its pins
        let off = Point::new(100_001, 100_003);
        tree.move_node(b, off).expect("move");
        let out = run(&PlacementPass, &lib, &fp, &tree);
        assert!(out.iter().any(|d| d.code == "G005"), "{out:?}");
    }

    #[test]
    fn blockage_hit_is_g003() {
        let (lib, _fp, tree) = fixture();
        let fp = Floorplan::utilized(
            Rect::from_um(0.0, 0.0, 500.0, 500.0),
            vec![Rect::from_um(90.0, 90.0, 110.0, 110.0)],
        );
        let out = run(&PlacementPass, &lib, &fp, &tree);
        assert!(out.iter().any(|d| d.code == "G003"), "{out:?}");
    }

    #[test]
    fn no_floorplan_no_findings() {
        let (lib, _fp, mut tree) = fixture();
        let b = tree.children(tree.root())[0];
        tree.debug_set_loc_raw(b, Point::new(-5, -5));
        let mut out = Vec::new();
        PlacementPass.run(&DesignCtx::new(&tree, &lib), &mut out);
        assert!(out.is_empty());
    }
}
