//! Property tests of the routing primitives.

// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic)]

use clk_geom::Point;
use clk_route::{rsmt, single_trunk, RoutePath, WireTree};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (0i64..300_000, 0i64..300_000).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    /// `locate` is monotone along the path and consistent with length.
    #[test]
    fn locate_is_monotone(a in arb_point(), b in arb_point(), extra in 0.0f64..150.0) {
        let p = RoutePath::with_detour(a, b, extra);
        let total = p.length_dbu();
        let mut walked = 0;
        let mut prev = p.start();
        for k in 0..=10 {
            let d = total * k / 10;
            let q = p.locate(d);
            // distance along the path accumulates exactly
            walked += prev.manhattan(q);
            prop_assert!(walked <= total + 1);
            prev = q;
        }
        prop_assert_eq!(prev, p.end());
    }

    /// Uniform positions split the path into equal-length intervals.
    #[test]
    fn uniform_positions_partition(a in arb_point(), b in arb_point(), n in 1usize..8) {
        prop_assume!(a != b);
        let p = RoutePath::l_shape(a, b);
        let pos = p.uniform_positions(n);
        prop_assert_eq!(pos.len(), n);
        let total = p.length_dbu();
        // consecutive sub-path pieces have near-equal length
        let mut ds = vec![0i64];
        ds.extend((1..=n).map(|k| total * k as i64 / (n as i64 + 1)));
        ds.push(total);
        for w in ds.windows(2) {
            let piece = p.sub_path(w[0], w[1]);
            prop_assert!(piece.is_valid());
            prop_assert_eq!(piece.length_dbu(), w[1] - w[0]);
        }
    }

    /// Joining a split reproduces the original length.
    #[test]
    fn split_join_roundtrip(a in arb_point(), b in arb_point(), extra in 0.0f64..120.0, cut in 0.0f64..1.0) {
        let p = RoutePath::with_detour(a, b, extra);
        let total = p.length_dbu();
        let d = (total as f64 * cut) as i64;
        let left = p.sub_path(0, d);
        let right = p.sub_path(d, total);
        let joined = left.join(&right);
        prop_assert_eq!(joined.length_dbu(), total);
        prop_assert_eq!(joined.start(), p.start());
        prop_assert_eq!(joined.end(), p.end());
        prop_assert!(joined.is_valid());
    }

    /// Both Steiner topologies reach every pin and produce trees whose
    /// node count is bounded (no runaway Steiner-point insertion).
    #[test]
    fn steiner_node_counts_bounded(driver in arb_point(), pins in prop::collection::vec(arb_point(), 1..10)) {
        for t in [rsmt(driver, &pins), single_trunk(driver, &pins)] {
            for &p in &pins {
                prop_assert!(t.index_of(p).is_some());
            }
            // terminals + at most ~2 Steiner/trunk points per pin
            prop_assert!(t.node_count() <= 3 * (pins.len() + 1) + 2);
        }
    }

    /// WireTree edge lengths always sum to the wirelength.
    #[test]
    fn wiretree_lengths_consistent(driver in arb_point(), pins in prop::collection::vec(arb_point(), 1..10)) {
        let t = rsmt(driver, &pins);
        let sum: f64 = (0..t.node_count()).map(|i| t.edge_len_um(i)).sum();
        prop_assert!((sum - t.wirelength_um()).abs() < 1e-9);
        // children lists are consistent with parent pointers
        let ch = t.children();
        for (i, kids) in ch.iter().enumerate() {
            for &k in kids {
                prop_assert_eq!(t.parent(k), Some(i));
            }
        }
        let _ = WireTree::ROOT;
    }
}
