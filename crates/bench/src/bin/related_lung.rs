//! Related-work comparison (paper §2): LP-based worst-skew optimization
//! in the style of Lung et al. \[VLSI-DAT'10\] vs the paper's
//! sum-of-variation framework, on the same testcase and ECO substrate.
//!
//! The paper argues that minimizing worst skew (or per-corner skew) does
//! not address *cross-corner disagreement*; this experiment makes the
//! two objectives race on both metrics.

// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic)]

use clk_bench::{ExpArgs, Stopwatch};
use clk_cts::{Testcase, TestcaseKind};
use clk_skewopt::{global_optimize, worst_skew_optimize, GlobalConfig, StageLuts};

fn main() {
    let args = ExpArgs::parse();
    let n = args.sinks.unwrap_or(if args.quick { 40 } else { 96 });
    let sw = Stopwatch::start("related_lung");
    let tc = Testcase::generate(TestcaseKind::Cls1v1, n, args.seed);
    let luts = StageLuts::characterize(&tc.lib);

    let gcfg = GlobalConfig {
        max_pairs: if args.quick { 40 } else { 100 },
        rounds: 2,
        ..GlobalConfig::default()
    };
    let (_, ours) = global_optimize(&tc.tree, &tc.lib, &tc.floorplan, &luts, &gcfg);
    let (_, lung) = worst_skew_optimize(
        &tc.tree,
        &tc.lib,
        &tc.floorplan,
        &luts,
        gcfg.max_pairs,
        0.05,
    );

    println!("objective comparison on {} ({n} sinks):", tc.kind.name());
    println!(
        "{:<28} {:>18} {:>18}",
        "flow", "sum variation (ps)", "worst skew (ps)"
    );
    println!(
        "{:<28} {:>18.1} {:>18.1}",
        "original", ours.variation_before, lung.worst_before
    );
    println!(
        "{:<28} {:>18.1} {:>18}",
        "this paper (variation LP)", ours.variation_after, "(guarded)"
    );
    println!(
        "{:<28} {:>18.1} {:>18.1}",
        "Lung-style (worst-skew LP)", lung.variation_after, lung.worst_after
    );
    println!(
        "\nvariation reduction: paper objective {:.1}%, worst-skew objective {:.1}%",
        100.0 * (1.0 - ours.variation_after / ours.variation_before),
        100.0 * (1.0 - lung.variation_after / lung.variation_before),
    );
    println!("(the paper's claim: optimizing worst skew leaves most cross-corner");
    println!(" variation on the table — the right column's objective barely moves");
    println!(" the left column's metric)");
    sw.report();
}
