//! Property tests of the clock-tree database: random CTS-like builds,
//! arc-extraction invariants, `.ctree` round trips.

// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic)]

use clk_geom::Point;
use clk_liberty::{CellId, Library, StdCorners};
use clk_netlist::{io, ArcSet, ClockTree, NodeId, NodeKind, SinkPair, TreeStats};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (0i64..200_000, 0i64..200_000).prop_map(|(x, y)| Point::new(x, y))
}

/// Builds a random tree: each new node attaches to a random live buffer.
fn build_tree(ops: &[(u8, usize, Point)]) -> ClockTree {
    let cell = CellId(2);
    let mut tree = ClockTree::new(Point::new(0, 0), cell);
    let b0 = tree.add_node(NodeKind::Buffer(cell), Point::new(1_000, 0), tree.root());
    let _ = tree.add_node(NodeKind::Sink, Point::new(2_000, 0), b0);
    for &(kind, pick, loc) in ops {
        let buffers: Vec<NodeId> = tree.buffers().collect();
        let parent = buffers[pick % buffers.len()];
        match kind % 3 {
            0 => {
                tree.add_node(NodeKind::Buffer(CellId(kind as usize % 5)), loc, parent);
            }
            1 => {
                tree.add_node(NodeKind::Sink, loc, parent);
            }
            _ => {
                // chain: buffer + sink below it
                let b = tree.add_node(NodeKind::Buffer(cell), loc, parent);
                tree.add_node(NodeKind::Sink, loc.offset(3_000, 1_000), b);
            }
        }
    }
    tree
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Arc extraction covers every edge exactly once: the arc lengths sum
    /// to the total wirelength, and every sink's path ends at the root.
    #[test]
    fn arcs_partition_the_tree(ops in prop::collection::vec((0u8..255, 0usize..32, arb_point()), 1..40)) {
        let tree = build_tree(&ops);
        tree.validate().expect("generated trees are valid");
        let arcs = ArcSet::extract(&tree);
        let arc_total: f64 = arcs.arcs().iter().map(|a| a.length_um(&tree)).sum();
        let lib = Library::synthetic_28nm(StdCorners::c0_c1_c3());
        let stats = TreeStats::compute(&tree, &lib);
        prop_assert!((arc_total - stats.wirelength_um).abs() < 1e-6,
            "arcs {arc_total} vs wire {}", stats.wirelength_um);
        // every interior node appears in exactly one arc
        let mut seen = std::collections::HashSet::new();
        for a in arcs.arcs() {
            for &n in &a.interior {
                prop_assert!(seen.insert(n), "node {n} in two arcs");
            }
        }
        for s in tree.sinks().collect::<Vec<_>>() {
            let path = arcs.path_arcs(&tree, s);
            prop_assert!(!path.is_empty());
            prop_assert_eq!(arcs.arc(path[0]).from, tree.root());
            prop_assert_eq!(arcs.arc(*path.last().unwrap()).to, s);
            // consecutive arcs chain junction to junction
            for w in path.windows(2) {
                prop_assert_eq!(arcs.arc(w[0]).to, arcs.arc(w[1]).from);
            }
        }
    }

    /// `.ctree` round-trips arbitrary generated trees.
    #[test]
    fn ctree_roundtrip(ops in prop::collection::vec((0u8..255, 0usize..32, arb_point()), 1..25)) {
        let lib = Library::synthetic_28nm(StdCorners::c0_c1_c3());
        let mut tree = build_tree(&ops);
        let sinks: Vec<NodeId> = tree.sinks().collect();
        if sinks.len() >= 2 {
            tree.set_sink_pairs(vec![SinkPair::new(sinks[0], sinks[1])]);
        }
        let text = io::write_ctree(&tree, &lib);
        let back = io::parse_ctree(&text, &lib).expect("own output parses");
        prop_assert_eq!(back.len(), tree.len());
        prop_assert_eq!(back.sinks().count(), tree.sinks().count());
        prop_assert_eq!(back.sink_pairs().len(), tree.sink_pairs().len());
        let wl = |t: &ClockTree| TreeStats::compute(t, &lib).wirelength_um;
        prop_assert!((wl(&tree) - wl(&back)).abs() < 1e-9);
    }

    /// Buffer removal strictly decreases the buffer count and never breaks
    /// validity, regardless of which buffer goes.
    #[test]
    fn removal_sequences_stay_valid(ops in prop::collection::vec((0u8..255, 0usize..32, arb_point()), 5..30),
                                    removals in prop::collection::vec(0usize..64, 1..10)) {
        let mut tree = build_tree(&ops);
        for &r in &removals {
            let buffers: Vec<NodeId> = tree.buffers().collect();
            if buffers.len() <= 1 {
                break;
            }
            let victim = buffers[r % buffers.len()];
            let before = tree.buffers().count();
            tree.remove_buffer(victim).expect("victim is a buffer");
            prop_assert_eq!(tree.buffers().count(), before - 1);
            prop_assert!(tree.validate().is_ok());
        }
    }
}
