//! Hierarchical spans with scoped wall-clock timers.
//!
//! Span nesting is tracked per thread: a span started on a worker
//! thread parents to whatever span is open on *that* thread, so
//! cross-thread work (e.g. the local-move batch workers) shows up as
//! independent roots unless the worker opens its own spans.

use std::cell::RefCell;
use std::time::Instant;

use crate::event::{EventKind, EventRecord, Level};
use crate::json::Value;
use crate::Obs;

// clk-analyze: allow(A004) spans nest per thread by design; the parent link is telemetry, never an algorithmic input
thread_local! {
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// The span currently open on this thread, if any.
pub(crate) fn current_span() -> Option<u64> {
    SPAN_STACK.with(|s| s.borrow().last().copied())
}

/// RAII guard for an open span.
///
/// Emits `span_start` on creation and `span_end` (with `elapsed_ms`
/// and any [`record`](Self::record)ed end-fields) on drop, and feeds
/// the duration into the `span.{name}.ms` histogram. A guard from a
/// disabled pipeline is a pure no-op.
#[must_use = "dropping the guard immediately closes the span"]
#[derive(Debug)]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

#[derive(Debug)]
struct ActiveSpan {
    obs: Obs,
    id: u64,
    parent: Option<u64>,
    name: String,
    level: Level,
    start: Instant,
    end_fields: Vec<(String, Value)>,
}

impl SpanGuard {
    /// A guard that does nothing (disabled pipeline or filtered level).
    pub(crate) fn noop() -> Self {
        Self { active: None }
    }

    pub(crate) fn open(obs: &Obs, name: &str, level: Level, fields: Vec<(String, Value)>) -> Self {
        let id = obs.next_seq();
        let parent = current_span();
        SPAN_STACK.with(|s| s.borrow_mut().push(id));
        obs.emit_record(EventRecord {
            kind: EventKind::SpanStart,
            seq: id,
            ts_ms: obs.elapsed_ms(),
            span: Some(id),
            parent,
            level,
            name: name.to_string(),
            elapsed_ms: None,
            fields,
        });
        Self {
            active: Some(ActiveSpan {
                obs: obs.clone(),
                id,
                parent,
                name: name.to_string(),
                level,
                start: Instant::now(),
                end_fields: Vec::new(),
            }),
        }
    }

    /// Attaches a key=value field to the eventual `span_end` record.
    pub fn record(&mut self, key: &str, value: impl Into<Value>) {
        if let Some(a) = &mut self.active {
            a.end_fields.push((key.to_string(), value.into()));
        }
    }

    /// Whether this guard belongs to an enabled pipeline.
    pub fn is_active(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else { return };
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // spans are scoped so drops are LIFO; tolerate misuse anyway
            if let Some(pos) = stack.iter().rposition(|&id| id == a.id) {
                stack.remove(pos);
            }
        });
        let elapsed_ms = a.start.elapsed().as_secs_f64() * 1e3;
        if let Some(h) = a.obs.histogram(&format!("span.{}.ms", a.name)) {
            h.observe(elapsed_ms);
        }
        a.obs.emit_record(EventRecord {
            kind: EventKind::SpanEnd,
            seq: a.obs.next_seq(),
            ts_ms: a.obs.elapsed_ms(),
            span: Some(a.id),
            parent: a.parent,
            level: a.level,
            name: a.name,
            elapsed_ms: Some(elapsed_ms),
            fields: a.end_fields,
        });
    }
}
