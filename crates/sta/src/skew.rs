//! Skew, normalization factors and the skew-variation metrics of the paper
//! (Table 1 and Eqs. (1)–(3)).

use clk_netlist::SinkPair;

use crate::timer::{CornerTiming, TimingError};

/// Signed skew of every pair at one corner:
/// `skew = arrival(a) − arrival(b)` with the pair's normalized orientation.
///
/// # Panics
///
/// Panics if a pair endpoint has no finite arrival; use
/// [`try_pair_skews`] to get a [`TimingError`] instead.
pub fn pair_skews(timing: &CornerTiming, pairs: &[SinkPair]) -> Vec<f64> {
    pairs
        .iter()
        .map(|p| timing.arrival_ps(p.a) - timing.arrival_ps(p.b))
        .collect()
}

/// Fallible variant of [`pair_skews`]: stops at the first pair endpoint
/// without a finite arrival.
///
/// # Errors
///
/// [`TimingError::NonFinite`] naming the offending endpoint.
pub fn try_pair_skews(timing: &CornerTiming, pairs: &[SinkPair]) -> Result<Vec<f64>, TimingError> {
    pairs
        .iter()
        .map(|p| Ok(timing.try_arrival_ps(p.a)? - timing.try_arrival_ps(p.b)?))
        .collect()
}

/// Per-corner normalization factors `α_k` relative to corner 0: the paper
/// defines `α_k` as the average skew ratio between `c_0` and `c_k` over all
/// sink pairs; we use the robust ratio-of-sums
/// `α_k = Σ|skew_0| / Σ|skew_k|`, which equals the average ratio under a
/// common scale and never divides by a single zero skew. `α_0 = 1`.
///
/// A corner with all-zero skews gets `α_k = 1`.
pub fn alpha_factors(per_corner_skews: &[Vec<f64>]) -> Vec<f64> {
    let base: f64 = per_corner_skews
        .first()
        .map_or(0.0, |s| s.iter().map(|v| v.abs()).sum());
    per_corner_skews
        .iter()
        .map(|sk| {
            let tot: f64 = sk.iter().map(|v| v.abs()).sum();
            if tot <= f64::EPSILON || base <= f64::EPSILON {
                1.0
            } else {
                base / tot
            }
        })
        .collect()
}

/// The sum/max of normalized skew variation over sink pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct VariationReport {
    /// `V_{i,i'}` per pair: worst normalized variation across corner pairs.
    pub per_pair: Vec<f64>,
    /// Weighted sum over pairs — the Table 5 "variation" metric, ps.
    pub sum: f64,
    /// Largest per-pair variation, ps.
    pub max: f64,
}

/// Computes `V_{i,i'} = max_{(k,k')} |α_k·skew_k − α_k'·skew_k'|` per pair
/// (Eq. (2)) and its weighted sum (the optimization objective).
///
/// `weights` defaults to 1.0 per pair when `None`.
///
/// # Panics
///
/// Panics if the skew vectors have inconsistent lengths or `alphas` does
/// not match the corner count.
pub fn variation_report(
    per_corner_skews: &[Vec<f64>],
    alphas: &[f64],
    weights: Option<&[f64]>,
) -> VariationReport {
    let k = per_corner_skews.len();
    assert_eq!(k, alphas.len(), "one alpha per corner");
    let n = per_corner_skews.first().map_or(0, std::vec::Vec::len);
    for sk in per_corner_skews {
        assert_eq!(sk.len(), n, "equal pair counts per corner");
    }
    let per_pair: Vec<f64> = (0..n)
        .map(|i| {
            let mut worst: f64 = 0.0;
            for a in 0..k {
                for b in (a + 1)..k {
                    let v = (alphas[a] * per_corner_skews[a][i]
                        - alphas[b] * per_corner_skews[b][i])
                        .abs();
                    worst = worst.max(v);
                }
            }
            worst
        })
        .collect();
    let sum = per_pair
        .iter()
        .enumerate()
        .map(|(i, v)| v * weights.map_or(1.0, |w| w[i]))
        .sum();
    let max = per_pair.iter().copied().fold(0.0, f64::max);
    VariationReport { per_pair, sum, max }
}

/// Local skew at a corner: the largest |skew| over the valid sink pairs —
/// the "skew" columns of Table 5.
pub fn local_skew_ps(skews: &[f64]) -> f64 {
    skews.iter().map(|s| s.abs()).fold(0.0, f64::max)
}

/// Per-pair skew ratios `skew_k / skew_base` for the Fig. 9 distributions,
/// skipping pairs whose base skew is below `min_base_ps` (ratio unstable).
pub fn skew_ratios(
    per_corner_skews: &[Vec<f64>],
    k: usize,
    base: usize,
    min_base_ps: f64,
) -> Vec<f64> {
    per_corner_skews[base]
        .iter()
        .zip(&per_corner_skews[k])
        .filter(|(b, _)| b.abs() >= min_base_ps)
        .map(|(b, v)| v / b)
        .collect()
}

#[cfg(test)]
// tests pin exact expected values on purpose
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn alpha_is_one_for_base_and_inverse_of_scale() {
        let skews = vec![vec![10.0, -20.0, 30.0], vec![20.0, -40.0, 60.0]];
        let a = alpha_factors(&skews);
        assert!((a[0] - 1.0).abs() < 1e-12);
        assert!((a[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn alpha_handles_degenerate_corners() {
        let skews = vec![vec![0.0, 0.0], vec![5.0, -5.0]];
        let a = alpha_factors(&skews);
        assert_eq!(a, vec![1.0, 1.0]);
        assert_eq!(alpha_factors(&[]), Vec::<f64>::new());
    }

    #[test]
    fn variation_zero_when_normalized_skews_agree() {
        // corner 1 is exactly 2x corner 0; alphas cancel the scale
        let skews = vec![vec![10.0, -20.0], vec![20.0, -40.0]];
        let a = alpha_factors(&skews);
        let r = variation_report(&skews, &a, None);
        assert!(r.sum < 1e-9, "sum {}", r.sum);
    }

    #[test]
    fn variation_detects_disagreement() {
        // same total magnitude (alphas = 1) but opposite signs on pair 0
        let skews = vec![vec![10.0, 10.0], vec![-10.0, 10.0]];
        let a = alpha_factors(&skews);
        let r = variation_report(&skews, &a, None);
        assert!((r.per_pair[0] - 20.0).abs() < 1e-9);
        assert!(r.per_pair[1] < 1e-9);
        assert!((r.sum - 20.0).abs() < 1e-9);
        assert!((r.max - 20.0).abs() < 1e-9);
    }

    #[test]
    fn variation_uses_worst_corner_pair() {
        // three corners; the worst disagreement is between corners 1 and 2
        let skews = vec![vec![0.0], vec![8.0], vec![-8.0]];
        let r = variation_report(&skews, &[1.0, 1.0, 1.0], None);
        assert!((r.per_pair[0] - 16.0).abs() < 1e-9);
    }

    #[test]
    fn weights_scale_the_sum() {
        let skews = vec![vec![10.0, 10.0], vec![-10.0, 10.0]];
        let r = variation_report(&skews, &[1.0, 1.0], Some(&[2.0, 1.0]));
        assert!((r.sum - 40.0).abs() < 1e-9);
    }

    #[test]
    fn local_skew_is_max_abs() {
        assert_eq!(local_skew_ps(&[3.0, -7.0, 5.0]), 7.0);
        assert_eq!(local_skew_ps(&[]), 0.0);
    }

    #[test]
    fn ratios_skip_tiny_bases() {
        let skews = vec![vec![10.0, 0.001, -5.0], vec![20.0, 50.0, -15.0]];
        let r = skew_ratios(&skews, 1, 0, 0.1);
        assert_eq!(r.len(), 2);
        assert!((r[0] - 2.0).abs() < 1e-12);
        assert!((r[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "one alpha per corner")]
    fn variation_checks_shapes() {
        let _ = variation_report(&[vec![1.0]], &[1.0, 1.0], None);
    }
}
