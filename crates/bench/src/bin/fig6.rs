//! Fig. 6: accuracy comparison between the learning-based model and the
//! four analytical models — the fraction of buffers whose *actual* best
//! move (per the golden timer) appears within the first k ranked
//! attempts. Paper: the learned model identifies the best move for ~40%
//! of buffers in one attempt vs ≤20% for analytical models.

// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic)]

use std::collections::BTreeMap;

use clk_bench::{ExpArgs, Stopwatch};
use clk_cts::{Testcase, TestcaseKind};
use clk_delay::WireModel;
use clk_netlist::NodeId;
use clk_skewopt::local::Ranker;
use clk_skewopt::predictor::Topo;
use clk_skewopt::{
    apply_move, enumerate_moves, predict_move_gain, DeltaLatencyModel, ModelKind, Move, MoveConfig,
    TrainConfig,
};
use clk_sta::{alpha_factors, pair_skews, variation_report, Timer};

fn main() {
    let args = ExpArgs::parse();
    let n = args.sinks.unwrap_or(if args.quick { 40 } else { 64 });
    let max_buffers = if args.quick { 24 } else { 56 };
    let sw = Stopwatch::start("fig6");
    let tc = Testcase::generate(TestcaseKind::Cls1v1, n, args.seed);
    let cfg = TrainConfig {
        n_cases: if args.quick { 10 } else { 150 },
        mlp: clk_ml::MlpConfig {
            hidden: vec![24, 12],
            epochs: 250,
            ..clk_ml::MlpConfig::default()
        },
        ..TrainConfig::default()
    };
    let model = DeltaLatencyModel::train(&tc.lib, ModelKind::Hsm, &cfg);

    let timer = Timer::golden();
    let timings = timer.analyze_all(&tc.tree, &tc.lib);
    let pairs = tc.tree.sink_pairs().to_vec();
    let skews: Vec<Vec<f64>> = timings.iter().map(|t| pair_skews(t, &pairs)).collect();
    let alphas = alpha_factors(&skews);
    let base_sum = variation_report(&skews, &alphas, None).sum;
    let mcfg = MoveConfig::default();

    // group candidate moves per buffer
    let mut per_buffer: BTreeMap<NodeId, Vec<Move>> = BTreeMap::new();
    for mv in enumerate_moves(&tc.tree, &tc.lib, &mcfg, None) {
        per_buffer.entry(mv.primary_node()).or_default().push(mv);
    }
    let mut buffers: Vec<NodeId> = per_buffer
        .keys()
        .copied()
        .filter(|b| per_buffer[b].len() >= 4)
        .collect();
    buffers.sort_unstable();
    buffers.truncate(max_buffers);

    // golden ground truth: actual gain of every candidate move
    let mut cases: Vec<(NodeId, Vec<f64>, f64)> = Vec::new(); // (buffer, gains, best gain)
    for &b in &buffers {
        let moves = &per_buffer[&b];
        let mut gains = vec![f64::NEG_INFINITY; moves.len()];
        for (i, mv) in moves.iter().enumerate() {
            let mut trial = tc.tree.clone();
            if apply_move(&mut trial, &tc.lib, &tc.floorplan, &mcfg, mv).is_err() {
                continue;
            }
            let sk: Vec<Vec<f64>> = timer
                .analyze_all(&trial, &tc.lib)
                .iter()
                .map(|t| pair_skews(t, &pairs))
                .collect();
            gains[i] = base_sum - variation_report(&sk, &alphas, None).sum;
        }
        let best = gains.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if best > 0.05 {
            cases.push((b, gains, best));
        }
    }
    println!(
        "{} buffers with a meaningful best move (avg {:.0} candidate moves each)",
        cases.len(),
        cases
            .iter()
            .map(|(b, _, _)| per_buffer[b].len() as f64)
            .sum::<f64>()
            / cases.len().max(1) as f64
    );

    let rankers: Vec<(&str, Ranker<'_>)> = vec![
        ("learned(HSM)", Ranker::Ml(&model)),
        (
            "FLUTE+Elmore",
            Ranker::Analytic(Topo::Flute, WireModel::Elmore),
        ),
        ("FLUTE+D2M", Ranker::Analytic(Topo::Flute, WireModel::D2m)),
        (
            "STST+Elmore",
            Ranker::Analytic(Topo::SingleTrunk, WireModel::Elmore),
        ),
        (
            "STST+D2M",
            Ranker::Analytic(Topo::SingleTrunk, WireModel::D2m),
        ),
    ];
    println!("\nbest-move identification rate vs #attempts:");
    print!("{:>10}", "attempts");
    for (name, _) in &rankers {
        print!(" {name:>13}");
    }
    println!();
    // rank each buffer's moves once per ranker
    let mut ranked: Vec<Vec<Vec<usize>>> = Vec::new(); // [ranker][case] -> move order
    for (_, ranker) in &rankers {
        let mut per_case = Vec::new();
        for (b, _, _) in &cases {
            let moves = &per_buffer[b];
            let mut cache = BTreeMap::new();
            let mut scored: Vec<(f64, usize)> = moves
                .iter()
                .enumerate()
                .map(|(i, mv)| {
                    (
                        predict_move_gain(
                            &tc.tree, &tc.lib, &timings, &pairs, &alphas, mv, &mcfg, *ranker,
                            &mut cache,
                        ),
                        i,
                    )
                })
                .collect();
            scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
            per_case.push(scored.into_iter().map(|(_, i)| i).collect::<Vec<usize>>());
        }
        ranked.push(per_case);
    }
    // a "hit" at k attempts: the ranker's top-k contains a move whose
    // actual gain is within 90% of the buffer's best achievable gain
    for k in 1..=5usize {
        print!("{k:>10}");
        for per_case in &ranked {
            let hit = cases
                .iter()
                .enumerate()
                .filter(|(ci, (_, gains, best))| {
                    per_case[*ci]
                        .iter()
                        .take(k)
                        .any(|&i| gains[i] >= 0.9 * best && gains[i] > 0.0)
                })
                .count();
            print!(" {:>12.0}%", 100.0 * hit as f64 / cases.len().max(1) as f64);
        }
        println!();
    }
    println!("\npaper: learned 40% @ 1 attempt vs up to 20% for analytical models");
    println!("(hit = an attempted move achieves >= 90% of the buffer's best actual gain)");
    sw.report();
}
