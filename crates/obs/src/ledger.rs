//! Decision ledger: typed JSONL records of every QoR-affecting choice.
//!
//! Spans say *how long* a phase took and metrics say *how many* moves
//! were accepted; the ledger says *which decisions delivered the
//! picoseconds*. Each global λ trial, each ECO arc accept/reject, and
//! each local candidate evaluation appends one [`LedgerRecord`]. The
//! waterfall tool (`clk-bench --bin waterfall`) reconciles the record
//! stream against the end-to-end skew-variation delta, replays the
//! accepted decisions for a byte-identical determinism audit, and
//! diffs two ledgers decision-by-decision.
//!
//! Contracts:
//!
//! - **One branch when off.** The disabled [`Ledger`] (the default)
//!   costs a single `Option` check per decision site, exactly like the
//!   disabled [`crate::Profiler`]. Callers guard record *construction*
//!   behind [`Ledger::is_enabled`].
//! - **Finite floats only.** A record carrying NaN/Inf is dropped at
//!   append time (counted as `ledger.dropped_nonfinite`), because the
//!   JSON writer serializes non-finite numbers as `null`. On the parse
//!   side a `null` where a required float belongs is therefore a typed
//!   [`LedgerError::NonFinite`], never a silent zero.
//! - **Byte-identical round-trip.** [`LedgerRecord::to_json_line`]
//!   emits fields in a fixed order and the f64 `Display` shortest
//!   representation round-trips exactly, so encode → parse → re-encode
//!   is byte-identical (pinned by proptests in `tests/props.rs`).
//! - **Checkpoint semantics.** Every `var` field is the total skew
//!   variation of the tree *as committed so far*, evaluated under the
//!   flow's init-time alpha factors (stored via [`Ledger::set_alphas`]).
//!   Committed-chain deltas therefore telescope: they sum exactly to
//!   `flow_end.var - flow_init.var`.

use std::sync::{Arc, Mutex};

use crate::json::{parse, Value};

/// A local-phase move, encoded without depending on the optimizer
/// crate. `t` is the paper's move type (1 = size/displace,
/// 2 = child size, 3 = reassign); `dir` indexes the stable
/// eight-way compass array (`Direction::ALL`) when present; `resize`
/// is `"none"`, `"up"` or `"down"`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MoveRec {
    pub t: u64,
    pub node: u64,
    pub dir: Option<u64>,
    pub resize: String,
    pub child: Option<u64>,
    pub new_parent: Option<u64>,
}

impl MoveRec {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("t".to_string(), self.t.into()),
            ("node".to_string(), self.node.into()),
            ("dir".to_string(), opt_u64(self.dir)),
            ("resize".to_string(), self.resize.as_str().into()),
            ("child".to_string(), opt_u64(self.child)),
            ("new_parent".to_string(), opt_u64(self.new_parent)),
        ])
    }

    fn from_value(line: usize, kind: &'static str, v: &Value) -> Result<Self, LedgerError> {
        Ok(Self {
            t: get_u64(line, kind, v, "t")?,
            node: get_u64(line, kind, v, "node")?,
            dir: get_opt_u64(line, kind, v, "dir")?,
            resize: get_str(line, kind, v, "resize")?,
            child: get_opt_u64(line, kind, v, "child")?,
            new_parent: get_opt_u64(line, kind, v, "new_parent")?,
        })
    }
}

/// One QoR-affecting decision. Every `var` field is a checkpoint of
/// total skew variation under the flow's init-time alphas (see module
/// docs); `Option` floats are `None` when the ledger had nothing to
/// measure (e.g. a rejected candidate leaves no checkpoint).
#[derive(Debug, Clone, PartialEq)]
pub enum LedgerRecord {
    /// Flow entry: testcase shape and the starting checkpoint.
    FlowInit {
        flow: String,
        sinks: u64,
        corners: u64,
        var: f64,
    },
    /// A phase begins (`"global"` / `"local"`).
    PhaseStart { phase: String },
    /// A phase ends. `committed=false` means the flow rolled the whole
    /// phase back (lint gate / phase error) and `var` equals the phase
    /// entry checkpoint.
    PhaseEnd {
        phase: String,
        committed: bool,
        var: f64,
    },
    /// A global λ-round begins on the current committed tree.
    RoundStart { round: u64, var: f64 },
    /// One λ value tried within a round: ladder rung taken, certificate
    /// status, LP objective, and the trial-tree checkpoint after its
    /// ECO sweep. `accepted` marks the winning λ of the round.
    Lambda {
        round: u64,
        lambda: f64,
        rung: String,
        cert: String,
        lp_objective: Option<f64>,
        arcs_changed: u64,
        accepted: bool,
        var: Option<f64>,
    },
    /// One ECO arc realization attempt inside a λ trial. `d_lp` is the
    /// LP-assigned per-corner delay delta, `d_now` the pre-ECO delays,
    /// `realized` the achieved delays when realization succeeded.
    /// `var` is the trial-tree checkpoint after an accepted arc.
    EcoArc {
        round: u64,
        lambda: f64,
        arc: u64,
        d_lp: Vec<f64>,
        d_now: Vec<f64>,
        realized: Option<Vec<f64>>,
        accepted: bool,
        var: Option<f64>,
    },
    /// A round ends. `adopted=false` means no λ improved the committed
    /// tree and `var` equals the round-start checkpoint.
    RoundEnd {
        round: u64,
        winner_lambda: Option<f64>,
        adopted: bool,
        var: f64,
    },
    /// One local candidate evaluation. `predicted` is the predictor's
    /// aggregate gain, `measured` the golden-timer aggregate gain,
    /// `deltas` the golden per-corner local-skew deltas. `outcome` is
    /// one of `improving`, `not_improving`, `apply_failed`,
    /// `timing_failed`, `drc`, `panicked`.
    LocalCand {
        iter: u64,
        slot: u64,
        mv: MoveRec,
        predicted: f64,
        measured: Option<f64>,
        deltas: Option<Vec<f64>>,
        outcome: String,
    },
    /// The batch-best candidate was committed (or rolled back by
    /// transaction validation: `committed=false`). `gain` is the golden
    /// aggregate gain; `var` the post-commit checkpoint.
    LocalCommit {
        iter: u64,
        mv: MoveRec,
        gain: f64,
        committed: bool,
        var: Option<f64>,
    },
    /// Flow exit: the final checkpoint.
    FlowEnd { var: f64 },
}

impl LedgerRecord {
    /// The record's kind tag as serialized in the `k` field.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            LedgerRecord::FlowInit { .. } => "flow_init",
            LedgerRecord::PhaseStart { .. } => "phase_start",
            LedgerRecord::PhaseEnd { .. } => "phase_end",
            LedgerRecord::RoundStart { .. } => "round_start",
            LedgerRecord::Lambda { .. } => "lambda",
            LedgerRecord::EcoArc { .. } => "eco_arc",
            LedgerRecord::RoundEnd { .. } => "round_end",
            LedgerRecord::LocalCand { .. } => "local_cand",
            LedgerRecord::LocalCommit { .. } => "local_commit",
            LedgerRecord::FlowEnd { .. } => "flow_end",
        }
    }

    /// The name of the first non-finite float field, if any. Records
    /// failing this check are dropped at append time.
    #[must_use]
    pub fn non_finite_field(&self) -> Option<&'static str> {
        let bad_opt = |v: &Option<f64>| v.is_some_and(|x| !x.is_finite());
        let bad_vec = |v: &[f64]| v.iter().any(|x| !x.is_finite());
        match self {
            LedgerRecord::FlowInit { var, .. }
            | LedgerRecord::PhaseEnd { var, .. }
            | LedgerRecord::RoundStart { var, .. }
            | LedgerRecord::FlowEnd { var } => (!var.is_finite()).then_some("var"),
            LedgerRecord::PhaseStart { .. } => None,
            LedgerRecord::Lambda {
                lambda,
                lp_objective,
                var,
                ..
            } => {
                if !lambda.is_finite() {
                    Some("lambda")
                } else if bad_opt(lp_objective) {
                    Some("lp_objective")
                } else if bad_opt(var) {
                    Some("var")
                } else {
                    None
                }
            }
            LedgerRecord::EcoArc {
                lambda,
                d_lp,
                d_now,
                realized,
                var,
                ..
            } => {
                if !lambda.is_finite() {
                    Some("lambda")
                } else if bad_vec(d_lp) {
                    Some("d_lp")
                } else if bad_vec(d_now) {
                    Some("d_now")
                } else if realized.as_deref().is_some_and(bad_vec) {
                    Some("realized")
                } else if bad_opt(var) {
                    Some("var")
                } else {
                    None
                }
            }
            LedgerRecord::RoundEnd {
                winner_lambda, var, ..
            } => {
                if bad_opt(winner_lambda) {
                    Some("winner_lambda")
                } else if !var.is_finite() {
                    Some("var")
                } else {
                    None
                }
            }
            LedgerRecord::LocalCand {
                predicted,
                measured,
                deltas,
                ..
            } => {
                if !predicted.is_finite() {
                    Some("predicted")
                } else if bad_opt(measured) {
                    Some("measured")
                } else if deltas.as_deref().is_some_and(bad_vec) {
                    Some("deltas")
                } else {
                    None
                }
            }
            LedgerRecord::LocalCommit { gain, var, .. } => {
                if !gain.is_finite() {
                    Some("gain")
                } else if bad_opt(var) {
                    Some("var")
                } else {
                    None
                }
            }
        }
    }

    /// Serializes with a fixed field order per variant (the byte-
    /// identity contract depends on this order never changing).
    #[must_use]
    pub fn to_value(&self) -> Value {
        let k = |s: &'static str| ("k".to_string(), s.into());
        match self {
            LedgerRecord::FlowInit {
                flow,
                sinks,
                corners,
                var,
            } => Value::Obj(vec![
                k("flow_init"),
                ("flow".to_string(), flow.as_str().into()),
                ("sinks".to_string(), (*sinks).into()),
                ("corners".to_string(), (*corners).into()),
                ("var".to_string(), (*var).into()),
            ]),
            LedgerRecord::PhaseStart { phase } => Value::Obj(vec![
                k("phase_start"),
                ("phase".to_string(), phase.as_str().into()),
            ]),
            LedgerRecord::PhaseEnd {
                phase,
                committed,
                var,
            } => Value::Obj(vec![
                k("phase_end"),
                ("phase".to_string(), phase.as_str().into()),
                ("committed".to_string(), (*committed).into()),
                ("var".to_string(), (*var).into()),
            ]),
            LedgerRecord::RoundStart { round, var } => Value::Obj(vec![
                k("round_start"),
                ("round".to_string(), (*round).into()),
                ("var".to_string(), (*var).into()),
            ]),
            LedgerRecord::Lambda {
                round,
                lambda,
                rung,
                cert,
                lp_objective,
                arcs_changed,
                accepted,
                var,
            } => Value::Obj(vec![
                k("lambda"),
                ("round".to_string(), (*round).into()),
                ("lambda".to_string(), (*lambda).into()),
                ("rung".to_string(), rung.as_str().into()),
                ("cert".to_string(), cert.as_str().into()),
                ("lp_objective".to_string(), opt_f64(*lp_objective)),
                ("arcs_changed".to_string(), (*arcs_changed).into()),
                ("accepted".to_string(), (*accepted).into()),
                ("var".to_string(), opt_f64(*var)),
            ]),
            LedgerRecord::EcoArc {
                round,
                lambda,
                arc,
                d_lp,
                d_now,
                realized,
                accepted,
                var,
            } => Value::Obj(vec![
                k("eco_arc"),
                ("round".to_string(), (*round).into()),
                ("lambda".to_string(), (*lambda).into()),
                ("arc".to_string(), (*arc).into()),
                ("d_lp".to_string(), vec_f64(d_lp)),
                ("d_now".to_string(), vec_f64(d_now)),
                (
                    "realized".to_string(),
                    realized.as_deref().map_or(Value::Null, vec_f64),
                ),
                ("accepted".to_string(), (*accepted).into()),
                ("var".to_string(), opt_f64(*var)),
            ]),
            LedgerRecord::RoundEnd {
                round,
                winner_lambda,
                adopted,
                var,
            } => Value::Obj(vec![
                k("round_end"),
                ("round".to_string(), (*round).into()),
                ("winner_lambda".to_string(), opt_f64(*winner_lambda)),
                ("adopted".to_string(), (*adopted).into()),
                ("var".to_string(), (*var).into()),
            ]),
            LedgerRecord::LocalCand {
                iter,
                slot,
                mv,
                predicted,
                measured,
                deltas,
                outcome,
            } => Value::Obj(vec![
                k("local_cand"),
                ("iter".to_string(), (*iter).into()),
                ("slot".to_string(), (*slot).into()),
                ("mv".to_string(), mv.to_value()),
                ("predicted".to_string(), (*predicted).into()),
                ("measured".to_string(), opt_f64(*measured)),
                (
                    "deltas".to_string(),
                    deltas.as_deref().map_or(Value::Null, vec_f64),
                ),
                ("outcome".to_string(), outcome.as_str().into()),
            ]),
            LedgerRecord::LocalCommit {
                iter,
                mv,
                gain,
                committed,
                var,
            } => Value::Obj(vec![
                k("local_commit"),
                ("iter".to_string(), (*iter).into()),
                ("mv".to_string(), mv.to_value()),
                ("gain".to_string(), (*gain).into()),
                ("committed".to_string(), (*committed).into()),
                ("var".to_string(), opt_f64(*var)),
            ]),
            LedgerRecord::FlowEnd { var } => {
                Value::Obj(vec![k("flow_end"), ("var".to_string(), (*var).into())])
            }
        }
    }

    /// One compact JSONL line (no trailing newline).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        self.to_value().to_json()
    }

    /// Parses one record from a decoded JSON value. `line` is the
    /// 1-based JSONL line number used in errors.
    pub fn from_value(line: usize, v: &Value) -> Result<Self, LedgerError> {
        let Some(kind_v) = v.get("k") else {
            return Err(LedgerError::MissingField {
                line,
                kind: "?".to_string(),
                field: "k",
            });
        };
        let Some(kind) = kind_v.as_str() else {
            return Err(LedgerError::Malformed {
                line,
                msg: "field 'k' is not a string".to_string(),
            });
        };
        match kind {
            "flow_init" => Ok(LedgerRecord::FlowInit {
                flow: get_str(line, "flow_init", v, "flow")?,
                sinks: get_u64(line, "flow_init", v, "sinks")?,
                corners: get_u64(line, "flow_init", v, "corners")?,
                var: get_f64(line, "flow_init", v, "var")?,
            }),
            "phase_start" => Ok(LedgerRecord::PhaseStart {
                phase: get_str(line, "phase_start", v, "phase")?,
            }),
            "phase_end" => Ok(LedgerRecord::PhaseEnd {
                phase: get_str(line, "phase_end", v, "phase")?,
                committed: get_bool(line, "phase_end", v, "committed")?,
                var: get_f64(line, "phase_end", v, "var")?,
            }),
            "round_start" => Ok(LedgerRecord::RoundStart {
                round: get_u64(line, "round_start", v, "round")?,
                var: get_f64(line, "round_start", v, "var")?,
            }),
            "lambda" => Ok(LedgerRecord::Lambda {
                round: get_u64(line, "lambda", v, "round")?,
                lambda: get_f64(line, "lambda", v, "lambda")?,
                rung: get_str(line, "lambda", v, "rung")?,
                cert: get_str(line, "lambda", v, "cert")?,
                lp_objective: get_opt_f64(line, "lambda", v, "lp_objective")?,
                arcs_changed: get_u64(line, "lambda", v, "arcs_changed")?,
                accepted: get_bool(line, "lambda", v, "accepted")?,
                var: get_opt_f64(line, "lambda", v, "var")?,
            }),
            "eco_arc" => Ok(LedgerRecord::EcoArc {
                round: get_u64(line, "eco_arc", v, "round")?,
                lambda: get_f64(line, "eco_arc", v, "lambda")?,
                arc: get_u64(line, "eco_arc", v, "arc")?,
                d_lp: get_vec_f64(line, "eco_arc", v, "d_lp")?,
                d_now: get_vec_f64(line, "eco_arc", v, "d_now")?,
                realized: get_opt_vec_f64(line, "eco_arc", v, "realized")?,
                accepted: get_bool(line, "eco_arc", v, "accepted")?,
                var: get_opt_f64(line, "eco_arc", v, "var")?,
            }),
            "round_end" => Ok(LedgerRecord::RoundEnd {
                round: get_u64(line, "round_end", v, "round")?,
                winner_lambda: get_opt_f64(line, "round_end", v, "winner_lambda")?,
                adopted: get_bool(line, "round_end", v, "adopted")?,
                var: get_f64(line, "round_end", v, "var")?,
            }),
            "local_cand" => Ok(LedgerRecord::LocalCand {
                iter: get_u64(line, "local_cand", v, "iter")?,
                slot: get_u64(line, "local_cand", v, "slot")?,
                mv: get_move(line, "local_cand", v)?,
                predicted: get_f64(line, "local_cand", v, "predicted")?,
                measured: get_opt_f64(line, "local_cand", v, "measured")?,
                deltas: get_opt_vec_f64(line, "local_cand", v, "deltas")?,
                outcome: get_str(line, "local_cand", v, "outcome")?,
            }),
            "local_commit" => Ok(LedgerRecord::LocalCommit {
                iter: get_u64(line, "local_commit", v, "iter")?,
                mv: get_move(line, "local_commit", v)?,
                gain: get_f64(line, "local_commit", v, "gain")?,
                committed: get_bool(line, "local_commit", v, "committed")?,
                var: get_opt_f64(line, "local_commit", v, "var")?,
            }),
            "flow_end" => Ok(LedgerRecord::FlowEnd {
                var: get_f64(line, "flow_end", v, "var")?,
            }),
            other => Err(LedgerError::UnknownKind {
                line,
                kind: other.to_string(),
            }),
        }
    }
}

fn opt_f64(v: Option<f64>) -> Value {
    v.map_or(Value::Null, Value::Num)
}

fn opt_u64(v: Option<u64>) -> Value {
    v.map_or(Value::Null, Into::into)
}

fn vec_f64(v: &[f64]) -> Value {
    Value::Arr(v.iter().map(|&x| Value::Num(x)).collect())
}

fn missing(line: usize, kind: &'static str, field: &'static str) -> LedgerError {
    LedgerError::MissingField {
        line,
        kind: kind.to_string(),
        field,
    }
}

fn get_f64(
    line: usize,
    kind: &'static str,
    v: &Value,
    field: &'static str,
) -> Result<f64, LedgerError> {
    match v.get(field) {
        None => Err(missing(line, kind, field)),
        // the writer renders NaN/Inf as null, so null-where-float is a
        // non-finite record, not an absent field
        Some(Value::Null) => Err(LedgerError::NonFinite {
            line,
            kind: kind.to_string(),
            field,
        }),
        Some(Value::Num(n)) if n.is_finite() => Ok(*n),
        Some(_) => Err(LedgerError::Malformed {
            line,
            msg: format!("{kind}.{field} is not a number"),
        }),
    }
}

fn get_opt_f64(
    line: usize,
    kind: &'static str,
    v: &Value,
    field: &'static str,
) -> Result<Option<f64>, LedgerError> {
    match v.get(field) {
        None => Err(missing(line, kind, field)),
        Some(Value::Null) => Ok(None),
        Some(Value::Num(n)) if n.is_finite() => Ok(Some(*n)),
        Some(_) => Err(LedgerError::Malformed {
            line,
            msg: format!("{kind}.{field} is not a number"),
        }),
    }
}

fn get_u64(
    line: usize,
    kind: &'static str,
    v: &Value,
    field: &'static str,
) -> Result<u64, LedgerError> {
    match v.get(field) {
        None => Err(missing(line, kind, field)),
        Some(val) => val.as_u64().ok_or_else(|| LedgerError::Malformed {
            line,
            msg: format!("{kind}.{field} is not a non-negative integer"),
        }),
    }
}

fn get_opt_u64(
    line: usize,
    kind: &'static str,
    v: &Value,
    field: &'static str,
) -> Result<Option<u64>, LedgerError> {
    match v.get(field) {
        None => Err(missing(line, kind, field)),
        Some(Value::Null) => Ok(None),
        Some(val) => val
            .as_u64()
            .map(Some)
            .ok_or_else(|| LedgerError::Malformed {
                line,
                msg: format!("{kind}.{field} is not a non-negative integer"),
            }),
    }
}

fn get_bool(
    line: usize,
    kind: &'static str,
    v: &Value,
    field: &'static str,
) -> Result<bool, LedgerError> {
    match v.get(field) {
        None => Err(missing(line, kind, field)),
        Some(Value::Bool(b)) => Ok(*b),
        Some(_) => Err(LedgerError::Malformed {
            line,
            msg: format!("{kind}.{field} is not a boolean"),
        }),
    }
}

fn get_str(
    line: usize,
    kind: &'static str,
    v: &Value,
    field: &'static str,
) -> Result<String, LedgerError> {
    match v.get(field) {
        None => Err(missing(line, kind, field)),
        Some(val) => val
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| LedgerError::Malformed {
                line,
                msg: format!("{kind}.{field} is not a string"),
            }),
    }
}

fn get_vec_f64(
    line: usize,
    kind: &'static str,
    v: &Value,
    field: &'static str,
) -> Result<Vec<f64>, LedgerError> {
    match v.get(field) {
        None => Err(missing(line, kind, field)),
        Some(Value::Arr(items)) => items
            .iter()
            .map(|item| match item {
                Value::Num(n) if n.is_finite() => Ok(*n),
                Value::Null => Err(LedgerError::NonFinite {
                    line,
                    kind: kind.to_string(),
                    field,
                }),
                _ => Err(LedgerError::Malformed {
                    line,
                    msg: format!("{kind}.{field} has a non-number element"),
                }),
            })
            .collect(),
        Some(_) => Err(LedgerError::Malformed {
            line,
            msg: format!("{kind}.{field} is not an array"),
        }),
    }
}

fn get_opt_vec_f64(
    line: usize,
    kind: &'static str,
    v: &Value,
    field: &'static str,
) -> Result<Option<Vec<f64>>, LedgerError> {
    match v.get(field) {
        Some(Value::Null) => Ok(None),
        _ => get_vec_f64(line, kind, v, field).map(Some),
    }
}

fn get_move(line: usize, kind: &'static str, v: &Value) -> Result<MoveRec, LedgerError> {
    match v.get("mv") {
        None => Err(missing(line, kind, "mv")),
        Some(mv @ Value::Obj(_)) => MoveRec::from_value(line, kind, mv),
        Some(_) => Err(LedgerError::Malformed {
            line,
            msg: format!("{kind}.mv is not an object"),
        }),
    }
}

/// Typed failure while decoding a ledger stream. Every variant carries
/// the 1-based JSONL line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LedgerError {
    /// The line is not a well-formed JSON object (including truncated
    /// trailing lines from an interrupted writer).
    Malformed { line: usize, msg: String },
    /// The `k` tag names no known record kind (schema drift).
    UnknownKind { line: usize, kind: String },
    /// A declared field of the record kind is absent.
    MissingField {
        line: usize,
        kind: String,
        field: &'static str,
    },
    /// A required float is `null` — the serialized form of NaN/Inf.
    NonFinite {
        line: usize,
        kind: String,
        field: &'static str,
    },
}

impl std::fmt::Display for LedgerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LedgerError::Malformed { line, msg } => {
                write!(f, "ledger line {line}: malformed record: {msg}")
            }
            LedgerError::UnknownKind { line, kind } => {
                write!(f, "ledger line {line}: unknown record kind '{kind}'")
            }
            LedgerError::MissingField { line, kind, field } => {
                write!(
                    f,
                    "ledger line {line}: {kind} record missing field '{field}'"
                )
            }
            LedgerError::NonFinite { line, kind, field } => {
                write!(
                    f,
                    "ledger line {line}: {kind}.{field} is non-finite (serialized null)"
                )
            }
        }
    }
}

impl std::error::Error for LedgerError {}

/// Serializes records as JSONL (one line each, trailing newline).
#[must_use]
pub fn encode_jsonl(records: &[LedgerRecord]) -> String {
    let mut out = String::new();
    for rec in records {
        out.push_str(&rec.to_json_line());
        out.push('\n');
    }
    out
}

/// Parses a JSONL ledger stream. Blank lines are skipped; anything
/// else that fails to decode — including a truncated final line — is a
/// typed [`LedgerError`].
pub fn parse_jsonl(text: &str) -> Result<Vec<LedgerRecord>, LedgerError> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let v = parse(raw).map_err(|msg| LedgerError::Malformed { line, msg })?;
        if !matches!(v, Value::Obj(_)) {
            return Err(LedgerError::Malformed {
                line,
                msg: "record is not a JSON object".to_string(),
            });
        }
        out.push(LedgerRecord::from_value(line, &v)?);
    }
    Ok(out)
}

/// What [`Ledger::append`] did with a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendOutcome {
    /// Ledger disabled; nothing stored.
    Disabled,
    /// Record stored.
    Recorded,
    /// Record carried a NaN/Inf float and was dropped.
    DroppedNonFinite,
}

#[derive(Debug, Default)]
struct LedgerInner {
    records: Mutex<Vec<LedgerRecord>>,
    /// The flow's init-time alpha factors, shared with every decision
    /// site so checkpoints are evaluated under one consistent α*.
    alphas: Mutex<Option<Vec<f64>>>,
}

/// Handle to a decision ledger.
///
/// Cheap to clone and share across threads; the disabled handle (the
/// default) costs one `Option` check per decision site, same as a
/// disabled [`crate::Profiler`].
#[derive(Debug, Clone, Default)]
pub struct Ledger {
    inner: Option<Arc<LedgerInner>>,
}

impl Ledger {
    /// A disabled ledger (same as `Ledger::default()`).
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled, empty ledger.
    #[must_use]
    pub fn enabled() -> Self {
        Self {
            inner: Some(Arc::new(LedgerInner::default())),
        }
    }

    /// Whether records will be stored at all. Callers guard record
    /// construction behind this (the one-branch-when-off contract).
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Appends a record (finite floats only; see [`AppendOutcome`]).
    pub fn append(&self, rec: LedgerRecord) -> AppendOutcome {
        let Some(inner) = &self.inner else {
            return AppendOutcome::Disabled;
        };
        if rec.non_finite_field().is_some() {
            return AppendOutcome::DroppedNonFinite;
        }
        inner
            .records
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(rec);
        AppendOutcome::Recorded
    }

    /// Stores the flow's init-time alpha factors for checkpoint
    /// evaluation at every decision site.
    pub fn set_alphas(&self, alphas: Vec<f64>) {
        if let Some(inner) = &self.inner {
            *inner
                .alphas
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(alphas);
        }
    }

    /// The stored alpha factors, if the ledger is enabled and the flow
    /// has published them.
    #[must_use]
    pub fn alphas(&self) -> Option<Vec<f64>> {
        self.inner.as_ref().and_then(|inner| {
            inner
                .alphas
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .clone()
        })
    }

    /// A snapshot of every record appended so far.
    #[must_use]
    pub fn records(&self) -> Vec<LedgerRecord> {
        match &self.inner {
            Some(inner) => inner
                .records
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .clone(),
            None => Vec::new(),
        }
    }

    /// Number of records stored.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.inner {
            Some(inner) => inner
                .records
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .len(),
            None => 0,
        }
    }

    /// Whether no records are stored (always true when disabled).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The whole ledger as a JSONL document.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        encode_jsonl(&self.records())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<LedgerRecord> {
        vec![
            LedgerRecord::FlowInit {
                flow: "cls1_v1".to_string(),
                sinks: 48,
                corners: 4,
                var: 297.25,
            },
            LedgerRecord::PhaseStart {
                phase: "global".to_string(),
            },
            LedgerRecord::RoundStart {
                round: 0,
                var: 297.25,
            },
            LedgerRecord::Lambda {
                round: 0,
                lambda: 0.5,
                rung: "none".to_string(),
                cert: "ok".to_string(),
                lp_objective: Some(-12.5),
                arcs_changed: 3,
                accepted: true,
                var: Some(280.0),
            },
            LedgerRecord::EcoArc {
                round: 0,
                lambda: 0.5,
                arc: 7,
                d_lp: vec![1.0, -2.5],
                d_now: vec![0.5, 0.25],
                realized: Some(vec![0.75, -2.0]),
                accepted: true,
                var: Some(280.0),
            },
            LedgerRecord::RoundEnd {
                round: 0,
                winner_lambda: Some(0.5),
                adopted: true,
                var: 280.0,
            },
            LedgerRecord::PhaseEnd {
                phase: "global".to_string(),
                committed: true,
                var: 280.0,
            },
            LedgerRecord::LocalCand {
                iter: 0,
                slot: 2,
                mv: MoveRec {
                    t: 1,
                    node: 12,
                    dir: Some(3),
                    resize: "up".to_string(),
                    child: None,
                    new_parent: None,
                },
                predicted: 4.5,
                measured: Some(3.25),
                deltas: Some(vec![-1.0, -2.25]),
                outcome: "improving".to_string(),
            },
            LedgerRecord::LocalCommit {
                iter: 0,
                mv: MoveRec {
                    t: 3,
                    node: 12,
                    dir: None,
                    resize: "none".to_string(),
                    child: None,
                    new_parent: Some(4),
                },
                gain: 3.25,
                committed: true,
                var: Some(276.75),
            },
            LedgerRecord::FlowEnd { var: 276.75 },
        ]
    }

    #[test]
    fn round_trips_byte_identically() {
        let recs = sample_records();
        let text = encode_jsonl(&recs);
        let parsed = parse_jsonl(&text).expect("parses");
        assert_eq!(parsed, recs);
        assert_eq!(encode_jsonl(&parsed), text);
    }

    #[test]
    fn truncated_line_is_typed_error() {
        let recs = sample_records();
        let text = encode_jsonl(&recs);
        let cut = &text[..text.len() - 20];
        match parse_jsonl(cut) {
            Err(LedgerError::Malformed { line, .. }) => assert_eq!(line, recs.len()),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn null_float_is_nonfinite_error() {
        let line = r#"{"k":"flow_end","var":null}"#;
        match parse_jsonl(line) {
            Err(LedgerError::NonFinite { line, field, .. }) => {
                assert_eq!(line, 1);
                assert_eq!(field, "var");
            }
            other => panic!("expected NonFinite, got {other:?}"),
        }
    }

    #[test]
    fn null_delta_element_is_nonfinite_error() {
        let line = r#"{"k":"eco_arc","round":0,"lambda":0.5,"arc":1,"d_lp":[1.0,null],"d_now":[0.0,0.0],"realized":null,"accepted":false,"var":null}"#;
        match parse_jsonl(line) {
            Err(LedgerError::NonFinite { field, .. }) => assert_eq!(field, "d_lp"),
            other => panic!("expected NonFinite, got {other:?}"),
        }
    }

    #[test]
    fn unknown_kind_and_missing_field_are_typed() {
        assert!(matches!(
            parse_jsonl(r#"{"k":"mystery"}"#),
            Err(LedgerError::UnknownKind { line: 1, .. })
        ));
        assert!(matches!(
            parse_jsonl(r#"{"k":"flow_end"}"#),
            Err(LedgerError::MissingField {
                line: 1,
                field: "var",
                ..
            })
        ));
        assert!(matches!(
            parse_jsonl(r#"{"var":1.0}"#),
            Err(LedgerError::MissingField {
                line: 1,
                field: "k",
                ..
            })
        ));
    }

    #[test]
    fn nonfinite_records_are_dropped_at_append() {
        let ledger = Ledger::enabled();
        assert_eq!(
            ledger.append(LedgerRecord::FlowEnd { var: f64::NAN }),
            AppendOutcome::DroppedNonFinite
        );
        assert_eq!(
            ledger.append(LedgerRecord::FlowEnd { var: 1.0 }),
            AppendOutcome::Recorded
        );
        assert_eq!(ledger.len(), 1);
    }

    #[test]
    fn disabled_ledger_is_inert() {
        let ledger = Ledger::disabled();
        assert!(!ledger.is_enabled());
        assert_eq!(
            ledger.append(LedgerRecord::FlowEnd { var: 1.0 }),
            AppendOutcome::Disabled
        );
        ledger.set_alphas(vec![1.0]);
        assert!(ledger.alphas().is_none());
        assert!(ledger.is_empty());
        assert!(ledger.to_jsonl().is_empty());
    }

    #[test]
    fn alphas_are_shared_through_clones() {
        let ledger = Ledger::enabled();
        let clone = ledger.clone();
        ledger.set_alphas(vec![0.25, 0.75]);
        assert_eq!(clone.alphas(), Some(vec![0.25, 0.75]));
    }
}
