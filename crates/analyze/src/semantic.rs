//! The semantic pass family (A101–A104): workspace-level analysis over
//! the item model and call graph.
//!
//! Where A001–A006 look at one token window at a time, these passes ask
//! reachability questions: *can a thread-spawn closure reach shared
//! mutable state* (A101), *is everything reachable from candidate
//! evaluation pure* (A102), *can a float reduction's order depend on
//! thread interleaving* (A103), and *does any `Ordering::Relaxed` feed
//! QoR-bearing code* (A104). The model is built from token trees —
//! files that fail tree parsing simply contribute nothing here (the
//! lexical passes still cover them) — and every edge in the call graph
//! is an over-approximation, so a finding here is a *candidate* hazard
//! to be fixed or suppressed with a reason, never a proof of absence
//! silently skipped.

use std::collections::BTreeMap;

use crate::callgraph::{callees_of, closures_in, CallGraph, Closure};
use crate::finding::{Code, Finding, Severity};
use crate::items::{extract, FnItem, StaticItem};
use crate::lexer::{TokKind, Token};
use crate::passes::{statement_has_float, tracked_map_names, ITER_METHODS};
use crate::tree::{parse_trees, Delim, TokenTree};
use crate::{AnalyzeConfig, SourceFile};

/// Function/method names whose call means "this code reads entropy":
/// nondeterministic across runs, so poison for candidate evaluation.
const RNG_CALLS: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "random",
    "gen_range",
    "gen_bool",
    "gen_ratio",
    "next_u32",
    "next_u64",
    "fill_bytes",
];

/// Channel-receive methods: iteration order is arrival order, which is
/// thread interleaving.
const RECV_METHODS: &[&str] = &["recv", "try_recv", "try_iter", "recv_timeout"];

/// One thread-spawn site: the closure handed to `spawn(…)` plus where
/// it happened.
struct SpawnSite {
    file: String,
    line: u32,
    closure: Closure,
}

/// Everything the A1xx passes need, built once per analysis run.
pub(crate) struct Model {
    graph: CallGraph,
    statics: Vec<StaticItem>,
    spawns: Vec<SpawnSite>,
    /// Per-fn facts, same indices as `graph.fns`.
    facts: Vec<Facts>,
    /// Hash-container binding names per file (for A103 sources).
    tracked: BTreeMap<String, Vec<String>>,
}

/// Determinism-relevant facts of one function (or closure) body.
#[derive(Debug, Default)]
struct Facts {
    /// Mentions of hazardous statics: (static name, kind, line).
    hazard_statics: Vec<(String, &'static str, u32)>,
    /// Wall-clock reads: (what, line).
    wall_clock: Vec<(&'static str, u32)>,
    /// Entropy reads: (callee, line).
    rng: Vec<(String, u32)>,
    /// `Ordering::Relaxed` mentions (lines).
    relaxed: Vec<u32>,
    /// Order-sensitive float reductions: (description, line).
    reductions: Vec<(String, u32)>,
}

/// Builds the workspace model: token trees → items → call graph →
/// per-fn facts.
pub(crate) fn build_model(files: &[SourceFile]) -> Model {
    let mut fns: Vec<FnItem> = Vec::new();
    let mut statics: Vec<StaticItem> = Vec::new();
    let mut spawns: Vec<SpawnSite> = Vec::new();
    let mut tracked: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for file in files {
        let Ok(trees) = parse_trees(&file.tokens) else {
            continue; // lexical passes still cover this file
        };
        tracked.insert(file.path.clone(), tracked_map_names(&file.tokens));
        let items = extract(file, &trees);
        for f in &items.fns {
            for (line, closure) in spawn_sites(&f.body) {
                spawns.push(SpawnSite {
                    file: file.path.clone(),
                    line,
                    closure,
                });
            }
        }
        fns.extend(items.fns);
        statics.extend(items.statics);
    }
    let graph = CallGraph::build(fns);
    let hazards: Vec<&StaticItem> = statics.iter().filter(|s| s.hazardous()).collect();
    let facts = graph
        .fns
        .iter()
        .map(|f| {
            let names = tracked.get(&f.file).map_or(&[] as &[String], Vec::as_slice);
            collect_facts(&f.body_tokens(), &hazards, names)
        })
        .collect();
    Model {
        graph,
        statics,
        spawns,
        facts,
        tracked,
    }
}

/// Finds `spawn(…)` call sites in a body and the closures inside their
/// argument lists.
fn spawn_sites(body: &[TokenTree]) -> Vec<(u32, Closure)> {
    let mut out = Vec::new();
    scan_spawns(body, &mut out);
    out
}

fn scan_spawns(seq: &[TokenTree], out: &mut Vec<(u32, Closure)>) {
    for (i, t) in seq.iter().enumerate() {
        if t.is_ident("spawn") {
            if let Some(TokenTree::Group(g)) = seq.get(i + 1) {
                if g.delim == Delim::Paren {
                    for c in closures_in(&g.trees) {
                        out.push((t.line(), c));
                    }
                }
            }
        }
        if let TokenTree::Group(g) = t {
            scan_spawns(&g.trees, out);
        }
    }
}

/// Lexical fact collection over one body's flat token stream.
fn collect_facts(toks: &[Token], hazards: &[&StaticItem], tracked: &[String]) -> Facts {
    let mut f = Facts::default();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let next = toks.get(i + 1).map(|n| n.text.as_str());
        let prev = i.checked_sub(1).map(|p| toks[p].text.as_str());
        // hazardous static mention (names are unique SCREAMING_CASE in
        // practice; a local shadowing one would over-report, which is
        // the safe direction)
        if let Some(h) = hazards.iter().find(|h| h.name == t.text) {
            let kind = if h.is_mut {
                "static mut"
            } else if h.thread_local {
                "thread_local!"
            } else {
                "interior-mutable static"
            };
            f.hazard_statics.push((t.text.clone(), kind, t.line));
        }
        match t.text.as_str() {
            "Instant" if next == Some("::") && toks.get(i + 2).is_some_and(|n| n.text == "now") => {
                f.wall_clock.push(("Instant::now", t.line));
            }
            "SystemTime" => f.wall_clock.push(("SystemTime", t.line)),
            "wall_now" if next == Some("(") => f.wall_clock.push(("clk_obs::wall_now", t.line)),
            "Relaxed" if prev == Some("::") => f.relaxed.push(t.line),
            "RandomState" => f.rng.push((t.text.clone(), t.line)),
            name if RNG_CALLS.contains(&name) && next == Some("(") => {
                f.rng.push((t.text.clone(), t.line));
            }
            _ => {}
        }
    }
    collect_reductions(toks, tracked, &mut f);
    f
}

/// Order-sensitive float reductions: `+=`-with-float inside a loop over
/// an unordered source, or `.sum()`/`.product()`/`.fold()` chained off
/// one in the same statement.
fn collect_reductions(toks: &[Token], tracked: &[String], f: &mut Facts) {
    let float_names = crate::passes::float_var_names(toks);
    // chain reductions, statement-scoped
    for i in 0..toks.len() {
        let t = &toks[i];
        let is_chain_reduce = t.text == "."
            && toks.get(i + 1).is_some_and(|m| {
                m.kind == TokKind::Ident
                    && matches!(m.text.as_str(), "sum" | "product" | "fold")
                    && toks
                        .get(i + 2)
                        .is_some_and(|p| p.text == "(" || p.text == "::")
            });
        if !is_chain_reduce {
            continue;
        }
        let start = toks[..i]
            .iter()
            .rposition(|x| matches!(x.text.as_str(), ";" | "{" | "}"))
            .map_or(0, |p| p + 1);
        if let Some(src) = unordered_source(&toks[start..i], tracked) {
            let method = toks.get(i + 1).map(|m| m.text.clone()).unwrap_or_default();
            f.reductions
                .push((format!("`.{method}()` over {src}"), toks[i].line));
        }
    }
    // loop accumulation: for … in <unordered> { … acc += float … }
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].kind == TokKind::Ident && toks[i].text == "for") {
            i += 1;
            continue;
        }
        let Some(in_idx) = toks[i + 1..]
            .iter()
            .take(48)
            .position(|t| t.kind == TokKind::Ident && t.text == "in")
            .map(|p| i + 1 + p)
        else {
            i += 1;
            continue;
        };
        // header up to the body `{` at depth 0
        let mut k = in_idx + 1;
        let mut depth = 0i32;
        let mut body_open = None;
        while k < toks.len() {
            match toks[k].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    body_open = Some(k);
                    break;
                }
                "{" => depth += 1,
                "}" => depth -= 1,
                _ => {}
            }
            k += 1;
        }
        let Some(body_open) = body_open else {
            i = in_idx + 1;
            continue;
        };
        let header = &toks[in_idx + 1..body_open];
        let Some(src) = unordered_source(header, tracked) else {
            i = body_open + 1;
            continue;
        };
        let body_end = crate::passes::match_brace(toks, body_open);
        let body = &toks[body_open + 1..body_end.min(toks.len())];
        for (j, bt) in body.iter().enumerate() {
            if bt.text == "+=" && statement_has_float(body, j, &float_names) {
                f.reductions
                    .push((format!("`+=` in a loop over {src}"), bt.line));
            }
        }
        i = body_open + 1;
    }
}

/// Whether a token window draws from an unordered source: a tracked
/// hash container's iteration methods, or a channel receive.
fn unordered_source(window: &[Token], tracked: &[String]) -> Option<String> {
    for i in 0..window.len() {
        let t = &window[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        if ITER_METHODS.contains(&t.text.as_str())
            && i >= 1
            && window[i - 1].text == "."
            && i >= 2
            && tracked.contains(&window[i - 2].text)
        {
            return Some(format!("hash container `{}`", window[i - 2].text));
        }
        if RECV_METHODS.contains(&t.text.as_str())
            && i >= 1
            && window[i - 1].text == "."
            && window.get(i + 1).is_some_and(|n| n.text == "(")
        {
            return Some(format!("channel `.{}()` (arrival order)", t.text));
        }
    }
    None
}

/// Runs A101–A104 over the model. Findings are deduped by
/// (code, file, line) and anchored where the suppression should live.
pub(crate) fn run(files: &[SourceFile], cfg: &AnalyzeConfig) -> Vec<Finding> {
    let model = build_model(files);
    let by_path: BTreeMap<&str, &SourceFile> = files.iter().map(|f| (f.path.as_str(), f)).collect();
    let mut out: Vec<Finding> = Vec::new();

    // facts of each spawn closure body, against its file's tracked names
    let hazards: Vec<&StaticItem> = model.statics.iter().filter(|s| s.hazardous()).collect();
    let spawn_facts: Vec<Facts> = model
        .spawns
        .iter()
        .map(|s| {
            let names = model
                .tracked
                .get(&s.file)
                .map_or(&[] as &[String], Vec::as_slice);
            collect_facts(&s.closure.body_tokens(), &hazards, names)
        })
        .collect();
    // seeds per spawn: fns called from the closure body, plus bare fn
    // idents handed to spawn (`spawn(worker)`)
    let spawn_seeds: Vec<Vec<usize>> = model
        .spawns
        .iter()
        .map(|s| model.graph.resolve(&callees_of(&s.closure.body_tokens())))
        .collect();
    // union of everything reachable from any worker closure
    let all_seeds: Vec<usize> = spawn_seeds.iter().flatten().copied().collect();
    let parallel_reach = model.graph.reachable(&all_seeds);

    pass_a101(&model, &by_path, &spawn_facts, &spawn_seeds, &mut out);
    pass_a102(&model, cfg, &by_path, &spawn_facts, &spawn_seeds, &mut out);
    pass_a103(&model, &by_path, &spawn_facts, &parallel_reach, &mut out);
    pass_a104(&model, cfg, &by_path, &parallel_reach, &mut out);

    out.sort_by(|a, b| (&a.file, a.line, a.code).cmp(&(&b.file, b.line, b.code)));
    out.dedup_by(|a, b| a.code == b.code && a.file == b.file && a.line == b.line);
    out
}

fn mk(
    by_path: &BTreeMap<&str, &SourceFile>,
    code: Code,
    severity: Severity,
    file: &str,
    line: u32,
    message: String,
) -> Finding {
    let snippet = by_path
        .get(file)
        .and_then(|f| f.lines.get(line.saturating_sub(1) as usize))
        .map(|l| l.trim().to_string())
        .unwrap_or_default();
    Finding {
        code,
        severity,
        file: file.to_string(),
        line,
        snippet,
        message,
    }
}

/// A101: shared-mutable-state reachability from spawn closures.
/// Anchored at the spawn site — that is the thing being certified.
fn pass_a101(
    model: &Model,
    by_path: &BTreeMap<&str, &SourceFile>,
    spawn_facts: &[Facts],
    spawn_seeds: &[Vec<usize>],
    out: &mut Vec<Finding>,
) {
    for (si, spawn) in model.spawns.iter().enumerate() {
        // unsynchronized &mut capture: the closure writes a binding it
        // captured from the enclosing function
        for (name, _line) in spawn.closure.captured_writes() {
            out.push(mk(
                by_path,
                Code::A101,
                Severity::Error,
                &spawn.file,
                spawn.line,
                format!(
                    "worker closure writes captured binding `{name}` — an unsynchronized \
                     `&mut` capture shared across spawns is a data race; return results \
                     and commit sequentially instead"
                ),
            ));
        }
        // direct mention of a hazardous static in the closure body
        for (name, kind, _line) in &spawn_facts[si].hazard_statics {
            out.push(mk(
                by_path,
                Code::A101,
                Severity::Error,
                &spawn.file,
                spawn.line,
                format!(
                    "worker closure touches `{name}` ({kind}) — shared mutable state \
                     reachable from a spawned thread breaks parallel-safety"
                ),
            ));
        }
        // reachable through the call graph
        let reach = model.graph.reachable(&spawn_seeds[si]);
        for &fi in reach.keys() {
            for (name, kind, _line) in &model.facts[fi].hazard_statics {
                let path = model.graph.path_to(&reach, fi).join(" → ");
                out.push(mk(
                    by_path,
                    Code::A101,
                    Severity::Error,
                    &spawn.file,
                    spawn.line,
                    format!(
                        "worker closure reaches `{name}` ({kind}) via `{path}` — shared \
                         mutable state reachable from a spawned thread breaks parallel-safety"
                    ),
                ));
            }
        }
    }
}

/// A102: purity certification for candidate evaluation. Roots are the
/// spawn closures of the configured eval files; findings anchor at the
/// impure call so the suppression sits next to the evidence.
fn pass_a102(
    model: &Model,
    cfg: &AnalyzeConfig,
    by_path: &BTreeMap<&str, &SourceFile>,
    spawn_facts: &[Facts],
    spawn_seeds: &[Vec<usize>],
    out: &mut Vec<Finding>,
) {
    let telemetry = |file: &str| {
        cfg.telemetry_paths
            .iter()
            .any(|p| file.starts_with(p.as_str()))
    };
    for (si, spawn) in model.spawns.iter().enumerate() {
        if !cfg
            .eval_roots
            .iter()
            .any(|p| spawn.file.starts_with(p.as_str()))
        {
            continue;
        }
        // the closure body itself
        for (what, line) in &spawn_facts[si].wall_clock {
            out.push(mk(
                by_path,
                Code::A102,
                Severity::Error,
                &spawn.file,
                *line,
                format!(
                    "candidate-evaluation closure reads the clock (`{what}`) — scoring \
                     must be a pure function of the candidate"
                ),
            ));
        }
        for (what, line) in &spawn_facts[si].rng {
            out.push(mk(
                by_path,
                Code::A102,
                Severity::Error,
                &spawn.file,
                *line,
                format!("candidate-evaluation closure reads entropy (`{what}`)"),
            ));
        }
        // everything reachable
        let reach = model.graph.reachable(&spawn_seeds[si]);
        for &fi in reach.keys() {
            let f = &model.graph.fns[fi];
            if telemetry(&f.file) {
                continue;
            }
            for (what, line) in &model.facts[fi].wall_clock {
                let path = model.graph.path_to(&reach, fi).join(" → ");
                out.push(mk(
                    by_path,
                    Code::A102,
                    Severity::Error,
                    &f.file,
                    *line,
                    format!(
                        "`{what}` is reachable from candidate evaluation (worker closure at \
                         {}:{}, via `{path}`) — scoring must not read the clock",
                        spawn.file, spawn.line
                    ),
                ));
            }
            for (what, line) in &model.facts[fi].rng {
                let path = model.graph.path_to(&reach, fi).join(" → ");
                out.push(mk(
                    by_path,
                    Code::A102,
                    Severity::Error,
                    &f.file,
                    *line,
                    format!(
                        "`{what}` is reachable from candidate evaluation (worker closure at \
                         {}:{}, via `{path}`) — scoring must not read entropy",
                        spawn.file, spawn.line
                    ),
                ));
            }
        }
    }
}

/// A103: order-sensitive float reductions reachable from any parallel
/// region (plus the worker closures themselves). Anchored at the
/// reduction.
fn pass_a103(
    model: &Model,
    by_path: &BTreeMap<&str, &SourceFile>,
    spawn_facts: &[Facts],
    parallel_reach: &BTreeMap<usize, Option<usize>>,
    out: &mut Vec<Finding>,
) {
    for (si, spawn) in model.spawns.iter().enumerate() {
        for (desc, line) in &spawn_facts[si].reductions {
            out.push(mk(
                by_path,
                Code::A103,
                Severity::Error,
                &spawn.file,
                *line,
                format!(
                    "order-sensitive float reduction in a worker closure: {desc} — the \
                     rounded result depends on thread interleaving"
                ),
            ));
        }
    }
    for &fi in parallel_reach.keys() {
        let f = &model.graph.fns[fi];
        for (desc, line) in &model.facts[fi].reductions {
            let path = model.graph.path_to(parallel_reach, fi).join(" → ");
            out.push(mk(
                by_path,
                Code::A103,
                Severity::Error,
                &f.file,
                *line,
                format!(
                    "order-sensitive float reduction reachable from a parallel region \
                     (via `{path}`): {desc}"
                ),
            ));
        }
    }
}

/// A104: `Ordering::Relaxed` in code reachable from a parallel region
/// or sitting in a hot path, telemetry excluded. Relaxed is fine for
/// counters; it is not fine for anything whose value feeds QoR.
fn pass_a104(
    model: &Model,
    cfg: &AnalyzeConfig,
    by_path: &BTreeMap<&str, &SourceFile>,
    parallel_reach: &BTreeMap<usize, Option<usize>>,
    out: &mut Vec<Finding>,
) {
    let telemetry = |file: &str| {
        cfg.telemetry_paths
            .iter()
            .any(|p| file.starts_with(p.as_str()))
    };
    let hot = |file: &str| cfg.hot_paths.iter().any(|p| file.starts_with(p.as_str()));
    for (fi, f) in model.graph.fns.iter().enumerate() {
        if telemetry(&f.file) {
            continue;
        }
        let reachable = parallel_reach.contains_key(&fi);
        if !reachable && !hot(&f.file) {
            continue;
        }
        for line in &model.facts[fi].relaxed {
            let why = if reachable {
                "reachable from a parallel region"
            } else {
                "in a flow hot path"
            };
            out.push(mk(
                by_path,
                Code::A104,
                Severity::Warning,
                &f.file,
                *line,
                format!(
                    "`Ordering::Relaxed` {why} — relaxed atomics give no happens-before \
                     edge; anything feeding QoR needs Acquire/Release (telemetry counters \
                     belong in clk-obs)"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source_from_str;

    fn run_on(srcs: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<SourceFile> = srcs.iter().map(|(p, s)| source_from_str(p, s)).collect();
        run(&files, &AnalyzeConfig::default())
    }

    #[test]
    fn a101_reaches_static_mut_through_the_graph() {
        let f = run_on(&[(
            "crates/x/src/lib.rs",
            "static mut HITS: u64 = 0;\n\
             fn bump() { unsafe { HITS += 1; } }\n\
             fn helper() { bump(); }\n\
             fn run(s: &std::thread::Scope) {\n\
                 s.spawn(|| helper());\n\
             }\n",
        )]);
        let a101: Vec<&Finding> = f.iter().filter(|d| d.code == Code::A101).collect();
        assert_eq!(a101.len(), 1, "{f:?}");
        assert_eq!(a101[0].line, 5);
        assert!(a101[0].message.contains("HITS"));
        assert!(a101[0].message.contains("helper → bump"));
    }

    #[test]
    fn a101_flags_captured_writes() {
        let f = run_on(&[(
            "crates/x/src/lib.rs",
            "fn run(s: &std::thread::Scope) {\n\
                 let mut total = 0u64;\n\
                 s.spawn(|| { total += 1; });\n\
             }\n",
        )]);
        assert!(
            f.iter()
                .any(|d| d.code == Code::A101 && d.message.contains("total")),
            "{f:?}"
        );
    }

    #[test]
    fn a101_clean_closure_certifies_clean() {
        let f = run_on(&[(
            "crates/x/src/lib.rs",
            "fn score(x: u64) -> u64 { x * 2 }\n\
             fn run(s: &std::thread::Scope, xs: &[u64]) {\n\
                 for x in xs { s.spawn(move || score(*x)); }\n\
             }\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn a102_flags_clock_and_rng_reachable_from_eval_roots() {
        let f = run_on(&[(
            "crates/core/src/local.rs",
            "fn stamp() -> u64 { wall_now() }\n\
             fn noisy() -> f64 { random() }\n\
             fn eval(c: u64) -> u64 { stamp() + c }\n\
             fn run(s: &std::thread::Scope) {\n\
                 s.spawn(|| eval(1));\n\
                 s.spawn(|| noisy());\n\
             }\n",
        )]);
        let a102: Vec<&Finding> = f.iter().filter(|d| d.code == Code::A102).collect();
        assert_eq!(a102.len(), 2, "{f:?}");
        assert_eq!(a102[0].line, 1);
        assert_eq!(a102[1].line, 2);
    }

    #[test]
    fn a102_does_not_gate_non_eval_spawns() {
        let f = run_on(&[(
            "crates/serve/src/lib.rs",
            "fn stamp() -> u64 { wall_now() }\n\
             fn run(s: &std::thread::Scope) { s.spawn(|| stamp()); }\n",
        )]);
        assert!(f.iter().all(|d| d.code != Code::A102), "{f:?}");
    }

    #[test]
    fn a103_flags_reductions_reachable_from_parallel_regions() {
        let f = run_on(&[(
            "crates/x/src/lib.rs",
            "use std::collections::HashMap;\n\
             fn total(m: &HashMap<u32, f64>) -> f64 {\n\
                 // clk-analyze framework note: A001/A002 also fire; this\n\
                 // test only asserts on A103\n\
                 m.values().sum()\n\
             }\n\
             fn run(s: &std::thread::Scope, m: &HashMap<u32, f64>) {\n\
                 s.spawn(move || total(m));\n\
             }\n",
        )]);
        assert!(
            f.iter()
                .any(|d| d.code == Code::A103 && d.message.contains("sum")),
            "{f:?}"
        );
    }

    #[test]
    fn a104_flags_relaxed_in_hot_paths_but_not_telemetry() {
        let hot = "fn flag(a: &std::sync::atomic::AtomicU64) -> u64 {\n\
                   a.load(std::sync::atomic::Ordering::Relaxed)\n\
                   }\n";
        let f = run_on(&[("crates/core/src/local.rs", hot)]);
        assert!(f.iter().any(|d| d.code == Code::A104), "{f:?}");
        let f = run_on(&[("crates/obs/src/metrics.rs", hot)]);
        assert!(f.iter().all(|d| d.code != Code::A104), "{f:?}");
    }
}
