// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic)]
#![warn(missing_docs)]

//! The clock-network database — the design-database substrate.
//!
//! A [`ClockTree`] is a rooted tree of instances: one **source** (the clock
//! root driver), **buffers** (clock inverters from [`clk_liberty`]), and
//! **sinks** (flip-flop clock pins). Every non-root node carries the routed
//! [`clk_route::RoutePath`] from its parent's location to its own.
//!
//! On top of the instance tree, [`arcs`] derives the paper's *arc* view: an
//! arc is a maximal tree segment without branching (paper Table 1, `s_j`),
//! i.e. a junction-to-junction chain of single-fanout buffers. The global
//! LP assigns delay changes per arc; the ECO engine rebuilds whole arcs.
//!
//! [`place`] provides the floorplan/legalizer stand-in for the P&R tool:
//! positions snap to a site grid, stay out of blockages and acquire a small
//! deterministic jitter that emulates legalization displacement in a ~60%
//! utilized block — the source of LP-vs-ECO discrepancy the paper's
//! formulation explicitly guards against.
//!
//! # Examples
//!
//! ```
//! use clk_geom::Point;
//! use clk_liberty::{Library, StdCorners};
//! use clk_netlist::{ClockTree, NodeKind};
//!
//! let lib = Library::synthetic_28nm(StdCorners::c0_c1_c3());
//! let x8 = lib.cell_by_name("CLKINV_X8").expect("exists");
//! let mut tree = ClockTree::new(Point::new(0, 0), x8);
//! let buf = tree.add_node(NodeKind::Buffer(x8), Point::new(50_000, 0), tree.root());
//! let _s1 = tree.add_node(NodeKind::Sink, Point::new(100_000, 20_000), buf);
//! let _s2 = tree.add_node(NodeKind::Sink, Point::new(100_000, -20_000), buf);
//! assert_eq!(tree.sinks().count(), 2);
//! tree.validate().expect("well-formed tree");
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used))]
pub mod arcs;
pub mod io;
pub mod pairs;
pub mod place;
pub mod stats;
pub mod tree;

pub use arcs::{rebuild_arc, rebuild_arc_legalized, Arc, ArcId, ArcSet};
pub use pairs::SinkPair;
pub use place::Floorplan;
pub use stats::TreeStats;
pub use tree::{ClockTree, Node, NodeId, NodeKind, TreeError};
