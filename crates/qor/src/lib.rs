// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

//! `clk-qor` — quality-of-results telemetry for the clockvar flow.
//!
//! The paper's entire evaluation is a QoR table (skew variation sum,
//! local skew per corner, cell count, power, area, runtime — Tables
//! 3–5). This crate makes those numbers machine-readable and
//! regressable:
//!
//! * [`snapshot`] — a versioned snapshot schema ([`QorSnapshot`],
//!   `schema_version: 1`) populated from
//!   [`OptReport`](clk_skewopt::OptReport) plus the live
//!   [`MetricsSnapshot`](clk_obs::MetricsSnapshot), serialized through
//!   the zero-dependency `clk_obs::json` model;
//! * [`diff`] — a noise-aware differ with per-metric tolerance bands
//!   and improve/neutral/regress verdicts, driving the
//!   `clk-bench --bin qor` CI gate against a committed
//!   `qor-baseline.json`.
//!
//! ```
//! use clk_qor::{diff_snapshots, QorSnapshot, TolerancePolicy};
//!
//! let snap = QorSnapshot::new("deadbeef", 2015, "quick");
//! let text = snap.to_json_pretty();
//! let back = QorSnapshot::parse_str(&text).unwrap();
//! let d = diff_snapshots(&back, &snap, &TolerancePolicy::default_qor());
//! assert!(!d.has_regressions()); // a self-diff is always clean
//! ```

pub mod diff;
pub mod snapshot;

pub use diff::{diff_snapshots, Delta, Direction, QorDiff, Tolerance, TolerancePolicy, Verdict};
pub use snapshot::{CornerQor, PhaseQor, QorSnapshot, TestcaseQor, SCHEMA_VERSION};
