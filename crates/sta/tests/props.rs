//! Property tests of the golden timer and the variation metrics.

// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic)]

use clk_geom::Point;
use clk_liberty::{CellId, CornerId, Library, StdCorners};
use clk_netlist::{ArcSet, ClockTree, NodeKind, SinkPair};
use clk_sta::{alpha_factors, arc_delays_ps, pair_skews, variation_report, Timer};
use proptest::prelude::*;

fn lib() -> Library {
    Library::synthetic_28nm(StdCorners::c0_c1_c3())
}

/// A random two-level tree: root driver, `k` mid buffers, sinks under
/// each.
fn arb_tree() -> impl Strategy<Value = ClockTree> {
    prop::collection::vec(
        (
            (10_000i64..400_000, 10_000i64..400_000),
            1usize..5,
            0usize..5,
        ),
        1..6,
    )
    .prop_map(|groups| {
        let mut tree = ClockTree::new(Point::new(0, 0), CellId(4));
        let top = tree.add_node(
            NodeKind::Buffer(CellId(4)),
            Point::new(5_000, 5_000),
            tree.root(),
        );
        for ((x, y), n_sinks, size) in groups {
            let b = tree.add_node(NodeKind::Buffer(CellId(size)), Point::new(x, y), top);
            for i in 0..n_sinks {
                tree.add_node(
                    NodeKind::Sink,
                    Point::new(x + 8_000 * (i as i64 + 1), y + 5_000),
                    b,
                );
            }
        }
        tree
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arrivals are positive, increase along every path, and arc delays
    /// decompose each sink latency exactly.
    #[test]
    fn latency_decomposition(tree in arb_tree()) {
        let lib = lib();
        let timer = Timer::golden();
        for corner in lib.corner_ids() {
            let t = timer.analyze(&tree, &lib, corner);
            let arcs = ArcSet::extract(&tree);
            let d = arc_delays_ps(&tree, &arcs, &t);
            prop_assert!(d.iter().all(|&v| v > 0.0), "non-positive arc delay");
            for s in tree.sinks().collect::<Vec<_>>() {
                let path = arcs.path_arcs(&tree, s);
                let sum: f64 = path.iter().map(|a| d[a.0 as usize]).sum();
                prop_assert!((sum - t.arrival_ps(s)).abs() < 1e-9);
            }
        }
    }

    /// The slow 0.75 V corner is strictly slower than nominal at every
    /// sink; the fast FF corner strictly faster.
    #[test]
    fn corner_ordering_holds_everywhere(tree in arb_tree()) {
        let lib = lib();
        let timer = Timer::golden();
        let t0 = timer.analyze(&tree, &lib, CornerId(0));
        let t1 = timer.analyze(&tree, &lib, CornerId(1));
        let t3 = timer.analyze(&tree, &lib, CornerId(2));
        for s in tree.sinks().collect::<Vec<_>>() {
            prop_assert!(t1.arrival_ps(s) > t0.arrival_ps(s));
            prop_assert!(t3.arrival_ps(s) < t0.arrival_ps(s));
        }
    }

    /// Skews are antisymmetric in the pair orientation and the variation
    /// report is invariant under flipping every pair.
    #[test]
    fn skew_antisymmetry(tree in arb_tree()) {
        let lib = lib();
        let sinks: Vec<_> = tree.sinks().collect();
        prop_assume!(sinks.len() >= 2);
        let fwd: Vec<SinkPair> = sinks.windows(2).map(|w| SinkPair::new(w[0], w[1])).collect();
        let rev: Vec<SinkPair> = sinks.windows(2).map(|w| SinkPair::new(w[1], w[0])).collect();
        let timer = Timer::golden();
        let t = timer.analyze(&tree, &lib, CornerId(0));
        let sf = pair_skews(&t, &fwd);
        let sr = pair_skews(&t, &rev);
        for (a, b) in sf.iter().zip(&sr) {
            prop_assert!((a + b).abs() < 1e-12);
        }
        // full report invariance
        let all_f: Vec<Vec<f64>> = lib.corner_ids().map(|c| pair_skews(&timer.analyze(&tree, &lib, c), &fwd)).collect();
        let all_r: Vec<Vec<f64>> = lib.corner_ids().map(|c| pair_skews(&timer.analyze(&tree, &lib, c), &rev)).collect();
        let rf = variation_report(&all_f, &alpha_factors(&all_f), None);
        let rr = variation_report(&all_r, &alpha_factors(&all_r), None);
        prop_assert!((rf.sum - rr.sum).abs() < 1e-9);
    }

    /// Adding wire (a detour) to one sink's edge can only increase that
    /// sink's latency, and leaves other subtrees untouched.
    #[test]
    fn detour_monotonicity(tree in arb_tree(), extra in 5.0f64..80.0) {
        let lib = lib();
        let timer = Timer::golden();
        let sinks: Vec<_> = tree.sinks().collect();
        prop_assume!(sinks.len() >= 2);
        let victim = sinks[0];
        let before = timer.analyze(&tree, &lib, CornerId(0));
        let mut modified = tree.clone();
        let p = modified.parent(victim).expect("driven");
        let r = clk_route::RoutePath::with_detour(modified.loc(p), modified.loc(victim), extra);
        modified.set_route(victim, r).expect("endpoints");
        let after = timer.analyze(&modified, &lib, CornerId(0));
        prop_assert!(after.arrival_ps(victim) > before.arrival_ps(victim));
        // sinks under a different mid buffer are unaffected only if they
        // do not share the victim's driver; siblings share load changes
        for &s in &sinks[1..] {
            if modified.parent(s) != Some(p) {
                let d = (after.arrival_ps(s) - before.arrival_ps(s)).abs();
                prop_assert!(d < 1.0, "far sink moved by {d} ps");
            }
        }
    }
}
