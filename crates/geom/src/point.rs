//! Points, distances and compass directions.

/// A database-unit coordinate. 1 dbu = 1 nm.
pub type Dbu = i64;

/// Database units per micrometre.
pub const DBU_PER_UM: Dbu = 1_000;

/// A point on the chip canvas, in database units.
///
/// ```
/// use clk_geom::Point;
/// let p = Point::new(1_000, 2_000);
/// assert_eq!(p.x_um(), 1.0);
/// assert_eq!(p.manhattan(Point::new(0, 0)), 3_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Point {
    /// Horizontal coordinate in dbu.
    pub x: Dbu,
    /// Vertical coordinate in dbu.
    pub y: Dbu,
}

impl Point {
    /// Creates a point from dbu coordinates.
    #[inline]
    pub const fn new(x: Dbu, y: Dbu) -> Self {
        Point { x, y }
    }

    /// Creates a point from µm coordinates, rounding to the nearest dbu.
    #[inline]
    pub fn from_um(x_um: f64, y_um: f64) -> Self {
        Point {
            x: (x_um * DBU_PER_UM as f64).round() as Dbu,
            y: (y_um * DBU_PER_UM as f64).round() as Dbu,
        }
    }

    /// Horizontal coordinate in µm.
    #[inline]
    pub fn x_um(self) -> f64 {
        self.x as f64 / DBU_PER_UM as f64
    }

    /// Vertical coordinate in µm.
    #[inline]
    pub fn y_um(self) -> f64 {
        self.y as f64 / DBU_PER_UM as f64
    }

    /// Manhattan (rectilinear) distance to `other`, in dbu.
    #[inline]
    pub fn manhattan(self, other: Point) -> Dbu {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Manhattan distance to `other`, in µm.
    #[inline]
    pub fn manhattan_um(self, other: Point) -> f64 {
        self.manhattan(other) as f64 / DBU_PER_UM as f64
    }

    /// Component-wise translation by `(dx, dy)` dbu.
    #[inline]
    pub fn offset(self, dx: Dbu, dy: Dbu) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }

    /// Translates this point by `dist` dbu in compass direction `dir`.
    ///
    /// Diagonal directions move `dist` on **each** axis (so the Manhattan
    /// displacement of a diagonal step is `2 * dist`), matching the "displace
    /// {N, S, E, W, NE, NW, SE, SW} by 10µm" move menu of the paper, where
    /// the displacement magnitude is per-axis.
    #[inline]
    pub fn step(self, dir: Direction, dist: Dbu) -> Point {
        let (dx, dy) = dir.unit();
        Point::new(self.x + dx * dist, self.y + dy * dist)
    }

    /// Clamps the point into `rect` (inclusive bounds).
    #[inline]
    pub fn clamp_to(self, rect: crate::Rect) -> Point {
        Point::new(
            self.x.clamp(rect.lo.x, rect.hi.x),
            self.y.clamp(rect.lo.y, rect.hi.y),
        )
    }

    /// Midpoint (rounded toward negative infinity on each axis).
    #[inline]
    pub fn midpoint(self, other: Point) -> Point {
        Point::new(
            (self.x + other.x).div_euclid(2),
            (self.y + other.y).div_euclid(2),
        )
    }
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.3}, {:.3})um", self.x_um(), self.y_um())
    }
}

/// The eight compass directions used by the local-move menu (Table 2 of the
/// paper: displace {N, S, E, W, NE, NW, SE, SW}).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Direction {
    /// +y
    North,
    /// -y
    South,
    /// +x
    East,
    /// -x
    West,
    /// +x, +y
    NorthEast,
    /// -x, +y
    NorthWest,
    /// +x, -y
    SouthEast,
    /// -x, -y
    SouthWest,
}

impl Direction {
    /// All eight directions, in a stable order.
    pub const ALL: [Direction; 8] = [
        Direction::North,
        Direction::South,
        Direction::East,
        Direction::West,
        Direction::NorthEast,
        Direction::NorthWest,
        Direction::SouthEast,
        Direction::SouthWest,
    ];

    /// Per-axis unit displacement `(dx, dy)` of this direction.
    #[inline]
    pub const fn unit(self) -> (Dbu, Dbu) {
        match self {
            Direction::North => (0, 1),
            Direction::South => (0, -1),
            Direction::East => (1, 0),
            Direction::West => (-1, 0),
            Direction::NorthEast => (1, 1),
            Direction::NorthWest => (-1, 1),
            Direction::SouthEast => (1, -1),
            Direction::SouthWest => (-1, -1),
        }
    }
}

impl std::fmt::Display for Direction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Direction::North => "N",
            Direction::South => "S",
            Direction::East => "E",
            Direction::West => "W",
            Direction::NorthEast => "NE",
            Direction::NorthWest => "NW",
            Direction::SouthEast => "SE",
            Direction::SouthWest => "SW",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rect;

    #[test]
    fn manhattan_is_symmetric_and_zero_on_self() {
        let a = Point::new(3, -7);
        let b = Point::new(-2, 11);
        assert_eq!(a.manhattan(b), b.manhattan(a));
        assert_eq!(a.manhattan(a), 0);
        assert_eq!(a.manhattan(b), 5 + 18);
    }

    #[test]
    fn step_covers_all_directions() {
        let p = Point::new(0, 0);
        let mut seen = std::collections::HashSet::new();
        for d in Direction::ALL {
            seen.insert(p.step(d, 10));
        }
        assert_eq!(seen.len(), 8);
        assert_eq!(p.step(Direction::NorthEast, 10), Point::new(10, 10));
        assert_eq!(p.step(Direction::South, 10), Point::new(0, -10));
    }

    #[test]
    fn clamp_to_rect() {
        let r = Rect::new(Point::new(0, 0), Point::new(10, 10));
        assert_eq!(Point::new(-5, 4).clamp_to(r), Point::new(0, 4));
        assert_eq!(Point::new(15, 20).clamp_to(r), Point::new(10, 10));
        assert_eq!(Point::new(5, 5).clamp_to(r), Point::new(5, 5));
    }

    #[test]
    fn midpoint_rounds_down() {
        assert_eq!(
            Point::new(0, 0).midpoint(Point::new(3, 5)),
            Point::new(1, 2)
        );
        assert_eq!(
            Point::new(-1, -1).midpoint(Point::new(0, 0)),
            Point::new(-1, -1)
        );
    }

    #[test]
    fn display_formats_um() {
        assert_eq!(Point::new(1500, -250).to_string(), "(1.500, -0.250)um");
    }
}
