//! Noise-aware snapshot diffing: per-metric tolerance bands with
//! improve / neutral / regress verdicts, and the text report the
//! `clk-bench --bin qor` gate prints.
//!
//! Gating rules:
//!
//! * *QoR* metrics (variation sum, per-corner skew, cells, area,
//!   power, wirelength — all lower-is-better) gate with a relative
//!   band plus an absolute floor, so tiny designs are not failed on
//!   sub-picosecond jitter.
//! * *Performance* metrics (runtime, per-phase wall clock) and all raw
//!   counters are informational: they are reported but never fail the
//!   gate, because wall clock on a loaded CI machine is not a QoR
//!   regression.
//! * A schema-version or suite mismatch fails the gate outright — a
//!   diff across schemas is meaningless.

use std::fmt::Write as _;

use crate::snapshot::{QorSnapshot, TestcaseQor};

/// Which direction of change is an improvement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Smaller is better (skew, area, power…).
    LowerBetter,
    /// Larger is better.
    HigherBetter,
    /// Reported, never gated (runtime, counters).
    Info,
}

/// Tolerance band of one metric family.
#[derive(Debug, Clone, Copy)]
pub struct Tolerance {
    /// Relative band as a fraction of the baseline value.
    pub rel: f64,
    /// Absolute floor of the band, in the metric's own unit.
    pub abs: f64,
    /// Gating direction.
    pub direction: Direction,
}

impl Tolerance {
    const fn new(rel: f64, abs: f64, direction: Direction) -> Self {
        Tolerance {
            rel,
            abs,
            direction,
        }
    }

    /// The half-width of the neutral band around `base`.
    pub fn band(&self, base: f64) -> f64 {
        self.abs.max(self.rel * base.abs())
    }
}

/// Maps metric names (the key's last segment) to tolerance bands.
///
/// Rules match by prefix so `skew_after_ps[c1]` hits the
/// `skew_after_ps` rule; the first matching rule wins; everything
/// unmatched is informational.
#[derive(Debug, Clone)]
pub struct TolerancePolicy {
    rules: Vec<(String, Tolerance)>,
}

impl TolerancePolicy {
    /// The default QoR gate: 2% relative bands with unit-scaled
    /// absolute floors on after-metrics; before-metrics, runtime and
    /// counters informational.
    pub fn default_qor() -> Self {
        let gate = |name: &str, rel: f64, abs: f64| {
            (
                name.to_string(),
                Tolerance::new(rel, abs, Direction::LowerBetter),
            )
        };
        TolerancePolicy {
            rules: vec![
                gate("variation_after_ps", 0.02, 1.0),
                gate("skew_after_ps", 0.02, 0.5),
                gate("cells_after", 0.02, 2.0),
                gate("area_after_um2", 0.02, 5.0),
                gate("power_after_mw", 0.02, 0.05),
                gate("wirelength_um", 0.02, 10.0),
                gate("faults_absorbed", 0.0, 0.0),
            ],
        }
    }

    /// Overrides or appends the band for one metric family.
    pub fn set(&mut self, name: &str, tol: Tolerance) {
        if let Some(slot) = self.rules.iter_mut().find(|(n, _)| n == name) {
            slot.1 = tol;
        } else {
            self.rules.push((name.to_string(), tol));
        }
    }

    /// The band for `metric` (an informational band when no rule
    /// matches).
    pub fn for_metric(&self, metric: &str) -> Tolerance {
        self.rules
            .iter()
            .find(|(n, _)| metric.starts_with(n.as_str()))
            .map_or(Tolerance::new(0.0, 0.0, Direction::Info), |(_, t)| *t)
    }
}

/// Outcome of one metric comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Beyond tolerance in the good direction.
    Improved,
    /// Within the tolerance band.
    Neutral,
    /// Beyond tolerance in the bad direction — fails the gate.
    Regressed,
    /// Informational metric; never gates.
    Info,
}

impl Verdict {
    /// Short tag used in the text report.
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Improved => "improved",
            Verdict::Neutral => "neutral",
            Verdict::Regressed => "REGRESSED",
            Verdict::Info => "info",
        }
    }
}

/// One compared metric.
#[derive(Debug, Clone)]
pub struct Delta {
    /// Full metric key, `"{testcase}/{flow}.{metric}"`.
    pub key: String,
    /// Baseline value.
    pub base: f64,
    /// Current value.
    pub cur: f64,
    /// Verdict under the applied tolerance.
    pub verdict: Verdict,
}

impl Delta {
    /// Relative change vs the baseline (`0.0` when the baseline is 0).
    pub fn rel_change(&self) -> f64 {
        if self.base.abs() <= f64::EPSILON {
            0.0
        } else {
            (self.cur - self.base) / self.base.abs()
        }
    }
}

/// Result of diffing two snapshots.
#[derive(Debug, Clone, Default)]
pub struct QorDiff {
    /// Every compared metric.
    pub deltas: Vec<Delta>,
    /// Structural problems (schema mismatch, missing testcases). Any
    /// note fails the gate.
    pub notes: Vec<String>,
}

impl QorDiff {
    /// Whether the gate must fail: any regressed metric or structural
    /// note.
    pub fn has_regressions(&self) -> bool {
        !self.notes.is_empty() || self.deltas.iter().any(|d| d.verdict == Verdict::Regressed)
    }

    /// The regressed metrics.
    pub fn regressions(&self) -> impl Iterator<Item = &Delta> {
        self.deltas
            .iter()
            .filter(|d| d.verdict == Verdict::Regressed)
    }

    /// Renders the diff as an aligned text report. `verbose` includes
    /// neutral and informational rows; otherwise only improvements and
    /// regressions are listed.
    pub fn to_text(&self, verbose: bool) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<44} {:>12} {:>12} {:>8}  verdict",
            "metric", "baseline", "current", "Δ%"
        );
        for d in &self.deltas {
            if !verbose && matches!(d.verdict, Verdict::Neutral | Verdict::Info) {
                continue;
            }
            let _ = writeln!(
                out,
                "{:<44} {:>12.3} {:>12.3} {:>7.2}%  {}",
                d.key,
                d.base,
                d.cur,
                100.0 * d.rel_change(),
                d.verdict.as_str()
            );
        }
        for n in &self.notes {
            let _ = writeln!(out, "note: {n}");
        }
        let (mut imp, mut neu, mut reg, mut info) = (0usize, 0usize, 0usize, 0usize);
        for d in &self.deltas {
            match d.verdict {
                Verdict::Improved => imp += 1,
                Verdict::Neutral => neu += 1,
                Verdict::Regressed => reg += 1,
                Verdict::Info => info += 1,
            }
        }
        let _ = writeln!(
            out,
            "summary: {imp} improved, {neu} neutral, {reg} regressed, {info} informational"
        );
        out
    }
}

/// Flattens one testcase record into `(metric name, value)` pairs.
fn metrics_of(tc: &TestcaseQor) -> Vec<(String, f64)> {
    let mut m: Vec<(String, f64)> = vec![
        ("variation_before_ps".to_string(), tc.variation_before_ps),
        ("variation_after_ps".to_string(), tc.variation_after_ps),
        ("cells_before".to_string(), tc.cells_before as f64),
        ("cells_after".to_string(), tc.cells_after as f64),
        ("area_before_um2".to_string(), tc.area_before_um2),
        ("area_after_um2".to_string(), tc.area_after_um2),
        ("power_before_mw".to_string(), tc.power_before_mw),
        ("power_after_mw".to_string(), tc.power_after_mw),
        ("wirelength_um".to_string(), tc.wirelength_um),
        ("runtime_ms".to_string(), tc.runtime_ms),
        ("lp_rounds".to_string(), tc.lp_rounds as f64),
        ("lp_iterations".to_string(), tc.lp_iterations as f64),
        ("eco_accepts".to_string(), tc.eco_accepts as f64),
        ("eco_rejects".to_string(), tc.eco_rejects as f64),
        ("local_accepts".to_string(), tc.local_accepts as f64),
        ("local_rejects".to_string(), tc.local_rejects as f64),
        ("golden_evals".to_string(), tc.golden_evals as f64),
        ("faults_absorbed".to_string(), tc.faults_absorbed as f64),
        ("cert_checked".to_string(), tc.cert_checked as f64),
        ("cert_max_resid".to_string(), tc.cert_max_resid),
        ("lp_pivots".to_string(), tc.lp_pivots as f64),
        ("lp_bound_flips".to_string(), tc.lp_bound_flips as f64),
        (
            "lp_degenerate_pivots".to_string(),
            tc.lp_degenerate_pivots as f64,
        ),
        ("lp_degenerate_ratio".to_string(), tc.lp_degenerate_ratio),
    ];
    for c in &tc.corners {
        m.push((format!("skew_before_ps[{}]", c.name), c.skew_before_ps));
        m.push((format!("skew_after_ps[{}]", c.name), c.skew_after_ps));
    }
    for p in &tc.phases {
        m.push((format!("wall_ms[{}]", p.name), p.wall_ms));
    }
    m
}

/// Diffs `cur` against `base` under `policy`.
///
/// Testcases are matched by `(id, flow)`; a testcase present in the
/// baseline but absent from the current run (or vice versa) is a
/// structural note and fails the gate. Counters are compared only when
/// both sides carry them, always informationally.
pub fn diff_snapshots(base: &QorSnapshot, cur: &QorSnapshot, policy: &TolerancePolicy) -> QorDiff {
    let mut diff = QorDiff::default();
    if base.schema_version != cur.schema_version {
        diff.notes.push(format!(
            "schema_version mismatch: baseline {} vs current {}",
            base.schema_version, cur.schema_version
        ));
        return diff;
    }
    if base.suite != cur.suite {
        diff.notes.push(format!(
            "suite mismatch: baseline '{}' vs current '{}'",
            base.suite, cur.suite
        ));
    }
    if base.seed != cur.seed {
        diff.notes.push(format!(
            "seed mismatch: baseline {} vs current {} (the gate needs a fixed seed)",
            base.seed, cur.seed
        ));
    }
    for btc in &base.testcases {
        let Some(ctc) = cur
            .testcases
            .iter()
            .find(|t| t.id == btc.id && t.flow == btc.flow)
        else {
            diff.notes.push(format!(
                "testcase {}/{} missing from current run",
                btc.id, btc.flow
            ));
            continue;
        };
        let cur_metrics = metrics_of(ctc);
        for (metric, bval) in metrics_of(btc) {
            let Some((_, cval)) = cur_metrics.iter().find(|(m, _)| *m == metric) else {
                diff.notes.push(format!(
                    "{}/{}.{metric} missing from current run",
                    btc.id, btc.flow
                ));
                continue;
            };
            let tol = policy.for_metric(&metric);
            let d = *cval - bval;
            let band = tol.band(bval);
            let verdict = match tol.direction {
                Direction::Info => Verdict::Info,
                Direction::LowerBetter if d > band => Verdict::Regressed,
                Direction::LowerBetter if d < -band => Verdict::Improved,
                Direction::HigherBetter if d < -band => Verdict::Regressed,
                Direction::HigherBetter if d > band => Verdict::Improved,
                _ => Verdict::Neutral,
            };
            diff.deltas.push(Delta {
                key: format!("{}/{}.{metric}", btc.id, btc.flow),
                base: bval,
                cur: *cval,
                verdict,
            });
        }
        for (name, bval) in &btc.counters {
            if let Some((_, cval)) = ctc.counters.iter().find(|(n, _)| n == name) {
                diff.deltas.push(Delta {
                    key: format!("{}/{}.counter.{name}", btc.id, btc.flow),
                    base: *bval,
                    cur: *cval,
                    verdict: Verdict::Info,
                });
            }
        }
    }
    for ctc in &cur.testcases {
        if !base
            .testcases
            .iter()
            .any(|t| t.id == ctc.id && t.flow == ctc.flow)
        {
            diff.notes.push(format!(
                "testcase {}/{} absent from the baseline (refresh qor-baseline.json)",
                ctc.id, ctc.flow
            ));
        }
    }
    diff
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{CornerQor, PhaseQor};

    fn tc(id: &str) -> TestcaseQor {
        TestcaseQor {
            id: id.to_string(),
            flow: "global-local".to_string(),
            variation_before_ps: 100.0,
            variation_after_ps: 80.0,
            corners: vec![CornerQor {
                name: "c0".to_string(),
                skew_before_ps: 30.0,
                skew_after_ps: 29.0,
            }],
            cells_before: 50,
            cells_after: 51,
            area_before_um2: 200.0,
            area_after_um2: 205.0,
            power_before_mw: 1.0,
            power_after_mw: 1.02,
            wirelength_um: 5000.0,
            runtime_ms: 900.0,
            phases: vec![PhaseQor {
                name: "phase.global".to_string(),
                wall_ms: 500.0,
            }],
            lp_rounds: 4,
            lp_iterations: 120,
            eco_accepts: 2,
            eco_rejects: 2,
            local_accepts: 3,
            local_rejects: 9,
            golden_evals: 12,
            faults_absorbed: 0,
            cert_checked: 4,
            cert_max_resid: 1e-9,
            lp_pivots: 120,
            lp_bound_flips: 6,
            lp_degenerate_pivots: 30,
            lp_degenerate_ratio: 0.25,
            counters: vec![("lp.solves".to_string(), 4.0)],
        }
    }

    fn snap() -> QorSnapshot {
        let mut s = QorSnapshot::new("rev", 2015, "quick");
        s.testcases.push(tc("CLS1v1"));
        s
    }

    #[test]
    fn self_diff_is_clean() {
        let s = snap();
        let d = diff_snapshots(&s, &s, &TolerancePolicy::default_qor());
        assert!(!d.has_regressions(), "{}", d.to_text(true));
        assert!(d.regressions().next().is_none());
    }

    #[test]
    fn regression_beyond_band_fails_and_is_reported() {
        let base = snap();
        let mut cur = snap();
        cur.testcases[0].variation_after_ps = 90.0; // +12.5% > 2%
        let d = diff_snapshots(&base, &cur, &TolerancePolicy::default_qor());
        assert!(d.has_regressions());
        let r: Vec<&Delta> = d.regressions().collect();
        assert_eq!(r.len(), 1);
        assert!(r[0].key.ends_with("variation_after_ps"), "{}", r[0].key);
        assert!(d.to_text(false).contains("REGRESSED"));
    }

    #[test]
    fn improvement_beyond_band_is_not_a_failure() {
        let base = snap();
        let mut cur = snap();
        cur.testcases[0].variation_after_ps = 60.0;
        cur.testcases[0].corners[0].skew_after_ps = 20.0;
        let d = diff_snapshots(&base, &cur, &TolerancePolicy::default_qor());
        assert!(!d.has_regressions(), "{}", d.to_text(true));
        assert_eq!(
            d.deltas
                .iter()
                .filter(|x| x.verdict == Verdict::Improved)
                .count(),
            2
        );
    }

    #[test]
    fn noise_within_band_is_neutral() {
        let base = snap();
        let mut cur = snap();
        cur.testcases[0].variation_after_ps = 80.9; // < max(1.0, 2%·80)
        cur.testcases[0].corners[0].skew_after_ps = 29.3;
        let d = diff_snapshots(&base, &cur, &TolerancePolicy::default_qor());
        assert!(!d.has_regressions(), "{}", d.to_text(true));
    }

    #[test]
    fn runtime_blowup_is_informational() {
        let base = snap();
        let mut cur = snap();
        cur.testcases[0].runtime_ms = 90000.0;
        cur.testcases[0].phases[0].wall_ms = 80000.0;
        cur.testcases[0].counters[0].1 = 99.0;
        let d = diff_snapshots(&base, &cur, &TolerancePolicy::default_qor());
        assert!(!d.has_regressions(), "{}", d.to_text(true));
    }

    #[test]
    fn new_absorbed_fault_regresses() {
        let base = snap();
        let mut cur = snap();
        cur.testcases[0].faults_absorbed = 1;
        let d = diff_snapshots(&base, &cur, &TolerancePolicy::default_qor());
        assert!(d.has_regressions());
    }

    #[test]
    fn schema_or_membership_mismatch_fails_the_gate() {
        let base = snap();
        let mut cur = snap();
        cur.schema_version = 2;
        assert!(diff_snapshots(&base, &cur, &TolerancePolicy::default_qor()).has_regressions());
        let mut cur = snap();
        cur.testcases.clear();
        let d = diff_snapshots(&base, &cur, &TolerancePolicy::default_qor());
        assert!(d.has_regressions());
        assert!(d.notes[0].contains("missing"), "{:?}", d.notes);
    }

    #[test]
    fn policy_overrides_apply() {
        let mut p = TolerancePolicy::default_qor();
        p.set(
            "runtime_ms",
            Tolerance {
                rel: 0.5,
                abs: 0.0,
                direction: Direction::LowerBetter,
            },
        );
        let base = snap();
        let mut cur = snap();
        cur.testcases[0].runtime_ms = 2000.0;
        assert!(diff_snapshots(&base, &cur, &p).has_regressions());
    }
}
