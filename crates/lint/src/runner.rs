//! The pass registry and the report it produces.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::context::DesignCtx;
use crate::diag::{Diagnostic, Severity};
use crate::passes;

/// One audit over a design snapshot. Passes append to the shared
/// diagnostic list and must not panic on corrupt input — diagnosing
/// corruption is their job.
pub trait LintPass {
    /// Stable pass name (kebab-case), shown in reports.
    fn name(&self) -> &'static str;
    /// One-line description of the invariant the pass checks.
    fn description(&self) -> &'static str;
    /// Runs the audit, appending findings to `out`.
    fn run(&self, ctx: &DesignCtx, out: &mut Vec<Diagnostic>);
}

/// An ordered registry of lint passes.
#[derive(Default)]
pub struct LintRunner {
    passes: Vec<Box<dyn LintPass>>,
}

impl LintRunner {
    /// A runner with no passes registered.
    pub fn empty() -> Self {
        LintRunner::default()
    }

    /// A runner with the full default registry: structure, arc view,
    /// geometry, parasitics and timing audits.
    pub fn with_default_passes() -> Self {
        let mut r = LintRunner::empty();
        for p in passes::default_passes() {
            r.register(p);
        }
        r
    }

    /// A cheap structural subset (structure, arc view, geometry) for
    /// inner-loop gates where re-timing the tree would be too slow.
    pub fn structural() -> Self {
        let mut r = LintRunner::empty();
        for p in passes::structural_passes() {
            r.register(p);
        }
        r
    }

    /// Registers an additional pass at the end of the run order.
    pub fn register(&mut self, pass: Box<dyn LintPass>) -> &mut Self {
        self.passes.push(pass);
        self
    }

    /// The names of the registered passes, in run order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// `(name, description)` of every registered pass, in run order.
    pub fn pass_descriptions(&self) -> Vec<(&'static str, &'static str)> {
        self.passes
            .iter()
            .map(|p| (p.name(), p.description()))
            .collect()
    }

    /// Runs every pass over `ctx` and collects the findings.
    pub fn run(&self, ctx: &DesignCtx) -> Report {
        let mut diags = Vec::new();
        for pass in &self.passes {
            pass.run(ctx, &mut diags);
        }
        Report::from_diagnostics(diags)
    }
}

/// The outcome of a lint run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    diags: Vec<Diagnostic>,
}

impl Report {
    /// Wraps an explicit diagnostic list (used by the runner and by the
    /// standalone LP auditors).
    pub fn from_diagnostics(diags: Vec<Diagnostic>) -> Self {
        Report { diags }
    }

    /// All findings, in pass order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// Number of `Error` findings.
    pub fn error_count(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of `Warning` findings.
    pub fn warning_count(&self) -> usize {
        self.diags.len() - self.error_count()
    }

    /// Whether any `Error` finding is present.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Whether the run found nothing at all.
    pub fn is_clean(&self) -> bool {
        self.diags.is_empty()
    }

    /// The distinct codes present, with their occurrence counts.
    pub fn code_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut m = BTreeMap::new();
        for d in &self.diags {
            *m.entry(d.code).or_insert(0) += 1;
        }
        m
    }

    /// Whether a specific code was reported.
    pub fn has_code(&self, code: &str) -> bool {
        self.diags.iter().any(|d| d.code == code)
    }

    /// Plain-text rendering: one line per finding plus a summary line.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diags {
            let _ = writeln!(out, "{d}");
        }
        let _ = writeln!(
            out,
            "lint: {} error(s), {} warning(s)",
            self.error_count(),
            self.warning_count()
        );
        out
    }

    /// JSON rendering (hand-rolled; the workspace carries no serializer
    /// dependency): an object with `errors`, `warnings` and a
    /// `diagnostics` array.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"errors\": {},", self.error_count());
        let _ = writeln!(out, "  \"warnings\": {},", self.warning_count());
        out.push_str("  \"diagnostics\": [\n");
        for (i, d) in self.diags.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"code\": \"{}\", \"severity\": \"{}\", \"locus\": \"{}\", \"message\": \"{}\"}}",
                escape_json(d.code),
                d.severity,
                escape_json(&d.locus.to_string()),
                escape_json(&d.message)
            );
            out.push_str(if i + 1 < self.diags.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Locus;

    fn sample() -> Report {
        Report::from_diagnostics(vec![
            Diagnostic::error("S001", Locus::Design, "a \"broken\" link".to_string()),
            Diagnostic::warning("T002", Locus::Pair(2), "hot".to_string()),
            Diagnostic::error("S001", Locus::Design, "again".to_string()),
        ])
    }

    #[test]
    fn counts_and_codes() {
        let r = sample();
        assert_eq!(r.error_count(), 2);
        assert_eq!(r.warning_count(), 1);
        assert!(r.has_errors());
        assert!(!r.is_clean());
        assert_eq!(r.code_counts().get("S001"), Some(&2));
        assert!(r.has_code("T002"));
        assert!(!r.has_code("G001"));
    }

    #[test]
    fn text_rendering_has_summary() {
        let text = sample().to_text();
        assert!(text.contains("error [S001]"));
        assert!(text.ends_with("lint: 2 error(s), 1 warning(s)\n"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let json = sample().to_json();
        assert!(json.contains("\"errors\": 2,"));
        assert!(json.contains("a \\\"broken\\\" link"));
        assert!(json.contains("\"locus\": \"pair2\""));
    }

    #[test]
    fn default_registry_is_populated() {
        let full = LintRunner::with_default_passes();
        let names = full.pass_names();
        assert!(names.len() >= 10, "expected >= 10 passes, got {names:?}");
        let structural = LintRunner::structural();
        assert!(structural.pass_names().len() < names.len());
        for (name, desc) in full.pass_descriptions() {
            assert!(!name.is_empty() && !desc.is_empty());
        }
    }
}
