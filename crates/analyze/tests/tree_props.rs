//! Property tests for the token-tree layer the semantic passes stand
//! on: `parse_trees`/`flatten` round-trip exactly on balanced input,
//! unbalanced input comes back as a typed [`TreeError`] (never a
//! panic), and closure-capture extraction is exact on generated
//! snippets with known free names.

use std::collections::BTreeSet;

use clk_analyze::callgraph::closures_in;
use clk_analyze::tokenize;
use clk_analyze::tree::{flatten, parse_trees, TreeError};
use proptest::prelude::*;

const LEAVES: &[&str] = &["x", "y", "foo", "1", "0.5", ",", ";", "+", "::", "\"s\""];
const OPENS: &[&str] = &["(", "[", "{"];
const CLOSE_OF: &[&str] = &[")", "]", "}"];

/// Builds source that is balanced by construction from a generated
/// instruction stream: 0..3 opens a group, 3..6 closes the innermost
/// group when one is open, anything else drops a leaf. Whatever is
/// still open at the end gets closed.
fn balanced_src(prog: &[(u8, u8)]) -> String {
    let mut words: Vec<String> = Vec::new();
    let mut stack: Vec<usize> = Vec::new();
    for &(op, pick) in prog {
        match op {
            0..=2 => {
                stack.push(op as usize);
                words.push(OPENS[op as usize].to_string());
            }
            3..=5 if !stack.is_empty() => {
                let d = stack.pop().expect("non-empty");
                words.push(CLOSE_OF[d].to_string());
            }
            _ => words.push(LEAVES[pick as usize % LEAVES.len()].to_string()),
        }
        if pick % 5 == 0 {
            words.push("\n".to_string());
        }
    }
    while let Some(d) = stack.pop() {
        words.push(CLOSE_OF[d].to_string());
    }
    words.join(" ")
}

/// Reference bracket checker over raw words, for comparing against the
/// tree parser's accept/reject decision.
fn reference_balanced(words: &[&str]) -> bool {
    let mut stack = Vec::new();
    for w in words {
        match *w {
            "(" | "[" | "{" => stack.push(*w),
            ")" | "]" | "}" => {
                let open = match *w {
                    ")" => "(",
                    "]" => "[",
                    _ => "{",
                };
                if stack.pop() != Some(open) {
                    return false;
                }
            }
            _ => {}
        }
    }
    stack.is_empty()
}

/// Subset of `pool` selected by the low bits of `mask`, in pool order.
fn subset(pool: &[&'static str], mask: u8) -> Vec<&'static str> {
    pool.iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, s)| *s)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Balanced input always parses, and flattening the forest gives
    /// back the exact token stream — kinds, text, and line numbers.
    #[test]
    fn balanced_input_round_trips(
        prog in proptest::collection::vec((0u8..=9, 0u8..=255), 0..80),
    ) {
        let src = balanced_src(&prog);
        let (toks, _) = tokenize(&src);
        let trees = parse_trees(&toks).expect("balanced by construction");
        prop_assert_eq!(flatten(&trees), toks);
    }

    /// Arbitrary bracket soup: the parser accepts exactly the streams a
    /// reference stack checker accepts, rejects the rest with a typed
    /// error whose line is inside the input, and never panics.
    #[test]
    fn unbalanced_input_yields_typed_errors(
        picks in proptest::collection::vec(0usize..8, 0..40),
    ) {
        const SOUP: &[&str] = &["(", ")", "[", "]", "{", "}", "x", "\n"];
        let words: Vec<&str> = picks.iter().map(|&i| SOUP[i]).collect();
        let src = words.concat();
        let (toks, _) = tokenize(&src);
        let last_line = src.lines().count().max(1) as u32;
        match parse_trees(&toks) {
            Ok(trees) => {
                prop_assert!(reference_balanced(&words));
                prop_assert_eq!(flatten(&trees), toks);
            }
            Err(TreeError::Mismatched { line, .. }) | Err(TreeError::Unclosed { line, .. }) => {
                prop_assert!(!reference_balanced(&words));
                prop_assert!(line >= 1 && line <= last_line);
            }
        }
    }

    /// On a generated closure with disjoint parameter / capture /
    /// let-bound name pools, `captures()` reports exactly the free
    /// names — every real capture, no parameter, no local.
    #[test]
    fn closure_captures_are_exact_on_generated_snippets(
        param_mask in 0u8..8,
        cap_mask in 1u8..8,
        is_move in 0u8..2,
    ) {
        let params = subset(&["p0", "p1", "p2"], param_mask);
        let caps = subset(&["alpha", "beta", "gamma"], cap_mask);
        let is_move = is_move == 1;
        // body: one let binding a local to the first capture, then an
        // expression using every param, the local, and the other caps
        let mut terms: Vec<&str> = params.clone();
        terms.push("l0");
        terms.extend(caps.iter().skip(1).copied());
        let src = format!(
            "let f = {}|{}| {{ let l0 = {}; {} }};",
            if is_move { "move " } else { "" },
            params.join(", "),
            caps[0],
            terms.join(" + "),
        );
        let (toks, _) = tokenize(&src);
        let trees = parse_trees(&toks).expect("snippet is balanced");
        let closures = closures_in(&trees);
        prop_assert_eq!(closures.len(), 1, "snippet: {}", src);
        let c = &closures[0];
        prop_assert_eq!(c.is_move, is_move);
        prop_assert_eq!(&c.params, &params);
        let got: BTreeSet<String> = c.captures().into_iter().collect();
        let want: BTreeSet<String> = caps.iter().map(|s| (*s).to_string()).collect();
        prop_assert_eq!(got, want, "snippet: {}", src);
    }
}
