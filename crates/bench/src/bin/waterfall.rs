//! QoR waterfall, deterministic replay check, and ledger diff — the
//! consumer side of the `clk_obs::ledger` decision ledger.
//!
//! ```sh
//! cargo run --release -p clk-bench --bin waterfall -- report --quick --seed 2015
//! cargo run --release -p clk-bench --bin waterfall -- replay --quick --seed 2015
//! cargo run --release -p clk-bench --bin waterfall -- diff a.jsonl b.jsonl
//! ```
//!
//! * `report` — runs the flow suite with the decision ledger enabled
//!   and renders, per testcase, the QoR waterfall: which committed
//!   decisions (adopted global rounds, committed local moves) carried
//!   the end-to-end skew-variation reduction. The **reconciliation
//!   gate** fails the run when the ledger's committed checkpoints do
//!   not telescope to the flow's end-to-end variation within 1e-6 ps.
//!   Writes `BENCH_waterfall.md`, `BENCH_waterfall.json`, and one raw
//!   ledger per case under `BENCH_ledgers/`.
//! * `replay` — runs the suite with the ledger enabled, serializes the
//!   ledger through JSONL and back, re-applies the accepted decisions
//!   to the input tree with `clk_skewopt::replay_ledger`, and asserts
//!   the tree-outcome QoR snapshot of the replayed tree is
//!   **byte-identical** to the recorded run's.
//! * `diff` — compares two ledger JSONL files decision by decision
//!   with `clk-qor` verdict semantics (improved / neutral / REGRESSED
//!   under a tolerance band); exits non-zero on any regression.
//!
//! Shared flags: `--quick`, `--seed N`, `--sinks N`; `report` also
//! takes `--out`, `--json`, `--ledgers`; `diff` takes `--verbose`.

// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic)]

use std::fmt::Write as _;
use std::process::ExitCode;

use clk_bench::{suite_cases, ExpArgs, PreparedCase};
use clk_cts::Testcase;
use clk_netlist::{ClockTree, TreeStats};
use clk_obs::json::Value;
use clk_obs::{ledger, Ledger, LedgerRecord, Level, Obs, ObsConfig};
use clk_qor::{CornerQor, Direction, QorSnapshot, TestcaseQor, Tolerance, Verdict};
use clk_skewopt::{replay_ledger, Flow, FlowConfig};
use clk_sta::{alpha_factors, clock_power, local_skew_ps, try_pair_skews, variation_report, Timer};

/// The reconciliation gate: ledger checkpoints must telescope to the
/// end-to-end variation within this, ps.
const RECON_TOL_PS: f64 = 1e-6;

/// One committed decision of the waterfall.
struct Step {
    /// Human-readable decision label (stable across runs of the same
    /// configuration, so `diff` can align on it).
    label: String,
    /// Total skew variation after the decision, under the flow α*, ps.
    var: f64,
    /// Variation change carried by the decision, ps.
    delta: f64,
}

/// The per-testcase waterfall distilled from one ledger.
struct Waterfall {
    /// Variation at flow init, ps.
    init: f64,
    /// Variation at flow end, ps.
    end: f64,
    /// Committed decisions, in execution order.
    steps: Vec<Step>,
    /// `|last committed checkpoint − flow end|`, ps — the
    /// reconciliation error the gate bounds.
    recon_err: f64,
    /// Ledger records that should telescope but do not (phase_end
    /// checkpoints disagreeing with the walk).
    notes: Vec<String>,
}

/// Distills the committed-decision waterfall out of a parsed ledger.
fn build_waterfall(records: &[LedgerRecord]) -> Result<Waterfall, String> {
    let Some(LedgerRecord::FlowInit { var: init, .. }) = records.first() else {
        return Err("ledger does not start with flow_init".to_string());
    };
    let Some(LedgerRecord::FlowEnd { var: end }) = records.last() else {
        return Err("ledger does not end with flow_end".to_string());
    };
    // accepted ECO arcs per (round, λ-bits), for round labels
    let mut arc_counts: Vec<((u64, u64), usize)> = Vec::new();
    for rec in records {
        if let LedgerRecord::EcoArc {
            round,
            lambda,
            accepted: true,
            ..
        } = rec
        {
            let key = (*round, lambda.to_bits());
            match arc_counts.iter_mut().find(|(k, _)| *k == key) {
                Some((_, n)) => *n += 1,
                None => arc_counts.push((key, 1)),
            }
        }
    }
    let mut notes = Vec::new();
    let mut steps: Vec<Step> = Vec::new();
    let mut pending: Vec<Step> = Vec::new();
    let mut ckpt = *init;
    let mut phase_ckpt = *init;
    for rec in records {
        match rec {
            LedgerRecord::PhaseStart { .. } => {
                phase_ckpt = ckpt;
                pending.clear();
            }
            LedgerRecord::RoundEnd {
                round,
                winner_lambda,
                adopted,
                var,
            } => {
                if *adopted {
                    let wl = winner_lambda.unwrap_or(f64::NAN);
                    let arcs = arc_counts
                        .iter()
                        .find(|((r, lb), _)| *r == *round && *lb == wl.to_bits())
                        .map_or(0, |(_, n)| *n);
                    pending.push(Step {
                        label: format!("global round {round} (λ={wl}, {arcs} arcs)"),
                        var: *var,
                        delta: 0.0,
                    });
                }
                phase_ckpt = *var;
            }
            LedgerRecord::LocalCommit {
                iter,
                mv,
                committed: true,
                var: Some(v),
                ..
            } => {
                pending.push(Step {
                    label: format!("local iter {iter} (type-{} move)", mv.t),
                    var: *v,
                    delta: 0.0,
                });
                phase_ckpt = *v;
            }
            LedgerRecord::PhaseEnd {
                phase,
                committed,
                var,
            } => {
                if *committed {
                    steps.append(&mut pending);
                    ckpt = phase_ckpt;
                } else {
                    pending.clear();
                }
                if (*var - ckpt).abs() > RECON_TOL_PS {
                    notes.push(format!(
                        "phase_end({phase}) checkpoint {var} disagrees with walk {ckpt}"
                    ));
                }
            }
            _ => {}
        }
    }
    let mut prev = *init;
    for s in &mut steps {
        s.delta = s.var - prev;
        prev = s.var;
    }
    Ok(Waterfall {
        init: *init,
        end: *end,
        steps,
        recon_err: (ckpt - end).abs(),
        notes,
    })
}

/// Renders one case's waterfall as a markdown section.
fn waterfall_markdown(id: &str, seed: u64, w: &Waterfall) -> String {
    let mut out = String::new();
    let total = w.end - w.init;
    let _ = writeln!(out, "## {id} (seed {seed})\n");
    let _ = writeln!(
        out,
        "variation {:.3} → {:.3} ps ({:+.3} ps over {} committed decisions); \
         reconciliation error {:.3e} ps\n",
        w.init,
        w.end,
        total,
        w.steps.len(),
        w.recon_err
    );
    let _ = writeln!(out, "| step | Δ var (ps) | var (ps) | share |");
    let _ = writeln!(out, "|---|---:|---:|---:|");
    let _ = writeln!(out, "| start | — | {:.3} | — |", w.init);
    for s in &w.steps {
        let share = if total.abs() > f64::EPSILON {
            format!("{:.1}%", 100.0 * s.delta / total)
        } else {
            "—".to_string()
        };
        let _ = writeln!(
            out,
            "| {} | {:+.3} | {:.3} | {share} |",
            s.label, s.delta, s.var
        );
    }
    let _ = writeln!(out, "| end | — | {:.3} | — |", w.end);
    for n in &w.notes {
        let _ = writeln!(out, "\nnote: {n}");
    }
    out.push('\n');
    out
}

/// Renders one case's waterfall as a JSON object.
fn waterfall_json(id: &str, w: &Waterfall) -> Value {
    let steps: Vec<Value> = w
        .steps
        .iter()
        .map(|s| {
            Value::Obj(vec![
                ("label".to_string(), Value::from(s.label.as_str())),
                ("delta_ps".to_string(), Value::Num(s.delta)),
                ("var_ps".to_string(), Value::Num(s.var)),
            ])
        })
        .collect();
    Value::Obj(vec![
        ("id".to_string(), Value::from(id)),
        ("var_init_ps".to_string(), Value::Num(w.init)),
        ("var_end_ps".to_string(), Value::Num(w.end)),
        ("recon_err_ps".to_string(), Value::Num(w.recon_err)),
        ("steps".to_string(), Value::Arr(steps)),
    ])
}

/// Builds the tree-outcome QoR record of `tree` (see
/// [`TestcaseQor::tree_outcome`]): every field a pure function of the
/// input and optimized trees, everything else zeroed. Used on both the
/// recorded and the replayed side of the replay check, so a byte
/// difference means the trees differ.
fn tree_outcome_qor(
    id: &str,
    tc: &Testcase,
    corner_names: &[String],
    tree: &ClockTree,
    freq_ghz: f64,
) -> Result<TestcaseQor, String> {
    let timer = Timer::golden();
    let a0 = timer
        .try_analyze_all(&tc.tree, &tc.lib)
        .map_err(|e| e.to_string())?;
    let skews0: Vec<Vec<f64>> = a0
        .iter()
        .map(|t| try_pair_skews(t, tc.tree.sink_pairs()))
        .collect::<Result<_, _>>()
        .map_err(|e| e.to_string())?;
    let alphas = alpha_factors(&skews0);
    let a1 = timer
        .try_analyze_all(tree, &tc.lib)
        .map_err(|e| e.to_string())?;
    let skews1: Vec<Vec<f64>> = a1
        .iter()
        .map(|t| try_pair_skews(t, tree.sink_pairs()))
        .collect::<Result<_, _>>()
        .map_err(|e| e.to_string())?;
    let corners = corner_names
        .iter()
        .enumerate()
        .map(|(k, name)| CornerQor {
            name: name.clone(),
            skew_before_ps: local_skew_ps(&skews0[k]),
            skew_after_ps: local_skew_ps(&skews1[k]),
        })
        .collect();
    let s0 = TreeStats::compute(&tc.tree, &tc.lib);
    let s1 = TreeStats::compute(tree, &tc.lib);
    let rec = TestcaseQor {
        id: id.to_string(),
        flow: Flow::GlobalLocal.to_string(),
        variation_before_ps: variation_report(&skews0, &alphas, None).sum,
        variation_after_ps: variation_report(&skews1, &alphas, None).sum,
        corners,
        cells_before: s0.n_buffers as u64,
        cells_after: s1.n_buffers as u64,
        area_before_um2: s0.buffer_area_um2,
        area_after_um2: s1.buffer_area_um2,
        power_before_mw: clock_power(&tc.tree, &tc.lib, &a0[0], freq_ghz).total_mw(),
        power_after_mw: clock_power(tree, &tc.lib, &a1[0], freq_ghz).total_mw(),
        wirelength_um: s1.wirelength_um,
        runtime_ms: 0.0,
        phases: Vec::new(),
        lp_rounds: 0,
        lp_iterations: 0,
        eco_accepts: 0,
        eco_rejects: 0,
        local_accepts: 0,
        local_rejects: 0,
        golden_evals: 0,
        faults_absorbed: 0,
        cert_checked: 0,
        cert_max_resid: 0.0,
        lp_pivots: 0,
        lp_bound_flips: 0,
        lp_degenerate_pivots: 0,
        lp_degenerate_ratio: 0.0,
        counters: Vec::new(),
    };
    Ok(rec)
}

/// One suite run with the decision ledger enabled.
struct LedgeredRun {
    id: String,
    seed: u64,
    tc: Testcase,
    corner_names: Vec<String>,
    tree: ClockTree,
    recorded_qor: TestcaseQor,
    ledger: Ledger,
}

/// Runs the suite with ledgering on, one entry per testcase.
fn run_suite(exp: &ExpArgs) -> Result<(Vec<LedgeredRun>, FlowConfig), String> {
    let n = exp.sinks.unwrap_or(if exp.quick { 48 } else { 128 });
    let cfg_base = if exp.quick {
        clockvar_workbench::quick_flow_config()
    } else {
        let mut cfg = FlowConfig::default();
        cfg.global.max_pairs = 120;
        cfg.local.max_iterations = 12;
        cfg.train.n_cases = 60;
        cfg.train.moves_per_case = 60;
        cfg
    };
    let mut runs = Vec::new();
    for case in suite_cases(exp.seed) {
        let obs = Obs::new(ObsConfig {
            verbosity: Level::Info,
            ledger: true,
            ..ObsConfig::default()
        });
        let mut cfg = cfg_base.clone();
        cfg.obs = obs.clone();
        let prep = PreparedCase::generate(case, n, &cfg, &[Flow::GlobalLocal]);
        let (report, runtime_ms) = prep
            .run(Flow::GlobalLocal, &cfg)
            .map_err(|e| format!("{} flow failed: {e}", case.kind.name()))?;
        let wirelength = TreeStats::compute(&report.tree, &prep.tc.lib).wirelength_um;
        let recorded_qor = TestcaseQor::from_report(
            case.kind.name(),
            &prep.corner_names(),
            &report,
            obs.metrics_snapshot().as_ref(),
            runtime_ms,
            wirelength,
        );
        runs.push(LedgeredRun {
            id: case.kind.name().to_string(),
            seed: case.seed,
            corner_names: prep.corner_names(),
            tc: prep.tc,
            tree: report.tree,
            recorded_qor,
            ledger: obs.ledger(),
        });
    }
    Ok((runs, cfg_base))
}

fn mode_report(exp: &ExpArgs, out: &str, json_out: &str, ledger_dir: &str) -> Result<(), String> {
    let (runs, _cfg) = run_suite(exp)?;
    std::fs::create_dir_all(ledger_dir).map_err(|e| format!("cannot create {ledger_dir}: {e}"))?;
    let mut md = String::from("# QoR waterfall\n\nPer-testcase attribution of the end-to-end skew-variation change\nto committed ledger decisions (adopted global λ rounds, committed\nlocal moves). Regenerate with\n`cargo run --release -p clk-bench --bin waterfall -- report --quick`.\n\n");
    let mut json_cases = Vec::new();
    let mut failed = false;
    for run in &runs {
        // round-trip through JSONL before building anything: the report
        // must reflect what a consumer of the on-disk artifact sees
        let text = run.ledger.to_jsonl();
        let path = format!("{ledger_dir}/{}.jsonl", run.id);
        std::fs::write(&path, &text).map_err(|e| format!("cannot write {path}: {e}"))?;
        let records = ledger::parse_jsonl(&text).map_err(|e| format!("{}: {e}", run.id))?;
        let w = build_waterfall(&records).map_err(|e| format!("{}: {e}", run.id))?;
        let attributed: f64 = w.steps.iter().map(|s| s.delta).sum();
        println!(
            "  {:<8} var {:>8.3} -> {:>8.3} ps  {} decisions carry {:+.3} ps  recon err {:.2e} ps",
            run.id,
            w.init,
            w.end,
            w.steps.len(),
            attributed,
            w.recon_err
        );
        if w.recon_err > RECON_TOL_PS || !w.notes.is_empty() {
            for n in &w.notes {
                eprintln!("  note: {n}");
            }
            eprintln!(
                "FAIL: {} ledger does not reconcile (err {:.3e} ps > {RECON_TOL_PS} ps)",
                run.id, w.recon_err
            );
            failed = true;
        }
        md.push_str(&waterfall_markdown(&run.id, run.seed, &w));
        json_cases.push(waterfall_json(&run.id, &w));
    }
    std::fs::write(out, &md).map_err(|e| format!("cannot write {out}: {e}"))?;
    let doc = Value::Obj(vec![
        (
            "suite".to_string(),
            Value::from(if exp.quick { "quick" } else { "full" }),
        ),
        ("seed".to_string(), Value::from(exp.seed)),
        ("recon_tol_ps".to_string(), Value::Num(RECON_TOL_PS)),
        ("cases".to_string(), Value::Arr(json_cases)),
    ]);
    std::fs::write(json_out, doc.to_json()).map_err(|e| format!("cannot write {json_out}: {e}"))?;
    println!("waterfall written to {out} and {json_out}; ledgers under {ledger_dir}/");
    if failed {
        Err("reconciliation gate failed".to_string())
    } else {
        println!("waterfall: reconciliation gate clean");
        Ok(())
    }
}

fn mode_replay(exp: &ExpArgs) -> Result<(), String> {
    let (runs, cfg) = run_suite(exp)?;
    for run in &runs {
        // exercise the full serialize → parse → replay path
        let records =
            ledger::parse_jsonl(&run.ledger.to_jsonl()).map_err(|e| format!("{}: {e}", run.id))?;
        let replayed = replay_ledger(&run.tc.tree, &run.tc.lib, &run.tc.floorplan, &cfg, &records)
            .map_err(|e| format!("{}: {e}", run.id))?;
        let mut rec_snap = QorSnapshot::new("replay-check", run.seed, "replay");
        rec_snap.testcases.push(run.recorded_qor.tree_outcome());
        let mut rep_snap = QorSnapshot::new("replay-check", run.seed, "replay");
        rep_snap.testcases.push(tree_outcome_qor(
            &run.id,
            &run.tc,
            &run.corner_names,
            &replayed,
            cfg.freq_ghz,
        )?);
        // sanity: the projection helper must agree with the recorded
        // run's own tree before the byte comparison means anything
        let mut chk_snap = QorSnapshot::new("replay-check", run.seed, "replay");
        chk_snap.testcases.push(tree_outcome_qor(
            &run.id,
            &run.tc,
            &run.corner_names,
            &run.tree,
            cfg.freq_ghz,
        )?);
        if chk_snap.canonical_json() != rec_snap.canonical_json() {
            return Err(format!(
                "{}: tree-outcome projection disagrees with the recorded report",
                run.id
            ));
        }
        if rep_snap.canonical_json() != rec_snap.canonical_json() {
            eprintln!("recorded:\n{}", rec_snap.canonical_json());
            eprintln!("replayed:\n{}", rep_snap.canonical_json());
            return Err(format!("{}: replayed snapshot differs byte-wise", run.id));
        }
        println!(
            "  {:<8} replayed {} ledger records; snapshot byte-identical",
            run.id,
            records.len()
        );
    }
    println!("replay: all testcases byte-identical");
    Ok(())
}

fn mode_diff(base_path: &str, cur_path: &str, verbose: bool) -> Result<bool, String> {
    let load = |p: &str| -> Result<Waterfall, String> {
        let text = std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))?;
        let records = ledger::parse_jsonl(&text).map_err(|e| format!("{p}: {e}"))?;
        build_waterfall(&records).map_err(|e| format!("{p}: {e}"))
    };
    let base = load(base_path)?;
    let cur = load(cur_path)?;
    let tol = Tolerance {
        rel: 0.02,
        abs: 1.0,
        direction: Direction::LowerBetter,
    };
    let verdict = |b: f64, c: f64| -> Verdict {
        let d = c - b;
        let band = tol.band(b);
        if d > band {
            Verdict::Regressed
        } else if d < -band {
            Verdict::Improved
        } else {
            Verdict::Neutral
        }
    };
    println!(
        "{:<44} {:>12} {:>12} {:>9}  verdict",
        "decision", "base var", "cur var", "Δ ps"
    );
    let mut regressed = false;
    let mut row = |label: &str, b: f64, c: f64| {
        let v = verdict(b, c);
        regressed |= v == Verdict::Regressed;
        if verbose || v != Verdict::Neutral {
            println!(
                "{label:<44} {b:>12.3} {c:>12.3} {:>+9.3}  {}",
                c - b,
                v.as_str()
            );
        }
    };
    row("flow init", base.init, cur.init);
    for s in &cur.steps {
        match base.steps.iter().find(|b| b.label == s.label) {
            Some(b) => row(&s.label, b.var, s.var),
            None => println!(
                "{:<44} {:>12} {:>12.3} {:>9}  new decision",
                s.label, "—", s.var, ""
            ),
        }
    }
    for b in &base.steps {
        if !cur.steps.iter().any(|s| s.label == b.label) {
            println!(
                "{:<44} {:>12.3} {:>12} {:>9}  decision dropped",
                b.label, b.var, "—", ""
            );
        }
    }
    row("flow end", base.end, cur.end);
    println!(
        "summary: end-to-end {:+.3} ps (base {:+.3}, cur {:+.3})",
        (cur.end - cur.init) - (base.end - base.init),
        base.end - base.init,
        cur.end - cur.init
    );
    Ok(regressed)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().collect();
    let mode = argv.get(1).map_or("", String::as_str);
    let flag_val = |name: &str| -> Option<String> {
        argv.iter()
            .position(|a| a == name)
            .and_then(|i| argv.get(i + 1).cloned())
    };
    let exp = ExpArgs::parse();
    match mode {
        "report" => {
            let out = flag_val("--out").unwrap_or_else(|| "BENCH_waterfall.md".to_string());
            let json_out = flag_val("--json").unwrap_or_else(|| "BENCH_waterfall.json".to_string());
            let ledgers = flag_val("--ledgers").unwrap_or_else(|| "BENCH_ledgers".to_string());
            println!(
                "waterfall report: suite '{}', seed {}",
                if exp.quick { "quick" } else { "full" },
                exp.seed
            );
            match mode_report(&exp, &out, &json_out, &ledgers) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("FAIL: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "replay" => {
            println!(
                "waterfall replay: suite '{}', seed {}",
                if exp.quick { "quick" } else { "full" },
                exp.seed
            );
            match mode_replay(&exp) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("FAIL: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "diff" => {
            let files: Vec<&String> = argv[2..].iter().filter(|a| !a.starts_with("--")).collect();
            let verbose = argv.iter().any(|a| a == "--verbose");
            if files.len() != 2 {
                eprintln!("usage: waterfall diff <base.jsonl> <cur.jsonl> [--verbose]");
                return ExitCode::FAILURE;
            }
            match mode_diff(files[0], files[1], verbose) {
                Ok(false) => {
                    println!("diff: no regressions");
                    ExitCode::SUCCESS
                }
                Ok(true) => {
                    eprintln!("FAIL: ledger diff regressed beyond tolerance");
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("FAIL: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => {
            eprintln!("usage: waterfall <report|replay|diff> [flags]");
            eprintln!("  report [--quick] [--seed N] [--sinks N] [--out MD] [--json JSON] [--ledgers DIR]");
            eprintln!("  replay [--quick] [--seed N] [--sinks N]");
            eprintln!("  diff <base.jsonl> <cur.jsonl> [--verbose]");
            ExitCode::FAILURE
        }
    }
}
