//! Design interchange: a round-trippable `.ctree` text format, a
//! structural Verilog writer and a DEF-style placement writer.
//!
//! The paper's flow lives inside a commercial P&R database and exchanges
//! data through standard formats; this module is that interface's
//! stand-in. The `.ctree` dialect is the workspace's own save format
//! (written by [`write_ctree`], read back by [`parse_ctree`]); Verilog
//! and DEF output let external tools consume the optimized tree.

use std::collections::HashMap;
use std::fmt::Write as _;

use clk_geom::Point;
use clk_liberty::{Library, LimitExceeded, ParseLimits};
use clk_route::RoutePath;

use crate::pairs::SinkPair;
use crate::tree::{ClockTree, NodeId, NodeKind};

/// Serializes `tree` as `.ctree` text (one node per line, parents before
/// children, routes inline, sink pairs at the end).
///
/// ```
/// use clk_geom::Point;
/// use clk_liberty::{Library, StdCorners};
/// use clk_netlist::{ClockTree, NodeKind};
///
/// let lib = Library::synthetic_28nm(StdCorners::c0_c1_c3());
/// let x8 = lib.cell_by_name("CLKINV_X8").expect("exists");
/// let mut t = ClockTree::new(Point::new(0, 0), x8);
/// let b = t.add_node(NodeKind::Buffer(x8), Point::new(5_000, 0), t.root());
/// t.add_node(NodeKind::Sink, Point::new(9_000, 4_000), b);
/// let text = clk_netlist::io::write_ctree(&t, &lib);
/// let back = clk_netlist::io::parse_ctree(&text, &lib).expect("round trip");
/// assert_eq!(back.sinks().count(), 1);
/// ```
pub fn write_ctree(tree: &ClockTree, lib: &Library) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "ctree 1");
    let src = tree.root();
    let _ = writeln!(
        out,
        "source n{} {} {} {}",
        src.0,
        tree.loc(src).x,
        tree.loc(src).y,
        lib.cell(tree.source_cell()).name
    );
    // BFS guarantees parents precede children
    let mut queue = std::collections::VecDeque::from([src]);
    while let Some(n) = queue.pop_front() {
        for &c in tree.children(n) {
            queue.push_back(c);
            let node = tree.node(c);
            let kind = match node.kind {
                NodeKind::Buffer(cell) => format!("buffer {}", lib.cell(cell).name),
                NodeKind::Sink => "sink".to_string(),
                // a child with Source kind means the tree is corrupt;
                // skip the record so the output fails to re-parse
                // (missing parent) instead of panicking mid-write
                NodeKind::Source => continue,
            };
            // likewise: a non-root without a route writes an empty
            // polyline, which the reader rejects with a typed error
            let route = node
                .route
                .as_ref()
                .map(|r| {
                    r.points()
                        .iter()
                        .map(|p| format!("{} {}", p.x, p.y))
                        .collect::<Vec<_>>()
                        .join(" ")
                })
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "node n{} {kind} {} {} parent n{} route {route}",
                c.0, node.loc.x, node.loc.y, n.0
            );
        }
    }
    for p in tree.sink_pairs() {
        let _ = writeln!(out, "pair n{} n{} weight {}", p.a.0, p.b.0, p.weight);
    }
    out
}

/// Errors from [`parse_ctree`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCtreeError {
    /// 1-based source line (0 for whole-input errors found after
    /// reading, e.g. the final validation).
    pub line: usize,
    /// Byte offset into the input where the offending line starts.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseCtreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ctree parse error at line {} (byte {}): {}",
            self.line, self.offset, self.message
        )
    }
}

impl std::error::Error for ParseCtreeError {}

/// Parses `.ctree` text back into a [`ClockTree`] under the default
/// [`ParseLimits`]. Node ids are remapped; structure, locations, routes,
/// cells and sink pairs are preserved.
///
/// # Errors
///
/// [`ParseCtreeError`] on malformed lines, unknown cells, missing
/// parents, invalid routes or exceeded limits.
pub fn parse_ctree(text: &str, lib: &Library) -> Result<ClockTree, ParseCtreeError> {
    parse_ctree_with_limits(text, lib, &ParseLimits::default())
}

/// [`parse_ctree`] with an explicit resource-limit policy for untrusted
/// input. Every limit violation is a typed error carrying the byte
/// offset of the offending line — never a panic, never unbounded
/// allocation.
pub fn parse_ctree_with_limits(
    text: &str,
    lib: &Library,
    limits: &ParseLimits,
) -> Result<ClockTree, ParseCtreeError> {
    let fail = |line: usize, offset: usize, m: &str| ParseCtreeError {
        line,
        offset,
        message: m.to_string(),
    };
    let over = |line: usize, offset: usize, e: LimitExceeded| ParseCtreeError {
        line,
        offset,
        message: e.to_string(),
    };
    limits.check_bytes(text.len()).map_err(|e| over(1, 0, e))?;
    // (line number, byte offset of line start, line content)
    let mut lines = text
        .split_inclusive('\n')
        .scan(0usize, |off, seg| {
            let start = *off;
            *off += seg.len();
            Some((start, seg.trim_end_matches(['\n', '\r'])))
        })
        .enumerate()
        .map(|(i, (off, s))| (i + 1, off, s));
    let (_, _, header) = lines.next().ok_or_else(|| fail(1, 0, "empty input"))?;
    if header.trim() != "ctree 1" {
        return Err(fail(1, 0, "expected header `ctree 1`"));
    }
    let mut tree: Option<ClockTree> = None;
    let mut ids: HashMap<String, NodeId> = HashMap::new();
    let mut pairs: Vec<SinkPair> = Vec::new();
    let mut records = 0usize;
    for (ln, off, raw) in lines {
        if raw.len() > limits.max_token_len {
            return Err(over(
                ln,
                off,
                LimitExceeded {
                    what: "line length",
                    actual: raw.len(),
                    limit: limits.max_token_len,
                },
            ));
        }
        let toks: Vec<&str> = raw.split_whitespace().collect();
        if toks.is_empty() {
            continue;
        }
        records += 1;
        if records > limits.max_records {
            return Err(over(
                ln,
                off,
                LimitExceeded {
                    what: "records",
                    actual: records,
                    limit: limits.max_records,
                },
            ));
        }
        let int = |s: &str| -> Result<i64, ParseCtreeError> {
            s.parse().map_err(|_| fail(ln, off, "bad integer"))
        };
        match toks[0] {
            "source" => {
                if toks.len() != 5 {
                    return Err(fail(ln, off, "source needs: name x y cell"));
                }
                let cell = lib
                    .cell_by_name(toks[4])
                    .ok_or_else(|| fail(ln, off, "unknown source cell"))?;
                let loc = Point::new(int(toks[2])?, int(toks[3])?);
                let t = ClockTree::new(loc, cell);
                ids.insert(toks[1].to_string(), t.root());
                tree = Some(t);
            }
            "node" => {
                let tree = tree
                    .as_mut()
                    .ok_or_else(|| fail(ln, off, "node before source"))?;
                // node nX buffer CELL x y parent nY route ...
                // node nX sink x y parent nY route ...
                let (kind, rest) = match toks.get(2) {
                    Some(&"buffer") => {
                        let cell = lib
                            .cell_by_name(toks.get(3).ok_or_else(|| fail(ln, off, "missing cell"))?)
                            .ok_or_else(|| fail(ln, off, "unknown cell"))?;
                        (NodeKind::Buffer(cell), &toks[4..])
                    }
                    Some(&"sink") => (NodeKind::Sink, &toks[3..]),
                    _ => return Err(fail(ln, off, "node kind must be buffer|sink")),
                };
                if rest.len() < 5 || rest[2] != "parent" || rest[4] != "route" {
                    return Err(fail(ln, off, "node needs: x y parent nY route pts..."));
                }
                let loc = Point::new(int(rest[0])?, int(rest[1])?);
                let parent = *ids
                    .get(rest[3])
                    .ok_or_else(|| fail(ln, off, "parent not yet defined"))?;
                // bound the point count before parsing a single number
                let n_coords = rest[5..].len();
                if n_coords / 2 > limits.max_route_points {
                    return Err(over(
                        ln,
                        off,
                        LimitExceeded {
                            what: "route points",
                            actual: n_coords / 2,
                            limit: limits.max_route_points,
                        },
                    ));
                }
                let pts: Vec<i64> = rest[5..].iter().map(|s| int(s)).collect::<Result<_, _>>()?;
                if pts.len() < 4 || !pts.len().is_multiple_of(2) {
                    return Err(fail(ln, off, "route needs >= 2 points"));
                }
                let route_pts: Vec<Point> = pts.chunks(2).map(|c| Point::new(c[0], c[1])).collect();
                if route_pts
                    .windows(2)
                    .any(|w| w[0].x != w[1].x && w[0].y != w[1].y)
                {
                    return Err(fail(ln, off, "route not rectilinear"));
                }
                let route = RoutePath::from_points(route_pts);
                let id = tree
                    .add_node_with_route(kind, loc, parent, route)
                    .map_err(|e| fail(ln, off, &e.to_string()))?;
                ids.insert(toks[1].to_string(), id);
            }
            "pair" => {
                if toks.len() != 5 || toks[3] != "weight" {
                    return Err(fail(ln, off, "pair needs: nA nB weight w"));
                }
                let a = *ids
                    .get(toks[1])
                    .ok_or_else(|| fail(ln, off, "unknown pair sink"))?;
                let b = *ids
                    .get(toks[2])
                    .ok_or_else(|| fail(ln, off, "unknown pair sink"))?;
                let w: f64 = toks[4].parse().map_err(|_| fail(ln, off, "bad weight"))?;
                pairs.push(SinkPair::with_weight(a, b, w));
            }
            _ => return Err(fail(ln, off, "unknown record")),
        }
    }
    let mut tree = tree.ok_or_else(|| fail(1, 0, "no source record"))?;
    tree.set_sink_pairs(pairs);
    tree.validate()
        .map_err(|e| fail(0, 0, &format!("invalid tree: {e}")))?;
    Ok(tree)
}

/// Writes the tree as a structural Verilog netlist: one inverter instance
/// per buffer, one wire per net, sinks exported as output ports.
pub fn write_verilog(tree: &ClockTree, lib: &Library, module: &str) -> String {
    let mut out = String::new();
    let sinks: Vec<NodeId> = tree.sinks().collect();
    let _ = writeln!(out, "// generated by clockvar");
    let _ = writeln!(out, "module {module} (");
    let _ = writeln!(out, "  input  wire clk_in,");
    let ports: Vec<String> = sinks.iter().map(|s| format!("ck_n{}", s.0)).collect();
    let _ = writeln!(out, "  output wire {}", ports.join(",\n  output wire "));
    let _ = writeln!(out, ");");
    // net of a node's output
    let net_of = |n: NodeId| -> String {
        if n == tree.root() {
            "w_src".to_string()
        } else {
            format!("w_n{}", n.0)
        }
    };
    for b in tree.buffers().collect::<Vec<_>>() {
        let _ = writeln!(out, "  wire w_n{};", b.0);
    }
    let _ = writeln!(out, "  wire w_src;");
    let src_cell = lib.cell(tree.source_cell());
    let _ = writeln!(out, "  {} u_src (.A(clk_in), .Y(w_src));", src_cell.name);
    for b in tree.buffers().collect::<Vec<_>>() {
        // a buffer without a parent or cell means the tree is corrupt;
        // omit its instance rather than panic mid-write (the resulting
        // netlist has a dangling wire an external linter will flag)
        let (Some(parent), Some(cell)) = (tree.parent(b), tree.cell(b)) else {
            continue;
        };
        let _ = writeln!(
            out,
            "  {} u_n{} (.A({}), .Y({}));",
            lib.cell(cell).name,
            b.0,
            net_of(parent),
            net_of(b)
        );
    }
    for s in &sinks {
        // same policy: a driverless sink port is left unassigned
        let Some(parent) = tree.parent(*s) else {
            continue;
        };
        let _ = writeln!(out, "  assign ck_n{} = {};", s.0, net_of(parent));
    }
    let _ = writeln!(out, "endmodule");
    out
}

/// Writes a DEF-style snapshot: DIEAREA, COMPONENTS with placements, PINS
/// for the sinks. Routing is omitted (DEF SPECIALNETS would be overkill
/// for a clock-tree snapshot; the `.ctree` format carries exact routes).
pub fn write_def(tree: &ClockTree, lib: &Library, design: &str, die: clk_geom::Rect) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "VERSION 5.8 ;");
    let _ = writeln!(out, "DESIGN {design} ;");
    let _ = writeln!(out, "UNITS DISTANCE MICRONS 1000 ;");
    let _ = writeln!(
        out,
        "DIEAREA ( {} {} ) ( {} {} ) ;",
        die.lo.x, die.lo.y, die.hi.x, die.hi.y
    );
    let buffers: Vec<NodeId> = tree.buffers().collect();
    let _ = writeln!(out, "COMPONENTS {} ;", buffers.len() + 1);
    let src = tree.root();
    let _ = writeln!(
        out,
        "- u_src {} + PLACED ( {} {} ) N ;",
        lib.cell(tree.source_cell()).name,
        tree.loc(src).x,
        tree.loc(src).y
    );
    for b in &buffers {
        // a cell-less buffer means the tree is corrupt; omit the
        // component (the COMPONENTS count above will disagree, which
        // external DEF checkers flag) rather than panic mid-write
        let Some(cell) = tree.cell(*b) else { continue };
        let p = tree.loc(*b);
        let _ = writeln!(
            out,
            "- u_n{} {} + PLACED ( {} {} ) N ;",
            b.0,
            lib.cell(cell).name,
            p.x,
            p.y
        );
    }
    let _ = writeln!(out, "END COMPONENTS");
    let sinks: Vec<NodeId> = tree.sinks().collect();
    let _ = writeln!(out, "PINS {} ;", sinks.len());
    for s in &sinks {
        let p = tree.loc(*s);
        let _ = writeln!(
            out,
            "- ck_n{} + NET ck_n{} + DIRECTION OUTPUT + PLACED ( {} {} ) N ;",
            s.0, s.0, p.x, p.y
        );
    }
    let _ = writeln!(out, "END PINS");
    let _ = writeln!(out, "END DESIGN");
    out
}

#[cfg(test)]
// tests pin exact expected values on purpose
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use clk_liberty::StdCorners;

    fn fixture() -> (ClockTree, Library) {
        let lib = Library::synthetic_28nm(StdCorners::c0_c1_c3());
        let x4 = lib.cell_by_name("CLKINV_X4").unwrap();
        let x8 = lib.cell_by_name("CLKINV_X8").unwrap();
        let mut t = ClockTree::new(Point::new(100, 200), x8);
        let b1 = t.add_node(NodeKind::Buffer(x8), Point::new(10_000, 200), t.root());
        let b2 = t.add_node(NodeKind::Buffer(x4), Point::new(20_000, 5_000), b1);
        let s1 = t.add_node(NodeKind::Sink, Point::new(30_000, 5_000), b2);
        let s2 = t.add_node(NodeKind::Sink, Point::new(20_000, 9_000), b2);
        // a detoured route survives the round trip
        let det = RoutePath::with_detour(t.loc(b2), t.loc(s2), 25.0);
        t.set_route(s2, det).unwrap();
        t.set_sink_pairs(vec![SinkPair::with_weight(s1, s2, 2.0)]);
        (t, lib)
    }

    #[test]
    fn ctree_round_trip_preserves_everything() {
        let (t, lib) = fixture();
        let text = write_ctree(&t, &lib);
        let back = parse_ctree(&text, &lib).unwrap();
        back.validate().unwrap();
        assert_eq!(back.len(), t.len());
        assert_eq!(back.sinks().count(), 2);
        assert_eq!(back.sink_pairs().len(), 1);
        assert_eq!(back.sink_pairs()[0].weight, 2.0);
        // total wirelength identical (routes preserved, incl. the detour)
        let wl = |t: &ClockTree| -> f64 {
            t.node_ids()
                .filter_map(|n| {
                    t.node(n)
                        .route
                        .as_ref()
                        .map(clk_route::RoutePath::length_um)
                })
                .sum()
        };
        assert!((wl(&t) - wl(&back)).abs() < 1e-9);
        // and a second round trip is byte-identical (canonical form)
        let text2 = write_ctree(&back, &lib);
        assert_eq!(text, text2);
    }

    #[test]
    fn ctree_parse_rejects_malformed() {
        let (_, lib) = fixture();
        assert!(parse_ctree("", &lib).is_err());
        assert!(parse_ctree("ctree 2\n", &lib).is_err());
        assert!(parse_ctree("ctree 1\nnode n1 sink 0 0 parent n0 route 0 0 1 1\n", &lib).is_err());
        let bad_cell = "ctree 1\nsource n0 0 0 NOPE\n";
        assert!(parse_ctree(bad_cell, &lib).is_err());
        // diagonal route
        let diag = "ctree 1\nsource n0 0 0 CLKINV_X16\nnode n1 sink 5 5 parent n0 route 0 0 5 5\n";
        assert!(parse_ctree(diag, &lib).is_err());
    }

    #[test]
    fn ctree_limits_reject_adversarial_input() {
        let (t, lib) = fixture();
        let text = write_ctree(&t, &lib);
        let tiny = ParseLimits {
            max_bytes: 16,
            ..ParseLimits::strict()
        };
        let e = parse_ctree_with_limits(&text, &lib, &tiny).unwrap_err();
        assert!(e.message.contains("input bytes"), "{e}");
        let few = ParseLimits {
            max_records: 2,
            ..ParseLimits::strict()
        };
        let e = parse_ctree_with_limits(&text, &lib, &few).unwrap_err();
        assert!(e.message.contains("records"), "{e}");
        assert!(e.offset > 0);
        let skinny = ParseLimits {
            max_route_points: 1,
            ..ParseLimits::strict()
        };
        let e = parse_ctree_with_limits(&text, &lib, &skinny).unwrap_err();
        assert!(e.message.contains("route points"), "{e}");
        // own output passes even the strict policy
        parse_ctree_with_limits(&text, &lib, &ParseLimits::strict()).unwrap();
    }

    #[test]
    fn ctree_errors_carry_byte_offsets() {
        let (_, lib) = fixture();
        let text = "ctree 1\nsource n0 0 0 CLKINV_X16\nbogus record\n";
        let e = parse_ctree(text, &lib).unwrap_err();
        assert_eq!(e.line, 3);
        // "ctree 1\n" is 8 bytes, the source line is 25: line 3 starts at 33
        assert_eq!(e.offset, 33);
        assert!(e.to_string().contains("byte 33"));
    }

    #[test]
    fn verilog_is_structurally_sound() {
        let (t, lib) = fixture();
        let v = write_verilog(&t, &lib, "clk_tree");
        assert!(v.contains("module clk_tree"));
        assert!(v.contains("endmodule"));
        // one instance per buffer + the source driver
        let instances = v.matches("(.A(").count();
        assert_eq!(instances, t.buffers().count() + 1);
        // every sink becomes an output assign
        assert_eq!(v.matches("assign ck_n").count(), 2);
    }

    #[test]
    fn def_lists_components_and_pins() {
        let (t, lib) = fixture();
        let d = write_def(
            &t,
            &lib,
            "clockvar_demo",
            clk_geom::Rect::from_um(0.0, 0.0, 100.0, 100.0),
        );
        assert!(d.contains("DESIGN clockvar_demo ;"));
        assert!(d.contains(&format!("COMPONENTS {} ;", t.buffers().count() + 1)));
        assert!(d.contains("END DESIGN"));
        assert_eq!(d.matches("+ PLACED (").count(), t.buffers().count() + 1 + 2);
    }
}
