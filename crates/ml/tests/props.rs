//! Property tests of the ML substrate.

// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic)]

use clk_ml::{kfold_indices, polyfit, polyval, LsSvm, Matrix, Regressor, StandardScaler};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// LU solves random well-conditioned systems to high accuracy.
    #[test]
    fn lu_solves_diagonally_dominant(vals in prop::collection::vec(-1.0f64..1.0, 9),
                                     rhs in prop::collection::vec(-10.0f64..10.0, 3)) {
        let mut data = vals.clone();
        // make it diagonally dominant => nonsingular
        for i in 0..3 {
            data[i * 3 + i] = 5.0 + vals[i * 3 + i].abs();
        }
        let a = Matrix::from_rows(3, 3, data);
        let x = a.lu_solve(&rhs).expect("dominant matrices are nonsingular");
        let back = a.matvec(&x);
        for (b, r) in back.iter().zip(&rhs) {
            prop_assert!((b - r).abs() < 1e-8);
        }
    }

    /// Cholesky agrees with LU on SPD systems built as AᵀA + I.
    #[test]
    fn cholesky_matches_lu(vals in prop::collection::vec(-2.0f64..2.0, 9),
                           rhs in prop::collection::vec(-5.0f64..5.0, 3)) {
        let m = Matrix::from_rows(3, 3, vals);
        let mut a = m.transpose().matmul(&m);
        for i in 0..3 {
            a[(i, i)] += 1.0;
        }
        let x1 = a.cholesky_solve(&rhs).expect("SPD");
        let x2 = a.lu_solve(&rhs).expect("nonsingular");
        for (p, q) in x1.iter().zip(&x2) {
            prop_assert!((p - q).abs() < 1e-7);
        }
    }

    /// polyfit recovers polynomials it generated, for any degree ≤ 3.
    #[test]
    fn polyfit_recovers(coeffs in prop::collection::vec(-3.0f64..3.0, 1..5)) {
        let xs: Vec<f64> = (0..25).map(|i| f64::from(i) * 0.37 - 3.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| polyval(&coeffs, x)).collect();
        let fit = polyfit(&xs, &ys, coeffs.len() - 1);
        for (&x, &y) in xs.iter().zip(&ys) {
            prop_assert!((polyval(&fit, x) - y).abs() < 1e-5);
        }
    }

    /// Standardization round-trips arbitrary batches.
    #[test]
    fn scaler_roundtrips(rows in prop::collection::vec(prop::collection::vec(-100.0f64..100.0, 3), 2..20)) {
        let sc = StandardScaler::fit(&rows);
        for r in &rows {
            let back = sc.inverse(&sc.transform(r));
            for (a, b) in back.iter().zip(r) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }
    }

    /// k-fold indices partition 0..n for any valid (n, k).
    #[test]
    fn kfold_partitions(n in 2usize..60, kseed in 0u64..50) {
        let k = 2 + (kseed as usize % (n - 1)).min(8);
        let folds = kfold_indices(n, k, kseed);
        let mut all: Vec<usize> = folds.concat();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    /// LS-SVM with huge C interpolates any small clean dataset.
    #[test]
    fn lssvm_interpolates(ys in prop::collection::vec(-5.0f64..5.0, 3..10)) {
        let xs: Vec<Vec<f64>> = (0..ys.len()).map(|i| vec![i as f64]).collect();
        let m = LsSvm::train(&xs, &ys, 1.0, 1e7);
        for (x, y) in xs.iter().zip(&ys) {
            prop_assert!((m.predict(x) - y).abs() < 1e-2, "{} vs {}", m.predict(x), y);
        }
    }
}
