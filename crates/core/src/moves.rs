//! The local-move menu of Table 2: sizing/displacement (type I), child
//! sizing with displacement (type II), and tree surgery (type III).

use clk_geom::{um_to_dbu, Direction, Rect};
use clk_liberty::Library;
use clk_netlist::{ClockTree, Floorplan, NodeId, NodeKind, TreeError};

/// One-step sizing choice attached to a move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resize {
    /// Keep the cell.
    None,
    /// One library size up.
    Up,
    /// One library size down.
    Down,
}

/// A candidate local move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Move {
    /// Type I: displace the buffer in one of the 8 compass directions by
    /// the configured step (or not at all) and/or change its size one
    /// step.
    SizeDisplace {
        /// The buffer to perturb.
        node: NodeId,
        /// Displacement direction (`None` = sizing-only move).
        dir: Option<Direction>,
        /// Sizing component.
        resize: Resize,
    },
    /// Type II: displace the buffer and size one of its child buffers.
    ChildSize {
        /// The buffer to displace.
        node: NodeId,
        /// Displacement direction.
        dir: Direction,
        /// The child buffer to resize.
        child: NodeId,
        /// Child sizing (never [`Resize::None`] — that would be type I).
        child_resize: Resize,
    },
    /// Type III: tree surgery — drive `node` from `new_parent` instead of
    /// its current driver.
    Reassign {
        /// The node being re-driven.
        node: NodeId,
        /// The new driver (same buffer level, within the surgery box).
        new_parent: NodeId,
    },
}

impl Move {
    /// The node whose downstream subtree the move primarily perturbs.
    pub fn primary_node(&self) -> NodeId {
        match *self {
            Move::SizeDisplace { node, .. }
            | Move::ChildSize { node, .. }
            | Move::Reassign { node, .. } => node,
        }
    }

    /// Paper move type: 1, 2 or 3.
    pub fn move_type(&self) -> u8 {
        match self {
            Move::SizeDisplace { .. } => 1,
            Move::ChildSize { .. } => 2,
            Move::Reassign { .. } => 3,
        }
    }

    /// Serializes the move into its decision-ledger record. Directions
    /// are encoded as indices into [`Direction::ALL`] (a stable order),
    /// so a ledger written by one build replays on another.
    pub fn to_ledger_rec(&self) -> clk_obs::MoveRec {
        let dir_idx = |d: Direction| {
            Direction::ALL
                .iter()
                .position(|&x| x == d)
                .map(|i| i as u64)
        };
        match *self {
            Move::SizeDisplace { node, dir, resize } => clk_obs::MoveRec {
                t: 1,
                node: u64::from(node.0),
                dir: dir.and_then(dir_idx),
                resize: resize.ledger_str().to_string(),
                child: None,
                new_parent: None,
            },
            Move::ChildSize {
                node,
                dir,
                child,
                child_resize,
            } => clk_obs::MoveRec {
                t: 2,
                node: u64::from(node.0),
                dir: dir_idx(dir),
                resize: child_resize.ledger_str().to_string(),
                child: Some(u64::from(child.0)),
                new_parent: None,
            },
            Move::Reassign { node, new_parent } => clk_obs::MoveRec {
                t: 3,
                node: u64::from(node.0),
                dir: None,
                resize: Resize::None.ledger_str().to_string(),
                child: None,
                new_parent: Some(u64::from(new_parent.0)),
            },
        }
    }

    /// Rebuilds a move from a decision-ledger record. `None` when the
    /// record is structurally inconsistent for its type tag (unknown
    /// tag, out-of-range direction index, missing child/parent).
    pub fn from_ledger_rec(rec: &clk_obs::MoveRec) -> Option<Move> {
        let node_id = |v: u64| u32::try_from(v).ok().map(NodeId);
        let dir_at = |i: u64| Direction::ALL.get(usize::try_from(i).ok()?).copied();
        match rec.t {
            1 => Some(Move::SizeDisplace {
                node: node_id(rec.node)?,
                dir: match rec.dir {
                    Some(i) => Some(dir_at(i)?),
                    None => None,
                },
                resize: Resize::from_ledger_str(&rec.resize)?,
            }),
            2 => Some(Move::ChildSize {
                node: node_id(rec.node)?,
                dir: dir_at(rec.dir?)?,
                child: node_id(rec.child?)?,
                child_resize: Resize::from_ledger_str(&rec.resize)?,
            }),
            3 => Some(Move::Reassign {
                node: node_id(rec.node)?,
                new_parent: node_id(rec.new_parent?)?,
            }),
            _ => None,
        }
    }
}

impl Resize {
    /// Stable ledger spelling of the sizing choice.
    pub fn ledger_str(self) -> &'static str {
        match self {
            Resize::None => "none",
            Resize::Up => "up",
            Resize::Down => "down",
        }
    }

    /// Parses the ledger spelling back; `None` for unknown strings.
    pub fn from_ledger_str(s: &str) -> Option<Resize> {
        match s {
            "none" => Some(Resize::None),
            "up" => Some(Resize::Up),
            "down" => Some(Resize::Down),
            _ => None,
        }
    }
}

impl std::fmt::Display for Move {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Move::SizeDisplace { node, dir, resize } => {
                write!(f, "I:{node}")?;
                if let Some(d) = dir {
                    write!(f, " move {d}")?;
                }
                write!(f, " {resize:?}")
            }
            Move::ChildSize {
                node,
                dir,
                child,
                child_resize,
            } => write!(f, "II:{node} move {dir}, child {child} {child_resize:?}"),
            Move::Reassign { node, new_parent } => write!(f, "III:{node} -> {new_parent}"),
        }
    }
}

/// Enumeration parameters (Table 2 values by default).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MoveConfig {
    /// Per-axis displacement step, µm (paper: 10 µm).
    pub displace_um: f64,
    /// Side of the square box a type-III candidate driver must fall in,
    /// µm (paper: 50 µm).
    pub surgery_box_um: f64,
}

impl Default for MoveConfig {
    fn default() -> Self {
        MoveConfig {
            displace_um: 10.0,
            surgery_box_um: 50.0,
        }
    }
}

/// Enumerates every candidate move for the given buffers (all buffers
/// when `targets` is `None`), honoring library size limits and the
/// type-III same-level / bounding-box rules.
pub fn enumerate_moves(
    tree: &ClockTree,
    lib: &Library,
    cfg: &MoveConfig,
    targets: Option<&[NodeId]>,
) -> Vec<Move> {
    let nodes: Vec<NodeId> = match targets {
        Some(t) => t.to_vec(),
        None => tree.node_ids().filter(|&n| n != tree.root()).collect(),
    };
    let mut moves = Vec::new();
    // precompute buffer levels for surgery candidates
    let levels: Vec<(NodeId, usize)> = tree.buffers().map(|b| (b, tree.buffer_level(b))).collect();
    for &b in &nodes {
        if b == tree.root() {
            continue;
        }
        // --- type III applies to any child node (buffer or sink) ---
        if let Some(p) = tree.parent(b) {
            let p_level = tree.buffer_level(p);
            let boxr = Rect::square_around(tree.loc(b), um_to_dbu(cfg.surgery_box_um / 2.0));
            for &(cand, lvl) in &levels {
                if cand == p || cand == b || lvl != p_level {
                    continue;
                }
                if !boxr.contains(tree.loc(cand)) {
                    continue;
                }
                if tree.is_descendant(cand, b) {
                    continue; // would create a cycle
                }
                moves.push(Move::Reassign {
                    node: b,
                    new_parent: cand,
                });
            }
        }
        if !matches!(tree.node(b).kind, NodeKind::Buffer(_)) {
            continue;
        }
        let cell = tree.cell(b).expect("buffer has a cell");
        let can_up = lib.size_up(cell).is_some();
        let can_down = lib.size_down(cell).is_some();
        let resizes = |list: &mut Vec<Resize>| {
            list.push(Resize::None);
            if can_up {
                list.push(Resize::Up);
            }
            if can_down {
                list.push(Resize::Down);
            }
        };
        // --- type I ---
        let mut rs = Vec::new();
        resizes(&mut rs);
        for &r in &rs {
            for dir in Direction::ALL {
                moves.push(Move::SizeDisplace {
                    node: b,
                    dir: Some(dir),
                    resize: r,
                });
            }
            if r != Resize::None {
                moves.push(Move::SizeDisplace {
                    node: b,
                    dir: None,
                    resize: r,
                });
            }
        }
        // --- type II ---
        for &c in tree.children(b) {
            let Some(ccell) = tree.cell(c) else { continue };
            if !matches!(tree.node(c).kind, NodeKind::Buffer(_)) {
                continue;
            }
            for dir in Direction::ALL {
                if lib.size_up(ccell).is_some() {
                    moves.push(Move::ChildSize {
                        node: b,
                        dir,
                        child: c,
                        child_resize: Resize::Up,
                    });
                }
                if lib.size_down(ccell).is_some() {
                    moves.push(Move::ChildSize {
                        node: b,
                        dir,
                        child: c,
                        child_resize: Resize::Down,
                    });
                }
            }
        }
    }
    moves
}

/// The drivers whose fanout nets a move invalidates — the dirty roots
/// for `clk-sta`'s cone-limited incremental re-analysis. Computed on the
/// tree *before* the move is applied (the old parent of a type-III
/// reassignment is only known then); the returned set is sorted and
/// deduplicated.
///
/// Per move type:
/// - **I** (`SizeDisplace`): the node's own net (its location anchors
///   the routes to its children; its cell drives them) and its parent's
///   net (the route to the node and the node's input cap change).
/// - **II** (`ChildSize`): type I's set plus the resized child's own
///   net (its driving cell changes).
/// - **III** (`Reassign`): the old parent's net (loses the node) and
///   the new parent's net (gains it). The node's own routes to its
///   children are untouched — its changed arrival cascades through the
///   incremental descent, not the dirty set.
///
/// Everything further down the cone is discovered by the incremental
/// walk itself, which descends exactly where arrivals/slews change.
pub fn touched_drivers(tree: &ClockTree, mv: &Move) -> Vec<NodeId> {
    let mut dirty = Vec::with_capacity(3);
    match *mv {
        Move::SizeDisplace { node, .. } => {
            dirty.extend(tree.parent(node));
            dirty.push(node);
        }
        Move::ChildSize { node, child, .. } => {
            dirty.extend(tree.parent(node));
            dirty.push(node);
            dirty.push(child);
        }
        Move::Reassign { node, new_parent } => {
            dirty.extend(tree.parent(node));
            dirty.push(new_parent);
        }
    }
    dirty.sort_unstable();
    dirty.dedup();
    dirty
}

/// Applies a move in place (with legalized displacement).
///
/// # Errors
///
/// Propagates [`TreeError`] from the underlying edit (e.g. a stale move
/// after other edits).
pub fn apply_move(
    tree: &mut ClockTree,
    lib: &Library,
    fp: &Floorplan,
    cfg: &MoveConfig,
    mv: &Move,
) -> Result<(), TreeError> {
    let step = um_to_dbu(cfg.displace_um);
    let resize_cell = |tree: &ClockTree, n: NodeId, r: Resize| {
        let cur = tree.cell(n).expect("buffer");
        match r {
            Resize::None => Some(cur),
            Resize::Up => lib.size_up(cur),
            Resize::Down => lib.size_down(cur),
        }
    };
    match *mv {
        Move::SizeDisplace { node, dir, resize } => {
            if let Some(d) = dir {
                let target = fp.legalize(tree.loc(node).step(d, step));
                tree.move_node(node, target)?;
            }
            if resize != Resize::None {
                let cell = resize_cell(tree, node, resize).ok_or(TreeError::NotABuffer(node))?;
                tree.set_cell(node, cell)?;
            }
            Ok(())
        }
        Move::ChildSize {
            node,
            dir,
            child,
            child_resize,
        } => {
            let target = fp.legalize(tree.loc(node).step(dir, step));
            tree.move_node(node, target)?;
            let cell =
                resize_cell(tree, child, child_resize).ok_or(TreeError::NotABuffer(child))?;
            tree.set_cell(child, cell)
        }
        Move::Reassign { node, new_parent } => tree.set_parent(node, new_parent),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clk_geom::Point;
    use clk_liberty::{CellId, StdCorners};

    fn setup() -> (ClockTree, Library, Floorplan) {
        let lib = Library::synthetic_28nm(StdCorners::c0_c1_c3());
        let fp = Floorplan::open(clk_geom::Rect::from_um(0.0, 0.0, 500.0, 500.0));
        let x4 = lib.cell_by_name("CLKINV_X4").unwrap();
        let mut t = ClockTree::new(Point::from_um(0.0, 0.0), CellId(4));
        let a = t.add_node(NodeKind::Buffer(x4), Point::from_um(100.0, 100.0), t.root());
        let b1 = t.add_node(NodeKind::Buffer(x4), Point::from_um(200.0, 100.0), a);
        let b2 = t.add_node(NodeKind::Buffer(x4), Point::from_um(210.0, 130.0), a);
        let _s1 = t.add_node(NodeKind::Sink, Point::from_um(220.0, 110.0), b1);
        let _s2 = t.add_node(NodeKind::Sink, Point::from_um(300.0, 130.0), b2);
        (t, lib, fp)
    }

    #[test]
    fn enumerate_covers_all_types() {
        let (t, lib, _fp) = setup();
        let moves = enumerate_moves(&t, &lib, &MoveConfig::default(), None);
        let t1 = moves.iter().filter(|m| m.move_type() == 1).count();
        let t2 = moves.iter().filter(|m| m.move_type() == 2).count();
        let t3 = moves.iter().filter(|m| m.move_type() == 3).count();
        // type I: 3 buffers × (3 resizes × 8 dirs + 2 sizing-only) = 78
        assert_eq!(t1, 78, "type I count");
        // type II: buffer a has 2 buffer children × 8 dirs × 2 sizings = 32
        assert_eq!(t2, 32, "type II count");
        // type III: s1 (driven by level-2 b1) can be reassigned to the
        // level-2 buffer b2 sitting inside its 50 µm surgery box
        assert_eq!(t3, 1, "type III count: {moves:?}");
        assert!(moves
            .iter()
            .any(|m| matches!(m, Move::Reassign { node, new_parent }
                if t.node(*node).kind == NodeKind::Sink && *new_parent == t.buffers().nth(2).unwrap())));
    }

    #[test]
    fn type3_respects_box() {
        let (mut t, lib, _fp) = setup();
        // move b2 far away: no longer within b1's 50 µm surgery box
        let b2 = t.buffers().nth(2).unwrap();
        t.move_node(b2, Point::from_um(400.0, 400.0)).unwrap();
        let moves = enumerate_moves(&t, &lib, &MoveConfig::default(), None);
        assert_eq!(moves.iter().filter(|m| m.move_type() == 3).count(), 0);
    }

    #[test]
    fn size_limits_respected() {
        let (mut t, lib, _fp) = setup();
        let b1 = t.buffers().nth(1).unwrap();
        let x16 = lib.cell_by_name("CLKINV_X16").unwrap();
        t.set_cell(b1, x16).unwrap();
        let moves = enumerate_moves(&t, &lib, &MoveConfig::default(), Some(&[b1]));
        assert!(
            !moves.iter().any(|m| matches!(
                m,
                Move::SizeDisplace { node, resize: Resize::Up, .. } if *node == b1
            )),
            "cannot upsize the largest cell"
        );
    }

    #[test]
    fn apply_each_kind() {
        let (mut t, lib, fp) = setup();
        let cfg = MoveConfig::default();
        let a = t.buffers().next().unwrap();
        let before = t.loc(a);
        apply_move(
            &mut t,
            &lib,
            &fp,
            &cfg,
            &Move::SizeDisplace {
                node: a,
                dir: Some(Direction::NorthEast),
                resize: Resize::Up,
            },
        )
        .unwrap();
        t.validate().unwrap();
        assert_ne!(t.loc(a), before);
        assert_eq!(t.cell(a), Some(CellId(3)));

        let b1 = t.buffers().nth(1).unwrap();
        let b2 = t.buffers().nth(2).unwrap();
        apply_move(
            &mut t,
            &lib,
            &fp,
            &cfg,
            &Move::Reassign {
                node: b2,
                new_parent: b1,
            },
        )
        .unwrap();
        t.validate().unwrap();
        assert_eq!(t.parent(b2), Some(b1));
    }

    #[test]
    fn move_display_is_informative() {
        let m1 = Move::SizeDisplace {
            node: NodeId(3),
            dir: Some(Direction::NorthEast),
            resize: Resize::Up,
        };
        assert_eq!(m1.to_string(), "I:n3 move NE Up");
        let m3 = Move::Reassign {
            node: NodeId(4),
            new_parent: NodeId(9),
        };
        assert_eq!(m3.to_string(), "III:n4 -> n9");
        assert_eq!(m1.move_type(), 1);
        assert_eq!(m3.move_type(), 3);
        assert_eq!(m3.primary_node(), NodeId(4));
    }

    #[test]
    fn move_ledger_round_trip() {
        let moves = [
            Move::SizeDisplace {
                node: NodeId(3),
                dir: Some(Direction::SouthWest),
                resize: Resize::Up,
            },
            Move::SizeDisplace {
                node: NodeId(5),
                dir: None,
                resize: Resize::Down,
            },
            Move::ChildSize {
                node: NodeId(1),
                dir: Direction::North,
                child: NodeId(2),
                child_resize: Resize::Down,
            },
            Move::Reassign {
                node: NodeId(4),
                new_parent: NodeId(9),
            },
        ];
        for mv in moves {
            assert_eq!(Move::from_ledger_rec(&mv.to_ledger_rec()), Some(mv));
        }
        assert!(Move::from_ledger_rec(&clk_obs::MoveRec {
            t: 7,
            node: 0,
            dir: None,
            resize: "none".to_string(),
            child: None,
            new_parent: None,
        })
        .is_none());
        assert!(Move::from_ledger_rec(&clk_obs::MoveRec {
            t: 1,
            node: 0,
            dir: Some(8),
            resize: "none".to_string(),
            child: None,
            new_parent: None,
        })
        .is_none());
    }

    #[test]
    fn targets_filter_respected() {
        let (t, lib, _fp) = setup();
        let b1 = t.buffers().nth(1).unwrap();
        let moves = enumerate_moves(&t, &lib, &MoveConfig::default(), Some(&[b1]));
        assert!(moves.iter().all(|m| m.primary_node() == b1));
    }
}
