//! Bounded-variable revised primal simplex with explicit basis inverse.

use clk_obs::{kv, Deadline, Level, Obs, SIMPLEX_POLL_STRIDE};

/// Handle of a decision variable in a [`Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub usize);

/// Relation of a constraint row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowKind {
    /// `Σ aᵢxᵢ ≤ rhs`
    Le,
    /// `Σ aᵢxᵢ = rhs`
    Eq,
    /// `Σ aᵢxᵢ ≥ rhs`
    Ge,
}

/// Errors from the [`Problem`] builders and from [`solve`].
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded below on the feasible set.
    Unbounded,
    /// The pivot limit was exceeded (numerical trouble).
    IterationLimit,
    /// The problem definition is invalid.
    BadProblem(String),
    /// A referenced `(variable, row)` structural term does not exist.
    UnknownTerm {
        /// The variable whose column was searched.
        var: VarId,
        /// The row the term was expected in.
        row: usize,
    },
    /// A value lookup referenced a variable that does not exist.
    VarOutOfRange(VarId),
    /// A row lookup referenced a row that does not exist.
    RowOutOfRange(usize),
    /// The solve was cut by its [`Deadline`] (wall-clock expiry or
    /// cooperative cancel) before reaching optimality. Deliberately a
    /// typed error, not a partial [`Solution`]: an interrupted basis
    /// carries no certificate and must not be mistaken for an optimum.
    Interrupted,
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::Infeasible => f.write_str("problem is infeasible"),
            LpError::Unbounded => f.write_str("objective is unbounded"),
            LpError::IterationLimit => f.write_str("simplex iteration limit exceeded"),
            LpError::BadProblem(m) => write!(f, "invalid problem: {m}"),
            LpError::UnknownTerm { var, row } => {
                write!(f, "no existing term for {var:?} in row {row}")
            }
            LpError::VarOutOfRange(v) => write!(f, "variable {v:?} is out of range"),
            LpError::RowOutOfRange(i) => write!(f, "row {i} is out of range"),
            LpError::Interrupted => f.write_str("solve interrupted by deadline or cancellation"),
        }
    }
}

impl std::error::Error for LpError {}

/// A linear program `min cᵀx` over sparse rows and variable bounds.
#[derive(Debug, Clone, Default)]
pub struct Problem {
    lo: Vec<f64>,
    hi: Vec<f64>,
    cost: Vec<f64>,
    rows: Vec<(RowKind, f64)>,
    /// column-major sparse structural matrix
    cols: Vec<Vec<(usize, f64)>>,
}

impl Problem {
    /// An empty problem.
    pub fn new() -> Self {
        Problem::default()
    }

    /// Adds a variable with bounds `[lo, hi]` (±∞ allowed) and objective
    /// coefficient `cost`.
    ///
    /// # Errors
    ///
    /// [`LpError::BadProblem`] if `lo > hi`, a bound is NaN, or `cost` is
    /// not finite.
    pub fn add_var(&mut self, lo: f64, hi: f64, cost: f64) -> Result<VarId, LpError> {
        if lo.is_nan() || hi.is_nan() {
            return Err(LpError::BadProblem(format!(
                "variable bound is NaN: [{lo}, {hi}]"
            )));
        }
        if lo > hi {
            return Err(LpError::BadProblem(format!(
                "variable bounds out of order: [{lo}, {hi}]"
            )));
        }
        if !cost.is_finite() {
            return Err(LpError::BadProblem(format!(
                "objective coefficient must be finite, got {cost}"
            )));
        }
        self.lo.push(lo);
        self.hi.push(hi);
        self.cost.push(cost);
        self.cols.push(Vec::new());
        Ok(VarId(self.cols.len() - 1))
    }

    /// Adds a constraint row `Σ coef·var (kind) rhs`. Duplicate variable
    /// terms are summed. On error the problem is left unchanged.
    ///
    /// # Errors
    ///
    /// [`LpError::BadProblem`] if `rhs` or a coefficient is not finite, or
    /// a term references an unknown variable.
    pub fn add_row(
        &mut self,
        kind: RowKind,
        rhs: f64,
        terms: &[(VarId, f64)],
    ) -> Result<(), LpError> {
        if !rhs.is_finite() {
            return Err(LpError::BadProblem(format!(
                "rhs must be finite, got {rhs}"
            )));
        }
        for &(v, a) in terms {
            if !a.is_finite() {
                return Err(LpError::BadProblem(format!(
                    "coefficient of {v:?} must be finite, got {a}"
                )));
            }
            if v.0 >= self.cols.len() {
                return Err(LpError::BadProblem(format!("unknown variable {v:?}")));
            }
        }
        let row = self.rows.len();
        self.rows.push((kind, rhs));
        // BTreeMap so duplicate-term merging emits column entries in
        // variable order — HashMap order here leaked into the pivot
        // sequence and made same-seed runs diverge
        let mut merged: std::collections::BTreeMap<usize, f64> = std::collections::BTreeMap::new();
        for &(v, a) in terms {
            *merged.entry(v.0).or_insert(0.0) += a;
        }
        for (v, a) in merged {
            if a != 0.0 {
                if let Some(col) = self.cols.get_mut(v) {
                    col.push((row, a));
                }
            }
        }
        Ok(())
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.cols.len()
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The `[lo, hi]` bounds of a variable.
    ///
    /// # Errors
    ///
    /// [`LpError::VarOutOfRange`] if the variable does not exist.
    pub fn bounds(&self, v: VarId) -> Result<(f64, f64), LpError> {
        match (self.lo.get(v.0), self.hi.get(v.0)) {
            (Some(&l), Some(&h)) => Ok((l, h)),
            _ => Err(LpError::VarOutOfRange(v)),
        }
    }

    /// The objective coefficient of a variable.
    ///
    /// # Errors
    ///
    /// [`LpError::VarOutOfRange`] if the variable does not exist.
    pub fn cost(&self, v: VarId) -> Result<f64, LpError> {
        self.cost.get(v.0).copied().ok_or(LpError::VarOutOfRange(v))
    }

    /// The relation and right-hand side of row `i`.
    ///
    /// # Errors
    ///
    /// [`LpError::RowOutOfRange`] if the row does not exist.
    pub fn row(&self, i: usize) -> Result<(RowKind, f64), LpError> {
        self.rows.get(i).copied().ok_or(LpError::RowOutOfRange(i))
    }

    /// The sparse column of a variable as `(row, coefficient)` pairs.
    ///
    /// # Errors
    ///
    /// [`LpError::VarOutOfRange`] if the variable does not exist.
    pub fn col(&self, v: VarId) -> Result<&[(usize, f64)], LpError> {
        self.cols
            .get(v.0)
            .map(Vec::as_slice)
            .ok_or(LpError::VarOutOfRange(v))
    }

    // ---- corruption hooks (fault-injection test support) --------------
    //
    // These bypass `add_var`/`add_row` validation on purpose so the
    // model-audit tests in `clk-lint`, the chaos harness, and the
    // certificate gate can build numerically poisoned problems and assert
    // that the auditors diagnose them. Hidden from docs and gated behind
    // the `debug-poison` cargo feature so the fault-injection surface is
    // absent from the default release API; must never be called by flow
    // code.

    /// Overwrites a variable's bounds without validation.
    #[doc(hidden)]
    #[cfg(any(test, feature = "debug-poison"))]
    #[allow(clippy::indexing_slicing)] // poison hooks assume valid ids
    pub fn debug_poison_bounds(&mut self, v: VarId, lo: f64, hi: f64) {
        self.lo[v.0] = lo;
        self.hi[v.0] = hi;
    }

    /// Overwrites a variable's objective coefficient without validation.
    #[doc(hidden)]
    #[cfg(any(test, feature = "debug-poison"))]
    #[allow(clippy::indexing_slicing)] // poison hooks assume valid ids
    pub fn debug_poison_cost(&mut self, v: VarId, cost: f64) {
        self.cost[v.0] = cost;
    }

    /// Overwrites a row's right-hand side without validation.
    #[doc(hidden)]
    #[cfg(any(test, feature = "debug-poison"))]
    #[allow(clippy::indexing_slicing)] // poison hooks assume valid ids
    pub fn debug_poison_rhs(&mut self, i: usize, rhs: f64) {
        self.rows[i].1 = rhs;
    }

    /// Overwrites one structural coefficient without validation. The term
    /// `(row, coefficient)` must already exist in the variable's column.
    ///
    /// # Errors
    ///
    /// [`LpError::UnknownTerm`] if the variable has no structural term in
    /// `row` (the poison hooks never create structure, only corrupt it).
    #[doc(hidden)]
    #[cfg(any(test, feature = "debug-poison"))]
    #[allow(clippy::indexing_slicing)] // poison hooks assume valid ids
    pub fn debug_poison_coeff(&mut self, v: VarId, row: usize, a: f64) -> Result<(), LpError> {
        for t in &mut self.cols[v.0] {
            if t.0 == row {
                t.1 = a;
                return Ok(());
            }
        }
        Err(LpError::UnknownTerm { var: v, row })
    }
}

/// Sentinel basis entry for a row whose basic variable is an artificial
/// left at value zero after phase 1 (a numerically redundant row).
pub const REDUNDANT_ROW: usize = usize::MAX;

/// Status of one internal variable (structural or slack) at the final
/// simplex vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarStatus {
    /// In the basis; value determined by `B⁻¹b`.
    Basic,
    /// Nonbasic, parked at its lower bound.
    AtLower,
    /// Nonbasic, parked at its upper bound.
    AtUpper,
    /// Free nonbasic variable parked at zero.
    Free,
}

/// A proof sketch of optimality, emitted with every successful solve and
/// re-verifiable in exact arithmetic by `clk-cert`.
///
/// Indices refer to the solver's *internal* variable space: the `n`
/// structural variables first, then one slack per row (`n + i` for row
/// `i`, with bounds `Le → [0, ∞)`, `Ge → (−∞, 0]`, `Eq → [0, 0]`).
/// Artificial variables never appear; a row whose artificial stayed basic
/// at zero is recorded as [`REDUNDANT_ROW`].
#[derive(Debug, Clone, PartialEq)]
pub struct Certificate {
    /// Internal variable basic in each row (or [`REDUNDANT_ROW`]).
    pub basis: Vec<usize>,
    /// Status of each of the `n + m` internal variables.
    pub status: Vec<VarStatus>,
    /// Row duals `y = B⁻ᵀ c_B` under the phase-2 objective.
    pub y: Vec<f64>,
    /// Reduced cost `d_j = c_j − yᵀA_j` of each internal variable.
    pub reduced: Vec<f64>,
}

/// A Farkas-style infeasibility witness: row multipliers `y` such that
/// `yᵀb` exceeds the maximum of `yᵀAx` over the variable bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct FarkasRay {
    /// Row multipliers (the phase-1 duals at the infeasible optimum).
    pub y: Vec<f64>,
}

/// Outcome of a certified solve: either an optimum with its certificate
/// or a proof of infeasibility.
#[derive(Debug, Clone, PartialEq)]
pub enum Certified {
    /// The problem was solved to optimality.
    Optimal(Solution),
    /// No feasible point exists; `ray` witnesses the contradiction.
    Infeasible {
        /// The infeasibility witness.
        ray: FarkasRay,
    },
}

/// An optimal solution.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Optimal variable values (structural variables only).
    pub x: Vec<f64>,
    /// Optimal objective value `cᵀx`.
    pub objective: f64,
    /// Simplex pivots used.
    pub iterations: usize,
    /// Optimality certificate for independent exact re-verification.
    pub certificate: Certificate,
}

impl Solution {
    /// The value of `v`.
    ///
    /// # Errors
    ///
    /// [`LpError::VarOutOfRange`] if `v` does not exist in the solved
    /// problem.
    pub fn value(&self, v: VarId) -> Result<f64, LpError> {
        self.x.get(v.0).copied().ok_or(LpError::VarOutOfRange(v))
    }
}

const TOL: f64 = 1e-7;

/// Pivot-level statistics from one simplex phase.
#[derive(Debug, Default, Clone, Copy)]
struct PhaseStats {
    iters: usize,
    bound_flips: usize,
    degenerate: usize,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Basic,
    AtLower,
    AtUpper,
    /// Free nonbasic variable parked at zero.
    FreeZero,
}

struct Tableau {
    /// per-variable sparse columns (structural + slack + artificial)
    cols: Vec<Vec<(usize, f64)>>,
    lo: Vec<f64>,
    hi: Vec<f64>,
    cost: Vec<f64>,
    phase_cost: Vec<f64>,
    state: Vec<State>,
    /// variable basic in each row
    basis: Vec<usize>,
    /// dense row-major basis inverse, m×m
    binv: Vec<f64>,
    /// values of basic variables per row
    xb: Vec<f64>,
    m: usize,
}

// indices inside the tableau are constructed by the solver itself and are
// in-range by construction; bounds checks in the pivot loops would only
// hide logic bugs that the debug asserts already catch
#[allow(clippy::indexing_slicing)]
impl Tableau {
    fn nb_value(&self, j: usize) -> f64 {
        match self.state[j] {
            State::AtLower => self.lo[j],
            State::AtUpper => self.hi[j],
            State::FreeZero => 0.0,
            // clk-analyze: allow(A005) unreachable by construction: nb_value of basic
            State::Basic => unreachable!("nb_value of basic"),
        }
    }

    /// w = B⁻¹ · A_j
    fn ftran(&self, j: usize) -> Vec<f64> {
        let m = self.m;
        let mut w = vec![0.0; m];
        for &(r, a) in &self.cols[j] {
            for (i, wi) in w.iter_mut().enumerate() {
                *wi += self.binv[i * m + r] * a;
            }
        }
        w
    }

    /// y = B⁻ᵀ · c_B for the given cost vector.
    fn btran(&self, cost: &[f64]) -> Vec<f64> {
        let m = self.m;
        let mut y = vec![0.0; m];
        for i in 0..m {
            let cb = cost[self.basis[i]];
            if cb != 0.0 {
                let row = &self.binv[i * m..(i + 1) * m];
                for (k, yk) in y.iter_mut().enumerate() {
                    *yk += cb * row[k];
                }
            }
        }
        y
    }

    fn reduced_cost(&self, j: usize, y: &[f64], cost: &[f64]) -> f64 {
        let mut d = cost[j];
        for &(r, a) in &self.cols[j] {
            d -= y[r] * a;
        }
        d
    }

    /// One simplex phase over the given costs. Returns the pivot stats.
    // `lo == hi` is an exact fixed-variable test: equal bounds are set
    // bit-identically at construction, never computed
    #[allow(clippy::float_cmp)]
    fn optimize(
        &mut self,
        use_phase_cost: bool,
        max_iters: usize,
        obs: &Obs,
        deadline: &Deadline,
    ) -> Result<PhaseStats, LpError> {
        let mut stats = PhaseStats::default();
        let mut degen_streak = 0usize;
        let n = self.cols.len();
        loop {
            if stats.iters >= max_iters {
                return Err(LpError::IterationLimit);
            }
            // cooperative cancellation: poll every SIMPLEX_POLL_STRIDE
            // pivots, so an expiry is acknowledged within one stride
            // (well inside the ≤64-pivot contract of the chaos battery)
            if (stats.iters as u64).is_multiple_of(SIMPLEX_POLL_STRIDE) && deadline.expired() {
                obs.observe(
                    "lp.cancel.ack_pivots",
                    (stats.iters as u64).min(SIMPLEX_POLL_STRIDE) as f64,
                );
                return Err(LpError::Interrupted);
            }
            let cost = if use_phase_cost {
                &self.phase_cost
            } else {
                &self.cost
            };
            let pricing_prof = obs.prof_scope("pricing");
            let y = self.btran(cost);
            // --- pricing ---
            let bland = degen_streak > 2 * self.m + 20;
            let mut enter: Option<(usize, f64, f64)> = None; // (var, dir, |d|)
            for j in 0..n {
                if self.state[j] == State::Basic {
                    continue;
                }
                if self.lo[j] == self.hi[j] {
                    continue; // fixed
                }
                let d = self.reduced_cost(j, &y, cost);
                let dir = match self.state[j] {
                    State::AtLower if d < -TOL => 1.0,
                    State::AtUpper if d > TOL => -1.0,
                    State::FreeZero if d < -TOL => 1.0,
                    State::FreeZero if d > TOL => -1.0,
                    _ => continue,
                };
                if bland {
                    enter = Some((j, dir, d.abs()));
                    break;
                }
                if enter.is_none_or(|(_, _, best)| d.abs() > best) {
                    enter = Some((j, dir, d.abs()));
                }
            }
            let Some((j, dir, _)) = enter else {
                if obs.at(Level::Trace) {
                    obs.event(
                        Level::Trace,
                        "lp.optimal",
                        vec![
                            kv("iters", stats.iters),
                            kv("basis", format!("{:?}", self.basis)),
                        ],
                    );
                }
                return Ok(stats);
            };
            drop(pricing_prof);
            if obs.at(Level::Trace) {
                obs.event(
                    Level::Trace,
                    "lp.pivot",
                    vec![kv("enter", j), kv("dir", dir), kv("iter", stats.iters)],
                );
            }
            // --- ratio test ---
            let ratio_prof = obs.prof_scope("ratio_test");
            let w = self.ftran(j);
            // entering may move at most its own range before flipping
            let own_range = self.hi[j] - self.lo[j]; // may be inf
            let mut t = if own_range.is_finite() {
                own_range
            } else {
                f64::INFINITY
            };
            let mut leave: Option<usize> = None; // row index
            for (i, &wi) in w.iter().enumerate() {
                let delta = -dir * wi; // change of x_B[i] per unit t
                let b = self.basis[i];
                let ti = if delta < -TOL {
                    if self.lo[b].is_finite() {
                        (self.xb[i] - self.lo[b]) / (-delta)
                    } else {
                        f64::INFINITY
                    }
                } else if delta > TOL {
                    if self.hi[b].is_finite() {
                        (self.hi[b] - self.xb[i]) / delta
                    } else {
                        f64::INFINITY
                    }
                } else {
                    f64::INFINITY
                };
                let ti = ti.max(0.0);
                if ti < t || (ti < t + TOL && leave.is_some_and(|r| b < self.basis[r]) && bland) {
                    t = ti;
                    leave = Some(i);
                }
            }
            drop(ratio_prof);
            if !t.is_finite() {
                return Err(LpError::Unbounded);
            }
            if t < TOL {
                degen_streak += 1;
                stats.degenerate += 1;
            } else {
                degen_streak = 0;
            }
            // basis-update attribution, split by pivot kind so the
            // degenerate-vs-productive cost ratio is readable per run
            let update_prof = obs.prof_scope("basis_update");
            let kind_prof = obs.prof_scope(match (&leave, t < TOL) {
                (None, _) => "bound_flip",
                (Some(_), true) => "degenerate",
                (Some(_), false) => "productive",
            });
            let delta_j = dir * t;
            match leave {
                None => {
                    // bound flip: entering runs to its other bound
                    stats.bound_flips += 1;
                    for (i, &wi) in w.iter().enumerate() {
                        self.xb[i] -= delta_j * wi;
                    }
                    self.state[j] = match self.state[j] {
                        State::AtLower => State::AtUpper,
                        State::AtUpper => State::AtLower,
                        // a free variable can never flip (infinite range)
                        s => s,
                    };
                }
                Some(r) => {
                    let entering_val = self.nb_value(j) + delta_j;
                    let leaving = self.basis[r];
                    // move all basics
                    for (i, &wi) in w.iter().enumerate() {
                        self.xb[i] -= delta_j * wi;
                    }
                    // classify the leaving variable at the bound it hit
                    let hit_upper = {
                        let delta = -dir * w[r];
                        delta > 0.0
                    };
                    self.state[leaving] = if self.lo[leaving] == self.hi[leaving] {
                        State::AtLower
                    } else if hit_upper {
                        State::AtUpper
                    } else if self.lo[leaving].is_finite() {
                        State::AtLower
                    } else {
                        State::FreeZero
                    };
                    // eta update of B⁻¹ (pivot on row r)
                    let m = self.m;
                    let piv = w[r];
                    debug_assert!(piv.abs() > 1e-12, "pivot too small");
                    for k in 0..m {
                        self.binv[r * m + k] /= piv;
                    }
                    for (i, &f) in w.iter().enumerate() {
                        if i != r && f != 0.0 {
                            for k in 0..m {
                                self.binv[i * m + k] -= f * self.binv[r * m + k];
                            }
                        }
                    }
                    self.basis[r] = j;
                    self.state[j] = State::Basic;
                    self.xb[r] = entering_val;
                }
            }
            drop(kind_prof);
            drop(update_prof);
            stats.iters += 1;
        }
    }
}

/// Solves `p` to optimality.
///
/// # Errors
///
/// [`LpError::Infeasible`], [`LpError::Unbounded`] or
/// [`LpError::IterationLimit`]; malformed inputs panic in the builder, not
/// here.
pub fn solve(p: &Problem) -> Result<Solution, LpError> {
    solve_with_obs(p, &Obs::disabled())
}

/// [`solve`] with pivot-level instrumentation.
///
/// When `obs` is enabled, each solve updates the `lp.*` metrics
/// (`lp.solves`, `lp.pivots`, `lp.bound_flips`, `lp.degenerate_pivots`,
/// the `lp.iters` histogram, and a failure counter per [`LpError`]
/// variant) and, at `Trace` verbosity, emits one `lp.solve` span plus
/// per-pivot `lp.pivot` events.
///
/// # Errors
///
/// Same contract as [`solve`].
pub fn solve_with_obs(p: &Problem, obs: &Obs) -> Result<Solution, LpError> {
    match solve_certified_with_obs(p, obs)? {
        Certified::Optimal(s) => Ok(s),
        Certified::Infeasible { .. } => Err(LpError::Infeasible),
    }
}

/// [`solve_with_obs`] under a [`Deadline`]: the pivot loop polls the
/// deadline every [`SIMPLEX_POLL_STRIDE`] pivots and returns
/// [`LpError::Interrupted`] when it has expired, so a multi-thousand
/// pivot solve acknowledges cancellation within one stride instead of
/// running to completion.
///
/// # Errors
///
/// [`LpError::Interrupted`] on expiry, plus the [`solve`] contract.
pub fn solve_with_deadline(
    p: &Problem,
    obs: &Obs,
    deadline: &Deadline,
) -> Result<Solution, LpError> {
    match solve_certified_with_deadline(p, obs, deadline)? {
        Certified::Optimal(s) => Ok(s),
        Certified::Infeasible { .. } => Err(LpError::Infeasible),
    }
}

/// Solves `p`, returning either an optimum carrying its certificate or a
/// Farkas-style infeasibility witness instead of a bare
/// [`LpError::Infeasible`].
///
/// # Errors
///
/// [`LpError::Unbounded`] or [`LpError::IterationLimit`]; infeasibility is
/// a successful [`Certified::Infeasible`] outcome here.
pub fn solve_certified(p: &Problem) -> Result<Certified, LpError> {
    solve_certified_with_obs(p, &Obs::disabled())
}

/// [`solve_certified`] with pivot-level instrumentation (same metrics
/// contract as [`solve_with_obs`]; a [`Certified::Infeasible`] outcome
/// counts under `lp.infeasible`).
///
/// # Errors
///
/// Same contract as [`solve_certified`].
pub fn solve_certified_with_obs(p: &Problem, obs: &Obs) -> Result<Certified, LpError> {
    solve_certified_with_deadline(p, obs, &Deadline::none())
}

/// [`solve_certified_with_obs`] under a [`Deadline`]; see
/// [`solve_with_deadline`] for the interruption contract.
///
/// # Errors
///
/// [`LpError::Interrupted`] on expiry, plus the [`solve_certified`]
/// contract.
pub fn solve_certified_with_deadline(
    p: &Problem,
    obs: &Obs,
    deadline: &Deadline,
) -> Result<Certified, LpError> {
    let _prof = obs.prof_scope("lp.solve");
    let mut span = obs.span_at(
        Level::Trace,
        "lp.solve",
        vec![kv("vars", p.num_vars()), kv("rows", p.num_rows())],
    );
    let result = solve_inner(p, obs, deadline);
    if obs.enabled() {
        obs.count("lp.solves", 1);
        match &result {
            Ok(Certified::Optimal(sol)) => {
                obs.count("lp.pivots", sol.iterations as u64);
                obs.observe("lp.iters", sol.iterations as f64);
                span.record("iters", sol.iterations);
                span.record("objective", sol.objective);
            }
            Ok(Certified::Infeasible { .. }) => {
                obs.count("lp.infeasible", 1);
                span.record("error", format!("{}", LpError::Infeasible));
            }
            Err(e) => {
                let key = match e {
                    LpError::Infeasible => "lp.infeasible",
                    LpError::Unbounded => "lp.unbounded",
                    LpError::IterationLimit => "lp.iteration_limit",
                    LpError::Interrupted => "lp.interrupted",
                    LpError::BadProblem(_)
                    | LpError::UnknownTerm { .. }
                    | LpError::VarOutOfRange(_)
                    | LpError::RowOutOfRange(_) => "lp.bad_problem",
                };
                obs.count(key, 1);
                span.record("error", format!("{e}"));
            }
        }
    }
    result
}

// all indices below are derived from the problem's own dimensions; the
// `sv == lo` comparison is exact on purpose (`clamp` returns the bound
// itself, bit-identically)
#[allow(clippy::indexing_slicing, clippy::float_cmp)]
fn solve_inner(p: &Problem, obs: &Obs, deadline: &Deadline) -> Result<Certified, LpError> {
    let m = p.num_rows();
    let n_struct = p.num_vars();

    let setup_prof = obs.prof_scope("setup");
    // --- assemble internal variables: structural + slack (one per row) ---
    let mut cols = p.cols.clone();
    let mut lo = p.lo.clone();
    let mut hi = p.hi.clone();
    let mut cost = p.cost.clone();
    for (i, &(kind, _)) in p.rows.iter().enumerate() {
        cols.push(vec![(i, 1.0)]);
        let (l, h) = match kind {
            RowKind::Le => (0.0, f64::INFINITY),
            RowKind::Ge => (f64::NEG_INFINITY, 0.0),
            RowKind::Eq => (0.0, 0.0),
        };
        lo.push(l);
        hi.push(h);
        cost.push(0.0);
    }

    // --- initial nonbasic point for structural vars ---
    let mut state = vec![State::AtLower; cols.len()];
    for j in 0..n_struct {
        state[j] = if lo[j].is_finite() {
            State::AtLower
        } else if hi[j].is_finite() {
            State::AtUpper
        } else {
            State::FreeZero
        };
    }

    // residual each row must carry: b − A·x_N (over structural vars)
    let mut resid: Vec<f64> = p.rows.iter().map(|&(_, b)| b).collect();
    for j in 0..n_struct {
        let v = match state[j] {
            State::AtLower => lo[j],
            State::AtUpper => hi[j],
            State::FreeZero => 0.0,
            // clk-analyze: allow(A005) caller only asks for nonbasic columns
            State::Basic => unreachable!(),
        };
        if v != 0.0 {
            for &(r, a) in &cols[j] {
                resid[r] -= a * v;
            }
        }
    }

    // --- choose initial basis: slack where possible, artificial otherwise ---
    let mut basis = vec![usize::MAX; m];
    let mut xb = vec![0.0; m];
    let mut phase_cost = vec![0.0; cols.len()];
    let mut art_sign: Vec<(usize, f64)> = Vec::new();
    let mut need_phase1 = false;
    for i in 0..m {
        let s = n_struct + i;
        let v = resid[i];
        if v >= lo[s] - TOL && v <= hi[s] + TOL {
            basis[i] = s;
            state[s] = State::Basic;
            xb[i] = v;
        } else {
            // park the slack at its nearest bound, absorb the rest in an
            // artificial variable with a sign that makes it nonnegative
            let sv = v.clamp(lo[s], hi[s]);
            state[s] = if sv == lo[s] {
                State::AtLower
            } else {
                State::AtUpper
            };
            let r = v - sv;
            let a = cols.len();
            cols.push(vec![(i, r.signum())]);
            lo.push(0.0);
            hi.push(f64::INFINITY);
            cost.push(0.0);
            phase_cost.push(1.0);
            state.push(State::Basic);
            basis[i] = a;
            xb[i] = r.abs();
            art_sign.push((i, r.signum()));
            need_phase1 = true;
        }
    }
    phase_cost.resize(cols.len(), 0.0);
    for (j, pc) in phase_cost.iter_mut().enumerate() {
        if j >= n_struct + m {
            *pc = 1.0;
        }
    }

    // The initial basis is slacks (+1 columns) and artificials (±1
    // columns); its inverse is diag(σ), not the identity. This is the
    // (for now trivial) "refactor" bucket: the cost of materializing a
    // basis inverse from scratch, which the sparse-LU rewrite will
    // re-pay periodically instead of once.
    drop(setup_prof);
    let refactor_prof = obs.prof_scope("refactor");
    let mut binv = identity(m);
    for &(row, sign) in &art_sign {
        binv[row * m + row] = sign;
    }
    drop(refactor_prof);
    let mut t = Tableau {
        cols,
        lo,
        hi,
        cost,
        phase_cost,
        state,
        basis,
        binv,
        xb,
        m,
    };

    let budget = 200 + 60 * (t.cols.len() + m);
    let mut phase1 = PhaseStats::default();
    if need_phase1 {
        phase1 = t.optimize(true, budget, obs, deadline)?;
        let infeas: f64 = (0..m)
            .filter(|&i| t.basis[i] >= n_struct + m)
            .map(|i| t.xb[i])
            .sum();
        if infeas > 1e-6 {
            // phase-1 optimum with positive artificial mass: the phase-1
            // duals witness the contradiction (yᵀb exceeds the maximum of
            // yᵀAx over the bounds by exactly the residual infeasibility)
            let y = t.btran(&t.phase_cost);
            return Ok(Certified::Infeasible {
                ray: FarkasRay { y },
            });
        }
        // pin artificials to zero for phase 2
        for j in (n_struct + m)..t.cols.len() {
            t.lo[j] = 0.0;
            t.hi[j] = 0.0;
            if t.state[j] != State::Basic {
                t.state[j] = State::AtLower;
            }
        }
    }
    let phase2 = t.optimize(
        false,
        budget.saturating_sub(phase1.iters).max(budget / 2),
        obs,
        deadline,
    )?;
    if obs.enabled() {
        obs.count(
            "lp.bound_flips",
            (phase1.bound_flips + phase2.bound_flips) as u64,
        );
        obs.count(
            "lp.degenerate_pivots",
            (phase1.degenerate + phase2.degenerate) as u64,
        );
    }

    // --- extract ---
    let _extract_prof = obs.prof_scope("extract");
    let mut x = vec![0.0; n_struct];
    for (j, xj) in x.iter_mut().enumerate() {
        *xj = match t.state[j] {
            State::Basic => 0.0, // filled below
            State::AtLower => t.lo[j],
            State::AtUpper => t.hi[j],
            State::FreeZero => 0.0,
        };
    }
    for i in 0..m {
        let b = t.basis[i];
        if b < n_struct {
            x[b] = t.xb[i];
        }
    }
    let objective = x.iter().zip(&p.cost).map(|(xi, ci)| xi * ci).sum();

    // --- certificate: duals, reduced costs, and basis over the internal
    // (structural + slack) variable space; artificials are excluded and
    // rows still carrying a basic artificial (at value zero, i.e.
    // numerically redundant) are recorded with the REDUNDANT_ROW sentinel
    let n_internal = n_struct + m;
    let y = t.btran(&t.cost);
    let reduced: Vec<f64> = (0..n_internal)
        .map(|j| t.reduced_cost(j, &y, &t.cost))
        .collect();
    let status: Vec<VarStatus> = t.state[..n_internal]
        .iter()
        .map(|s| match s {
            State::Basic => VarStatus::Basic,
            State::AtLower => VarStatus::AtLower,
            State::AtUpper => VarStatus::AtUpper,
            State::FreeZero => VarStatus::Free,
        })
        .collect();
    let cert_basis: Vec<usize> = t
        .basis
        .iter()
        .map(|&b| if b < n_internal { b } else { REDUNDANT_ROW })
        .collect();
    Ok(Certified::Optimal(Solution {
        x,
        objective,
        iterations: phase1.iters + phase2.iters,
        certificate: Certificate {
            basis: cert_basis,
            status,
            y,
            reduced,
        },
    }))
}

#[allow(clippy::indexing_slicing)] // m*m buffer indexed by i < m
fn identity(m: usize) -> Vec<f64> {
    let mut b = vec![0.0; m * m];
    for i in 0..m {
        b[i * m + i] = 1.0;
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    const INF: f64 = f64::INFINITY;

    fn feasible(p: &Problem, x: &[f64], tol: f64) -> bool {
        for (j, &xj) in x.iter().enumerate() {
            if xj < p.lo[j] - tol || xj > p.hi[j] + tol {
                return false;
            }
        }
        for (i, &(kind, rhs)) in p.rows.iter().enumerate() {
            let mut lhs = 0.0;
            for (j, col) in p.cols.iter().enumerate() {
                for &(r, a) in col {
                    if r == i {
                        lhs += a * x[j];
                    }
                }
            }
            let ok = match kind {
                RowKind::Le => lhs <= rhs + tol,
                RowKind::Ge => lhs >= rhs - tol,
                RowKind::Eq => (lhs - rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }

    #[test]
    fn expired_deadline_interrupts_before_any_pivot() {
        use clk_obs::CancelToken;
        let mut p = Problem::new();
        let x = p.add_var(0.0, INF, -3.0).unwrap();
        let y = p.add_var(0.0, INF, -5.0).unwrap();
        p.add_row(RowKind::Le, 4.0, &[(x, 1.0)]).unwrap();
        p.add_row(RowKind::Le, 12.0, &[(y, 2.0)]).unwrap();
        let tok = CancelToken::new();
        tok.cancel();
        let dl = Deadline::from_token(&tok);
        let e = solve_with_deadline(&p, &Obs::disabled(), &dl).unwrap_err();
        assert_eq!(e, LpError::Interrupted);
        // an inert deadline leaves the solve untouched
        let s = solve_with_deadline(&p, &Obs::disabled(), &Deadline::none()).unwrap();
        assert!(feasible(&p, &s.x, 1e-7));
    }

    #[test]
    fn trip_mid_solve_interrupts_within_one_stride() {
        use clk_obs::CancelToken;
        // a problem with enough pivots that a mid-solve trip lands
        // between polls rather than before the first one
        let mut p = Problem::new();
        let n = 24;
        let vars: Vec<VarId> = (0..n)
            .map(|i| p.add_var(0.0, 10.0, -(1.0 + i as f64)).unwrap())
            .collect();
        for i in 0..n {
            let a = vars[i];
            let b = vars[(i + 1) % n];
            p.add_row(RowKind::Le, 12.0, &[(a, 1.0), (b, 1.0)]).unwrap();
        }
        let baseline = solve(&p).expect("solvable without a deadline");
        assert!(baseline.iterations > 1);
        let tok = CancelToken::new();
        tok.trip_after_polls(2); // expire on the second poll
        let dl = Deadline::from_token(&tok);
        let e = solve_with_deadline(&p, &Obs::disabled(), &dl).unwrap_err();
        assert_eq!(e, LpError::Interrupted);
    }

    #[test]
    fn textbook_max_problem() {
        // max 3x + 5y s.t. x<=4, 2y<=12, 3x+2y<=18 => x=2,y=6, obj=36
        let mut p = Problem::new();
        let x = p.add_var(0.0, INF, -3.0).unwrap();
        let y = p.add_var(0.0, INF, -5.0).unwrap();
        p.add_row(RowKind::Le, 4.0, &[(x, 1.0)]).unwrap();
        p.add_row(RowKind::Le, 12.0, &[(y, 2.0)]).unwrap();
        p.add_row(RowKind::Le, 18.0, &[(x, 3.0), (y, 2.0)]).unwrap();
        let s = solve(&p).unwrap();
        assert!(
            (s.value(x).unwrap() - 2.0).abs() < 1e-7,
            "x = {}",
            s.value(x).unwrap()
        );
        assert!((s.value(y).unwrap() - 6.0).abs() < 1e-7);
        assert!((s.objective + 36.0).abs() < 1e-7);
        assert!(feasible(&p, &s.x, 1e-7));
    }

    #[test]
    fn equality_rows_need_phase1() {
        // min x + y s.t. x + y = 10, x - y = 2 => x=6, y=4
        let mut p = Problem::new();
        let x = p.add_var(0.0, INF, 1.0).unwrap();
        let y = p.add_var(0.0, INF, 1.0).unwrap();
        p.add_row(RowKind::Eq, 10.0, &[(x, 1.0), (y, 1.0)]).unwrap();
        p.add_row(RowKind::Eq, 2.0, &[(x, 1.0), (y, -1.0)]).unwrap();
        let s = solve(&p).unwrap();
        assert!((s.value(x).unwrap() - 6.0).abs() < 1e-7);
        assert!((s.value(y).unwrap() - 4.0).abs() < 1e-7);
    }

    #[test]
    fn ge_rows_need_phase1() {
        // min 2x + 3y s.t. x + y >= 4, x >= 1, y >= 0 => x=4,y=0 obj 8
        let mut p = Problem::new();
        let x = p.add_var(1.0, INF, 2.0).unwrap();
        let y = p.add_var(0.0, INF, 3.0).unwrap();
        p.add_row(RowKind::Ge, 4.0, &[(x, 1.0), (y, 1.0)]).unwrap();
        let s = solve(&p).unwrap();
        assert!((s.objective - 8.0).abs() < 1e-7, "obj {}", s.objective);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::new();
        let x = p.add_var(0.0, 1.0, 1.0).unwrap();
        p.add_row(RowKind::Ge, 5.0, &[(x, 1.0)]).unwrap();
        assert_eq!(solve(&p).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn contradictory_equalities_infeasible() {
        let mut p = Problem::new();
        let x = p.add_var(-INF, INF, 0.0).unwrap();
        p.add_row(RowKind::Eq, 1.0, &[(x, 1.0)]).unwrap();
        p.add_row(RowKind::Eq, 2.0, &[(x, 1.0)]).unwrap();
        assert_eq!(solve(&p).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::new();
        let x = p.add_var(0.0, INF, -1.0).unwrap();
        p.add_row(RowKind::Ge, 1.0, &[(x, 1.0)]).unwrap();
        assert_eq!(solve(&p).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn free_variable_unbounded() {
        let mut p = Problem::new();
        let _x = p.add_var(-INF, INF, 1.0).unwrap();
        assert_eq!(solve(&p).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn pure_bound_flips_reach_optimum() {
        // min -x - 2y with 0<=x<=3, 0<=y<=4 and a loose row
        let mut p = Problem::new();
        let x = p.add_var(0.0, 3.0, -1.0).unwrap();
        let y = p.add_var(0.0, 4.0, -2.0).unwrap();
        p.add_row(RowKind::Le, 100.0, &[(x, 1.0), (y, 1.0)])
            .unwrap();
        let s = solve(&p).unwrap();
        assert!((s.value(x).unwrap() - 3.0).abs() < 1e-7);
        assert!((s.value(y).unwrap() - 4.0).abs() < 1e-7);
    }

    #[test]
    fn negative_bounds_and_free_vars() {
        // min x + y, -5<=x<=5, y free, x + y = -2, y >= -3 (via row)
        let mut p = Problem::new();
        let x = p.add_var(-5.0, 5.0, 1.0).unwrap();
        let y = p.add_var(-INF, INF, 1.0).unwrap();
        p.add_row(RowKind::Eq, -2.0, &[(x, 1.0), (y, 1.0)]).unwrap();
        p.add_row(RowKind::Ge, -3.0, &[(y, 1.0)]).unwrap();
        let s = solve(&p).unwrap();
        assert!((s.objective + 2.0).abs() < 1e-7);
        assert!(feasible(&p, &s.x, 1e-7));
    }

    #[test]
    fn absolute_value_split_pattern() {
        // min |t - 7| modeled as t = 7 + pos - neg, min pos + neg, t <= 5
        let mut p = Problem::new();
        let t = p.add_var(-INF, 5.0, 0.0).unwrap();
        let pos = p.add_var(0.0, INF, 1.0).unwrap();
        let neg = p.add_var(0.0, INF, 1.0).unwrap();
        p.add_row(RowKind::Eq, 7.0, &[(t, 1.0), (pos, -1.0), (neg, 1.0)])
            .unwrap();
        let s = solve(&p).unwrap();
        assert!((s.objective - 2.0).abs() < 1e-7, "obj {}", s.objective);
        assert!((s.value(t).unwrap() - 5.0).abs() < 1e-7);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // multiple redundant constraints through the optimum
        let mut p = Problem::new();
        let x = p.add_var(0.0, INF, -1.0).unwrap();
        let y = p.add_var(0.0, INF, -1.0).unwrap();
        for _ in 0..4 {
            p.add_row(RowKind::Le, 1.0, &[(x, 1.0), (y, 1.0)]).unwrap();
        }
        p.add_row(RowKind::Le, 1.0, &[(x, 1.0)]).unwrap();
        p.add_row(RowKind::Le, 1.0, &[(y, 1.0)]).unwrap();
        let s = solve(&p).unwrap();
        assert!((s.objective + 1.0).abs() < 1e-7);
    }

    #[test]
    fn duplicate_terms_merge() {
        let mut p = Problem::new();
        let x = p.add_var(0.0, INF, -1.0).unwrap();
        p.add_row(RowKind::Le, 6.0, &[(x, 1.0), (x, 2.0)]).unwrap(); // 3x <= 6
        let s = solve(&p).unwrap();
        assert!((s.value(x).unwrap() - 2.0).abs() < 1e-7);
    }

    #[test]
    fn random_lps_satisfy_optimality_spot_checks() {
        // deterministic xorshift
        let mut state = 0x243F6A8885A308D3u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for case in 0..20 {
            let nv = 3 + (case % 4);
            let nr = 2 + (case % 5);
            let mut p = Problem::new();
            let vars: Vec<VarId> = (0..nv)
                .map(|_| {
                    p.add_var(0.0, 1.0 + 4.0 * rnd(), 2.0 * rnd() - 1.0)
                        .unwrap()
                })
                .collect();
            for _ in 0..nr {
                let terms: Vec<(VarId, f64)> =
                    vars.iter().map(|&v| (v, 2.0 * rnd() - 0.5)).collect();
                // rhs chosen so x=0 is feasible for Le rows
                p.add_row(RowKind::Le, 0.5 + 3.0 * rnd(), &terms).unwrap();
            }
            let s = solve(&p).unwrap_or_else(|e| panic!("case {case}: {e}"));
            assert!(feasible(&p, &s.x, 1e-6), "case {case} infeasible answer");
            // objective must beat 200 random feasible corners of the box
            // (rejection-sampled against the rows)
            let mut best = f64::INFINITY;
            for _ in 0..400 {
                let cand: Vec<f64> = (0..nv).map(|j| p.hi[j] * rnd()).collect();
                if feasible(&p, &cand, 0.0) {
                    let obj: f64 = cand.iter().zip(&p.cost).map(|(a, b)| a * b).sum();
                    best = best.min(obj);
                }
            }
            assert!(
                s.objective <= best + 1e-6,
                "case {case}: simplex {} vs sampled {}",
                s.objective,
                best
            );
        }
    }

    #[test]
    fn bad_bounds_rejected() {
        let mut p = Problem::new();
        let e = p.add_var(2.0, 1.0, 0.0).unwrap_err();
        assert!(
            matches!(e, LpError::BadProblem(ref m) if m.contains("out of order")),
            "{e}"
        );
        let e = p.add_var(f64::NAN, 1.0, 0.0).unwrap_err();
        assert!(
            matches!(e, LpError::BadProblem(ref m) if m.contains("NaN")),
            "{e}"
        );
        let e = p.add_var(0.0, 1.0, f64::INFINITY).unwrap_err();
        assert!(
            matches!(e, LpError::BadProblem(ref m) if m.contains("finite")),
            "{e}"
        );
        assert_eq!(
            p.num_vars(),
            0,
            "failed add_var must not mutate the problem"
        );
    }

    #[test]
    fn unknown_var_rejected() {
        let mut p = Problem::new();
        let _x = p.add_var(0.0, 1.0, 0.0).unwrap();
        let e = p.add_row(RowKind::Le, 1.0, &[(VarId(7), 1.0)]).unwrap_err();
        assert!(
            matches!(e, LpError::BadProblem(ref m) if m.contains("unknown variable")),
            "{e}"
        );
        let e = p.add_row(RowKind::Le, f64::NAN, &[]).unwrap_err();
        assert!(
            matches!(e, LpError::BadProblem(ref m) if m.contains("rhs")),
            "{e}"
        );
        assert_eq!(
            p.num_rows(),
            0,
            "failed add_row must not mutate the problem"
        );
    }

    #[test]
    fn poison_coeff_unknown_term() {
        let mut p = Problem::new();
        let x = p.add_var(0.0, 1.0, 0.0).unwrap();
        let e = p.debug_poison_coeff(x, 3, 1.0).unwrap_err();
        assert_eq!(e, LpError::UnknownTerm { var: x, row: 3 });
    }
}
