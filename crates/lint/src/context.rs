//! The design snapshot a lint run audits.

use clk_liberty::Library;
use clk_netlist::{ClockTree, Floorplan, TreeError};

/// Everything a pass may inspect: the tree, its library, and (when
/// known) the floorplan the tree is placed in.
#[derive(Debug, Clone, Copy)]
pub struct DesignCtx<'a> {
    /// The clock tree under audit.
    pub tree: &'a ClockTree,
    /// The multi-corner library the tree is built from.
    pub lib: &'a Library,
    /// Floorplan for placement-legality checks; `None` skips them.
    pub floorplan: Option<&'a Floorplan>,
}

impl<'a> DesignCtx<'a> {
    /// A context without placement information.
    pub fn new(tree: &'a ClockTree, lib: &'a Library) -> Self {
        DesignCtx {
            tree,
            lib,
            floorplan: None,
        }
    }

    /// A context with a floorplan, enabling the placement pass.
    pub fn with_floorplan(tree: &'a ClockTree, lib: &'a Library, fp: &'a Floorplan) -> Self {
        DesignCtx {
            tree,
            lib,
            floorplan: Some(fp),
        }
    }

    /// Whether the tree's parent/child graph is sound enough for passes
    /// that *walk* it (arc extraction, timing, parasitics). Route-only
    /// defects (`RouteEndpointMismatch`) do not count: the graph is still
    /// a tree and walking it terminates.
    pub(crate) fn structurally_sound(&self) -> bool {
        self.tree
            .validate_all()
            .iter()
            .all(|e| matches!(e, TreeError::RouteEndpointMismatch(_)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clk_geom::Point;
    use clk_liberty::StdCorners;
    use clk_netlist::NodeKind;

    #[test]
    fn soundness_ignores_route_defects() {
        let lib = Library::synthetic_28nm(StdCorners::c0_c1_c3());
        let x8 = lib.cell_by_name("CLKINV_X8").expect("exists");
        let mut tree = ClockTree::new(Point::new(0, 0), x8);
        let b = tree.add_node(NodeKind::Buffer(x8), Point::new(10_000, 0), tree.root());
        let s = tree.add_node(NodeKind::Sink, Point::new(20_000, 0), b);
        assert!(DesignCtx::new(&tree, &lib).structurally_sound());

        // stale route endpoints: still walkable
        tree.debug_set_loc_raw(s, Point::new(21_000, 0));
        assert!(DesignCtx::new(&tree, &lib).structurally_sound());

        // broken link: not walkable
        tree.debug_unlink_child(b, s);
        assert!(!DesignCtx::new(&tree, &lib).structurally_sound());
    }
}
