//! Offline API-compatible subset of the `rand 0.8` crate.
//!
//! See README.md: this shim exists so the workspace builds without
//! registry access. Only the surface the workspace uses is provided —
//! [`StdRng`], [`SeedableRng::seed_from_u64`], and [`Rng::gen`] /
//! [`Rng::gen_range`] over integer and float ranges.

// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic)]
#![allow(clippy::cast_lossless)] // macro impls cover usize/isize, where `From` does not exist

use std::ops::{Range, RangeInclusive};

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word in the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its canonical distribution
    /// (uniform in `[0, 1)` for floats, uniform over all values for
    /// integers and `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`, which may be a half-open `a..b`
    /// or inclusive `a..=b` range of a supported primitive.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges accepted by [`Rng::gen_range`]. A single blanket impl per
/// range shape, generic over the element, so the expected type at the
/// call site flows into untyped range literals — matching upstream
/// `rand` inference.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Primitives uniformly samplable from a bounded range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`[lo, hi]` when `inclusive`).
    fn sample_range<R: RngCore>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_range(lo, hi, true, rng)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore>(lo: Self, hi: Self, _inclusive: bool, rng: &mut R) -> Self {
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                lo + (hi - lo) * unit
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Generator namespace, mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::StdRng;
}

/// The standard deterministic generator: xoshiro256++ seeded via
/// SplitMix64 (same construction the xoshiro authors recommend).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_float_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn int_ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w = r.gen_range(0..=3usize);
            assert!(w <= 3);
            let f = r.gen_range(1000.0..8000.0f64);
            assert!((1000.0..8000.0).contains(&f));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
