//! Fault-tolerant flow runtime: the unified error taxonomy, the fault
//! log with recovery actions, transactional tree snapshots, per-phase
//! budgets, and the deterministic fault-injection plan behind
//! `clk-bench --bin chaos`.
//!
//! The paper's global-local flow (Fig. 2) is incremental: every round
//! must leave a legal, timeable clock tree even when an LP solve or a
//! candidate ECO goes sideways. This module gives the flow that
//! property:
//!
//! * [`FlowError`] is the typed error every checked entry point returns
//!   instead of panicking;
//! * [`FaultLog`] records every fault the runtime absorbed together
//!   with the [`RecoveryAction`] taken, and is surfaced on
//!   `OptReport::faults`;
//! * [`TreeTxn`] wraps a phase or batch in a snapshot/rollback
//!   transaction; [`Checkpoint`] persists a best-so-far tree through
//!   the `.ctree` round trip so a timed-out flow still returns its best
//!   legal result;
//! * [`PhaseBudget`]/[`FlowBudget`] bound each phase's wall clock and
//!   iterations;
//! * [`Deadline`]/[`CancelToken`] (re-exported from `clk_obs::cancel`,
//!   where the leaf crates can reach them) make every inner loop
//!   interruptible: phases build one [`Deadline`] per run combining
//!   the budget's wall clock with the flow's [`CancelToken`], and the
//!   simplex pivot loop, STA propagation, ECO sweeps and candidate
//!   evals all poll it at their safe points;
//! * [`FaultPlan`] is the seeded injection hook ([`FaultSite`] lists
//!   the four fault classes) the chaos harness arms via
//!   `FlowConfig::fault_plan`.

use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use clk_obs::{CancelToken, Deadline};

use clk_liberty::Library;
use clk_lp::LpError;
use clk_netlist::io::{parse_ctree, write_ctree};
use clk_netlist::{ClockTree, TreeError};
use clk_obs::{kv, Obs};
use clk_sta::TimingError;

// ---------------------------------------------------------------------
// FlowError: the unified taxonomy
// ---------------------------------------------------------------------

/// Unified error type of the checked flow entry points
/// (`try_optimize_with`, `global_optimize_checked`,
/// `local_optimize_checked`, `check_lint_gate`).
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// The LP phase failed after the whole retry/degradation ladder.
    Lp(LpError),
    /// The golden timer could not time the tree.
    Timing(TimingError),
    /// A tree edit violated a structural invariant.
    Tree(TreeError),
    /// A lint gate failed at the configured level.
    LintGate {
        /// The phase boundary the gate guards (e.g. `"CTS (flow input)"`).
        stage: String,
        /// The rendered lint report.
        report: String,
    },
    /// The flow needs a per-technology artifact that was not provided.
    MissingArtifact(&'static str),
    /// A `.ctree` checkpoint failed to restore.
    Ctree(String),
    /// An LP solve returned, but its optimality certificate failed exact
    /// re-verification — the answer cannot be trusted.
    CertViolation {
        /// The λ-round / solve site that produced the bad certificate.
        site: String,
        /// Rendered list of the violated checks.
        report: String,
    },
    /// The flow was cancelled (or ran out of wall clock) before it
    /// could produce even a baseline result — there is no best-so-far
    /// tree to fall back to. Interruptions *after* the baseline is
    /// established never surface as this error; they yield an
    /// `OptReport { partial: true, .. }` instead.
    Interrupted {
        /// The phase that was cut (`"init"`, or a pure-`Global` flow cut
        /// before round 0 finished).
        phase: &'static str,
    },
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::Lp(e) => write!(f, "LP phase failed: {e}"),
            FlowError::Timing(e) => write!(f, "timing failed: {e}"),
            FlowError::Tree(e) => write!(f, "tree edit failed: {e}"),
            FlowError::LintGate { stage, report } => {
                write!(f, "lint gate failed after {stage}:\n{report}")
            }
            FlowError::MissingArtifact(what) => write!(f, "missing artifact: {what}"),
            FlowError::Ctree(m) => write!(f, "checkpoint restore failed: {m}"),
            FlowError::CertViolation { site, report } => {
                write!(f, "LP certificate rejected at {site}: {report}")
            }
            FlowError::Interrupted { phase } => {
                write!(f, "flow interrupted during {phase} before a result existed")
            }
        }
    }
}

impl FlowError {
    /// Whether this error is a cooperative-cancellation cut (deadline
    /// expiry or token cancel) rather than a genuine failure. Phases use
    /// this to distinguish "stop and keep the best-so-far tree" from
    /// "abandon the result".
    pub fn is_interrupt(&self) -> bool {
        matches!(
            self,
            FlowError::Lp(LpError::Interrupted)
                | FlowError::Timing(TimingError::Interrupted)
                | FlowError::Interrupted { .. }
        )
    }
}

impl std::error::Error for FlowError {}

impl From<LpError> for FlowError {
    fn from(e: LpError) -> Self {
        FlowError::Lp(e)
    }
}

impl From<TimingError> for FlowError {
    fn from(e: TimingError) -> Self {
        FlowError::Timing(e)
    }
}

impl From<TreeError> for FlowError {
    fn from(e: TreeError) -> Self {
        FlowError::Tree(e)
    }
}

// ---------------------------------------------------------------------
// Fault log
// ---------------------------------------------------------------------

/// The class of a fault the runtime observed (organically or injected).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// An arc delay came back NaN/±∞ from the timer.
    NanArcDelay,
    /// The stage-delay model produced non-finite estimates (corrupt LUT
    /// row): the affected arcs are frozen out of the LP.
    CorruptDelayModel,
    /// An LP solve failed (`Infeasible` / `IterationLimit` / builder
    /// rejection).
    LpFailure,
    /// A local-phase candidate worker panicked.
    WorkerPanic,
    /// A global ECO sweep panicked and was rolled back.
    EcoPanic,
    /// A phase-boundary lint gate failed.
    LintGateFailed,
    /// A phase exhausted its wall-clock budget.
    PhaseTimeout,
    /// The flow's [`CancelToken`] was cancelled (externally or by an
    /// armed deterministic trip) and the phase stopped at a safe point.
    Cancelled,
    /// A phase exhausted its iteration budget.
    IterationBudget,
    /// A phase returned a typed error absorbed by the flow.
    PhaseError,
    /// An LP certificate failed exact re-verification.
    CertViolation,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FaultKind::NanArcDelay => "nan-arc-delay",
            FaultKind::CorruptDelayModel => "corrupt-delay-model",
            FaultKind::LpFailure => "lp-failure",
            FaultKind::WorkerPanic => "worker-panic",
            FaultKind::EcoPanic => "eco-panic",
            FaultKind::LintGateFailed => "lint-gate-failed",
            FaultKind::PhaseTimeout => "phase-timeout",
            FaultKind::Cancelled => "cancelled",
            FaultKind::IterationBudget => "iteration-budget",
            FaultKind::PhaseError => "phase-error",
            FaultKind::CertViolation => "cert-violation",
        })
    }
}

/// What the runtime did about a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecoveryAction {
    /// The operation was re-attempted (possibly with relaxed knobs).
    Retry,
    /// The flow continued with a weaker formulation or partial result.
    Degrade,
    /// State was restored from a snapshot/checkpoint.
    Rollback,
    /// The faulty unit of work was dropped and the flow moved on.
    Skip,
}

impl std::fmt::Display for RecoveryAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RecoveryAction::Retry => "retry",
            RecoveryAction::Degrade => "degrade",
            RecoveryAction::Rollback => "rollback",
            RecoveryAction::Skip => "skip",
        })
    }
}

/// One absorbed fault: where, what, and how the flow recovered.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRecord {
    /// Monotonic sequence number, unique across one flow run (phase
    /// logs are seq-based so numbers stay globally ordered; see
    /// [`FaultLog::with_seq_base`]).
    pub seq: u64,
    /// Milliseconds between flow start and absorption.
    pub elapsed_ms: f64,
    /// The phase that hit the fault (`"global"`, `"local"`, `"flow"`).
    pub phase: &'static str,
    /// The fault class.
    pub fault: FaultKind,
    /// The recovery the runtime applied.
    pub action: RecoveryAction,
    /// Free-form context (the error message, the arc, the λ point, …).
    pub detail: String,
}

impl std::fmt::Display for FaultRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "#{} +{:.1}ms [{}] {} -> {}: {}",
            self.seq, self.elapsed_ms, self.phase, self.fault, self.action, self.detail
        )
    }
}

/// The ordered log of every fault a flow absorbed.
#[derive(Debug, Clone)]
pub struct FaultLog {
    records: Vec<FaultRecord>,
    /// The flow start each record's `elapsed_ms` is measured from.
    origin: Instant,
    /// Next sequence number to stamp.
    next: u64,
}

impl Default for FaultLog {
    fn default() -> Self {
        FaultLog {
            records: Vec::new(),
            origin: clk_obs::wall_now(),
            next: 0,
        }
    }
}

impl PartialEq for FaultLog {
    fn eq(&self, other: &Self) -> bool {
        self.records == other.records
    }
}

impl FaultLog {
    /// An empty log with its origin at "now".
    pub fn new() -> Self {
        FaultLog::default()
    }

    /// Rebases `elapsed_ms` stamps on `origin` (the flow start).
    pub fn with_origin(mut self, origin: Instant) -> Self {
        self.origin = origin;
        self
    }

    /// Starts sequence numbering at `base`. Phase logs are built with
    /// the flow log's [`next_seq`](Self::next_seq) as base so that
    /// after [`absorb`](Self::absorb) all records stay globally
    /// monotonic.
    pub fn with_seq_base(mut self, base: u64) -> Self {
        self.next = base;
        self
    }

    /// The sequence number the next record will get.
    pub fn next_seq(&self) -> u64 {
        self.next
    }

    /// The instant `elapsed_ms` stamps are measured from.
    pub fn origin(&self) -> Instant {
        self.origin
    }

    /// Appends a record, stamping its sequence number and elapsed time.
    /// Returns the assigned sequence number.
    pub fn record(
        &mut self,
        phase: &'static str,
        fault: FaultKind,
        action: RecoveryAction,
        detail: impl Into<String>,
    ) -> u64 {
        let seq = self.next;
        self.next += 1;
        self.records.push(FaultRecord {
            seq,
            elapsed_ms: self.origin.elapsed().as_secs_f64() * 1e3,
            phase,
            fault,
            action,
            detail: detail.into(),
        });
        seq
    }

    /// All records, in the order they were absorbed.
    pub fn records(&self) -> &[FaultRecord] {
        &self.records
    }

    /// Whether nothing was absorbed.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Records of one fault class.
    pub fn of_kind(&self, kind: FaultKind) -> impl Iterator<Item = &FaultRecord> {
        self.records.iter().filter(move |r| r.fault == kind)
    }

    /// Merges another log into this one (phase logs into the flow log),
    /// advancing the sequence counter past the absorbed records.
    pub fn absorb(&mut self, other: FaultLog) {
        self.next = self.next.max(other.next);
        self.records.extend(other.records);
    }

    /// The log rendered one record per line.
    pub fn to_text(&self) -> String {
        self.records
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    }
}

// ---------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------

/// The four injectable fault classes of the chaos harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Poison one arc's timed delay to NaN before the LP sees it.
    NanArcDelay,
    /// Corrupt the stage-LUT estimates used to bound one arc's Δ.
    CorruptLutRow,
    /// Make one LP solve infeasible by injecting a contradictory row.
    InfeasibleLp,
    /// Panic inside one local-phase candidate worker.
    WorkerPanic,
}

impl FaultSite {
    /// All four classes, in injection order.
    pub const ALL: [FaultSite; 4] = [
        FaultSite::NanArcDelay,
        FaultSite::CorruptLutRow,
        FaultSite::InfeasibleLp,
        FaultSite::WorkerPanic,
    ];
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FaultSite::NanArcDelay => "nan-arc-delay",
            FaultSite::CorruptLutRow => "corrupt-lut-row",
            FaultSite::InfeasibleLp => "infeasible-lp",
            FaultSite::WorkerPanic => "worker-panic",
        })
    }
}

/// Per-site arming state: fire on the `skip`-th opportunity, `shots`
/// times in total.
#[derive(Debug, Clone, Copy)]
struct SiteState {
    skip: u32,
    shots: u32,
}

/// A deterministic, seeded fault-injection plan.
///
/// The flow probes the plan at well-defined sites via
/// [`FaultPlan::fire`]; the plan decides — deterministically from its
/// seed — whether that opportunity becomes a fault. Shared behind an
/// `Arc` in `FlowConfig::fault_plan` so the local phase's worker
/// threads can probe it concurrently.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    state: Mutex<PlanState>,
}

#[derive(Debug)]
struct PlanState {
    sites: std::collections::HashMap<FaultSite, SiteState>,
    injected: Vec<FaultSite>,
}

impl FaultPlan {
    /// A plan arming all four [`FaultSite`] classes once each, with a
    /// seed-dependent (but deterministic) choice of which opportunity
    /// each class fires on.
    pub fn seeded(seed: u64) -> Self {
        let mut rng = seed | 1;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let mut sites = std::collections::HashMap::new();
        for site in FaultSite::ALL {
            sites.insert(
                site,
                SiteState {
                    skip: (next() % 3) as u32,
                    shots: 1,
                },
            );
        }
        FaultPlan {
            seed,
            state: Mutex::new(PlanState {
                sites,
                injected: Vec::new(),
            }),
        }
    }

    /// An empty plan (no site armed); arm sites with [`FaultPlan::arm`].
    pub fn inert(seed: u64) -> Self {
        FaultPlan {
            seed,
            state: Mutex::new(PlanState {
                sites: std::collections::HashMap::new(),
                injected: Vec::new(),
            }),
        }
    }

    /// Arms (or re-arms) one site: fire `shots` times, starting at the
    /// `skip`-th opportunity.
    pub fn arm(&self, site: FaultSite, skip: u32, shots: u32) {
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        st.sites.insert(site, SiteState { skip, shots });
    }

    /// The seed the plan was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Probes the plan at an injection site. Returns `true` when this
    /// opportunity must become a fault (and consumes one shot).
    pub fn fire(&self, site: FaultSite) -> bool {
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let Some(s) = st.sites.get_mut(&site) else {
            return false;
        };
        if s.shots == 0 {
            return false;
        }
        if s.skip > 0 {
            s.skip -= 1;
            return false;
        }
        s.shots -= 1;
        st.injected.push(site);
        true
    }

    /// Every fault actually injected so far, in firing order.
    pub fn injected(&self) -> Vec<FaultSite> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .injected
            .clone()
    }
}

// ---------------------------------------------------------------------
// Budgets
// ---------------------------------------------------------------------

/// Wall-clock and iteration bounds for one flow phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseBudget {
    /// Hard wall-clock bound; the phase returns its best-so-far result
    /// when exceeded. `None` = unbounded.
    pub wall_clock: Option<Duration>,
    /// Cap on the phase's outer iterations (global rounds, local
    /// iterations). `None` = use the phase config's own counts.
    pub max_iterations: Option<usize>,
}

impl PhaseBudget {
    /// An unbounded budget.
    pub fn unlimited() -> Self {
        PhaseBudget::default()
    }

    /// The [`Deadline`] this budget implies from `start`, combined with
    /// the flow's cancellation token. An unbounded budget with no token
    /// yields the inert deadline (free to poll).
    pub fn deadline(&self, start: Instant, cancel: Option<&CancelToken>) -> Deadline {
        Deadline::new(self.wall_clock.map(|d| start + d), cancel.cloned())
    }

    /// Clamps an iteration count to the budget.
    pub fn clamp_iterations(&self, n: usize) -> usize {
        match self.max_iterations {
            Some(cap) => n.min(cap),
            None => n,
        }
    }
}

/// Per-phase budgets of a flow run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowBudget {
    /// Budget of the global (LP + ECO) phase.
    pub global: PhaseBudget,
    /// Budget of the local (Algorithm 2) phase.
    pub local: PhaseBudget,
}

/// How far one phase got before finishing or being cut — the per-phase
/// progress markers on `OptReport::progress`. The unit is the phase's
/// natural outer step: global rounds, local iterations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseProgress {
    /// The phase (`"global"`, `"local"`).
    pub phase: &'static str,
    /// Outer steps fully completed (and committed).
    pub done: usize,
    /// Outer steps the configuration planned.
    pub planned: usize,
    /// Whether the phase was stopped early by its deadline.
    pub interrupted: bool,
    /// What stopped it (`"wall"`, `"cancel"`), when interrupted.
    pub trigger: Option<&'static str>,
}

impl PhaseProgress {
    /// A marker for a phase that ran to completion.
    pub fn complete(phase: &'static str, done: usize, planned: usize) -> Self {
        PhaseProgress {
            phase,
            done,
            planned,
            interrupted: false,
            trigger: None,
        }
    }

    /// A marker for a phase cut at `done` of `planned` steps.
    pub fn interrupted(
        phase: &'static str,
        done: usize,
        planned: usize,
        trigger: Option<&'static str>,
    ) -> Self {
        PhaseProgress {
            phase,
            done,
            planned,
            interrupted: true,
            trigger,
        }
    }
}

impl std::fmt::Display for PhaseProgress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}/{}", self.phase, self.done, self.planned)?;
        if self.interrupted {
            write!(f, " (cut: {})", self.trigger.unwrap_or("deadline"))?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Fault context: what checked entry points thread through
// ---------------------------------------------------------------------

/// Mutable fault-handling context one phase runs under: the (optional)
/// injection plan, the fault log being built, the phase deadline, and
/// the observability pipeline faults are mirrored into.
#[derive(Debug)]
pub struct FaultCtx<'p> {
    /// Armed injection plan, if any.
    pub plan: Option<&'p FaultPlan>,
    /// The log this phase appends to.
    pub log: FaultLog,
    /// The phase deadline (wall clock and/or cancellation), polled at
    /// every safe point and threaded into the LP and STA inner loops.
    pub deadline: Deadline,
    /// Pipeline each absorbed fault is emitted through (fault event +
    /// flight-recorder dump). Disabled by default.
    pub obs: Obs,
    /// Progress marker the phase leaves behind (how far it got, and
    /// whether it was cut). Flows collect these into
    /// `OptReport::progress`.
    pub progress: Option<PhaseProgress>,
}

impl<'p> FaultCtx<'p> {
    /// A context with no injection and no deadline.
    pub fn passive() -> Self {
        FaultCtx {
            plan: None,
            log: FaultLog::new(),
            deadline: Deadline::none(),
            obs: Obs::disabled(),
            progress: None,
        }
    }

    /// A context running `plan` under `deadline`.
    pub fn new(plan: Option<&'p FaultPlan>, deadline: Deadline) -> Self {
        FaultCtx {
            plan,
            log: FaultLog::new(),
            deadline,
            obs: Obs::disabled(),
            progress: None,
        }
    }

    /// Mirrors every absorbed fault into `obs`.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Rebases this context's fault log on the flow start; see
    /// [`FaultLog::with_origin`].
    pub fn with_origin(mut self, origin: Instant) -> Self {
        self.log = std::mem::take(&mut self.log).with_origin(origin);
        self
    }

    /// Starts this context's sequence numbering at `base`; see
    /// [`FaultLog::with_seq_base`].
    pub fn with_seq_base(mut self, base: u64) -> Self {
        self.log = std::mem::take(&mut self.log).with_seq_base(base);
        self
    }

    /// Probes the injection plan (no-op without one).
    pub fn fire(&self, site: FaultSite) -> bool {
        self.plan.is_some_and(|p| p.fire(site))
    }

    /// Appends to the fault log and mirrors the record into the obs
    /// pipeline (fault event + flight-recorder dump).
    pub fn record(
        &mut self,
        phase: &'static str,
        fault: FaultKind,
        action: RecoveryAction,
        detail: impl Into<String>,
    ) {
        let detail = detail.into();
        let seq = self.log.record(phase, fault, action, detail.clone());
        emit_fault(&self.obs, seq, phase, fault, action, &detail);
    }

    /// Polls the phase deadline at a safe point (counts the poll).
    pub fn out_of_time(&self) -> bool {
        self.deadline.expired()
    }

    /// The fault class an observed expiry should be logged as: external
    /// cancellation (or an armed trip) is [`FaultKind::Cancelled`], a
    /// wall-clock expiry is [`FaultKind::PhaseTimeout`].
    pub fn interrupt_kind(&self) -> FaultKind {
        match self.deadline.trigger() {
            Some("cancel") => FaultKind::Cancelled,
            _ => FaultKind::PhaseTimeout,
        }
    }

    /// Records an observed interruption: one fault-log record with the
    /// rollback/degrade action taken, plus the cancellation-latency
    /// metrics (`cancel.ack.ms` histogram, `cancel.interrupts.{phase}`
    /// counter).
    pub fn record_interrupt(
        &mut self,
        phase: &'static str,
        action: RecoveryAction,
        detail: impl Into<String>,
    ) {
        let kind = self.interrupt_kind();
        self.record(phase, kind, action, detail);
        if let Some(ms) = self.deadline.ack_latency_ms() {
            self.obs.observe("cancel.ack.ms", ms);
        }
        self.obs.count(&format!("cancel.interrupts.{phase}"), 1);
    }
}

/// Emits one absorbed fault through the obs pipeline: an `Error`-level
/// fault event carrying the fault-log sequence number, followed by a
/// flight-recorder dump. Used by [`FaultCtx::record`] and by flow-level
/// code that appends directly to the flow [`FaultLog`].
pub fn emit_fault(
    obs: &Obs,
    seq: u64,
    phase: &'static str,
    fault: FaultKind,
    action: RecoveryAction,
    detail: &str,
) {
    if obs.enabled() {
        obs.fault(
            &fault.to_string(),
            seq,
            vec![
                kv("phase", phase),
                kv("action", action.to_string()),
                kv("detail", detail),
            ],
        );
        obs.count("fault.absorbed", 1);
    }
}

// ---------------------------------------------------------------------
// Transactions and checkpoints
// ---------------------------------------------------------------------

/// An in-memory snapshot transaction around a sweep or batch: `begin`
/// before mutating, then either `commit` (drop the snapshot) or
/// `rollback` (restore the exact pre-transaction tree, node ids
/// included).
#[derive(Debug, Clone)]
pub struct TreeTxn {
    snapshot: ClockTree,
}

impl TreeTxn {
    /// Snapshots `tree`.
    pub fn begin(tree: &ClockTree) -> Self {
        TreeTxn {
            snapshot: tree.clone(),
        }
    }

    /// The pre-transaction tree.
    pub fn snapshot(&self) -> &ClockTree {
        &self.snapshot
    }

    /// Restores `tree` to the snapshot, consuming the transaction.
    pub fn rollback(self, tree: &mut ClockTree) {
        *tree = self.snapshot;
    }

    /// Accepts the mutations; the snapshot is dropped.
    pub fn commit(self) {}
}

/// A serialized best-so-far tree, persisted through the `.ctree` round
/// trip (the flow's save format). Budget-bounded phases capture one per
/// accepted improvement and restore the latest when they run out of
/// time mid-mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    text: String,
}

impl Checkpoint {
    /// Serializes `tree`.
    pub fn capture(tree: &ClockTree, lib: &Library) -> Self {
        Checkpoint {
            text: write_ctree(tree, lib),
        }
    }

    /// The serialized form.
    pub fn as_text(&self) -> &str {
        &self.text
    }

    /// Deserializes the checkpointed tree (node ids are remapped by the
    /// round trip; structure, cells, locations, routes and sink pairs
    /// are preserved).
    ///
    /// # Errors
    ///
    /// [`FlowError::Ctree`] if the text fails to parse (never for a
    /// checkpoint captured from a valid tree with the same library).
    pub fn restore(&self, lib: &Library) -> Result<ClockTree, FlowError> {
        parse_ctree(&self.text, lib).map_err(|e| FlowError::Ctree(e.to_string()))
    }

    /// Whether `tree` serializes byte-identically to this checkpoint.
    pub fn matches(&self, tree: &ClockTree, lib: &Library) -> bool {
        write_ctree(tree, lib) == self.text
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clk_liberty::StdCorners;

    #[test]
    fn error_display_and_from() {
        let e: FlowError = LpError::Infeasible.into();
        assert!(e.to_string().contains("infeasible"));
        let e: FlowError = TimingError::MissingRoute(clk_netlist::NodeId(3)).into();
        assert!(e.to_string().contains("route"));
        let e = FlowError::MissingArtifact("stage LUTs");
        assert!(e.to_string().contains("stage LUTs"));
    }

    #[test]
    fn fault_plan_is_deterministic_and_bounded() {
        for seed in [1u64, 7, 42, 1234] {
            let a = FaultPlan::seeded(seed);
            let b = FaultPlan::seeded(seed);
            for site in FaultSite::ALL {
                let mut fires_a = Vec::new();
                let mut fires_b = Vec::new();
                for i in 0..10 {
                    if a.fire(site) {
                        fires_a.push(i);
                    }
                    if b.fire(site) {
                        fires_b.push(i);
                    }
                }
                assert_eq!(fires_a, fires_b, "seed {seed} site {site} diverged");
                assert_eq!(fires_a.len(), 1, "one shot per site");
            }
            assert_eq!(a.injected().len(), 4);
        }
    }

    #[test]
    fn inert_plan_never_fires_until_armed() {
        let p = FaultPlan::inert(9);
        assert!(!p.fire(FaultSite::InfeasibleLp));
        p.arm(FaultSite::InfeasibleLp, 1, 2);
        assert!(!p.fire(FaultSite::InfeasibleLp)); // skipped once
        assert!(p.fire(FaultSite::InfeasibleLp));
        assert!(p.fire(FaultSite::InfeasibleLp));
        assert!(!p.fire(FaultSite::InfeasibleLp)); // out of shots
        assert_eq!(p.injected(), vec![FaultSite::InfeasibleLp; 2]);
    }

    #[test]
    fn fault_log_records_and_renders() {
        let mut log = FaultLog::new();
        log.record(
            "global",
            FaultKind::LpFailure,
            RecoveryAction::Retry,
            "lambda 0.1: infeasible",
        );
        log.record(
            "local",
            FaultKind::WorkerPanic,
            RecoveryAction::Skip,
            "candidate 3",
        );
        assert_eq!(log.len(), 2);
        assert_eq!(log.of_kind(FaultKind::LpFailure).count(), 1);
        let text = log.to_text();
        assert!(text.contains("[global] lp-failure -> retry"), "{text}");
        assert!(text.contains("[local] worker-panic -> skip"), "{text}");
        // seq stamps are monotonic and elapsed stamps non-negative
        assert_eq!(log.records()[0].seq, 0);
        assert_eq!(log.records()[1].seq, 1);
        assert!(log.records().iter().all(|r| r.elapsed_ms >= 0.0));
    }

    #[test]
    fn seq_base_keeps_absorbed_logs_globally_monotonic() {
        let origin = clk_obs::wall_now();
        let mut flow = FaultLog::new().with_origin(origin);
        flow.record("flow", FaultKind::PhaseError, RecoveryAction::Skip, "a");
        let mut phase = FaultLog::new()
            .with_origin(origin)
            .with_seq_base(flow.next_seq());
        phase.record("global", FaultKind::LpFailure, RecoveryAction::Retry, "b");
        phase.record("global", FaultKind::LpFailure, RecoveryAction::Degrade, "c");
        flow.absorb(phase);
        let seqs: Vec<u64> = flow.records().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(flow.next_seq(), 3);
    }

    #[test]
    fn ctx_record_mirrors_into_obs() {
        use clk_obs::{Level, ObsConfig, SharedBuf};
        let obs = Obs::new(ObsConfig::default());
        let buf = SharedBuf::new();
        obs.add_jsonl_buffer(&buf);
        let mut ctx = FaultCtx::passive().with_obs(obs.clone()).with_seq_base(5);
        let _ = Level::Error; // keep the import honest
        ctx.record(
            "global",
            FaultKind::LpFailure,
            RecoveryAction::Retry,
            "injected",
        );
        obs.flush();
        assert_eq!(ctx.log.records()[0].seq, 5);
        let text = buf.contents();
        assert!(text.contains("\"fault\""), "{text}");
        assert!(text.contains("\"fault_seq\":5"), "{text}");
        assert!(text.contains("\"flight_dump\""), "{text}");
        assert_eq!(obs.flight_dumps().len(), 1);
    }

    #[test]
    fn txn_rollback_restores_bytes() {
        let lib = Library::synthetic_28nm(StdCorners::c0_c1_c3());
        let x8 = lib.cell_by_name("CLKINV_X8").expect("exists");
        let mut tree = ClockTree::new(clk_geom::Point::new(0, 0), x8);
        let b = tree.add_node(
            clk_netlist::NodeKind::Buffer(x8),
            clk_geom::Point::new(50_000, 0),
            tree.root(),
        );
        tree.add_node(
            clk_netlist::NodeKind::Sink,
            clk_geom::Point::new(90_000, 10_000),
            b,
        );
        let before = write_ctree(&tree, &lib);
        let txn = TreeTxn::begin(&tree);
        tree.add_node(
            clk_netlist::NodeKind::Buffer(x8),
            clk_geom::Point::new(10_000, 10_000),
            b,
        );
        assert_ne!(write_ctree(&tree, &lib), before);
        txn.rollback(&mut tree);
        assert_eq!(write_ctree(&tree, &lib), before);
    }

    #[test]
    fn checkpoint_round_trips() {
        let lib = Library::synthetic_28nm(StdCorners::c0_c1_c3());
        let x8 = lib.cell_by_name("CLKINV_X8").expect("exists");
        let mut tree = ClockTree::new(clk_geom::Point::new(0, 0), x8);
        let b = tree.add_node(
            clk_netlist::NodeKind::Buffer(x8),
            clk_geom::Point::new(40_000, 0),
            tree.root(),
        );
        tree.add_node(
            clk_netlist::NodeKind::Sink,
            clk_geom::Point::new(80_000, 0),
            b,
        );
        let cp = Checkpoint::capture(&tree, &lib);
        assert!(cp.matches(&tree, &lib));
        let back = cp.restore(&lib).expect("round trip");
        assert_eq!(back.sinks().count(), 1);
        assert!(cp.matches(&back, &lib), "round trip is stable");
    }

    #[test]
    fn budget_clamps_and_deadlines() {
        let b = PhaseBudget {
            wall_clock: Some(Duration::from_millis(5)),
            max_iterations: Some(2),
        };
        assert_eq!(b.clamp_iterations(10), 2);
        assert_eq!(PhaseBudget::unlimited().clamp_iterations(10), 10);
        let start = clk_obs::wall_now();
        let dl = b.deadline(start, None);
        assert!(dl.is_active());
        assert!(dl.wall().expect("bounded") > start);
        // a deadline already in the past expires on the first poll
        let ctx = FaultCtx::new(None, Deadline::at(start));
        assert!(ctx.out_of_time());
        assert!(!FaultCtx::passive().out_of_time());
        // an unbounded budget without a token is inert
        assert!(!PhaseBudget::unlimited().deadline(start, None).is_active());
    }

    #[test]
    fn budget_deadline_carries_the_cancel_token() {
        let tok = CancelToken::new();
        let dl = PhaseBudget::unlimited().deadline(clk_obs::wall_now(), Some(&tok));
        let mut ctx = FaultCtx::new(None, dl);
        assert!(!ctx.out_of_time());
        tok.cancel();
        assert!(ctx.out_of_time());
        assert_eq!(ctx.interrupt_kind(), FaultKind::Cancelled);
        ctx.record_interrupt("global", RecoveryAction::Rollback, "test cut");
        assert_eq!(ctx.log.of_kind(FaultKind::Cancelled).count(), 1);
    }

    #[test]
    fn wall_expiry_is_a_phase_timeout() {
        let ctx = FaultCtx::new(None, Deadline::at(clk_obs::wall_now()));
        assert!(ctx.out_of_time());
        assert_eq!(ctx.interrupt_kind(), FaultKind::PhaseTimeout);
    }

    #[test]
    fn progress_markers_render() {
        let p = PhaseProgress::complete("global", 2, 2);
        assert_eq!(p.to_string(), "global: 2/2");
        let p = PhaseProgress::interrupted("local", 1, 6, Some("cancel"));
        assert!(p.interrupted);
        assert_eq!(p.to_string(), "local: 1/6 (cut: cancel)");
    }
}
