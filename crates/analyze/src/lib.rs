//! `clk-analyze`: determinism & parallel-safety static analysis over
//! the workspace sources.
//!
//! The ROADMAP's parallel-local-phase arc rests on one invariant: the
//! flow is deterministic per seed ("parallel evaluation, sequential
//! commit"), so QoR snapshots stay byte-stable and benchmark
//! comparisons mean something. This crate finds the hazards that
//! silently break that invariant — and the ones that would turn into
//! data races once the local phase goes multi-threaded.
//!
//! Two pass families share one finding/suppression/baseline framework:
//!
//! **Lexical (A0xx)** — token-window scans over each file:
//!
//! | code | finds |
//! |------|-------|
//! | A001 | iteration over `HashMap`/`HashSet` (order nondeterminism)  |
//! | A002 | float accumulation inside an A001 loop (order-dependent rounding) |
//! | A003 | `Instant::now`/`SystemTime` outside `clk-obs`/allowed timing modules |
//! | A004 | `static mut`, `thread_local!`, `Cell`/`RefCell` in hot paths |
//! | A005 | `unwrap`/undocumented panic paths in library non-test code |
//! | A006 | stale or reasonless suppression (emitted by the framework) |
//!
//! **Semantic (A1xx)** — built on token trees ([`tree`]), an item model
//! ([`items`]), and an intra-workspace call graph with closure capture
//! extraction ([`callgraph`]); these certify the *parallel phase*:
//!
//! | code | finds |
//! |------|-------|
//! | A101 | shared mutable state reachable from a thread-spawn closure |
//! | A102 | clock/entropy reads reachable from candidate evaluation |
//! | A103 | order-sensitive float reductions reachable from parallel regions |
//! | A104 | `Ordering::Relaxed` feeding QoR-bearing code |
//!
//! False positives are silenced in-source with
//! `// clk-analyze: allow(A001) <reason>` on the finding's line or the
//! line above; the reason is mandatory and a suppression that stops
//! matching anything becomes an A006 finding itself, so the allow-list
//! can never rot. `clk-bench --bin analyze` runs the crate over the
//! workspace and gates CI against a committed findings baseline.
//!
//! ```
//! use clk_analyze::{analyze_str, AnalyzeConfig, Code};
//!
//! let report = analyze_str(
//!     "crates/x/src/lib.rs",
//!     "fn f(m: &std::collections::HashMap<u32, u32>) { for k in m.keys() { let _ = k; } }",
//!     &AnalyzeConfig::default(),
//! );
//! assert_eq!(report.findings[0].code, Code::A001);
//! ```

pub mod callgraph;
mod finding;
pub mod items;
mod lexer;
mod passes;
mod semantic;
mod suppress;
pub mod tree;
mod workspace;

pub use finding::{diff_against_baseline, Code, Finding, Severity};
pub use lexer::{tokenize, Comment, TokKind, Token};
pub use suppress::{Suppressed, Suppression};
pub use workspace::collect_sources;

/// What kind of compilation unit a file belongs to; determines which
/// passes apply (A005 is library-only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library source (`crates/*/src`, the workspace `src/`).
    Lib,
    /// Binary target (`src/bin/*`).
    Bin,
    /// Integration test (`tests/`).
    Test,
    /// Criterion bench (`benches/`).
    Bench,
    /// Example (`examples/`).
    Example,
}

/// One tokenized source file ready for analysis.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Compilation-unit class.
    pub class: FileClass,
    /// Raw source lines (for snippets).
    pub lines: Vec<String>,
    /// Token stream.
    pub tokens: Vec<Token>,
    /// Comments (for suppressions).
    pub comments: Vec<Comment>,
}

/// Analyzer configuration: which paths are exempt from which checks.
#[derive(Debug, Clone)]
pub struct AnalyzeConfig {
    /// Path prefixes where A003 does not apply (the sanctioned timing
    /// implementation itself).
    pub wall_clock_allowed: Vec<String>,
    /// Path prefixes whose files count as flow hot paths for the
    /// `Cell`/`RefCell` part of A004.
    pub hot_paths: Vec<String>,
    /// Path prefixes excluded from collection entirely (vendored shims,
    /// build output).
    pub skip: Vec<String>,
    /// Path prefixes whose thread-spawn closures are candidate-
    /// evaluation roots for the A102 purity certification.
    pub eval_roots: Vec<String>,
    /// Path prefixes whose code is telemetry: exempt from A102's
    /// reachability impurity and from A104 (counters may be Relaxed).
    pub telemetry_paths: Vec<String>,
}

impl Default for AnalyzeConfig {
    fn default() -> Self {
        AnalyzeConfig {
            wall_clock_allowed: vec!["crates/obs/src".to_string()],
            hot_paths: vec![
                "crates/core/src/flow.rs".to_string(),
                "crates/core/src/global.rs".to_string(),
                "crates/core/src/local.rs".to_string(),
                "crates/lp/src".to_string(),
                "crates/sta/src".to_string(),
            ],
            skip: vec![
                "vendor/".to_string(),
                "target/".to_string(),
                ".git/".to_string(),
            ],
            eval_roots: vec!["crates/core/src/local.rs".to_string()],
            telemetry_paths: vec!["crates/obs/src".to_string()],
        }
    }
}

/// Result of analyzing a set of files: surviving findings (sorted by
/// file, line, code) plus the honored suppressions for reporting.
#[derive(Debug, Default)]
pub struct AnalyzeReport {
    /// Findings that were not suppressed (includes A006).
    pub findings: Vec<Finding>,
    /// Suppressions that matched at least one finding.
    pub suppressed: Vec<Suppressed>,
    /// Number of files analyzed.
    pub files: usize,
}

impl AnalyzeReport {
    /// Findings of one code.
    pub fn with_code(&self, code: Code) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.code == code)
    }
}

/// Classifies a workspace-relative path.
pub fn classify(path: &str) -> FileClass {
    if path.contains("/src/bin/") {
        FileClass::Bin
    } else if path.contains("/tests/") || path.starts_with("tests/") {
        FileClass::Test
    } else if path.contains("/benches/") || path.starts_with("benches/") {
        FileClass::Bench
    } else if path.contains("/examples/") || path.starts_with("examples/") {
        FileClass::Example
    } else {
        FileClass::Lib
    }
}

/// Builds a [`SourceFile`] from in-memory text (used by tests and by
/// [`analyze_str`]).
pub fn source_from_str(path: &str, src: &str) -> SourceFile {
    let (tokens, comments) = tokenize(src);
    SourceFile {
        path: path.to_string(),
        class: classify(path),
        lines: src.lines().map(str::to_string).collect(),
        tokens,
        comments,
    }
}

/// Analyzes one in-memory file: passes + suppression resolution.
pub fn analyze_str(path: &str, src: &str, cfg: &AnalyzeConfig) -> AnalyzeReport {
    analyze_files(std::iter::once(source_from_str(path, src)), cfg)
}

/// Analyzes an iterator of files: runs the lexical passes on each,
/// builds the workspace model (token trees → items → call graph) and
/// runs the semantic A1xx passes over it, then resolves suppressions
/// per file — a suppression silences semantic findings exactly like
/// lexical ones — and turns suppression-hygiene violations into A006
/// findings.
pub fn analyze_files(
    files: impl IntoIterator<Item = SourceFile>,
    cfg: &AnalyzeConfig,
) -> AnalyzeReport {
    let files: Vec<SourceFile> = files.into_iter().collect();
    let mut per_file: Vec<Vec<Finding>> = files
        .iter()
        .map(|file| passes::run_passes(file, cfg))
        .collect();
    // semantic findings land in the file they anchor to
    for f in semantic::run(&files, cfg) {
        if let Some(i) = files.iter().position(|s| s.path == f.file) {
            per_file[i].push(f);
        }
    }
    let mut report = AnalyzeReport::default();
    for (file, mut raw) in files.iter().zip(per_file) {
        report.files += 1;
        raw.sort_by_key(|a| (a.line, a.code));
        raw.dedup_by(|a, b| a.code == b.code && a.line == b.line);
        let (kept, suppressed, hygiene) = suppress::apply(file, raw);
        report.findings.extend(kept);
        report.findings.extend(hygiene);
        report.suppressed.extend(suppressed);
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.code).cmp(&(&b.file, b.line, b.code)));
    report
}

/// Analyzes the workspace rooted at `root`: collects sources per the
/// config's skip list and runs [`analyze_files`].
///
/// # Errors
///
/// Propagates I/O errors from the directory walk; unreadable individual
/// files are skipped.
pub fn analyze_workspace(
    root: &std::path::Path,
    cfg: &AnalyzeConfig,
) -> std::io::Result<AnalyzeReport> {
    let files = collect_sources(root, cfg)?;
    Ok(analyze_files(files, cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_covers_all_layouts() {
        assert_eq!(classify("crates/lp/src/simplex.rs"), FileClass::Lib);
        assert_eq!(classify("crates/bench/src/bin/qor.rs"), FileClass::Bin);
        assert_eq!(classify("crates/lp/tests/props.rs"), FileClass::Test);
        assert_eq!(classify("tests/fault.rs"), FileClass::Test);
        assert_eq!(
            classify("crates/bench/benches/kernels.rs"),
            FileClass::Bench
        );
        assert_eq!(classify("examples/flow.rs"), FileClass::Example);
        assert_eq!(classify("src/lib.rs"), FileClass::Lib);
    }

    #[test]
    fn end_to_end_suppression_flow() {
        let src = "fn f() {\n\
                   // clk-analyze: allow(A003) telemetry only, feeds a histogram\n\
                   let t = Instant::now();\n\
                   }";
        let r = analyze_str("crates/core/src/flow.rs", src, &AnalyzeConfig::default());
        assert!(r.findings.is_empty(), "findings: {:?}", r.findings);
        assert_eq!(r.suppressed.len(), 1);
        assert_eq!(r.suppressed[0].code, Code::A003);
    }

    #[test]
    fn stale_suppression_becomes_a006() {
        let src = "// clk-analyze: allow(A001) this map is long gone\nfn f() {}\n";
        let r = analyze_str("crates/core/src/flow.rs", src, &AnalyzeConfig::default());
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].code, Code::A006);
    }
}
