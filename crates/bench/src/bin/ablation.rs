//! Ablation studies of the design choices DESIGN.md calls out, plus two of
//! the paper's future-work items:
//!
//! 1. **Ranker ablation** — the local flow with HSM vs ANN vs SVM vs the
//!    best analytical estimate (how much does the learner matter?).
//! 2. **ECO-robustness ablation** — the global flow with and without the
//!    uncertainty penalty / per-arc fidelity gating that this
//!    reproduction adds on top of Algorithm 1.
//! 3. **Future work (i)** — power/area cost of the achieved variation
//!    reduction.
//! 4. **Future work (iv)** — does a *worse* starting point (unbalanced
//!    CTS) let the optimizer reach a lower final variation?

// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic)]

use clk_bench::{ExpArgs, Stopwatch};
use clk_cts::{balance_by_detours, variation_sum, BalanceMode, Testcase, TestcaseKind};
use clk_delay::WireModel;
use clk_liberty::CornerId;
use clk_skewopt::local::Ranker;
use clk_skewopt::predictor::Topo;
use clk_skewopt::{
    global_optimize, local_optimize, DeltaLatencyModel, GlobalConfig, LocalConfig, ModelKind,
    StageLuts, TrainConfig,
};

fn main() {
    let args = ExpArgs::parse();
    let n = args.sinks.unwrap_or(if args.quick { 40 } else { 80 });
    let sw = Stopwatch::start("ablation");
    let tc = Testcase::generate(TestcaseKind::Cls1v1, n, args.seed);
    let luts = StageLuts::characterize(&tc.lib);
    let train = TrainConfig {
        n_cases: if args.quick { 10 } else { 60 },
        ..TrainConfig::default()
    };
    let lcfg = LocalConfig {
        max_iterations: if args.quick { 5 } else { 10 },
        ..LocalConfig::default()
    };
    let gcfg = GlobalConfig {
        max_pairs: if args.quick { 40 } else { 100 },
        rounds: 2,
        ..GlobalConfig::default()
    };

    // --- 1. ranker ablation ---
    println!("=== ranker ablation (local flow, {n} sinks) ===");
    let hsm = DeltaLatencyModel::train(&tc.lib, ModelKind::Hsm, &train);
    let ann = DeltaLatencyModel::train(&tc.lib, ModelKind::Ann, &train);
    let svm = DeltaLatencyModel::train(&tc.lib, ModelKind::Svm, &train);
    let rankers: Vec<(&str, Ranker<'_>)> = vec![
        ("HSM", Ranker::Ml(&hsm)),
        ("ANN", Ranker::Ml(&ann)),
        ("SVM", Ranker::Ml(&svm)),
        (
            "analytic (FLUTE+D2M)",
            Ranker::Analytic(Topo::Flute, WireModel::D2m),
        ),
    ];
    println!(
        "{:<22} {:>10} {:>14} {:>12}",
        "ranker", "reduction", "golden evals", "ps/eval"
    );
    for (name, ranker) in rankers {
        let mut tree = tc.tree.clone();
        let rep = local_optimize(&mut tree, &tc.lib, &tc.floorplan, ranker, &lcfg);
        let red = rep.variation_before - rep.variation_after;
        println!(
            "{:<22} {:>9.1}ps {:>14} {:>12.3}",
            name,
            red,
            rep.golden_evals,
            red / rep.golden_evals.max(1) as f64
        );
    }

    // --- 2. ECO-robustness ablation ---
    println!("\n=== ECO-robustness ablation (global flow) ===");
    let variants: Vec<(&str, GlobalConfig)> = vec![
        ("full (gate + penalty)", gcfg.clone()),
        (
            "no uncertainty penalty",
            GlobalConfig {
                eco_uncertainty_frac: 0.0,
                ..gcfg.clone()
            },
        ),
        (
            "loose fidelity gate",
            GlobalConfig {
                fidelity_tol_frac: 10.0,
                fidelity_tol_ps: 1_000.0,
                ..gcfg.clone()
            },
        ),
    ];
    println!("{:<24} {:>12} {:>8}", "variant", "variation", "arcs");
    for (name, cfg) in variants {
        let (_, rep) = global_optimize(&tc.tree, &tc.lib, &tc.floorplan, &luts, &cfg);
        println!(
            "{:<24} {:>6.1}->{:<6.1} {:>6}",
            name, rep.variation_before, rep.variation_after, rep.arcs_changed
        );
    }

    // --- 3. power / area cost of the reduction (future work i) ---
    println!("\n=== power/area cost of the global-local reduction ===");
    let (gtree, grep) = global_optimize(&tc.tree, &tc.lib, &tc.floorplan, &luts, &gcfg);
    let mut full = gtree;
    let lrep = local_optimize(&mut full, &tc.lib, &tc.floorplan, Ranker::Ml(&hsm), &lcfg);
    let timer = clk_sta::Timer::golden();
    let p0 = clk_sta::clock_power(
        &tc.tree,
        &tc.lib,
        &timer.analyze(&tc.tree, &tc.lib, CornerId(0)),
        1.0,
    );
    let p1 = clk_sta::clock_power(
        &full,
        &tc.lib,
        &timer.analyze(&full, &tc.lib, CornerId(0)),
        1.0,
    );
    let s0 = clk_netlist::TreeStats::compute(&tc.tree, &tc.lib);
    let s1 = clk_netlist::TreeStats::compute(&full, &tc.lib);
    println!(
        "variation {:.1} -> {:.1} ps ({:.1}%)",
        grep.variation_before,
        lrep.variation_after,
        100.0 * (1.0 - lrep.variation_after / grep.variation_before)
    );
    println!(
        "power {:.3} -> {:.3} mW ({:+.2}%), cells {} -> {} ({:+.2}%), area {:.1} -> {:.1} um2",
        p0.total_mw(),
        p1.total_mw(),
        100.0 * (p1.total_mw() / p0.total_mw() - 1.0),
        s0.n_buffers,
        s1.n_buffers,
        100.0 * (s1.n_buffers as f64 / s0.n_buffers as f64 - 1.0),
        s0.buffer_area_um2,
        s1.buffer_area_um2,
    );

    // --- 4. worse starting point (future work iv) ---
    println!("\n=== worse initial start point (future work iv) ===");
    let mut unbalanced = tc.tree.clone();
    // undo most balance detours: re-route sink edges as plain L-shapes
    let sinks: Vec<_> = unbalanced.sinks().collect();
    for s in sinks {
        let p = unbalanced.parent(s).expect("sink driven");
        let straight = clk_route::RoutePath::l_shape(unbalanced.loc(p), unbalanced.loc(s));
        unbalanced.set_route(s, straight).expect("endpoints match");
    }
    // partially re-balance so DRC stays clean but skews stay large
    balance_by_detours(
        &mut unbalanced,
        &tc.lib,
        BalanceMode::SingleCorner(CornerId(0)),
        1,
        40.0,
    );
    let v_bal = variation_sum(&tc.tree, &tc.lib);
    let v_unbal = variation_sum(&unbalanced, &tc.lib);
    let (_, rep_bal) = global_optimize(&tc.tree, &tc.lib, &tc.floorplan, &luts, &gcfg);
    let (_, rep_unbal) = global_optimize(&unbalanced, &tc.lib, &tc.floorplan, &luts, &gcfg);
    println!(
        "balanced start:   {v_bal:.1} -> {:.1} ps",
        rep_bal.variation_after
    );
    println!(
        "unbalanced start: {v_unbal:.1} -> {:.1} ps",
        rep_unbal.variation_after
    );
    println!("(the paper asks whether a worse start can reach a better optimum)");
    sw.report();
}
