//! Delta-latency prediction (paper §4.2): analytical estimators over
//! {FLUTE, single-trunk Steiner} × {Elmore, D2M}, and machine-learning
//! models (ANN / SVM-RBF / HSM) trained per corner on artificial
//! testcases to close the gap to the golden timer.

use clk_delay::{peri_slew, NetTiming, RcTree, WireModel};
use clk_geom::{um_to_dbu, Point, Rect};
use clk_liberty::{CellId, CornerId, Library};
use clk_ml::{Hsm, LsSvm, Mlp, MlpConfig, Regressor, StandardScaler};
use clk_netlist::{ClockTree, Floorplan, NodeId, NodeKind};
use clk_route::{rsmt, single_trunk};
use clk_sta::{CornerTiming, Timer};

use crate::moves::{apply_move, enumerate_moves, Move, MoveConfig, Resize};

/// Routing-pattern estimate used by the analytical models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Topo {
    /// FLUTE-class rectilinear Steiner minimal tree.
    Flute,
    /// Single-trunk Steiner tree.
    SingleTrunk,
}

/// Fast per-net estimate: gate + estimated-topology wire delay to each
/// pin, with PERI slews.
struct NetEst {
    pin_delay: Vec<f64>,
    pin_slew: Vec<f64>,
}

#[allow(clippy::too_many_arguments)]
fn net_estimate(
    lib: &Library,
    corner: CornerId,
    drv_cell: CellId,
    slew_in: f64,
    drv_loc: Point,
    pins: &[(Point, f64)],
    topo: Topo,
    model: WireModel,
) -> NetEst {
    let pts: Vec<Point> = pins.iter().map(|&(p, _)| p).collect();
    let wt = match topo {
        Topo::Flute => rsmt(drv_loc, &pts),
        Topo::SingleTrunk => single_trunk(drv_loc, &pts),
    };
    let loads: Vec<(usize, f64)> = pins
        .iter()
        .map(|&(p, c)| (wt.index_of(p).expect("pin in tree"), c))
        .collect();
    // lumped extraction: this is the *fast* estimate, not golden
    let rct = RcTree::extract(&wt, lib.wire_rc(corner), &loads, 1.0e9);
    let nt = NetTiming::analyze(&rct);
    let load = nt.total_cap_ff();
    let gate = lib.gate_delay(drv_cell, corner, slew_in, load);
    let gslew = lib.gate_output_slew(drv_cell, corner, slew_in, load);
    let mut pin_delay = Vec::with_capacity(pins.len());
    let mut pin_slew = Vec::with_capacity(pins.len());
    for &(p, _) in pins {
        let rc_node = rct.rc_node_of_wire_node(wt.index_of(p).expect("pin in tree"));
        pin_delay.push(gate + nt.delay_ps(rc_node, model));
        pin_slew.push(peri_slew(gslew, nt.wire_slew_ps(rc_node)));
    }
    NetEst {
        pin_delay,
        pin_slew,
    }
}

fn pin_cap(tree: &ClockTree, lib: &Library, node: NodeId) -> f64 {
    match tree.node(node).kind {
        NodeKind::Buffer(c) => lib.cell(c).input_cap_ff,
        NodeKind::Sink => lib.sink_cap_ff(),
        NodeKind::Source => 0.0,
    }
}

fn resized(lib: &Library, cell: CellId, r: Resize) -> CellId {
    match r {
        Resize::None => cell,
        Resize::Up => lib.size_up(cell).unwrap_or(cell),
        Resize::Down => lib.size_down(cell).unwrap_or(cell),
    }
}

/// The analytical estimate of one move's impact at one corner.
#[derive(Debug, Clone, PartialEq)]
pub struct MoveEstimate {
    /// Estimated mean latency change of the sinks below the move's
    /// primary node, ps.
    pub primary_delta: f64,
    /// Differential breakdown per child subtree of the primary node (the
    /// resized child of a type-II move shifts relative to its siblings —
    /// a mean-field delta would hide exactly the skew the move creates).
    pub per_child: Vec<(NodeId, f64)>,
    /// Estimated latency changes of *sibling* subtrees perturbed through
    /// shared nets, as `(subtree root, delta ps)`.
    pub side_effects: Vec<(NodeId, f64)>,
}

/// Analytically estimates a move's delta-latency at `corner` using the
/// chosen routing-pattern / wire-delay models. This is the pre-ML
/// estimator of the paper (and the "analytical model" baseline of
/// Fig. 6); it sees neither legalization nor the actual ECO route.
#[allow(clippy::too_many_arguments)]
pub fn analytic_move_estimate(
    tree: &ClockTree,
    lib: &Library,
    corner: CornerId,
    timing: &CornerTiming,
    mv: &Move,
    cfg: &MoveConfig,
    topo: Topo,
    model: WireModel,
) -> MoveEstimate {
    let step = um_to_dbu(cfg.displace_um);
    match *mv {
        Move::SizeDisplace { node, dir, resize } => {
            let new_loc = match dir {
                Some(d) => tree.loc(node).step(d, step),
                None => tree.loc(node),
            };
            let old_cell = tree.cell(node).expect("buffer");
            let new_cell = resized(lib, old_cell, resize);
            estimate_driver_change(
                tree,
                lib,
                corner,
                timing,
                node,
                new_loc,
                new_cell,
                &[],
                topo,
                model,
            )
        }
        Move::ChildSize {
            node,
            dir,
            child,
            child_resize,
        } => {
            let new_loc = tree.loc(node).step(dir, step);
            let cell = tree.cell(node).expect("buffer");
            let child_cell = tree.cell(child).expect("buffer child");
            let new_child_cell = resized(lib, child_cell, child_resize);
            estimate_driver_change(
                tree,
                lib,
                corner,
                timing,
                node,
                new_loc,
                cell,
                &[(child, new_child_cell)],
                topo,
                model,
            )
        }
        Move::Reassign { node, new_parent } => {
            let p = tree.parent(node).expect("non-root");
            // old driver's net with and without `node`
            let old_pins: Vec<(Point, f64)> = tree
                .children(p)
                .iter()
                .map(|&c| (tree.loc(c), pin_cap(tree, lib, c)))
                .collect();
            let p_cell = tree.cell(p).expect("driver");
            let est_old = net_estimate(
                lib,
                corner,
                p_cell,
                timing.slew_ps(p),
                tree.loc(p),
                &old_pins,
                topo,
                model,
            );
            let idx = tree
                .children(p)
                .iter()
                .position(|&c| c == node)
                .expect("node is a child of p");
            // new driver's net with `node` appended
            let mut new_pins: Vec<(Point, f64)> = tree
                .children(new_parent)
                .iter()
                .map(|&c| (tree.loc(c), pin_cap(tree, lib, c)))
                .collect();
            new_pins.push((tree.loc(node), pin_cap(tree, lib, node)));
            let np_cell = tree.cell(new_parent).expect("driver");
            let est_new = net_estimate(
                lib,
                corner,
                np_cell,
                timing.slew_ps(new_parent),
                tree.loc(new_parent),
                &new_pins,
                topo,
                model,
            );
            let primary_delta = (timing.arrival_ps(new_parent) - timing.arrival_ps(p))
                + (est_new.pin_delay[new_pins.len() - 1] - est_old.pin_delay[idx]);
            // side effects: old siblings speed up, new siblings slow down
            let mut side = Vec::new();
            if old_pins.len() > 1 {
                let remaining: Vec<(Point, f64)> = old_pins
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != idx)
                    .map(|(_, &p)| p)
                    .collect();
                let est_rem = net_estimate(
                    lib,
                    corner,
                    p_cell,
                    timing.slew_ps(p),
                    tree.loc(p),
                    &remaining,
                    topo,
                    model,
                );
                let mut k = 0;
                for (i, &c) in tree.children(p).iter().enumerate() {
                    if i == idx {
                        continue;
                    }
                    side.push((c, est_rem.pin_delay[k] - est_old.pin_delay[i]));
                    k += 1;
                }
            }
            if new_pins.len() > 1 {
                let prior: Vec<(Point, f64)> = new_pins[..new_pins.len() - 1].to_vec();
                let est_prior = net_estimate(
                    lib,
                    corner,
                    np_cell,
                    timing.slew_ps(new_parent),
                    tree.loc(new_parent),
                    &prior,
                    topo,
                    model,
                );
                for (i, &c) in tree.children(new_parent).iter().enumerate() {
                    side.push((c, est_new.pin_delay[i] - est_prior.pin_delay[i]));
                }
            }
            MoveEstimate {
                primary_delta,
                per_child: vec![(node, primary_delta)],
                side_effects: side,
            }
        }
    }
}

/// Shared path for type I/II: driver `node` moves to `new_loc` with
/// `new_cell`; `child_changes` lists child resizes.
#[allow(clippy::too_many_arguments)]
fn estimate_driver_change(
    tree: &ClockTree,
    lib: &Library,
    corner: CornerId,
    timing: &CornerTiming,
    node: NodeId,
    new_loc: Point,
    new_cell: CellId,
    child_changes: &[(NodeId, CellId)],
    topo: Topo,
    model: WireModel,
) -> MoveEstimate {
    let old_cell = tree.cell(node).expect("buffer");
    // --- stage 0: the parent's net sees node's pin move / recap ---
    let (d1, slew_shift, parent_side) = match tree.parent(node) {
        None => (0.0, 0.0, Vec::new()),
        Some(p) => {
            let p_cell = tree.cell(p).expect("driver");
            let p_slew = timing.slew_ps(p);
            let before: Vec<(Point, f64)> = tree
                .children(p)
                .iter()
                .map(|&c| (tree.loc(c), pin_cap(tree, lib, c)))
                .collect();
            let mut after = before.clone();
            let idx = tree
                .children(p)
                .iter()
                .position(|&c| c == node)
                .expect("node under p");
            after[idx] = (new_loc, lib.cell(new_cell).input_cap_ff);
            let eb = net_estimate(
                lib,
                corner,
                p_cell,
                p_slew,
                tree.loc(p),
                &before,
                topo,
                model,
            );
            let ea = net_estimate(
                lib,
                corner,
                p_cell,
                p_slew,
                tree.loc(p),
                &after,
                topo,
                model,
            );
            let mut side = Vec::new();
            for (i, &c) in tree.children(p).iter().enumerate() {
                if i != idx {
                    side.push((c, ea.pin_delay[i] - eb.pin_delay[i]));
                }
            }
            (
                ea.pin_delay[idx] - eb.pin_delay[idx],
                ea.pin_slew[idx] - eb.pin_slew[idx],
                side,
            )
        }
    };
    // --- stage 1: node's own net ---
    let children = tree.children(node);
    if children.is_empty() {
        return MoveEstimate {
            primary_delta: d1,
            per_child: vec![(node, d1)],
            side_effects: parent_side,
        };
    }
    let new_child_cell = |c: NodeId| -> f64 {
        child_changes.iter().find(|&&(cc, _)| cc == c).map_or_else(
            || pin_cap(tree, lib, c),
            |&(_, cell)| lib.cell(cell).input_cap_ff,
        )
    };
    let before: Vec<(Point, f64)> = children
        .iter()
        .map(|&c| (tree.loc(c), pin_cap(tree, lib, c)))
        .collect();
    let after: Vec<(Point, f64)> = children
        .iter()
        .map(|&c| (tree.loc(c), new_child_cell(c)))
        .collect();
    let s_live = timing.slew_ps(node);
    let eb = net_estimate(
        lib,
        corner,
        old_cell,
        s_live,
        tree.loc(node),
        &before,
        topo,
        model,
    );
    let ea = net_estimate(
        lib,
        corner,
        new_cell,
        (s_live + slew_shift).max(1.0),
        new_loc,
        &after,
        topo,
        model,
    );
    // per-child deltas: shift at the driver input (d1) + this child's own
    // net-delay change + its stage-2 gate-delay change
    let mut per_child = Vec::with_capacity(children.len());
    for (i, &c) in children.iter().enumerate() {
        let d2_i = ea.pin_delay[i] - eb.pin_delay[i];
        let d3_i = if let NodeKind::Buffer(c_cell) = tree.node(c).kind {
            let load = timing.load_ff(c);
            let new_cell_c = child_changes
                .iter()
                .find(|&&(cc, _)| cc == c)
                .map_or(c_cell, |&(_, cell)| cell);
            let g_b = lib.gate_delay(c_cell, corner, eb.pin_slew[i], load);
            let g_a = lib.gate_delay(new_cell_c, corner, ea.pin_slew[i], load);
            g_a - g_b
        } else {
            0.0
        };
        per_child.push((c, d1 + d2_i + d3_i));
    }
    let primary_delta = per_child.iter().map(|&(_, d)| d).sum::<f64>() / children.len() as f64;
    MoveEstimate {
        primary_delta,
        per_child,
        side_effects: parent_side,
    }
}

/// Number of features produced by [`move_features`].
pub const N_FEATURES: usize = 10;

/// The model input of the paper: the four analytical delta estimates plus
/// net geometry (fanout, bounding-box area, aspect ratio) and move
/// descriptors.
pub fn move_features(
    tree: &ClockTree,
    lib: &Library,
    corner: CornerId,
    timing: &CornerTiming,
    mv: &Move,
    cfg: &MoveConfig,
) -> Vec<f64> {
    move_features_with_sides(tree, lib, corner, timing, mv, cfg).0
}

/// [`move_features`] plus the full FLUTE×D2M [`MoveEstimate`] (per-child
/// deltas and sibling side effects), reused by the local optimizer so the
/// four expensive analytic passes run once.
pub fn move_features_with_sides(
    tree: &ClockTree,
    lib: &Library,
    corner: CornerId,
    timing: &CornerTiming,
    mv: &Move,
    cfg: &MoveConfig,
) -> (Vec<f64>, MoveEstimate) {
    let combos = [
        (Topo::Flute, WireModel::Elmore),
        (Topo::Flute, WireModel::D2m),
        (Topo::SingleTrunk, WireModel::Elmore),
        (Topo::SingleTrunk, WireModel::D2m),
    ];
    let mut detail = None;
    let mut f = Vec::with_capacity(N_FEATURES);
    for (topo, model) in combos {
        let est = analytic_move_estimate(tree, lib, corner, timing, mv, cfg, topo, model);
        f.push(est.primary_delta);
        if topo == Topo::Flute && model == WireModel::D2m {
            detail = Some(est);
        }
    }
    let detail = detail.expect("FLUTE x D2M combo always runs");
    let node = mv.primary_node();
    let children = tree.children(node);
    f.push(children.len() as f64);
    let mut pts: Vec<Point> = children.iter().map(|&c| tree.loc(c)).collect();
    pts.push(tree.loc(node));
    let bbox = Rect::bounding(&pts).expect("non-empty");
    f.push(bbox.area_um2() / 1_000.0);
    f.push(bbox.aspect_ratio());
    // move descriptors: drive delta, displacement, child-cap delta
    let (ddrive, dist, dcap) = match *mv {
        Move::SizeDisplace { node, dir, resize } => {
            let c = tree.cell(node).expect("buffer");
            let nc = resized(lib, c, resize);
            (
                lib.cell(nc).drive - lib.cell(c).drive,
                if dir.is_some() { cfg.displace_um } else { 0.0 },
                lib.cell(nc).input_cap_ff - lib.cell(c).input_cap_ff,
            )
        }
        Move::ChildSize {
            child,
            child_resize,
            ..
        } => {
            let c = tree.cell(child).expect("buffer");
            let nc = resized(lib, c, child_resize);
            (
                lib.cell(nc).drive - lib.cell(c).drive,
                cfg.displace_um,
                lib.cell(nc).input_cap_ff - lib.cell(c).input_cap_ff,
            )
        }
        Move::Reassign { node, new_parent } => {
            let p = tree.parent(node).expect("non-root");
            (0.0, tree.loc(new_parent).manhattan_um(tree.loc(p)), 0.0)
        }
    };
    f.push(ddrive);
    f.push(dist);
    f.push(dcap);
    debug_assert_eq!(f.len(), N_FEATURES);
    (f, detail)
}

/// Which learner backs a [`DeltaLatencyModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Artificial neural network only.
    Ann,
    /// LS-SVM with RBF kernel only.
    Svm,
    /// HSM blend of ANN + SVM (the flow default).
    Hsm,
}

/// Training configuration for the delta-latency models.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of artificial testcases (the paper uses 150).
    pub n_cases: usize,
    /// Every `last_stage_every`-th case is a last-stage net (fanout
    /// 20–40).
    pub last_stage_every: usize,
    /// Cap on moves sampled per case (the paper averages ~450).
    pub moves_per_case: usize,
    /// RNG seed for case generation.
    pub seed: u64,
    /// ANN hyper-parameters.
    pub mlp: MlpConfig,
    /// RBF kernel width.
    pub svm_gamma: f64,
    /// LS-SVM regularization.
    pub svm_c: f64,
    /// Subsample cap for the O(n³) LS-SVM solve.
    pub svm_max_samples: usize,
    /// Fraction held out to pick HSM blend weights.
    pub val_frac: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            n_cases: 60,
            last_stage_every: 3,
            moves_per_case: 80,
            seed: 11,
            mlp: MlpConfig {
                epochs: 120,
                ..MlpConfig::default()
            },
            svm_gamma: 0.08,
            svm_c: 50.0,
            svm_max_samples: 600,
            val_frac: 0.2,
        }
    }
}

/// The labelled training data of one corner.
#[derive(Debug, Clone, Default)]
pub struct CornerData {
    /// Feature vectors.
    pub x: Vec<Vec<f64>>,
    /// Golden-timer delta-latency targets, ps.
    pub y: Vec<f64>,
    /// Baseline (pre-move) mean latency of the affected sinks, ps — the
    /// paper reports model error on latencies reconstructed as
    /// `latency + predicted delta` (Fig. 5), so the baseline is kept with
    /// every sample.
    pub lat: Vec<f64>,
}

/// Per-corner training data built from artificial testcases.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Indexed by corner.
    pub per_corner: Vec<CornerData>,
}

/// Generates the training set: artificial nets, candidate moves, golden
/// before/after timing (paper §4.2's data-generation loop).
pub fn build_dataset(lib: &Library, cfg: &TrainConfig) -> Dataset {
    let fp = Floorplan::utilized(Rect::from_um(0.0, 0.0, 1_000.0, 1_000.0), vec![]);
    let timer = Timer::golden();
    let mcfg = MoveConfig::default();
    let mut per_corner = vec![CornerData::default(); lib.corner_count()];
    for case_i in 0..cfg.n_cases {
        let case = clk_cts::artificial(
            lib,
            cfg.seed.wrapping_add(case_i as u64),
            cfg.last_stage_every > 0 && case_i % cfg.last_stage_every == 0,
        );
        let before: Vec<CornerTiming> = timer.analyze_all(&case.tree, lib);
        // every node is a training target so the model sees all three
        // Table-2 move types (including sink reassignments)
        let all_moves = enumerate_moves(&case.tree, lib, &mcfg, None);
        if all_moves.is_empty() {
            continue;
        }
        // deterministic stride sampling for diversity under the cap
        let stride = all_moves.len().div_ceil(cfg.moves_per_case.max(1)).max(1);
        for mv in all_moves.into_iter().step_by(stride) {
            let primary = mv.primary_node();
            let sinks: Vec<NodeId> = case
                .tree
                .sinks()
                .filter(|&s| case.tree.is_descendant(s, primary))
                .collect();
            if sinks.is_empty() {
                continue;
            }
            let mut trial = case.tree.clone();
            if apply_move(&mut trial, lib, &fp, &mcfg, &mv).is_err() {
                continue;
            }
            for k in lib.corner_ids() {
                let feats = move_features(&case.tree, lib, k, &before[k.0], &mv, &mcfg);
                let after = timer.analyze(&trial, lib, k);
                let baseline: f64 = sinks
                    .iter()
                    .map(|&s| before[k.0].arrival_ps(s))
                    .sum::<f64>()
                    / sinks.len() as f64;
                let target: f64 = sinks
                    .iter()
                    .map(|&s| after.arrival_ps(s) - before[k.0].arrival_ps(s))
                    .sum::<f64>()
                    / sinks.len() as f64;
                per_corner[k.0].x.push(feats);
                per_corner[k.0].y.push(target);
                per_corner[k.0].lat.push(baseline);
            }
        }
    }
    Dataset { per_corner }
}

/// One corner's trained predictor.
enum CornerModel {
    Ann(Mlp),
    Svm(LsSvm),
    Hsm(Hsm<Box<dyn Regressor>>),
}

impl CornerModel {
    fn predict(&self, x: &[f64]) -> f64 {
        match self {
            CornerModel::Ann(m) => m.predict(x),
            CornerModel::Svm(m) => m.predict(x),
            CornerModel::Hsm(m) => m.predict(x),
        }
    }
}

/// Per-corner machine-learning delta-latency predictor.
///
/// One model per corner is trained once per technology on artificial
/// testcases and reused for every design (paper §4.2).
pub struct DeltaLatencyModel {
    kind: ModelKind,
    scalers: Vec<StandardScaler>,
    /// Per-corner target normalization `(mean, std)` — reassignment moves
    /// produce deltas two orders of magnitude above sizing moves, so the
    /// learners train on standardized targets.
    y_norm: Vec<(f64, f64)>,
    models: Vec<CornerModel>,
}

impl std::fmt::Debug for DeltaLatencyModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeltaLatencyModel")
            .field("kind", &self.kind)
            .field("corners", &self.models.len())
            .finish()
    }
}

impl DeltaLatencyModel {
    /// Trains the chosen model kind on `dataset`.
    ///
    /// # Panics
    ///
    /// Panics if a corner has no samples.
    pub fn fit(dataset: &Dataset, kind: ModelKind, cfg: &TrainConfig) -> Self {
        let mut scalers = Vec::with_capacity(dataset.per_corner.len());
        let mut y_norm = Vec::with_capacity(dataset.per_corner.len());
        let mut models = Vec::with_capacity(dataset.per_corner.len());
        for data in &dataset.per_corner {
            assert!(!data.x.is_empty(), "no training data for a corner");
            let scaler = StandardScaler::fit(&data.x);
            let xs = scaler.transform_batch(&data.x);
            let n = data.y.len() as f64;
            let mean = data.y.iter().sum::<f64>() / n;
            let std = (data.y.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n)
                .sqrt()
                .max(1e-9);
            let ys: Vec<f64> = data.y.iter().map(|v| (v - mean) / std).collect();
            let model = match kind {
                ModelKind::Ann => CornerModel::Ann(Mlp::train(&xs, &ys, &cfg.mlp)),
                ModelKind::Svm => CornerModel::Svm(train_svm(&xs, &ys, cfg)),
                ModelKind::Hsm => {
                    let (tr, va) = clk_ml::train_val_split(xs.len(), cfg.val_frac, cfg.seed);
                    let take = |idx: &[usize]| -> (Vec<Vec<f64>>, Vec<f64>) {
                        (
                            idx.iter().map(|&i| xs[i].clone()).collect(),
                            idx.iter().map(|&i| ys[i]).collect(),
                        )
                    };
                    let (xt, yt) = take(&tr);
                    let (xv, yv) = take(&va);
                    let ann = Mlp::train(&xt, &yt, &cfg.mlp);
                    let svm = train_svm(&xt, &yt, cfg);
                    let base: Vec<Box<dyn Regressor>> = vec![Box::new(ann), Box::new(svm)];
                    CornerModel::Hsm(Hsm::blend(base, &xv, &yv, 0.1))
                }
            };
            scalers.push(scaler);
            y_norm.push((mean, std));
            models.push(model);
        }
        DeltaLatencyModel {
            kind,
            scalers,
            y_norm,
            models,
        }
    }

    /// Convenience: build the dataset and fit in one step.
    pub fn train(lib: &Library, kind: ModelKind, cfg: &TrainConfig) -> Self {
        let ds = build_dataset(lib, cfg);
        Self::fit(&ds, kind, cfg)
    }

    /// Which learner backs this model.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// Predicted delta latency, ps, for raw (unscaled) features at
    /// `corner`.
    ///
    /// # Panics
    ///
    /// Panics if `corner` is out of range.
    pub fn predict(&self, corner: CornerId, features: &[f64]) -> f64 {
        let z = self.scalers[corner.0].transform(features);
        let (mean, std) = self.y_norm[corner.0];
        self.models[corner.0].predict(&z) * std + mean
    }
}

fn train_svm(xs: &[Vec<f64>], ys: &[f64], cfg: &TrainConfig) -> LsSvm {
    if xs.len() <= cfg.svm_max_samples {
        return LsSvm::train(xs, ys, cfg.svm_gamma, cfg.svm_c);
    }
    // deterministic stride subsample
    let stride = xs.len().div_ceil(cfg.svm_max_samples);
    let xi: Vec<Vec<f64>> = xs.iter().step_by(stride).cloned().collect();
    let yi: Vec<f64> = ys.iter().step_by(stride).copied().collect();
    LsSvm::train(&xi, &yi, cfg.svm_gamma, cfg.svm_c)
}

#[cfg(test)]
// tests pin exact expected values on purpose
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use clk_liberty::StdCorners;
    use clk_ml::{mape, mse};

    fn lib() -> Library {
        Library::synthetic_28nm(StdCorners::c0_c1_c3())
    }

    fn tiny_cfg() -> TrainConfig {
        TrainConfig {
            n_cases: 8,
            moves_per_case: 14,
            mlp: MlpConfig {
                epochs: 60,
                ..MlpConfig::default()
            },
            ..TrainConfig::default()
        }
    }

    #[test]
    fn dataset_has_consistent_shapes() {
        let lib = lib();
        let ds = build_dataset(&lib, &tiny_cfg());
        assert_eq!(ds.per_corner.len(), 3);
        for cd in &ds.per_corner {
            assert!(!cd.x.is_empty());
            assert_eq!(cd.x.len(), cd.y.len());
            assert!(cd.x.iter().all(|f| f.len() == N_FEATURES));
            assert!(cd.x.iter().flatten().all(|v| v.is_finite()));
            assert!(cd.y.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn analytic_estimates_correlate_with_golden() {
        let lib = lib();
        let ds = build_dataset(&lib, &tiny_cfg());
        // feature 0 is the FLUTE×Elmore estimate: it should correlate
        // positively with the golden target
        let cd = &ds.per_corner[0];
        let est: Vec<f64> = cd.x.iter().map(|f| f[0]).collect();
        let n = est.len() as f64;
        let me = est.iter().sum::<f64>() / n;
        let my = cd.y.iter().sum::<f64>() / n;
        let cov: f64 = est
            .iter()
            .zip(&cd.y)
            .map(|(a, b)| (a - me) * (b - my))
            .sum();
        let va: f64 = est.iter().map(|a| (a - me) * (a - me)).sum();
        let vb: f64 = cd.y.iter().map(|b| (b - my) * (b - my)).sum();
        let corr = cov / (va.sqrt() * vb.sqrt() + 1e-12);
        assert!(corr > 0.5, "corr = {corr}");
    }

    #[test]
    fn trained_model_beats_raw_analytical() {
        let lib = lib();
        let cfg = tiny_cfg();
        let ds = build_dataset(&lib, &cfg);
        // train/test split per corner 0
        let cd = &ds.per_corner[0];
        let n = cd.x.len();
        let cut = n * 4 / 5;
        let train = Dataset {
            per_corner: vec![CornerData {
                x: cd.x[..cut].to_vec(),
                y: cd.y[..cut].to_vec(),
                lat: cd.lat[..cut].to_vec(),
            }],
        };
        let model = DeltaLatencyModel::fit(&train, ModelKind::Hsm, &cfg);
        let pred: Vec<f64> = cd.x[cut..]
            .iter()
            .map(|f| model.predict(CornerId(0), f))
            .collect();
        let analytic: Vec<f64> = cd.x[cut..].iter().map(|f| f[0]).collect();
        let truth = &cd.y[cut..];
        let m_model = mse(&pred, truth);
        let m_analytic = mse(&analytic, truth);
        assert!(
            m_model < m_analytic * 1.5,
            "model mse {m_model} vs analytic {m_analytic}"
        );
        // Fig. 5's metric: error relative to the reconstructed latency
        // (latency + delta), which is what the paper's 2.8% refers to
        let lat = &cd.lat[cut..];
        let rel: f64 = pred
            .iter()
            .zip(truth)
            .zip(lat)
            .map(|((p, t), l)| ((p - t) / (l + t)).abs())
            .sum::<f64>()
            / pred.len() as f64;
        assert!(rel < 0.25, "latency-relative error {:.1}%", 100.0 * rel);
        // raw-delta MAPE is noisy (near-zero deltas blow up the ratio
        // even under the 1 ps floor) but should stay bounded
        let e = mape(&pred, truth, 1.0);
        assert!(e < 600.0, "mape {e}%");
    }

    #[test]
    fn predict_is_deterministic() {
        let lib = lib();
        let cfg = tiny_cfg();
        let ds = build_dataset(&lib, &cfg);
        let m1 = DeltaLatencyModel::fit(&ds, ModelKind::Ann, &cfg);
        let m2 = DeltaLatencyModel::fit(&ds, ModelKind::Ann, &cfg);
        let x = &ds.per_corner[1].x[0];
        assert_eq!(m1.predict(CornerId(1), x), m2.predict(CornerId(1), x));
    }
}
