//! Latency balancing by routing detours — the "skew target 0 ps" pass.

use clk_liberty::{CornerId, Library};
use clk_netlist::{ClockTree, NodeId, NodeKind};
use clk_route::RoutePath;
use clk_sta::Timer;

/// How the balancer weighs corners, mirroring the paper's MCSM vs MCMM
/// clock-tree optimization scenarios (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BalanceMode {
    /// Balance latencies at one corner only (multi-corner **single-mode**
    /// runs pick the best corner afterwards).
    SingleCorner(CornerId),
    /// Balance the average of per-corner latencies, each normalized by
    /// that corner's mean latency (multi-corner multi-mode).
    MultiCorner,
}

/// Iteratively lengthens the routes into faster sinks ("detour snaking")
/// until every sink is as late as the slowest one, within what the step
/// limit allows. Returns the final worst-minus-best latency spread, ps, at
/// the balance objective.
///
/// Only sink edges are detoured; upper-level imbalance remains — exactly
/// the residual a commercial CTS leaves for the paper's optimizer to
/// clean up across corners.
pub fn balance_by_detours(
    tree: &mut ClockTree,
    lib: &Library,
    mode: BalanceMode,
    iterations: usize,
    max_detour_per_iter_um: f64,
) -> f64 {
    let timer = Timer::golden();
    let mut spread = f64::INFINITY;
    for _ in 0..iterations {
        // objective latency per sink
        let lat: Vec<(NodeId, f64)> = match mode {
            BalanceMode::SingleCorner(c) => {
                let t = timer.analyze(tree, lib, c);
                tree.sinks().map(|s| (s, t.arrival_ps(s))).collect()
            }
            BalanceMode::MultiCorner => {
                let all: Vec<_> = lib
                    .corner_ids()
                    .map(|c| timer.analyze(tree, lib, c))
                    .collect();
                let sinks: Vec<NodeId> = tree.sinks().collect();
                let means: Vec<f64> = all
                    .iter()
                    .map(|t| {
                        sinks.iter().map(|&s| t.arrival_ps(s)).sum::<f64>() / sinks.len() as f64
                    })
                    .collect();
                sinks
                    .iter()
                    .map(|&s| {
                        let v = all
                            .iter()
                            .zip(&means)
                            .map(|(t, m)| t.arrival_ps(s) / m)
                            .sum::<f64>()
                            / all.len() as f64;
                        (s, v)
                    })
                    .collect()
            }
        };
        let target = lat
            .iter()
            .map(|&(_, v)| v)
            .fold(f64::NEG_INFINITY, f64::max);
        let low = lat.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min);
        spread = target - low;
        if spread < 1.0 {
            break;
        }
        // ps-per-µm estimate at the reference corner for converting latency
        // gaps to detour lengths
        let ref_corner = match mode {
            BalanceMode::SingleCorner(c) => c,
            BalanceMode::MultiCorner => CornerId(0),
        };
        let wire = lib.wire_rc(ref_corner);
        let scale = match mode {
            BalanceMode::SingleCorner(_) => 1.0,
            BalanceMode::MultiCorner => {
                // normalized units: convert back with the mean c0 latency
                let t = timer.analyze(tree, lib, CornerId(0));
                let sinks: Vec<NodeId> = tree.sinks().collect();
                sinks.iter().map(|&s| t.arrival_ps(s)).sum::<f64>() / sinks.len() as f64
            }
        };
        for (s, v) in lat {
            let gap_ps = (target - v) * scale;
            if gap_ps < 1.0 {
                continue;
            }
            let parent = tree.parent(s).expect("sink has driver");
            let drv_cell = match tree.node(parent).kind {
                NodeKind::Buffer(c) => c,
                _ => tree.source_cell(),
            };
            let r_drv = lib.drive_res_kohm(drv_cell, ref_corner);
            let route = tree.node(s).route.as_ref().expect("sink routed");
            let len = route.length_um();
            // d(delay)/d(len): driver sees more cap + wire RC grows
            let ps_per_um =
                r_drv * wire.c_per_um + wire.r_per_um * (wire.c_per_um * len + lib.sink_cap_ff());
            let add = (0.7 * gap_ps / ps_per_um).clamp(0.0, max_detour_per_iter_um);
            if add < 1.0 {
                continue;
            }
            let existing_extra = len - tree.loc(parent).manhattan_um(tree.loc(s));
            let new_route =
                RoutePath::with_detour(tree.loc(parent), tree.loc(s), existing_extra + add);
            tree.set_route(s, new_route).expect("endpoints unchanged");
        }
    }
    spread
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CtsEngine;
    use clk_geom::{Point, Rect};
    use clk_liberty::StdCorners;
    use clk_netlist::Floorplan;

    fn skew_at(tree: &ClockTree, lib: &Library, c: CornerId) -> f64 {
        let t = Timer::golden().analyze(tree, lib, c);
        let lats: Vec<f64> = tree.sinks().map(|s| t.arrival_ps(s)).collect();
        lats.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b))
            - lats.iter().fold(f64::INFINITY, |a, &b| a.min(b))
    }

    fn unbalanced_case() -> (ClockTree, Library) {
        let lib = Library::synthetic_28nm(StdCorners::c0_c1_c3());
        let fp = Floorplan::utilized(Rect::from_um(0.0, 0.0, 800.0, 800.0), vec![]);
        // asymmetric sink spread to create skew
        let mut sinks = Vec::new();
        for i in 0..30 {
            sinks.push(Point::from_um(
                40.0 + 11.0 * f64::from(i % 6),
                40.0 + 13.0 * f64::from(i / 6),
            ));
        }
        for i in 0..6 {
            sinks.push(Point::from_um(700.0 + 10.0 * f64::from(i), 720.0));
        }
        let tree = CtsEngine::default().synthesize(&lib, &fp, Point::from_um(0.0, 0.0), &sinks);
        (tree, lib)
    }

    #[test]
    fn balancing_reduces_skew_at_target_corner() {
        let (mut tree, lib) = unbalanced_case();
        let before = skew_at(&tree, &lib, CornerId(0));
        let spread = balance_by_detours(
            &mut tree,
            &lib,
            BalanceMode::SingleCorner(CornerId(0)),
            4,
            120.0,
        );
        let after = skew_at(&tree, &lib, CornerId(0));
        tree.validate().unwrap();
        assert!(after < before, "skew went {before} -> {after}");
        assert!(spread <= before + 1e-9);
    }

    #[test]
    fn multicorner_balancing_runs_and_helps_somewhere() {
        let (mut tree, lib) = unbalanced_case();
        let before: f64 = lib.corner_ids().map(|c| skew_at(&tree, &lib, c)).sum();
        balance_by_detours(&mut tree, &lib, BalanceMode::MultiCorner, 3, 120.0);
        let after: f64 = lib.corner_ids().map(|c| skew_at(&tree, &lib, c)).sum();
        tree.validate().unwrap();
        assert!(after < before, "sum of skews went {before} -> {after}");
    }

    #[test]
    fn balanced_tree_is_a_fixpoint_ish() {
        let (mut tree, lib) = unbalanced_case();
        balance_by_detours(
            &mut tree,
            &lib,
            BalanceMode::SingleCorner(CornerId(0)),
            5,
            120.0,
        );
        let s1 = skew_at(&tree, &lib, CornerId(0));
        balance_by_detours(
            &mut tree,
            &lib,
            BalanceMode::SingleCorner(CornerId(0)),
            2,
            120.0,
        );
        let s2 = skew_at(&tree, &lib, CornerId(0));
        assert!(s2 <= s1 * 1.5 + 5.0, "balance diverged: {s1} -> {s2}");
    }
}
