//! The analysis passes (A001–A005) over one tokenized source file.
//!
//! Everything here is *lexical*: bindings whose `let` statement, field,
//! or parameter declaration mentions `HashMap`/`HashSet` are tracked by
//! name, with no scope or flow analysis. That is deliberately simple —
//! the false-positive escape hatch is a `// clk-analyze: allow(A00x)
//! reason` suppression, and the sorted-collect idiom
//! (`map.into_iter().collect()` + `sort`) is exempted from A001 outside
//! `for`-expressions so deterministic drains don't need one.

use crate::finding::{Code, Finding, Severity};
use crate::lexer::{TokKind, Token};
use crate::{AnalyzeConfig, FileClass, SourceFile};

/// Iteration methods whose order is the map's internal order.
pub(crate) const ITER_METHODS: &[&str] =
    &["iter", "iter_mut", "keys", "values", "values_mut", "drain"];

/// Additionally order-sensitive when used directly in a `for` expression
/// (outside one, `into_iter().collect()` into a sorted container is the
/// sanctioned deterministic drain).
const FOR_ONLY_METHODS: &[&str] = &["into_iter", "into_keys", "into_values"];

/// Runs every pass over `file`, returning raw (unsuppressed) findings.
pub fn run_passes(file: &SourceFile, cfg: &AnalyzeConfig) -> Vec<Finding> {
    let mut out = Vec::new();
    let tracked = tracked_map_names(&file.tokens);
    let loops = pass_a001(file, &tracked, &mut out);
    pass_a002(file, &loops, &mut out);
    pass_a003(file, cfg, &mut out);
    pass_a004(file, cfg, &mut out);
    pass_a005(file, &mut out);
    // passes can overlap (for-scan + method-scan); one finding per
    // (code, line) is enough
    out.sort_by_key(|a| (a.line, a.code));
    out.dedup_by(|a, b| a.code == b.code && a.line == b.line);
    out
}

fn finding(
    file: &SourceFile,
    code: Code,
    severity: Severity,
    line: u32,
    message: String,
) -> Finding {
    let snippet = file
        .lines
        .get(line.saturating_sub(1) as usize)
        .map(|l| l.trim().to_string())
        .unwrap_or_default();
    Finding {
        code,
        severity,
        file: file.path.clone(),
        line,
        snippet,
        message,
    }
}

/// Names lexically bound to a `HashMap`/`HashSet`: `let` statements
/// whose window mentions one, and `name: ... Hash{Map,Set}` annotations
/// (struct fields, fn parameters, `let` with type ascription).
pub(crate) fn tracked_map_names(toks: &[Token]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    let is_map =
        |t: &Token| t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet");
    let mut track = |name: &str| {
        if !names.iter().any(|n| n == name) {
            names.push(name.to_string());
        }
    };
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Ident && t.text == "let" {
            // let [mut] NAME ... ; — track NAME if the statement window
            // mentions a hash container
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.text == "mut") {
                j += 1;
            }
            if let Some(name_tok) = toks.get(j) {
                if name_tok.kind == TokKind::Ident {
                    let mut depth = 0i32;
                    let mut k = j + 1;
                    let mut saw_map = false;
                    while k < toks.len() && k < j + 200 {
                        let tk = &toks[k];
                        match tk.text.as_str() {
                            "(" | "[" | "{" => depth += 1,
                            ")" | "]" | "}" => {
                                depth -= 1;
                                if depth < 0 {
                                    break;
                                }
                            }
                            ";" if depth == 0 => break,
                            _ => {}
                        }
                        if is_map(tk) {
                            saw_map = true;
                        }
                        k += 1;
                    }
                    if saw_map {
                        track(&name_tok.text);
                    }
                }
            }
        } else if t.kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|n| n.text == ":")
            && t.text != "let"
        {
            // NAME : [&] [mut] [path ::] Hash{Map,Set} < ... — struct
            // field or fn parameter annotation; stop the window at a
            // comma/terminator outside angle brackets
            let mut angle = 0i32;
            let mut k = i + 2;
            while k < toks.len() && k < i + 40 {
                let tk = &toks[k];
                match tk.text.as_str() {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    ">>" => angle -= 2,
                    "," | ";" | ")" | "{" | "=" if angle <= 0 => break,
                    _ => {}
                }
                if is_map(tk) {
                    track(&t.text);
                    break;
                }
                // annotations are types; an expression token means this
                // was a struct literal / match arm, where only a direct
                // Hash{Map,Set} constructor counts and is caught above
                if tk.kind == TokKind::Str || tk.kind == TokKind::Char {
                    break;
                }
                k += 1;
            }
        }
        i += 1;
    }
    names
}

/// Token index span of a flagged loop body (exclusive of the braces).
#[derive(Debug, Clone, Copy)]
pub(crate) struct LoopSpan {
    body_start: usize,
    body_end: usize,
    line: u32,
}

/// A001: iteration whose order is a hash map's internal order.
fn pass_a001(file: &SourceFile, tracked: &[String], out: &mut Vec<Finding>) -> Vec<LoopSpan> {
    let toks = &file.tokens;
    let is_tracked = |t: &Token| t.kind == TokKind::Ident && tracked.contains(&t.text);
    let mut loops = Vec::new();

    // for-loop scan
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].kind == TokKind::Ident && toks[i].text == "for") {
            i += 1;
            continue;
        }
        // find `in` at bracket depth 0, bailing on `{`/`;` (impl-for,
        // HRTB `for<'a>`, macro fragments)
        let mut j = i + 1;
        let mut depth = 0i32;
        let mut in_idx = None;
        while j < toks.len() && j < i + 64 {
            match toks[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" | ";" if depth == 0 => break,
                "in" if depth == 0 && toks[j].kind == TokKind::Ident => {
                    in_idx = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(in_idx) = in_idx else {
            i += 1;
            continue;
        };
        // expression: from after `in` to the body `{` at depth 0
        let mut k = in_idx + 1;
        let mut depth = 0i32;
        let expr_start = k;
        let mut body_open = None;
        while k < toks.len() {
            match toks[k].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" => {
                    if depth == 0 {
                        body_open = Some(k);
                        break;
                    }
                    depth += 1;
                }
                "}" => depth -= 1,
                _ => {}
            }
            k += 1;
        }
        let Some(body_open) = body_open else {
            i = in_idx + 1;
            continue;
        };
        let expr = &toks[expr_start..body_open];
        if let Some(name) = for_expr_iterates_map(expr, &is_tracked) {
            out.push(finding(
                file,
                Code::A001,
                Severity::Error,
                toks[i].line,
                format!(
                    "`for` iterates hash container `{name}` directly; its order is \
                     nondeterministic — use a BTreeMap/BTreeSet or collect-and-sort first"
                ),
            ));
            let body_end = match_brace(toks, body_open);
            loops.push(LoopSpan {
                body_start: body_open + 1,
                body_end,
                line: toks[i].line,
            });
        }
        i = body_open + 1;
    }

    // method-call scan: tracked.iter()/keys()/values()/drain() anywhere
    for w in 0..toks.len().saturating_sub(3) {
        if is_tracked(&toks[w])
            && toks[w + 1].text == "."
            && toks[w + 2].kind == TokKind::Ident
            && ITER_METHODS.contains(&toks[w + 2].text.as_str())
            && toks[w + 3].text == "("
        {
            out.push(finding(
                file,
                Code::A001,
                Severity::Error,
                toks[w].line,
                format!(
                    "`.{}()` on hash container `{}` yields nondeterministic order — use a \
                     BTreeMap/BTreeSet, or `.into_iter().collect()` into a sorted Vec",
                    toks[w + 2].text,
                    toks[w].text
                ),
            ));
        }
    }
    loops
}

/// Does a `for … in <expr>` expression iterate a tracked container?
/// Returns the container name when it does.
fn for_expr_iterates_map<'a>(
    expr: &'a [Token],
    is_tracked: &dyn Fn(&Token) -> bool,
) -> Option<&'a str> {
    // strip leading `&` / `&&` / `mut`
    let mut s = 0usize;
    while s < expr.len() && (expr[s].text == "&" || expr[s].text == "&&" || expr[s].text == "mut") {
        s += 1;
    }
    let head = expr.get(s)?;
    if !is_tracked(head) {
        return None;
    }
    if expr.len() == s + 1 {
        return Some(&head.text); // for x in map / &map
    }
    if expr.get(s + 1).is_some_and(|t| t.text == ".") {
        let m = expr.get(s + 2)?;
        if m.kind == TokKind::Ident
            && (ITER_METHODS.contains(&m.text.as_str())
                || FOR_ONLY_METHODS.contains(&m.text.as_str()))
        {
            return Some(&head.text);
        }
    }
    None
}

/// Index of the `}` matching the `{` at `open` (or the last token).
pub(crate) fn match_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

/// A002: float accumulation inside an A001-flagged loop body.
fn pass_a002(file: &SourceFile, loops: &[LoopSpan], out: &mut Vec<Finding>) {
    let toks = &file.tokens;
    let float_names = float_var_names(toks);
    for lp in loops {
        let body = &toks[lp.body_start.min(toks.len())..lp.body_end.min(toks.len())];
        for (k, t) in body.iter().enumerate() {
            let hit = if t.text == "+=" {
                // float evidence: a float literal in the statement, or a
                // known-float accumulation target right before the `+=`
                statement_has_float(body, k, &float_names)
            } else {
                t.text == "."
                    && body
                        .get(k + 1)
                        .is_some_and(|m| m.text == "sum" || m.text == "product")
                    && body
                        .get(k + 2)
                        .is_some_and(|p| p.text == "(" || p.text == "::")
            };
            if hit {
                out.push(finding(
                    file,
                    Code::A002,
                    Severity::Warning,
                    t.line,
                    format!(
                        "float accumulation inside the hash-ordered loop at line {}: the \
                         rounded result depends on iteration order",
                        lp.line
                    ),
                ));
            }
        }
    }
}

/// Names lexically bound to `f64`/`f32` or initialized from a float
/// literal.
pub(crate) fn float_var_names(toks: &[Token]) -> Vec<String> {
    let mut names = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident || toks[i].text != "let" {
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.text == "mut") {
            j += 1;
        }
        let Some(name) = toks.get(j).filter(|t| t.kind == TokKind::Ident) else {
            continue;
        };
        let mut saw_float = false;
        let mut k = j + 1;
        while k < toks.len() && k < j + 60 {
            match toks[k].text.as_str() {
                ";" => break,
                "f64" | "f32" => saw_float = true,
                _ => {
                    if toks[k].kind == TokKind::Num && is_float_literal(&toks[k].text) {
                        saw_float = true;
                    }
                }
            }
            k += 1;
        }
        if saw_float && !names.contains(&name.text) {
            names.push(name.text.clone());
        }
    }
    names
}

fn is_float_literal(text: &str) -> bool {
    if text.starts_with("0x") || text.starts_with("0b") || text.starts_with("0o") {
        return false;
    }
    if text.contains('.') {
        return true;
    }
    // exponent form (1e9, 2E-5) — but not the `e` of a `usize` suffix
    if let Some(pos) = text.find(['e', 'E']) {
        let rest = &text[pos + 1..];
        let rest = rest.strip_prefix(['+', '-']).unwrap_or(rest);
        return !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit() || b == b'_');
    }
    false
}

/// Does the statement containing the `+=` at `at` touch floats?
pub(crate) fn statement_has_float(body: &[Token], at: usize, float_names: &[String]) -> bool {
    let start = body[..at]
        .iter()
        .rposition(|t| t.text == ";" || t.text == "{" || t.text == "}")
        .map_or(0, |p| p + 1);
    let end = body[at..]
        .iter()
        .position(|t| t.text == ";")
        .map_or(body.len(), |p| at + p);
    body[start..end].iter().any(|t| {
        (t.kind == TokKind::Num && is_float_literal(&t.text))
            || t.text == "f64"
            || t.text == "f32"
            || (t.kind == TokKind::Ident && float_names.contains(&t.text))
    })
}

/// A003: wall-clock reads outside the sanctioned timing modules.
fn pass_a003(file: &SourceFile, cfg: &AnalyzeConfig, out: &mut Vec<Finding>) {
    if cfg
        .wall_clock_allowed
        .iter()
        .any(|p| file.path.starts_with(p.as_str()))
    {
        return;
    }
    let toks = &file.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "Instant"
            && toks.get(i + 1).is_some_and(|n| n.text == "::")
            && toks.get(i + 2).is_some_and(|n| n.text == "now")
        {
            out.push(finding(
                file,
                Code::A003,
                Severity::Error,
                t.line,
                "raw `Instant::now()` — route wall-clock reads through `clk_obs::wall_now()` \
                 (or a span) so timing stays observable and auditable"
                    .to_string(),
            ));
        } else if t.text == "SystemTime" {
            out.push(finding(
                file,
                Code::A003,
                Severity::Error,
                t.line,
                "`SystemTime` in flow code — wall-clock time must not feed algorithmic \
                 decisions; use `clk_obs::wall_now()` for telemetry"
                    .to_string(),
            ));
        }
    }
}

/// A004: parallel-safety hazards ahead of the scoped-thread local phase.
fn pass_a004(file: &SourceFile, cfg: &AnalyzeConfig, out: &mut Vec<Finding>) {
    let toks = &file.tokens;
    let hot = cfg
        .hot_paths
        .iter()
        .any(|p| file.path.starts_with(p.as_str()));
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "static" if toks.get(i + 1).is_some_and(|n| n.text == "mut") => {
                out.push(finding(
                    file,
                    Code::A004,
                    Severity::Error,
                    t.line,
                    "`static mut` is a data race waiting for the parallel local phase".to_string(),
                ));
            }
            "thread_local" if toks.get(i + 1).is_some_and(|n| n.text == "!") => {
                out.push(finding(
                    file,
                    Code::A004,
                    Severity::Error,
                    t.line,
                    "`thread_local!` state diverges across the worker pool — results must \
                     not depend on which thread ran"
                        .to_string(),
                ));
            }
            "Cell" | "RefCell" if hot => {
                let nxt = toks.get(i + 1).map(|n| n.text.as_str());
                if matches!(nxt, Some("<") | Some("::")) {
                    out.push(finding(
                        file,
                        Code::A004,
                        Severity::Error,
                        t.line,
                        format!(
                            "`{}` in a flow/global/local hot path is not Sync; the scoped-\
                             thread local phase cannot share it",
                            t.text
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
}

/// A005: panic paths in library-crate non-test code. A lexical backstop
/// behind the clippy `unwrap_used` deny: it also sees `expect`,
/// `panic!`, `unreachable!`, `todo!`, and `unimplemented!`.
///
/// Since the analyzer grew an item model, three idioms are sanctioned
/// and no longer need suppressions:
///
/// - `.expect("message")` with a string-literal message — the message
///   *is* the invariant statement (the old suppression ledger showed
///   every reason restating it verbatim);
/// - panic macros inside a function returning `!` — a diverging facade
///   panics by contract;
/// - panic macros inside a function whose doc comment declares a
///   `# Panics` section — the contract is documented API.
///
/// `unwrap()` (message-free), dynamic `expect(format!(…))`, and
/// undocumented panic macros stay flagged.
fn pass_a005(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.class != FileClass::Lib {
        return;
    }
    let toks = &file.tokens;
    let excluded = cfg_test_spans(toks);
    let in_test = |idx: usize| excluded.iter().any(|&(s, e)| idx >= s && idx <= e);
    let contract_lines = contracted_panic_line_spans(file);
    let in_contract = |line: u32| contract_lines.iter().any(|&(s, e)| line >= s && line <= e);
    for i in 0..toks.len() {
        if in_test(i) {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let flagged = match t.text.as_str() {
            "unwrap" | "expect" => {
                i > 0
                    && toks[i - 1].text == "."
                    && toks.get(i + 1).is_some_and(|n| n.text == "(")
                    && !call_followed_by_question(toks, i + 1)
                    && !(t.text == "expect" && literal_message_arg(toks, i + 1))
            }
            "panic" | "unreachable" | "todo" | "unimplemented" => {
                toks.get(i + 1).is_some_and(|n| n.text == "!")
                    && !(t.text == "panic" && in_contract(t.line))
            }
            _ => false,
        };
        if flagged {
            out.push(finding(
                file,
                Code::A005,
                Severity::Error,
                t.line,
                format!(
                    "`{}` in library code can take the whole flow down — return a typed \
                     error (the fault runtime knows how to absorb those)",
                    t.text
                ),
            ));
        }
    }
}

/// Whether the call at `open` (`(`) has exactly one string-literal
/// argument — the `.expect("invariant")` idiom where the message states
/// the invariant.
fn literal_message_arg(toks: &[Token], open: usize) -> bool {
    toks.get(open + 1).is_some_and(|a| a.kind == TokKind::Str)
        && toks.get(open + 2).is_some_and(|c| c.text == ")")
}

/// Line spans of functions whose panics are contract: return type `!`,
/// or a `# Panics` doc section. Computed from the item model; a file
/// whose trees don't parse gets no exemptions (strict fallback).
fn contracted_panic_line_spans(file: &SourceFile) -> Vec<(u32, u32)> {
    let Ok(trees) = crate::tree::parse_trees(&file.tokens) else {
        return Vec::new();
    };
    crate::items::extract(file, &trees)
        .fns
        .iter()
        .filter(|f| f.returns_never || f.doc_panics)
        .map(|f| (f.line, f.end_line))
        .collect()
}

/// Whether the call whose `(` sits at `open` is immediately followed by
/// `?`. `Option::expect`/`unwrap` return the bare value, so `.expect(…)?`
/// can only be a user-defined fallible method (e.g. a parser's
/// `expect(b'{')?`), not a panic path.
fn call_followed_by_question(toks: &[Token], open: usize) -> bool {
    let mut depth = 0i32;
    for (off, t) in toks[open..].iter().enumerate() {
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return toks.get(open + off + 1).is_some_and(|n| n.text == "?");
                }
            }
            _ => {}
        }
    }
    false
}

/// Token spans covered by `#[cfg(test)]`-gated blocks.
fn cfg_test_spans(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i + 6 < toks.len() {
        let attr = toks[i].text == "#"
            && toks[i + 1].text == "["
            && toks[i + 2].text == "cfg"
            && toks[i + 3].text == "("
            && toks[i + 4].text == "test"
            && toks[i + 5].text == ")"
            && toks[i + 6].text == "]";
        if attr {
            // the next brace-delimited block is the gated item
            if let Some(open) = toks[i + 7..].iter().position(|t| t.text == "{") {
                let open = i + 7 + open;
                let close = match_brace(toks, open);
                spans.push((i, close));
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source_from_str;

    fn cfg() -> AnalyzeConfig {
        AnalyzeConfig::default()
    }

    fn run(src: &str, path: &str) -> Vec<Finding> {
        let file = source_from_str(path, src);
        run_passes(&file, &cfg())
    }

    #[test]
    fn a001_tracks_let_bindings() {
        let f = run(
            "fn f() { let mut m: HashMap<u32, f64> = HashMap::new(); for (k, v) in m { g(k, v); } }",
            "crates/x/src/lib.rs",
        );
        assert_eq!(f.iter().filter(|d| d.code == Code::A001).count(), 1);
    }

    #[test]
    fn a001_tracks_fn_params_and_methods() {
        let f = run(
            "fn f(cache: &mut HashMap<u32, Vec<u32>>) { for k in cache.keys() { g(k); } }",
            "crates/x/src/lib.rs",
        );
        assert!(f.iter().any(|d| d.code == Code::A001));
    }

    #[test]
    fn a001_exempts_sorted_collect_outside_for() {
        let f = run(
            "fn f() { let s: HashSet<u32> = HashSet::new(); \
             let mut v: Vec<u32> = s.into_iter().collect(); v.sort_unstable(); }",
            "crates/x/src/lib.rs",
        );
        assert!(f.iter().all(|d| d.code != Code::A001));
    }

    #[test]
    fn a001_ignores_vec_iteration() {
        let f = run(
            "fn f() { let v: Vec<u32> = Vec::new(); for x in &v { g(x); } for y in v.iter() {} }",
            "crates/x/src/lib.rs",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn a002_fires_on_float_accumulation_in_flagged_loop() {
        let f = run(
            "fn f() { let m: HashMap<u32, f64> = HashMap::new(); let mut acc = 0.0; \
             for (_, v) in &m { acc += v; } }",
            "crates/x/src/lib.rs",
        );
        assert!(f.iter().any(|d| d.code == Code::A002));
    }

    #[test]
    fn a002_silent_on_integer_counting() {
        let f = run(
            "fn f() { let m: HashMap<u32, u64> = HashMap::new(); let mut n = 0usize; \
             for k in m.keys() { n += 1; } }",
            "crates/x/src/lib.rs",
        );
        assert!(f.iter().all(|d| d.code != Code::A002));
    }

    #[test]
    fn a003_fires_outside_allowed_paths_only() {
        let src = "fn f() { let t = Instant::now(); }";
        assert!(run(src, "crates/core/src/flow.rs")
            .iter()
            .any(|d| d.code == Code::A003));
        assert!(run(src, "crates/obs/src/span.rs")
            .iter()
            .all(|d| d.code != Code::A003));
    }

    #[test]
    fn a004_static_mut_and_thread_local() {
        let f = run(
            "static mut COUNTER: u32 = 0;\nthread_local! { static S: u32 = 0; }",
            "crates/x/src/lib.rs",
        );
        assert_eq!(f.iter().filter(|d| d.code == Code::A004).count(), 2);
    }

    #[test]
    fn a004_refcell_only_in_hot_paths() {
        let src = "struct S { c: RefCell<u32> }";
        assert!(run(src, "crates/core/src/local.rs")
            .iter()
            .any(|d| d.code == Code::A004));
        assert!(run(src, "crates/qor/src/lib.rs").is_empty());
    }

    #[test]
    fn a005_lib_only_and_test_mods_excluded() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   #[cfg(test)]\nmod tests { #[test] fn t() { None::<u32>.unwrap(); } }";
        let f = run(src, "crates/x/src/lib.rs");
        assert_eq!(f.iter().filter(|d| d.code == Code::A005).count(), 1);
        assert!(run(src, "crates/bench/src/bin/table3.rs").is_empty());
    }

    #[test]
    fn a005_sees_panic_macros_but_not_asserts() {
        let f = run(
            "fn f(b: bool) { if b { panic!(\"boom\") } assert!(b); debug_assert!(b); }",
            "crates/x/src/lib.rs",
        );
        assert_eq!(f.iter().filter(|d| d.code == Code::A005).count(), 1);
    }

    #[test]
    fn a005_skips_user_defined_fallible_expect() {
        // a parser's own `expect(b'{')?` is not Option::expect — the `?`
        // proves it returns a Result
        let f = run(
            "fn p(&mut self) -> Result<(), E> { self.expect(b'{')?; Ok(()) }",
            "crates/x/src/lib.rs",
        );
        assert!(f.is_empty(), "{f:?}");
        // a dynamic (non-literal) message is still flagged
        let f = run(
            "fn p(o: Option<u8>, msg: &str) { o.expect(msg); }",
            "crates/x/src/lib.rs",
        );
        assert_eq!(f.iter().filter(|d| d.code == Code::A005).count(), 1);
    }

    #[test]
    fn a005_sanctions_literal_expect_messages() {
        // the invariant-assertion idiom: the message *is* the reason
        let f = run(
            "fn p(o: Option<u8>) -> u8 { o.expect(\"tree validated on entry\") }",
            "crates/x/src/lib.rs",
        );
        assert!(f.is_empty(), "{f:?}");
        // message-free unwrap stays flagged
        let f = run(
            "fn p(o: Option<u8>) -> u8 { o.unwrap() }",
            "crates/x/src/lib.rs",
        );
        assert_eq!(f.iter().filter(|d| d.code == Code::A005).count(), 1);
    }

    #[test]
    fn a005_sanctions_contracted_panics() {
        // diverging facade: panics are its contract
        let f = run(
            "fn die(msg: &str) -> ! { panic!(\"fatal: {msg}\") }",
            "crates/x/src/lib.rs",
        );
        assert!(f.is_empty(), "{f:?}");
        // documented `# Panics` section sanctions too
        let f = run(
            "/// Entry point.\n///\n/// # Panics\n/// When the tree is corrupt.\n\
             fn enter(ok: bool) { if !ok { panic!(\"corrupt\") } }",
            "crates/x/src/lib.rs",
        );
        assert!(f.is_empty(), "{f:?}");
        // an undocumented panic in an ordinary fn stays flagged
        let f = run(
            "fn quiet(ok: bool) { if !ok { panic!(\"boom\") } }",
            "crates/x/src/lib.rs",
        );
        assert_eq!(f.iter().filter(|d| d.code == Code::A005).count(), 1);
        // unreachable!/todo! are never contract, even in documented fns
        let f = run(
            "/// # Panics\n/// Documented.\nfn u(ok: bool) { if !ok { unreachable!() } }",
            "crates/x/src/lib.rs",
        );
        assert_eq!(f.iter().filter(|d| d.code == Code::A005).count(), 1);
    }

    #[test]
    fn strings_and_comments_never_trigger() {
        let f = run(
            "// Instant::now() in a comment\nfn f() { let s = \"Instant::now() unwrap()\"; }",
            "crates/x/src/lib.rs",
        );
        assert!(f.is_empty());
    }
}
