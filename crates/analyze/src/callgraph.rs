//! Intra-workspace call graph and closure capture extraction.
//!
//! Resolution is name-based and deliberately over-approximate: a simple
//! call `f(…)` resolves to every workspace function named `f`, a
//! qualified call `T::f(…)` to every `f` in an impl of `T`, and a
//! method call `.f(…)` to every `f` in any impl — except a short list
//! of ubiquitous std method names (`clone`, `get`, `len`, …) that would
//! otherwise connect everything to everything. Over-approximation is
//! the right direction for a certifier: an extra edge can only produce
//! an extra (suppressible) finding, never hide a hazard. The known hole
//! — turbofish calls (`f::<T>(…)`) are not recognized — is accepted
//! because the passes only chase workspace-local helper names, which
//! are called without turbofish in this codebase.

use std::collections::{BTreeMap, BTreeSet};

use crate::items::FnItem;
use crate::lexer::{TokKind, Token};
use crate::tree::TokenTree;

/// Method names resolved only through `T::name` qualification: these
/// are std-trait or std-container vocabulary, and treating every
/// `.clone()` as a call into any workspace `clone` would fuse the graph
/// into one component.
const UBIQUITOUS_METHODS: &[&str] = &[
    "clone",
    "default",
    "fmt",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "total_cmp",
    "hash",
    "drop",
    "from",
    "into",
    "try_from",
    "try_into",
    "as_ref",
    "as_mut",
    "as_str",
    "deref",
    "join",
    "new",
    "with_capacity",
    "next",
    "to_string",
    "to_owned",
    "to_vec",
    "borrow",
    "borrow_mut",
    "index",
    "len",
    "is_empty",
    "get",
    "get_mut",
    "push",
    "pop",
    "insert",
    "remove",
    "contains",
    "contains_key",
    "extend",
    "clear",
    "iter",
    "iter_mut",
    "into_iter",
    "map",
    "filter",
    "collect",
    "unwrap",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "expect",
    "min",
    "max",
    "abs",
    "sort",
    "sort_by",
    "sort_unstable",
    "sort_by_key",
];

/// Rust keywords and primitive-ish idents that are never captures or
/// callees.
pub(crate) const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "self", "Self", "static", "struct", "super", "trait", "true",
    "type", "unsafe", "use", "where", "while", "usize", "isize", "u8", "u16", "u32", "u64", "i8",
    "i16", "i32", "i64", "f32", "f64", "bool", "char", "str", "Some", "None", "Ok", "Err",
];

/// One call site extracted from a function body.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum CalleeRef {
    /// `f(…)` — resolves to every workspace fn named `f`.
    Simple(String),
    /// `T::f(…)` — resolves to `f` in impls of `T` (falls back to any
    /// `f` if `T` has no impl in the workspace, e.g. a re-exported
    /// type).
    Qualified(String, String),
    /// `.f(…)` — resolves to `f` in any impl, unless ubiquitous.
    Method(String),
}

/// Extracts every call site from a flat body token stream.
pub fn callees_of(toks: &[Token]) -> BTreeSet<CalleeRef> {
    let mut out = BTreeSet::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || toks.get(i + 1).is_none_or(|n| n.text != "(") {
            continue;
        }
        if KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| toks[p].text.as_str());
        match prev {
            Some(".") => {
                out.insert(CalleeRef::Method(t.text.clone()));
            }
            Some("::") => {
                if let Some(q) = i
                    .checked_sub(2)
                    .map(|p| &toks[p])
                    .filter(|q| q.kind == TokKind::Ident)
                {
                    out.insert(CalleeRef::Qualified(q.text.clone(), t.text.clone()));
                }
            }
            Some("fn") => {} // definition, not a call
            _ => {
                out.insert(CalleeRef::Simple(t.text.clone()));
            }
        }
    }
    out
}

/// A closure literal found in a body: parameters, body trees, and
/// whether it was a `move` closure.
#[derive(Debug, Clone)]
pub struct Closure {
    /// 1-indexed line of the opening `|`.
    pub line: u32,
    /// `move |…|`.
    pub is_move: bool,
    /// Names bound by the closure's parameter list.
    pub params: Vec<String>,
    /// The closure body: one brace group's contents, or the expression
    /// trees up to the enclosing `,`/`;`.
    pub body: Vec<TokenTree>,
}

impl Closure {
    /// The body as a flat token stream.
    pub fn body_tokens(&self) -> Vec<Token> {
        crate::tree::flatten(&self.body)
    }

    /// Names the closure captures from its environment: identifiers
    /// mentioned in the body that are not parameters, not `let`-bound
    /// inside the body, not field/method names after `.`, not path
    /// segments around `::`, not call heads, and not keywords. This
    /// over-approximates (a sibling closure's parameter leaks in as a
    /// "capture") but never misses a real data capture.
    pub fn captures(&self) -> Vec<String> {
        let toks = self.body_tokens();
        let mut locals: Vec<String> = self.params.clone();
        // let-bound names (incl. `let (a, b) =` tuple patterns): scan
        // each let statement's pattern window up to `=`/`:`/`;`
        for i in 0..toks.len() {
            if toks[i].kind == TokKind::Ident && toks[i].text == "let" {
                let mut k = i + 1;
                while k < toks.len() && k < i + 24 {
                    match toks[k].text.as_str() {
                        "=" | ":" | ";" => break,
                        _ => {
                            if toks[k].kind == TokKind::Ident
                                && toks[k].text != "mut"
                                && toks[k].text != "ref"
                                && !locals.contains(&toks[k].text)
                            {
                                locals.push(toks[k].text.clone());
                            }
                        }
                    }
                    k += 1;
                }
            }
        }
        // `for pat in …` and nested-closure params bind too
        for i in 0..toks.len() {
            if toks[i].kind == TokKind::Ident && toks[i].text == "for" {
                let mut k = i + 1;
                while k < toks.len() && k < i + 16 {
                    if toks[k].text == "in" {
                        break;
                    }
                    if toks[k].kind == TokKind::Ident && !locals.contains(&toks[k].text) {
                        locals.push(toks[k].text.clone());
                    }
                    k += 1;
                }
            }
        }
        let mut out = Vec::new();
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.kind != TokKind::Ident
                || KEYWORDS.contains(&t.text.as_str())
                || locals.contains(&t.text)
            {
                continue;
            }
            let prev = i.checked_sub(1).map(|p| toks[p].text.as_str());
            let next = toks.get(i + 1).map(|n| n.text.as_str());
            if matches!(prev, Some(".") | Some("::")) || matches!(next, Some("::") | Some("!")) {
                continue; // field/method/path segment/macro
            }
            if next == Some("(") {
                continue; // call head — a fn item, not a data capture
            }
            if next == Some(":") {
                continue; // struct-literal field name / type ascription
            }
            if !out.contains(&t.text) {
                out.push(t.text.clone());
            }
        }
        out
    }

    /// Captured names the closure *writes* (assignment or compound
    /// assignment whose lvalue root is a capture) — the unsynchronized
    /// `&mut` capture A101 hunts for.
    pub fn captured_writes(&self) -> Vec<(String, u32)> {
        let caps = self.captures();
        let toks = self.body_tokens();
        let mut out: Vec<(String, u32)> = Vec::new();
        for i in 0..toks.len() {
            let is_assign = matches!(
                toks[i].text.as_str(),
                "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "&=" | "|=" | "^="
            ) && toks[i].kind == TokKind::Punct;
            if !is_assign {
                continue;
            }
            // `let x = …` introduces, it does not mutate
            if lvalue_is_let(&toks, i) {
                continue;
            }
            if let Some(root) = lvalue_root(&toks, i) {
                if caps.contains(&root.text) && !out.iter().any(|(n, _)| *n == root.text) {
                    out.push((root.text.clone(), toks[i].line));
                }
            }
        }
        out
    }
}

/// Walks back from the assignment operator at `at` over the lvalue
/// chain (`a.b[1].c =`) to its root identifier.
fn lvalue_root(toks: &[Token], at: usize) -> Option<&Token> {
    let mut i = at;
    let mut root: Option<&Token> = None;
    while i > 0 {
        i -= 1;
        let t = &toks[i];
        match t.text.as_str() {
            "." => {}
            "]" => {
                // skip the whole index expression
                let mut depth = 1i32;
                while i > 0 && depth > 0 {
                    i -= 1;
                    match toks[i].text.as_str() {
                        "]" => depth += 1,
                        "[" => depth -= 1,
                        _ => {}
                    }
                }
            }
            _ => {
                if t.kind == TokKind::Ident && !KEYWORDS.contains(&t.text.as_str()) {
                    root = Some(t);
                    // keep walking only if the previous token continues
                    // the chain
                    if i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "*") {
                        continue;
                    }
                }
                break;
            }
        }
    }
    root
}

/// Whether the statement holding the `=` at `at` begins with `let`.
fn lvalue_is_let(toks: &[Token], at: usize) -> bool {
    let start = toks[..at]
        .iter()
        .rposition(|t| matches!(t.text.as_str(), ";" | "{" | "}"))
        .map_or(0, |p| p + 1);
    toks.get(start)
        .is_some_and(|t| t.kind == TokKind::Ident && t.text == "let")
}

/// Tokens that may directly precede a closure's opening `|` (expression
/// position). In tree form, group openers are boundaries, so "first
/// tree in a group" also qualifies.
fn closure_position(prev: Option<&TokenTree>) -> bool {
    match prev {
        None => true,
        Some(t) => match t.leaf_text() {
            Some(p) => matches!(
                p,
                "," | "=" | "=>" | "move" | "return" | "else" | ":" | ";" | "&&" | "||" | "("
            ),
            None => false,
        },
    }
}

/// Extracts every closure literal in a tree forest, recursively
/// (closures nested in closures are separate entries).
pub fn closures_in(trees: &[TokenTree]) -> Vec<Closure> {
    let mut out = Vec::new();
    scan_seq(trees, &mut out);
    out
}

fn scan_seq(seq: &[TokenTree], out: &mut Vec<Closure>) {
    let mut i = 0usize;
    while i < seq.len() {
        let t = &seq[i];
        let prev = i.checked_sub(1).and_then(|p| seq.get(p));
        let is_move = prev.is_some_and(|p| p.is_ident("move"));
        let pos_prev = if is_move {
            i.checked_sub(2).and_then(|p| seq.get(p))
        } else {
            prev
        };
        if t.is_punct("||") && (is_move || closure_position(pos_prev)) {
            // zero-parameter closure
            let (body, consumed) = closure_body(&seq[i + 1..]);
            out.push(Closure {
                line: t.line(),
                is_move,
                params: Vec::new(),
                body: body.to_vec(),
            });
            scan_seq(body, out);
            i += 1 + consumed;
            continue;
        }
        if t.is_punct("|") && (is_move || closure_position(pos_prev)) {
            // |params| body — find the closing `|` at this level
            if let Some(close) = seq[i + 1..]
                .iter()
                .position(|x| x.is_punct("|"))
                .map(|p| i + 1 + p)
            {
                let params = closure_params(&seq[i + 1..close]);
                let (body, consumed) = closure_body(&seq[close + 1..]);
                out.push(Closure {
                    line: t.line(),
                    is_move,
                    params,
                    body: body.to_vec(),
                });
                scan_seq(body, out);
                i = close + 1 + consumed;
                continue;
            }
        }
        if let TokenTree::Group(g) = t {
            scan_seq(&g.trees, out);
        }
        i += 1;
    }
}

/// The trees forming a closure body: a single brace group, or the
/// expression up to the next top-level `,`/`;`. Returns the slice and
/// how many trees it spans.
fn closure_body(rest: &[TokenTree]) -> (&[TokenTree], usize) {
    // skip a `-> Type` annotation before a braced body
    let mut start = 0usize;
    if rest.first().is_some_and(|t| t.is_punct("->")) {
        while start < rest.len() {
            if let TokenTree::Group(g) = &rest[start] {
                if g.delim == crate::tree::Delim::Brace {
                    break;
                }
            }
            start += 1;
            if start > 8 {
                start = 0;
                break;
            }
        }
    }
    match rest.get(start) {
        Some(TokenTree::Group(g)) if g.delim == crate::tree::Delim::Brace => {
            (&rest[start..=start], start + 1)
        }
        _ => {
            let end = rest
                .iter()
                .position(|t| t.is_punct(",") || t.is_punct(";"))
                .unwrap_or(rest.len());
            (&rest[..end], end)
        }
    }
}

/// Parameter names between a closure's pipes (types after `:` are
/// skipped; tuple patterns contribute every ident).
fn closure_params(trees: &[TokenTree]) -> Vec<String> {
    let mut names = Vec::new();
    for seg in crate::items::split_commas(trees) {
        let colon = seg
            .iter()
            .position(|t| t.is_punct(":"))
            .unwrap_or(seg.len());
        for t in &seg[..colon] {
            match t {
                TokenTree::Leaf(tok)
                    if tok.kind == TokKind::Ident
                        && tok.text != "mut"
                        && tok.text != "ref"
                        && !names.contains(&tok.text) =>
                {
                    names.push(tok.text.clone());
                }
                TokenTree::Group(g) => {
                    for it in &g.trees {
                        if let TokenTree::Leaf(tok) = it {
                            if tok.kind == TokKind::Ident
                                && tok.text != "mut"
                                && tok.text != "ref"
                                && !names.contains(&tok.text)
                            {
                                names.push(tok.text.clone());
                            }
                        }
                    }
                }
                TokenTree::Leaf(_) => {}
            }
        }
    }
    names
}

/// The workspace call graph: every fn item, indexed for resolution.
#[derive(Debug)]
pub struct CallGraph {
    /// All workspace fns; indices are stable handles.
    pub fns: Vec<FnItem>,
    /// Resolved callee indices per fn (sorted, deduped).
    pub edges: Vec<Vec<usize>>,
    by_name: BTreeMap<String, Vec<usize>>,
    by_qual: BTreeMap<String, Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph: indexes fns by simple and qualified name, then
    /// resolves every body's call sites.
    pub fn build(fns: Vec<FnItem>) -> CallGraph {
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut by_qual: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
            if f.qual.is_some() {
                by_qual.entry(f.key()).or_default().push(i);
            }
        }
        let mut graph = CallGraph {
            edges: Vec::with_capacity(fns.len()),
            fns,
            by_name,
            by_qual,
        };
        for i in 0..graph.fns.len() {
            let callees = callees_of(&graph.fns[i].body_tokens());
            graph.edges.push(graph.resolve(&callees));
        }
        graph
    }

    /// Resolves call sites to fn indices (sorted, deduped).
    pub fn resolve(&self, callees: &BTreeSet<CalleeRef>) -> Vec<usize> {
        let mut out: BTreeSet<usize> = BTreeSet::new();
        for c in callees {
            match c {
                CalleeRef::Simple(n) => {
                    // `drop(x)` is the std prelude free fn, not a call
                    // into some workspace `fn drop`
                    if n != "drop" {
                        if let Some(ix) = self.by_name.get(n) {
                            out.extend(ix.iter().copied());
                        }
                    }
                }
                CalleeRef::Qualified(q, n) => {
                    if let Some(ix) = self.by_qual.get(&format!("{q}::{n}")) {
                        out.extend(ix.iter().copied());
                    } else if !UBIQUITOUS_METHODS.contains(&n.as_str()) {
                        // the qualifier may be a re-export or enum; any
                        // fn of that name stays reachable. Ubiquitous
                        // names are exempt: an unmatched `T::default`
                        // is a derive/std impl, and falling back to
                        // every workspace `fn default` would fuse the
                        // graph the same way `.default()` would.
                        if let Some(ix) = self.by_name.get(n) {
                            out.extend(ix.iter().copied());
                        }
                    }
                }
                CalleeRef::Method(n) => {
                    if !UBIQUITOUS_METHODS.contains(&n.as_str()) {
                        if let Some(ix) = self.by_name.get(n) {
                            out.extend(ix.iter().copied());
                        }
                    }
                }
            }
        }
        out.into_iter().collect()
    }

    /// BFS from `seeds`: every reachable fn index mapped to its BFS
    /// parent (`None` for seeds), for hazard-path reconstruction.
    pub fn reachable(&self, seeds: &[usize]) -> BTreeMap<usize, Option<usize>> {
        let mut parent: BTreeMap<usize, Option<usize>> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for &s in seeds {
            if s < self.fns.len() && !parent.contains_key(&s) {
                parent.insert(s, None);
                queue.push_back(s);
            }
        }
        while let Some(i) = queue.pop_front() {
            for &j in &self.edges[i] {
                if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(j) {
                    e.insert(Some(i));
                    queue.push_back(j);
                }
            }
        }
        parent
    }

    /// The call path `seed → … → target` as fn keys, reconstructed from
    /// a [`CallGraph::reachable`] parent map.
    pub fn path_to(&self, parent: &BTreeMap<usize, Option<usize>>, target: usize) -> Vec<String> {
        let mut path = Vec::new();
        let mut cur = Some(target);
        let mut hops = 0usize;
        while let Some(i) = cur {
            path.push(self.fns.get(i).map(FnItem::key).unwrap_or_default());
            cur = parent.get(&i).copied().flatten();
            hops += 1;
            if hops > self.fns.len() {
                break; // cycle safety; parent maps are acyclic by construction
            }
        }
        path.reverse();
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source_from_str;
    use crate::tree::parse_trees;

    fn graph(src: &str) -> CallGraph {
        let file = source_from_str("crates/x/src/lib.rs", src);
        let trees = parse_trees(&file.tokens).expect("fixture parses");
        let items = crate::items::extract(&file, &trees);
        CallGraph::build(items.fns)
    }

    #[test]
    fn simple_qualified_and_method_calls_resolve() {
        let g = graph(
            "fn a() { b(); Helper::c(); }\n\
             fn b() {}\n\
             struct Helper;\n\
             impl Helper { fn c(&self) { d(); } fn unrelated(&self) {} }\n\
             fn d() {}\n",
        );
        let a = g.fns.iter().position(|f| f.name == "a").unwrap();
        let reach = g.reachable(&[a]);
        let names: Vec<String> = reach.keys().map(|&i| g.fns[i].key()).collect();
        assert_eq!(names, vec!["a", "b", "Helper::c", "d"]);
    }

    #[test]
    fn hazard_paths_reconstruct() {
        let g = graph("fn a() { b(); }\nfn b() { c(); }\nfn c() {}\n");
        let a = g.fns.iter().position(|f| f.name == "a").unwrap();
        let c = g.fns.iter().position(|f| f.name == "c").unwrap();
        let reach = g.reachable(&[a]);
        assert_eq!(g.path_to(&reach, c), vec!["a", "b", "c"]);
    }

    #[test]
    fn ubiquitous_methods_do_not_fuse_the_graph() {
        let g = graph(
            "fn a(v: &[u32]) { let _ = v.len(); }\n\
             struct W; impl W { fn len(&self) -> usize { 0 } }\n",
        );
        let a = g.fns.iter().position(|f| f.name == "a").unwrap();
        assert_eq!(g.reachable(&[a]).len(), 1, "only `a` itself");
    }

    #[test]
    fn closures_and_captures_extract() {
        let file = source_from_str(
            "crates/x/src/lib.rs",
            "fn f(n: u32) {\n\
                 let base = 2;\n\
                 let g = move |x: u32, (lo, hi): (u32, u32)| x + base + lo + hi;\n\
                 let h = || n;\n\
                 g(1, (0, 9)); h();\n\
             }\n",
        );
        let trees = parse_trees(&file.tokens).expect("parses");
        let cls = closures_in(&trees);
        assert_eq!(cls.len(), 2);
        assert!(cls[0].is_move);
        assert_eq!(cls[0].params, vec!["x", "lo", "hi"]);
        assert_eq!(cls[0].captures(), vec!["base"]);
        assert_eq!(cls[1].params, Vec::<String>::new());
        assert_eq!(cls[1].captures(), vec!["n"]);
    }

    #[test]
    fn captured_writes_see_through_field_chains() {
        let file = source_from_str(
            "crates/x/src/lib.rs",
            "fn f() { let c = move || { total.count += 1; let local = 3; local_use(local); }; c(); }",
        );
        let trees = parse_trees(&file.tokens).expect("parses");
        let cls = closures_in(&trees);
        assert_eq!(cls.len(), 1);
        let writes = cls[0].captured_writes();
        assert_eq!(writes.len(), 1);
        assert_eq!(writes[0].0, "total");
    }
}
