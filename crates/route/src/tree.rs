//! Wire trees: routed-net topology consumed by the delay calculator.

use crate::RoutePath;
use clk_geom::{Dbu, Point};

/// A rooted tree of wire nodes. Node 0 is the driver (root). Every other
/// node has a parent; the edge to the parent is an abstract rectilinear
/// connection whose length is the Manhattan distance between the
/// endpoints (bend geometry does not change RC, so it is not stored).
///
/// ```
/// use clk_geom::Point;
/// use clk_route::WireTree;
///
/// let mut t = WireTree::new(Point::new(0, 0));
/// let a = t.add_child(WireTree::ROOT, Point::new(10_000, 0));
/// let _b = t.add_child(a, Point::new(10_000, 5_000));
/// assert_eq!(t.wirelength_um(), 15.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireTree {
    pts: Vec<Point>,
    parent: Vec<Option<usize>>,
}

impl WireTree {
    /// Index of the root (driver) node.
    pub const ROOT: usize = 0;

    /// Creates a tree containing only the driver node.
    pub fn new(driver: Point) -> Self {
        WireTree {
            pts: vec![driver],
            parent: vec![None],
        }
    }

    /// Builds a pure chain following a routed two-pin path: one node per
    /// bend point. Returns the tree and the index of the far-end node.
    pub fn from_path(path: &RoutePath) -> (Self, usize) {
        let mut t = WireTree::new(path.start());
        let mut last = WireTree::ROOT;
        for &p in &path.points()[1..] {
            last = t.add_child(last, p);
        }
        (t, last)
    }

    /// Adds a node at `pt` whose parent is `parent`; returns its index.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is out of range.
    pub fn add_child(&mut self, parent: usize, pt: Point) -> usize {
        assert!(parent < self.pts.len(), "parent index out of range");
        self.pts.push(pt);
        self.parent.push(Some(parent));
        self.pts.len() - 1
    }

    /// Number of nodes including the root.
    pub fn node_count(&self) -> usize {
        self.pts.len()
    }

    /// The location of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn point(&self, i: usize) -> Point {
        self.pts[i]
    }

    /// The parent of node `i` (`None` for the root).
    pub fn parent(&self, i: usize) -> Option<usize> {
        self.parent[i]
    }

    /// Length of the edge from `i` to its parent, dbu (0 for the root).
    pub fn edge_len_dbu(&self, i: usize) -> Dbu {
        match self.parent[i] {
            Some(p) => self.pts[i].manhattan(self.pts[p]),
            None => 0,
        }
    }

    /// Length of the edge from `i` to its parent, µm.
    pub fn edge_len_um(&self, i: usize) -> f64 {
        clk_geom::dbu_to_um(self.edge_len_dbu(i))
    }

    /// Total wirelength, µm.
    pub fn wirelength_um(&self) -> f64 {
        (0..self.pts.len()).map(|i| self.edge_len_um(i)).sum()
    }

    /// The first node located exactly at `pt`, if any.
    pub fn index_of(&self, pt: Point) -> Option<usize> {
        self.pts.iter().position(|&p| p == pt)
    }

    /// Child lists, indexed by node.
    pub fn children(&self) -> Vec<Vec<usize>> {
        let mut ch = vec![Vec::new(); self.pts.len()];
        for (i, p) in self.parent.iter().enumerate() {
            if let Some(p) = p {
                ch[*p].push(i);
            }
        }
        ch
    }

    /// Nodes in root-first (topological) order. Because children always
    /// have larger indices than their parents, this is just `0..n`.
    pub fn topo_order(&self) -> impl Iterator<Item = usize> {
        0..self.pts.len()
    }

    /// All node points.
    pub fn points(&self) -> &[Point] {
        &self.pts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_path_preserves_length() {
        let p = RoutePath::with_detour(Point::new(0, 0), Point::new(20_000, 0), 10.0);
        let (t, end) = WireTree::from_path(&p);
        assert!((t.wirelength_um() - p.length_um()).abs() < 1e-9);
        assert_eq!(t.point(end), p.end());
    }

    #[test]
    fn children_and_edges() {
        let mut t = WireTree::new(Point::new(0, 0));
        let a = t.add_child(WireTree::ROOT, Point::new(5, 0));
        let b = t.add_child(WireTree::ROOT, Point::new(0, 7));
        let c = t.add_child(a, Point::new(5, 3));
        let ch = t.children();
        assert_eq!(ch[WireTree::ROOT], vec![a, b]);
        assert_eq!(ch[a], vec![c]);
        assert_eq!(t.edge_len_dbu(c), 3);
        assert_eq!(t.edge_len_dbu(WireTree::ROOT), 0);
    }

    #[test]
    fn index_of_finds_nodes() {
        let mut t = WireTree::new(Point::new(1, 1));
        let a = t.add_child(0, Point::new(2, 1));
        assert_eq!(t.index_of(Point::new(2, 1)), Some(a));
        assert_eq!(t.index_of(Point::new(9, 9)), None);
    }

    #[test]
    #[should_panic(expected = "parent index")]
    fn add_child_checks_parent() {
        let mut t = WireTree::new(Point::new(0, 0));
        t.add_child(42, Point::new(1, 0));
    }
}
