//! The checked metrics dictionary.
//!
//! Every metric the workspace emits is declared here exactly once,
//! with its kind and unit. Two enforcement layers keep the dictionary
//! honest, in the spirit of `clk-analyze`:
//!
//! - **Runtime**: [`check_snapshot`] reports any metric present in a
//!   [`MetricsSnapshot`] that is undeclared or declared with a
//!   different kind. The `trace-diff --run` gate and the workbench
//!   integration tests fail on a non-empty report.
//! - **Lexical**: `crates/bench/tests/dict.rs` scans the workspace
//!   sources for metric-name literals at emission sites and fails on
//!   names missing from the dictionary (*undeclared*) and on
//!   dictionary entries no source emits (*stale*).
//!
//! Naming convention (enforced by [`check_dictionary`]):
//! time histograms end in `.ms` and carry [`Unit::Millis`]; counts are
//! bare names (no `.count`, `.us`, `_ms` suffixes). Dynamic name
//! families use a single `*` wildcard segment (`cancel.interrupts.*`),
//! which matches one or more characters.

use crate::metrics::{MetricValue, MetricsSnapshot};

/// What a metric measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Wall-clock milliseconds (histograms only; name ends `.ms`).
    Millis,
    /// A plain count of events/items (bare name).
    Count,
    /// A dimensionless quantity (residuals, ratios).
    Unitless,
}

/// Which metric type backs the name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

/// One dictionary entry. `name` may contain a single `*` wildcard.
#[derive(Debug, Clone, Copy)]
pub struct MetricDef {
    pub name: &'static str,
    pub kind: MetricKind,
    pub unit: Unit,
    pub help: &'static str,
}

const fn c(name: &'static str, help: &'static str) -> MetricDef {
    MetricDef {
        name,
        kind: MetricKind::Counter,
        unit: Unit::Count,
        help,
    }
}

const fn h(name: &'static str, unit: Unit, help: &'static str) -> MetricDef {
    MetricDef {
        name,
        kind: MetricKind::Histogram,
        unit,
        help,
    }
}

const fn g(name: &'static str, help: &'static str) -> MetricDef {
    MetricDef {
        name,
        kind: MetricKind::Gauge,
        unit: Unit::Count,
        help,
    }
}

/// Every metric the workspace may emit. Exact names first, wildcard
/// families last ([`lookup`] returns the first match).
pub const DICTIONARY: &[MetricDef] = &[
    // --- clk-lp: simplex ---
    c("lp.solves", "LP solves attempted"),
    c("lp.pivots", "simplex pivots across all solves"),
    c("lp.bound_flips", "nonbasic bound-flip iterations"),
    c("lp.degenerate_pivots", "pivots with zero primal step"),
    c("lp.infeasible", "solves proven infeasible"),
    c("lp.unbounded", "solves proven unbounded"),
    c("lp.iteration_limit", "solves hitting the pivot budget"),
    c("lp.interrupted", "solves cut by a deadline/cancel"),
    c("lp.bad_problem", "solves rejected before pivoting"),
    h("lp.iters", Unit::Count, "pivots per successful solve"),
    h(
        "lp.cancel.ack_pivots",
        Unit::Count,
        "pivots between expiry and acknowledgement",
    ),
    // --- clk-sta: timer ---
    c("sta.analyzes", "full timing analyses"),
    c("sta.analyze.errors", "analyses that returned an error"),
    c("sta.violations", "constraint violations observed"),
    c("sta.nodes_timed", "node retimings summed over corners"),
    h("sta.analyze.ms", Unit::Millis, "wall time per analysis"),
    h(
        "sta.eval.nodes",
        Unit::Count,
        "nodes re-timed per analysis (one observation per corner)",
    ),
    // --- clk-skewopt: fault runtime ---
    c("fault.absorbed", "faults absorbed by the recovery ladder"),
    h(
        "cancel.ack.ms",
        Unit::Millis,
        "cancellation acknowledgement latency",
    ),
    // --- clk-skewopt: global phase ---
    c("global.rounds", "global λ-iteration rounds"),
    c("global.lp_rows_built", "LP constraint rows assembled"),
    c("global.eco_interrupted", "ECO sweeps cut by cancellation"),
    c(
        "global.eco_unrealizable",
        "ECO candidates dropped as unrealizable",
    ),
    c("global.eco_accepted", "ECO candidates committed"),
    c("global.eco_rollback", "ECO sweeps rolled back"),
    // --- clk-skewopt: LP certificate checking ---
    c("cert.checks", "exact certificate checks run"),
    c("cert.violations", "certificate checks that failed"),
    h(
        "cert.check.ms",
        Unit::Millis,
        "wall time per certificate check",
    ),
    h(
        "cert.max_resid",
        Unit::Unitless,
        "max exact residual per check (decoded dyadic)",
    ),
    // --- clk-skewopt: local phase ---
    c(
        "local.predicted_positive",
        "candidates the predictor scored > 0",
    ),
    c(
        "local.golden_evals",
        "golden (full STA) candidate evaluations",
    ),
    c(
        "local.reject.panicked",
        "candidates rejected: worker panicked",
    ),
    c(
        "local.reject.apply_failed",
        "candidates rejected: move not applicable",
    ),
    c(
        "local.reject.timing_failed",
        "candidates rejected: STA error",
    ),
    c(
        "local.reject.drc",
        "candidates rejected: design-rule violation",
    ),
    c(
        "local.reject.not_improving",
        "candidates rejected: no metric gain",
    ),
    c("local.rollback", "local moves rolled back"),
    c("local.accepted", "local moves committed"),
    g("local.workers", "worker threads in the local-phase pool"),
    h(
        "local.predict.err_ps",
        Unit::Unitless,
        "predicted-minus-golden gain error per candidate (ps)",
    ),
    // --- clk-obs: decision ledger ---
    c("ledger.records", "decision-ledger records appended"),
    c(
        "ledger.dropped_nonfinite",
        "ledger records dropped for NaN/Inf floats",
    ),
    // --- clk-bench: analyze gate ---
    c("analyze.files", "source files scanned by the analyze gate"),
    c("analyze.findings", "unsuppressed analyzer findings"),
    h(
        "analyze.ms",
        Unit::Millis,
        "wall time per workspace analysis",
    ),
    // --- clk-bench: criterion overhead probes ---
    c("bench.ctr", "overhead-probe counter (benches only)"),
    h(
        "bench.hist",
        Unit::Unitless,
        "overhead-probe histogram (benches only)",
    ),
    // --- wildcard families ---
    c("cancel.interrupts.*", "interrupts acknowledged, by phase"),
    c("global.ladder.*", "LP degradation-ladder outcomes, by rung"),
    c(
        "sta.corner.*.nodes_timed",
        "node retimings for one corner, by corner index",
    ),
    h("span.*.ms", Unit::Millis, "span durations, by span name"),
];

/// Whether `pattern` (at most one `*`, matching one or more
/// characters) matches `name`.
#[must_use]
pub fn pattern_matches(pattern: &str, name: &str) -> bool {
    match pattern.split_once('*') {
        None => pattern == name,
        Some((pre, suf)) => {
            name.len() > pre.len() + suf.len() && name.starts_with(pre) && name.ends_with(suf)
        }
    }
}

/// The dictionary entry covering `name`, if any (first match wins).
#[must_use]
pub fn lookup(name: &str) -> Option<&'static MetricDef> {
    DICTIONARY.iter().find(|d| pattern_matches(d.name, name))
}

/// Checks a live snapshot against the dictionary. Returns one line per
/// problem (undeclared name, or kind mismatch); empty means clean.
#[must_use]
pub fn check_snapshot(snap: &MetricsSnapshot) -> Vec<String> {
    let mut problems = Vec::new();
    for (name, value) in snap {
        match lookup(name) {
            None => problems.push(format!("undeclared metric: {name}")),
            Some(def) => {
                let kind = match value {
                    MetricValue::Counter(_) => MetricKind::Counter,
                    MetricValue::Gauge(_) => MetricKind::Gauge,
                    MetricValue::Histogram(_) => MetricKind::Histogram,
                };
                if kind != def.kind {
                    problems.push(format!(
                        "kind mismatch for {name}: emitted {kind:?}, declared {:?}",
                        def.kind
                    ));
                }
            }
        }
    }
    problems
}

/// Internal-consistency check of the dictionary itself: unique names,
/// unit-suffix convention, at most one `*` per pattern. Returns one
/// line per violation; pinned empty by a unit test.
#[must_use]
pub fn check_dictionary() -> Vec<String> {
    let mut problems = Vec::new();
    for (i, d) in DICTIONARY.iter().enumerate() {
        if DICTIONARY[..i].iter().any(|p| p.name == d.name) {
            problems.push(format!("duplicate entry: {}", d.name));
        }
        if d.name.matches('*').count() > 1 {
            problems.push(format!("more than one wildcard: {}", d.name));
        }
        let ends_ms = d.name.ends_with(".ms");
        match d.unit {
            Unit::Millis => {
                if !ends_ms {
                    problems.push(format!("Millis metric must end .ms: {}", d.name));
                }
                if d.kind != MetricKind::Histogram {
                    problems.push(format!("Millis metric must be a histogram: {}", d.name));
                }
            }
            Unit::Count | Unit::Unitless => {
                if ends_ms {
                    problems.push(format!(".ms name must be Unit::Millis: {}", d.name));
                }
            }
        }
        for bad in [".us", "_ms", "_us", ".count"] {
            if d.name.ends_with(bad) {
                problems.push(format!("forbidden suffix {bad}: {}", d.name));
            }
        }
        if d.kind == MetricKind::Counter && d.unit != Unit::Count {
            problems.push(format!("counter must be Unit::Count: {}", d.name));
        }
        if d.help.is_empty() {
            problems.push(format!("missing help: {}", d.name));
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn dictionary_is_internally_consistent() {
        assert_eq!(check_dictionary(), Vec::<String>::new());
    }

    #[test]
    fn wildcard_matching() {
        assert!(pattern_matches("span.*.ms", "span.phase.global.ms"));
        assert!(pattern_matches("span.*.ms", "span.lp.solve.ms"));
        assert!(!pattern_matches("span.*.ms", "span..ms"));
        assert!(!pattern_matches("span.*.ms", "sta.analyze.ms"));
        assert!(pattern_matches(
            "cancel.interrupts.*",
            "cancel.interrupts.global"
        ));
        assert!(!pattern_matches(
            "cancel.interrupts.*",
            "cancel.interrupts."
        ));
        assert!(pattern_matches("lp.solves", "lp.solves"));
        assert!(!pattern_matches("lp.solves", "lp.solves2"));
    }

    #[test]
    fn lookup_prefers_exact_entries() {
        let d = lookup("sta.analyze.ms").expect("declared");
        assert_eq!(d.name, "sta.analyze.ms");
        let d = lookup("span.sta.analyze.ms").expect("wildcard");
        assert_eq!(d.name, "span.*.ms");
        assert!(lookup("no.such.metric").is_none());
    }

    #[test]
    fn snapshot_check_flags_undeclared_and_mismatched() {
        let reg = Registry::default();
        reg.counter("lp.solves").add(1);
        reg.counter("made.up.metric").add(1);
        reg.histogram("sta.analyzes").observe(1.0); // declared as counter
        let problems = check_snapshot(&reg.snapshot());
        assert_eq!(problems.len(), 2);
        assert!(problems.iter().any(|p| p.contains("made.up.metric")));
        assert!(problems
            .iter()
            .any(|p| p.contains("kind mismatch for sta.analyzes")));
    }

    #[test]
    fn clean_snapshot_passes() {
        let reg = Registry::default();
        reg.counter("lp.solves").add(1);
        reg.histogram("span.flow.ms").observe(3.0);
        reg.counter("cancel.interrupts.global").add(1);
        assert!(check_snapshot(&reg.snapshot()).is_empty());
    }
}
