//! Property-based tests of cross-crate invariants.

use proptest::prelude::*;

use clk_geom::{Point, Rect};
use clk_liberty::{CellId, Library, StdCorners};
use clk_netlist::{ClockTree, Floorplan, NodeKind};
use clk_route::{rsmt, single_trunk, RoutePath};
use clk_sta::{alpha_factors, variation_report};

fn arb_point() -> impl Strategy<Value = Point> {
    (0i64..500_000, 0i64..500_000).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any Steiner topology must connect all pins, never beat the HPWL
    /// lower bound, and never exceed the star upper bound.
    #[test]
    fn steiner_trees_are_bounded(driver in arb_point(), pins in prop::collection::vec(arb_point(), 1..9)) {
        let mut all = vec![driver];
        all.extend_from_slice(&pins);
        let bbox = Rect::bounding(&all).unwrap();
        let hpwl = clk_geom::dbu_to_um(bbox.width() + bbox.height());
        let star: f64 = pins.iter().map(|&p| driver.manhattan_um(p)).sum();
        // rsmt is MST-based: never longer than the star topology
        for (tree, cap) in [(rsmt(driver, &pins), star), (single_trunk(driver, &pins), 2.0 * star)] {
            for &p in &pins {
                prop_assert!(tree.index_of(p).is_some());
            }
            let len = tree.wirelength_um();
            prop_assert!(len + 1e-9 >= hpwl, "len {len} < hpwl {hpwl}");
            // single-trunk may exceed the star on adversarial pin sets
            // (wire is forced through the median trunk), but never 2x
            prop_assert!(len <= cap + 1e-6, "len {len} > cap {cap}");
        }
    }

    /// Detoured routes deliver exactly the requested extra length.
    #[test]
    fn detours_are_exact(a in arb_point(), b in arb_point(), extra_um in 0.0f64..300.0) {
        let r = RoutePath::with_detour(a, b, extra_um);
        prop_assert!(r.is_valid());
        let want = a.manhattan(b) + clk_geom::um_to_dbu(extra_um);
        prop_assert!((r.length_dbu() - want).abs() <= 1);
    }

    /// Legalization always produces a legal location and is idempotent.
    #[test]
    fn legalizer_contract(p in arb_point()) {
        let fp = Floorplan::utilized(
            Rect::from_um(0.0, 0.0, 500.0, 500.0),
            vec![Rect::from_um(100.0, 100.0, 180.0, 220.0)],
        );
        let l = fp.legalize(p);
        prop_assert!(fp.is_legal(l));
        prop_assert_eq!(fp.legalize(l), l);
    }

    /// A random sequence of tree edits preserves structural validity and
    /// sink polarity parity can only change via buffer insertion/removal.
    #[test]
    fn tree_edits_preserve_validity(ops in prop::collection::vec((0u8..4, 0usize..16, arb_point()), 1..30)) {
        let cell = CellId(2);
        let mut tree = ClockTree::new(Point::new(0, 0), cell);
        let b0 = tree.add_node(NodeKind::Buffer(cell), Point::new(10_000, 0), tree.root());
        let _s = tree.add_node(NodeKind::Sink, Point::new(20_000, 0), b0);
        for (op, pick, loc) in ops {
            let buffers: Vec<_> = tree.buffers().collect();
            let target = buffers[pick % buffers.len()];
            match op {
                0 => {
                    let _ = tree.add_node(NodeKind::Buffer(cell), loc, target);
                }
                1 => {
                    let _ = tree.move_node(target, loc);
                }
                2 => {
                    // surgery to any other buffer that is not a descendant
                    let cand = buffers[(pick / 2) % buffers.len()];
                    if cand != target && tree.parent(target).is_some() {
                        let _ = tree.set_parent(target, cand);
                    }
                }
                _ => {
                    // never remove the last buffer above the sink
                    if buffers.len() > 1 && tree.parent(target).is_some() {
                        let _ = tree.remove_buffer(target);
                    }
                }
            }
            prop_assert!(tree.validate().is_ok(), "validate failed after op {op}");
        }
    }

    /// Scaling one corner's skews by a constant leaves the normalized
    /// variation report unchanged (the α normalization at work).
    #[test]
    fn variation_invariant_under_corner_scaling(
        base in prop::collection::vec(-200.0f64..200.0, 1..40),
        scale in 0.2f64..5.0,
    ) {
        let skews0 = vec![base.clone(), base.iter().map(|s| s * 2.0).collect::<Vec<_>>()];
        let skews1 = vec![base.clone(), base.iter().map(|s| s * 2.0 * scale).collect::<Vec<_>>()];
        let r0 = variation_report(&skews0, &alpha_factors(&skews0), None);
        let r1 = variation_report(&skews1, &alpha_factors(&skews1), None);
        prop_assert!((r0.sum - r1.sum).abs() < 1e-6 * (1.0 + r0.sum.abs()));
    }

    /// NLDM lookups stay finite and positive over a wide query envelope,
    /// including extrapolation beyond the characterized axes.
    #[test]
    fn library_lookups_are_robust(slew in 0.5f64..600.0, load in 0.05f64..120.0, cell in 0usize..5, corner in 0usize..4) {
        let lib = Library::synthetic_28nm(StdCorners::all());
        let d = lib.gate_delay(CellId(cell), clk_liberty::CornerId(corner), slew, load);
        let s = lib.gate_output_slew(CellId(cell), clk_liberty::CornerId(corner), slew, load);
        prop_assert!(d.is_finite() && d > 0.0);
        prop_assert!(s.is_finite() && s > 0.0);
    }
}
