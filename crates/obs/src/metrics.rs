//! Thread-safe metrics registry: counters, gauges, and log-linear
//! histograms with quantile estimation.
//!
//! All metric handles are cheap to update from multiple threads:
//! counters and gauges are single atomics, histograms take a short
//! mutex only to bump a bucket. Snapshots are consistent per-metric
//! (not across metrics), which is all the reporting paths need.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::Value;

/// Number of mantissa sub-bits per power-of-two octave.
///
/// 3 sub-bits → 8 sub-buckets per octave → relative bucket width of
/// `2^(1/8) - 1 ≈ 9%`, so any representative value is within ~9% of
/// every sample in its bucket.
const SUB_BITS: u32 = 3;
const SUBS_PER_OCTAVE: usize = 1 << SUB_BITS;
/// Bucket index space: bucket 0 holds zero/negative samples; the rest
/// cover the full positive f64 exponent range.
const NUM_BUCKETS: usize = 1 + (2048 << SUB_BITS);

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge holding the latest observed integer value.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A log-linear histogram over non-negative `f64` samples.
///
/// Buckets are spaced geometrically: each power-of-two octave is split
/// into [`SUBS_PER_OCTAVE`] linear sub-buckets, giving ≤ ~9% relative
/// error on any quantile while using sparse storage (only touched
/// buckets are stored). Exact `count`, `sum`, `min` and `max` are kept
/// alongside the buckets.
#[derive(Debug, Default)]
pub struct Histogram {
    state: Mutex<HistState>,
}

#[derive(Debug, Default, Clone)]
struct HistState {
    buckets: BTreeMap<u32, u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// Maps a sample to its bucket index.
///
/// Zero, negative, and non-finite-negative samples land in bucket 0;
/// positive samples use the f64 exponent plus the top mantissa bits.
fn bucket_index(v: f64) -> u32 {
    if v <= 0.0 || v.is_nan() {
        return 0;
    }
    let bits = v.to_bits();
    let exp = (bits >> 52) & 0x7ff;
    let sub = (bits >> (52 - SUB_BITS)) & ((1 << SUB_BITS) - 1);
    let idx = 1 + ((exp << SUB_BITS) | sub);
    (idx as u32).min((NUM_BUCKETS - 1) as u32)
}

/// The geometric midpoint of a bucket — the representative value
/// reported for quantiles landing in it.
fn bucket_mid(idx: u32) -> f64 {
    if idx == 0 {
        return 0.0;
    }
    let raw = u64::from(idx - 1);
    let exp = raw >> SUB_BITS;
    let sub = raw & ((1 << SUB_BITS) - 1);
    let lo = f64::from_bits((exp << 52) | (sub << (52 - SUB_BITS)));
    let hi_sub = sub + 1;
    let hi = if hi_sub == SUBS_PER_OCTAVE as u64 {
        f64::from_bits(((exp + 1) << 52).min(0x7fe0_0000_0000_0000))
    } else {
        f64::from_bits((exp << 52) | (hi_sub << (52 - SUB_BITS)))
    };
    if !lo.is_finite() || !hi.is_finite() {
        return f64::MAX;
    }
    (lo * hi).sqrt().max(lo)
}

impl Histogram {
    /// Records one sample.
    pub fn observe(&self, v: f64) {
        let v = if v.is_nan() { 0.0 } else { v };
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *st.buckets.entry(bucket_index(v)).or_insert(0) += 1;
        if st.count == 0 {
            st.min = v;
            st.max = v;
        } else {
            st.min = st.min.min(v);
            st.max = st.max.max(v);
        }
        st.count += 1;
        st.sum += v;
    }

    /// A point-in-time copy of the histogram's statistics.
    pub fn snapshot(&self) -> HistSnapshot {
        let st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        HistSnapshot {
            count: st.count,
            sum: st.sum,
            min: if st.count == 0 { 0.0 } else { st.min },
            max: if st.count == 0 { 0.0 } else { st.max },
            buckets: st.buckets.iter().map(|(&k, &v)| (k, v)).collect(),
        }
    }
}

/// A consistent snapshot of one histogram.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistSnapshot {
    /// Total number of samples.
    pub count: u64,
    /// Exact sum of all samples.
    pub sum: f64,
    /// Smallest sample (0 if empty).
    pub min: f64,
    /// Largest sample (0 if empty).
    pub max: f64,
    /// Sparse `(bucket index, count)` pairs in ascending index order.
    pub buckets: Vec<(u32, u64)>,
}

impl HistSnapshot {
    /// Arithmetic mean of the samples (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Merges `other` into `self`, bucket-wise.
    ///
    /// Both snapshots must come from histograms using the same bucket
    /// boundaries. Boundaries are a compile-time property of this
    /// module (`SUB_BITS`), so that holds for any two `clk-obs`
    /// snapshots; the assertion guards against feeding in buckets from
    /// a foreign or corrupted source (e.g. a deserialized snapshot with
    /// out-of-range indices). This is the aggregation primitive for
    /// per-thread histograms once the flow parallelizes.
    ///
    /// # Panics
    ///
    /// Panics when `other` holds a bucket index outside this module's
    /// bucket space (a boundary mismatch).
    pub fn merge(&mut self, other: &HistSnapshot) {
        for &(idx, _) in &other.buckets {
            assert!(
                (idx as usize) < NUM_BUCKETS,
                "bucket index {idx} out of range: mismatched histogram boundaries"
            );
        }
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let mut merged: BTreeMap<u32, u64> = self.buckets.iter().copied().collect();
        for &(idx, n) in &other.buckets {
            *merged.entry(idx).or_insert(0) += n;
        }
        self.buckets = merged.into_iter().collect();
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`).
    ///
    /// Uses the nearest-rank definition `k = max(1, ceil(q·n))` and
    /// returns the geometric midpoint of the bucket holding rank `k`,
    /// clamped into `[min, max]` so the tails are exact.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(idx, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_mid(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// One entry in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(i64),
    /// Histogram snapshot.
    Histogram(HistSnapshot),
}

/// A point-in-time dump of every registered metric, keyed by name.
pub type MetricsSnapshot = BTreeMap<String, MetricValue>;

/// Renders a metrics snapshot as a JSON object, summarizing histograms
/// to `count/sum/min/max/mean/p50/p95/p99`.
pub fn snapshot_to_json(snap: &MetricsSnapshot) -> Value {
    let mut pairs = Vec::with_capacity(snap.len());
    for (name, v) in snap {
        let jv = match v {
            MetricValue::Counter(c) => Value::from(*c),
            MetricValue::Gauge(g) => Value::from(*g),
            MetricValue::Histogram(h) => Value::Obj(vec![
                ("count".to_string(), Value::from(h.count)),
                ("sum".to_string(), Value::from(h.sum)),
                ("min".to_string(), Value::from(h.min)),
                ("max".to_string(), Value::from(h.max)),
                ("mean".to_string(), Value::from(h.mean())),
                ("p50".to_string(), Value::from(h.quantile(0.50))),
                ("p95".to_string(), Value::from(h.quantile(0.95))),
                ("p99".to_string(), Value::from(h.quantile(0.99))),
            ]),
        };
        pairs.push((name.clone(), jv));
    }
    Value::Obj(pairs)
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A registry of named metrics.
///
/// Lookup takes a short mutex; the returned `Arc` handles can then be
/// updated lock-free (counters/gauges) or near-lock-free (histograms)
/// without touching the registry again. Re-registering a name with the
/// same kind returns the existing metric; a kind mismatch panics in
/// debug builds and returns a detached metric in release builds.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self
            .metrics
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len();
        f.debug_struct("Registry").field("metrics", &n).finish()
    }
}

impl Registry {
    /// The counter registered under `name`, creating it if absent.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self
            .metrics
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => {
                debug_assert!(false, "metric kind mismatch for {name}");
                Arc::new(Counter::default())
            }
        }
    }

    /// The gauge registered under `name`, creating it if absent.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self
            .metrics
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => {
                debug_assert!(false, "metric kind mismatch for {name}");
                Arc::new(Gauge::default())
            }
        }
    }

    /// The histogram registered under `name`, creating it if absent.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut m = self
            .metrics
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => {
                debug_assert!(false, "metric kind mismatch for {name}");
                Arc::new(Histogram::default())
            }
        }
    }

    /// Snapshots every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let m = self
            .metrics
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        m.iter()
            .map(|(name, metric)| {
                let v = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                (name.clone(), v)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_width_bounds_quantile_error() {
        let h = Histogram::default();
        for i in 1..=1000u32 {
            h.observe(f64::from(i) * 0.37);
        }
        let snap = h.snapshot();
        let mut sorted: Vec<f64> = (1..=1000u32).map(|i| f64::from(i) * 0.37).collect();
        sorted.sort_by(f64::total_cmp);
        for &q in &[0.01f64, 0.25, 0.5, 0.75, 0.95, 0.99] {
            let rank = ((q * 1000.0).ceil() as usize).max(1);
            let exact = sorted[rank - 1];
            let est = snap.quantile(q);
            assert!(
                (est - exact).abs() <= exact * 0.10 + 1e-12,
                "q={q}: est {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn zero_and_negative_samples_share_bucket_zero() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-3.5), 0);
        assert_eq!(bucket_index(f64::NEG_INFINITY), 0);
        assert!(bucket_index(1e-300) > 0);
    }

    #[test]
    fn snapshot_tracks_exact_aggregates() {
        let h = Histogram::default();
        for v in [4.0, 1.0, 9.0] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert!((s.sum - 14.0).abs() < 1e-12);
        assert!((s.min - 1.0).abs() < 1e-12);
        assert!((s.max - 9.0).abs() < 1e-12);
        assert!((s.mean() - 14.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_is_bucket_wise_sum() {
        let (a, b) = (Histogram::default(), Histogram::default());
        for v in [1.0, 2.0, 400.0] {
            a.observe(v);
        }
        for v in [0.5, 2.0, 2.0] {
            b.observe(v);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        // reference: one histogram fed all six samples
        let all = Histogram::default();
        for v in [1.0, 2.0, 400.0, 0.5, 2.0, 2.0] {
            all.observe(v);
        }
        assert_eq!(m, all.snapshot());
        assert_eq!(m.count, 6);
        assert!((m.sum - 407.5).abs() < 1e-12);
        assert!((m.min - 0.5).abs() < 1e-12);
        assert!((m.max - 400.0).abs() < 1e-12);
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let h = Histogram::default();
        h.observe(3.0);
        let snap = h.snapshot();
        let mut a = snap.clone();
        a.merge(&HistSnapshot::default());
        assert_eq!(a, snap);
        let mut b = HistSnapshot::default();
        b.merge(&snap);
        assert_eq!(b, snap);
    }

    #[test]
    #[should_panic(expected = "mismatched histogram boundaries")]
    fn merge_rejects_foreign_boundaries() {
        let mut a = HistSnapshot::default();
        let foreign = HistSnapshot {
            count: 1,
            sum: 1.0,
            min: 1.0,
            max: 1.0,
            buckets: vec![(u32::MAX, 1)],
        };
        a.merge(&foreign);
    }

    #[test]
    fn registry_returns_same_handle() {
        let r = Registry::default();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(2);
        b.inc();
        assert_eq!(r.counter("x").get(), 3);
        assert_eq!(r.snapshot().len(), 1);
    }
}
