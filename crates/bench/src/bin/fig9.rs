//! Fig. 9: distribution of per-pair skew ratios between corner pairs
//! (c1, c0) and (c3, c0), before vs after optimization of CLS1v1 — the
//! optimized tree's ratio spread should visibly tighten.

// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic)]

use clk_bench::{ascii_histogram, ExpArgs, Stopwatch};
use clk_cts::{Testcase, TestcaseKind};
use clk_netlist::ClockTree;
use clk_skewopt::{optimize_with, DeltaLatencyModel, Flow, StageLuts};
use clk_sta::{pair_skews, Timer};

/// Per-pair skew ratios over all pairs with |skew_c0| above 1 ps,
/// returned with |skew_c0| as a weight: the histogram shows the raw
/// (paper-style) distribution, while the weighted statistics show what
/// the variation metric actually penalizes.
fn weighted_ratios(tree: &ClockTree, tc: &Testcase, k: usize) -> Vec<(f64, f64)> {
    let timer = Timer::golden();
    let skews: Vec<Vec<f64>> = tc
        .lib
        .corner_ids()
        .map(|c| pair_skews(&timer.analyze(tree, &tc.lib, c), tree.sink_pairs()))
        .collect();
    let floor = 1.0; // ps: only skews below measurement noise are dropped
    skews[0]
        .iter()
        .zip(&skews[k])
        .filter(|(s0, _)| s0.abs() >= floor)
        .map(|(s0, sk)| (sk / s0, s0.abs()))
        .collect()
}

fn stats(v: &[(f64, f64)]) -> (f64, f64, f64, f64) {
    let wsum: f64 = v.iter().map(|&(_, w)| w).sum::<f64>().max(1e-12);
    let mean = v.iter().map(|&(r, w)| r * w).sum::<f64>() / wsum;
    let std = (v
        .iter()
        .map(|&(r, w)| w * (r - mean) * (r - mean))
        .sum::<f64>()
        / wsum)
        .sqrt();
    let lo = v.iter().map(|&(r, _)| r).fold(f64::INFINITY, f64::min);
    let hi = v.iter().map(|&(r, _)| r).fold(f64::NEG_INFINITY, f64::max);
    (mean, std, lo, hi)
}

fn main() {
    let args = ExpArgs::parse();
    let n = args.sinks.unwrap_or(if args.quick { 48 } else { 96 });
    let sw = Stopwatch::start("fig9");
    let tc = Testcase::generate(TestcaseKind::Cls1v1, n, args.seed);
    let mut cfg = clockvar_workbench::quick_flow_config();
    if !args.quick {
        cfg.global.max_pairs = 120;
        cfg.global.rounds = 3;
        cfg.local.max_iterations = 12;
        cfg.local.max_batches = 3;
        cfg.train.n_cases = 30;
    }
    let luts = StageLuts::characterize(&tc.lib);
    let model = DeltaLatencyModel::train(&tc.lib, cfg.model_kind, &cfg.train);
    let report = optimize_with(&tc, Flow::GlobalLocal, &cfg, Some(&luts), Some(&model));
    println!(
        "variation: {:.1} -> {:.1} ps ({:.1}%)\n",
        report.variation_before,
        report.variation_after,
        100.0 * (1.0 - report.variation_ratio())
    );

    // CLS1 library corners: index 1 = c1, index 2 = c3
    for (k, label) in [(1usize, "skew(c1)/skew(c0)"), (2usize, "skew(c3)/skew(c0)")] {
        for (name, tree) in [("original", &tc.tree), ("optimized", &report.tree)] {
            let rw = weighted_ratios(tree, &tc, k);
            let (mean, std, lo, hi) = stats(&rw);
            let flat: Vec<f64> = rw.iter().map(|&(r, _)| r).collect();
            println!("--- {label}, {name} ({} weighted pairs) ---", rw.len());
            println!("weighted mean {mean:.3}, weighted std {std:.3}, range [{lo:.2}, {hi:.2}]");
            print!("{}", ascii_histogram(&flat, 9, 36));
            println!();
        }
    }
    println!("paper: the optimized tree shows clearly reduced variation and range of");
    println!("skew ratios for both corner pairs");
    sw.report();
}
