// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic)]
#![warn(missing_docs)]

//! Synthetic multi-corner standard-cell library — the PDK/Liberty substrate.
//!
//! The DAC'15 flow this workspace reproduces was evaluated on a foundry 28nm
//! LP technology with Liberty libraries characterized at four PVT corners
//! (Table 3 of the paper). No such PDK can ship with an open-source
//! reproduction, so this crate *generates* a library with the same structure:
//!
//! * a clock-inverter family in **five sizes** (the paper's ECO lookup
//!   tables use five inverter sizes),
//! * NLDM-style two-dimensional lookup tables (input slew × load
//!   capacitance) for cell delay and output slew, one per (cell, corner),
//! * per-corner wire RC for the Cmax / Cmin back-end-of-line corners.
//!
//! Table values come from an alpha-power-law MOSFET model
//! (`I ∝ (V - V_th)^α` with process- and temperature-dependent `V_th` and
//! mobility), so cross-corner delay **ratios** behave like silicon: the
//! 0.75 V SS corner is ≈1.9× slower than the 0.90 V SS corner and the FF
//! high-voltage corners are ≈0.43–0.56× faster, reproducing the ratio bands
//! of Fig. 2 of the paper.
//!
//! # Examples
//!
//! ```
//! use clk_liberty::{Library, StdCorners};
//!
//! let lib = Library::synthetic_28nm(StdCorners::c0_c1_c3());
//! let inv = lib.cell_by_name("CLKINV_X4").expect("size exists");
//! // delay of an X4 inverter at the nominal corner, 20ps input slew, 10fF load
//! let d0 = lib.gate_delay(inv, clk_liberty::CornerId(0), 20.0, 10.0);
//! let d1 = lib.gate_delay(inv, clk_liberty::CornerId(1), 20.0, 10.0);
//! assert!(d1 > 1.5 * d0, "low-voltage SS corner must be much slower");
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used))]
pub mod cell;
pub mod corner;
pub mod library;
pub mod limits;
pub mod lut;
pub mod text;

pub use cell::{Cell, CellId};
pub use corner::{Beol, Corner, CornerId, Process, StdCorners, WireRc};
pub use library::Library;
pub use library::{analytic_gate_delay, analytic_output_slew, INVERTER_DRIVES};
pub use limits::{LimitExceeded, ParseLimits};
pub use lut::{BuildLutError, Lut1, Lut2};
